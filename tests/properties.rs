//! Property-based integration tests over the whole stack.

use proptest::prelude::*;
use roco_noc::prelude::*;

fn cfg_for(
    router_idx: u8,
    routing_idx: u8,
    rate_milli: u16,
    seed: u64,
    width: u16,
    height: u16,
) -> SimConfig {
    let router = RouterKind::ALL[router_idx as usize % 3];
    let routing = RoutingKind::ALL[routing_idx as usize % 3];
    let mut cfg = SimConfig::paper_scaled(router, routing, TrafficKind::Uniform);
    cfg.mesh = roco_noc::core::MeshConfig::new(width, height);
    cfg.warmup_packets = 20;
    cfg.measured_packets = 300;
    cfg.injection_rate = 0.05 + (rate_milli % 200) as f64 / 1000.0; // 0.05..0.25
    cfg.seed = seed;
    cfg
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Any fault-free configuration delivers every generated packet,
    /// on any mesh from 3×3 to 8×8, at any sub-saturation rate.
    #[test]
    fn fault_free_always_completes(
        router_idx in 0u8..3,
        routing_idx in 0u8..3,
        rate_milli in 0u16..200,
        seed in 0u64..1_000,
        width in 3u16..8,
        height in 3u16..8,
    ) {
        let cfg = cfg_for(router_idx, routing_idx, rate_milli, seed, width, height);
        let r = roco_noc::sim::run(cfg);
        prop_assert!(!r.stalled);
        prop_assert_eq!(r.delivered_packets, r.generated_packets);
        prop_assert_eq!(r.dropped_packets, 0);
        // Latency at least the minimum hop pipeline.
        prop_assert!(r.avg_latency >= 4.0);
    }

    /// Faulty runs never deliver more than they inject, always
    /// terminate, and completion stays within [0, 1].
    #[test]
    fn faulty_runs_have_sane_accounting(
        router_idx in 0u8..3,
        fault_count in 1usize..4,
        category_critical in any::<bool>(),
        seed in 0u64..1_000,
    ) {
        let mut cfg = cfg_for(router_idx, 0, 100, seed, 8, 8);
        cfg.stall_window = 1_500;
        let category = if category_critical {
            FaultCategory::Isolating
        } else {
            FaultCategory::Recyclable
        };
        cfg.faults = FaultPlan::random(category, fault_count, cfg.mesh, seed);
        let r = roco_noc::sim::run(cfg);
        prop_assert!(r.measured_delivered <= r.measured_injected);
        prop_assert!(r.delivered_packets + r.dropped_packets <= r.generated_packets);
        let c = r.completion_probability();
        prop_assert!((0.0..=1.0).contains(&c));
    }

    /// Energy accounting is strictly positive and finite whenever
    /// anything moved, and the PEF metric is well-defined for runs that
    /// delivered packets.
    #[test]
    fn energy_and_pef_are_well_defined(
        router_idx in 0u8..3,
        routing_idx in 0u8..3,
        seed in 0u64..500,
    ) {
        let cfg = cfg_for(router_idx, routing_idx, 100, seed, 6, 6);
        let r = roco_noc::sim::run(cfg);
        prop_assert!(r.energy.total().is_finite());
        prop_assert!(r.energy.total() > 0.0);
        prop_assert!(r.energy.dynamic() > 0.0);
        prop_assert!(r.energy.leakage > 0.0);
        let pef = r.pef_inputs().pef();
        prop_assert!(pef.is_finite() && pef > 0.0);
    }
}
