//! End-to-end integration tests: every architecture × routing × main
//! workload delivers all packets in a fault-free mesh, deterministically.

use roco_noc::prelude::*;

fn small(router: RouterKind, routing: RoutingKind, traffic: TrafficKind) -> SimConfig {
    let mut cfg = SimConfig::paper_scaled(router, routing, traffic);
    cfg.warmup_packets = 100;
    cfg.measured_packets = 1_200;
    cfg.injection_rate = 0.2;
    cfg
}

#[test]
fn fault_free_networks_deliver_everything() {
    for router in RouterKind::ALL {
        for routing in RoutingKind::ALL {
            for traffic in [TrafficKind::Uniform, TrafficKind::Transpose] {
                let r = roco_noc::sim::run(small(router, routing, traffic));
                assert!(!r.stalled, "{router}/{routing}/{traffic} stalled");
                assert_eq!(
                    r.completion_probability(),
                    1.0,
                    "{router}/{routing}/{traffic} lost packets"
                );
                assert_eq!(r.delivered_packets, r.generated_packets);
                assert_eq!(r.dropped_packets, 0);
                assert!(r.avg_latency > 5.0, "{router}/{routing}/{traffic} latency implausible");
            }
        }
    }
}

#[test]
fn all_traffic_kinds_run_on_roco() {
    for traffic in TrafficKind::ALL {
        let r = roco_noc::sim::run(small(RouterKind::RoCo, RoutingKind::Adaptive, traffic));
        assert_eq!(r.completion_probability(), 1.0, "{traffic}");
        assert!(!r.stalled, "{traffic}");
    }
}

#[test]
fn same_seed_same_results() {
    let a =
        roco_noc::sim::run(small(RouterKind::RoCo, RoutingKind::Adaptive, TrafficKind::Uniform));
    let b =
        roco_noc::sim::run(small(RouterKind::RoCo, RoutingKind::Adaptive, TrafficKind::Uniform));
    assert_eq!(a.avg_latency, b.avg_latency);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.counters, b.counters);
    assert_eq!(a.contention, b.contention);
}

#[test]
fn different_seed_different_microstate() {
    let a = roco_noc::sim::run(small(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform));
    let b = roco_noc::sim::run(
        small(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform).with_seed(999),
    );
    assert_ne!(a.counters.buffer_writes, b.counters.buffer_writes);
}

#[test]
fn network_drains_completely() {
    let mut cfg = small(RouterKind::Generic, RoutingKind::Xy, TrafficKind::Uniform);
    cfg.measured_packets = 400;
    let mut sim = Simulation::new(cfg);
    while !sim.finished() {
        sim.step();
    }
    assert_eq!(sim.flits_in_system(), 0, "flits left in the network after drain");
}

#[test]
fn flit_conservation_holds_mid_flight() {
    let cfg = small(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform);
    let flits_per_packet = cfg.router_config().num_flits as u64;
    let mut sim = Simulation::new(cfg);
    for _ in 0..400 {
        sim.step();
    }
    let r = sim.results();
    let delivered_flits = r.counters.early_ejections; // RoCo ejects early
    let in_system = sim.flits_in_system() as u64;
    let generated_flits = r.generated_packets * flits_per_packet;
    // generated = delivered + dropped(≈0) + still inside.
    assert_eq!(r.dropped_packets, 0);
    assert_eq!(generated_flits, delivered_flits + in_system, "flits leaked or duplicated");
}

#[test]
fn bigger_meshes_work() {
    let mut cfg = small(RouterKind::RoCo, RoutingKind::Adaptive, TrafficKind::Uniform);
    cfg.mesh = roco_noc::core::MeshConfig::new(16, 16);
    cfg.measured_packets = 800;
    let r = roco_noc::sim::run(cfg);
    assert_eq!(r.completion_probability(), 1.0);
    // Larger diameter => larger zero-ish-load latency than an 8x8 run.
    assert!(r.avg_latency > 15.0);
}

#[test]
fn rectangular_meshes_work() {
    let mut cfg = small(RouterKind::PathSensitive, RoutingKind::Xy, TrafficKind::Uniform);
    cfg.mesh = roco_noc::core::MeshConfig::new(4, 12);
    cfg.measured_packets = 600;
    let r = roco_noc::sim::run(cfg);
    assert_eq!(r.completion_probability(), 1.0);
}

#[test]
fn throughput_tracks_offered_load_below_saturation() {
    for rate in [0.1, 0.2] {
        let cfg = small(RouterKind::Generic, RoutingKind::Xy, TrafficKind::Uniform).with_rate(rate);
        let r = roco_noc::sim::run(cfg);
        // Delivered flit throughput over the whole run is below offered
        // load (ramp-up/drain) but within a reasonable band.
        assert!(
            r.throughput > 0.3 * rate && r.throughput <= 1.05 * rate,
            "rate {rate}: {}",
            r.throughput
        );
    }
}
