//! Targeted fault-model integration tests (§4): specific component
//! failures at specific routers, and the reactions they must provoke.

use roco_noc::core::{Axis, ComponentFault, Coord, FaultComponent, MeshConfig};
use roco_noc::prelude::*;

fn base(router: RouterKind, routing: RoutingKind) -> SimConfig {
    let mut cfg = SimConfig::paper_scaled(router, routing, TrafficKind::Uniform);
    cfg.warmup_packets = 200;
    cfg.measured_packets = 2_500;
    cfg.injection_rate = 0.25;
    cfg.stall_window = 3_000;
    cfg
}

fn center_fault(component: FaultComponent, axis: Axis) -> FaultPlan {
    FaultPlan::single(Coord::new(4, 4), ComponentFault::new(component, axis))
}

#[test]
fn crossbar_fault_blocks_generic_node_but_only_roco_module() {
    let plan = center_fault(FaultComponent::Crossbar, Axis::X);

    let generic =
        roco_noc::sim::run(base(RouterKind::Generic, RoutingKind::Xy).with_faults(plan.clone()));
    let roco = roco_noc::sim::run(base(RouterKind::RoCo, RoutingKind::Xy).with_faults(plan));

    assert!(generic.completion_probability() < 1.0, "generic node must go dark");
    assert!(
        roco.completion_probability() > generic.completion_probability(),
        "RoCo {:.3} must beat generic {:.3}",
        roco.completion_probability(),
        generic.completion_probability()
    );
    // With the Row module dead, packets transiting (4,4) in their
    // X-phase are lost under XY (~5-6 % of uniform traffic), but all
    // pure-Y, turning and ejection traffic survives.
    assert!(roco.completion_probability() > 0.90);
}

#[test]
fn roco_module_fault_keeps_the_node_reachable() {
    // Early Ejection survives a single-module failure: packets whose
    // destination IS the faulty node still arrive.
    let plan = center_fault(FaultComponent::Crossbar, Axis::Y);
    let r = roco_noc::sim::run(base(RouterKind::RoCo, RoutingKind::Adaptive).with_faults(plan));
    // Adaptive routing detours around the dead Column module; only
    // column-aligned traffic with no minimal detour is lost.
    assert!(r.completion_probability() > 0.90, "got {:.3}", r.completion_probability());
}

#[test]
fn rc_fault_costs_latency_but_no_packets() {
    let healthy = roco_noc::sim::run(base(RouterKind::RoCo, RoutingKind::Xy));
    let faulty = roco_noc::sim::run(
        base(RouterKind::RoCo, RoutingKind::Xy)
            .with_faults(center_fault(FaultComponent::RoutingComputation, Axis::X)),
    );
    assert_eq!(faulty.completion_probability(), 1.0, "Double Routing loses nothing");
    assert!(
        faulty.avg_latency >= healthy.avg_latency,
        "Double Routing adds a cycle per head at the faulty router"
    );
}

#[test]
fn buffer_fault_is_absorbed_by_virtual_queuing() {
    let faulty = roco_noc::sim::run(
        base(RouterKind::RoCo, RoutingKind::Xy)
            .with_faults(FaultPlan::single(Coord::new(4, 4), ComponentFault::buffer(Axis::Y, 0))),
    );
    assert_eq!(faulty.completion_probability(), 1.0, "one lost VC must not lose packets");
    assert!(!faulty.stalled);
}

#[test]
fn sa_fault_degrades_but_does_not_block() {
    let healthy = roco_noc::sim::run(base(RouterKind::RoCo, RoutingKind::Xy));
    let faulty = roco_noc::sim::run(
        base(RouterKind::RoCo, RoutingKind::Xy)
            .with_faults(center_fault(FaultComponent::SaArbiter, Axis::X)),
    );
    assert_eq!(faulty.completion_probability(), 1.0, "SA offload must not lose packets");
    assert!(
        faulty.avg_latency >= healthy.avg_latency * 0.99,
        "sharing VA arbiters cannot make the router faster"
    );
}

#[test]
fn va_fault_isolates_one_module() {
    let plan = center_fault(FaultComponent::VaArbiter, Axis::X);
    let r = roco_noc::sim::run(base(RouterKind::RoCo, RoutingKind::Xy).with_faults(plan));
    // Same effect class as a crossbar fault: partial service continues.
    assert!(r.completion_probability() > 0.90 && r.completion_probability() < 1.0);
}

#[test]
fn dead_destination_loses_only_its_own_traffic() {
    // Kill a whole generic node; under uniform traffic 1/63 of packets
    // address it and a share of XY routes transit it.
    let plan = center_fault(FaultComponent::Crossbar, Axis::X);
    let r = roco_noc::sim::run(base(RouterKind::Generic, RoutingKind::Xy).with_faults(plan));
    let completion = r.completion_probability();
    assert!(completion > 0.80, "losses should be bounded, got {completion:.3}");
    assert!(completion < 1.0);
    assert!(r.dropped_packets > 0);
}

#[test]
fn adaptive_routing_routes_around_whole_node_faults_better_than_xy() {
    let plan = center_fault(FaultComponent::Crossbar, Axis::X);
    let xy =
        roco_noc::sim::run(base(RouterKind::Generic, RoutingKind::Xy).with_faults(plan.clone()));
    let adaptive =
        roco_noc::sim::run(base(RouterKind::Generic, RoutingKind::Adaptive).with_faults(plan));
    assert!(
        adaptive.completion_probability() >= xy.completion_probability(),
        "adaptive {:.3} vs xy {:.3}",
        adaptive.completion_probability(),
        xy.completion_probability()
    );
}

#[test]
fn double_module_fault_kills_the_roco_node() {
    let mut plan =
        FaultPlan::single(Coord::new(4, 4), ComponentFault::new(FaultComponent::Crossbar, Axis::X));
    plan.faults.push((Coord::new(4, 4), ComponentFault::new(FaultComponent::Crossbar, Axis::Y)));
    let r = roco_noc::sim::run(base(RouterKind::RoCo, RoutingKind::Xy).with_faults(plan));
    // Both modules dead = whole node dark, like the generic case.
    assert!(r.completion_probability() < 1.0);
}

#[test]
fn boundary_fault_sites_work() {
    for coord in [Coord::new(0, 0), Coord::new(7, 0), Coord::new(0, 7), Coord::new(7, 7)] {
        let plan = FaultPlan::single(coord, ComponentFault::new(FaultComponent::Crossbar, Axis::X));
        let r = roco_noc::sim::run(base(RouterKind::RoCo, RoutingKind::Xy).with_faults(plan));
        assert!(r.completion_probability() > 0.9, "corner fault at {coord}");
    }
}

#[test]
fn fault_free_and_single_fault_runs_share_no_state() {
    // Running a faulty config must not perturb a following clean run
    // (everything is value-owned; this guards against accidental
    // global state).
    let faulty = roco_noc::sim::run(
        base(RouterKind::RoCo, RoutingKind::Xy)
            .with_faults(center_fault(FaultComponent::Crossbar, Axis::X)),
    );
    let clean_a = roco_noc::sim::run(base(RouterKind::RoCo, RoutingKind::Xy));
    let clean_b = roco_noc::sim::run(base(RouterKind::RoCo, RoutingKind::Xy));
    assert!(faulty.completion_probability() < 1.0);
    assert_eq!(clean_a.avg_latency, clean_b.avg_latency);
}

#[test]
fn mesh_with_many_faults_still_terminates() {
    let mut cfg = base(RouterKind::Generic, RoutingKind::Xy);
    cfg.faults = FaultPlan::random(FaultCategory::Isolating, 12, MeshConfig::new(8, 8), 9);
    cfg.stall_window = 2_000;
    let max_cycles = cfg.max_cycles;
    let r = roco_noc::sim::run(cfg);
    assert!(r.cycles < max_cycles, "run must terminate via drain or stall detector");
}
