//! The paper's headline claims, verified end-to-end on the simulator
//! (scaled-down run sizes; all comparisons are the paper's qualitative
//! *shape* claims, not absolute numbers).

use roco_noc::prelude::*;

fn run(router: RouterKind, routing: RoutingKind, traffic: TrafficKind, rate: f64) -> SimResults {
    let mut cfg = SimConfig::paper_scaled(router, routing, traffic);
    cfg.warmup_packets = 300;
    cfg.measured_packets = 4_000;
    cfg.injection_rate = rate;
    roco_noc::sim::run(cfg)
}

/// §1/§5.4: "the proposed architecture reduces packet latency … as
/// compared to two existing router architectures" — at the 0.25
/// operating point RoCo must have the lowest average latency.
#[test]
fn roco_has_lowest_latency_at_moderate_load() {
    // XY-YX is checked with slack: our deadlock-free restriction of the
    // YX class to northbound packets (see DESIGN.md) concentrates the
    // extra load on Table 1's single northbound tyx/dy channels, which
    // costs RoCo some of its XY-YX margin near saturation.
    for (routing, slack) in
        [(RoutingKind::Xy, 1.0), (RoutingKind::XyYx, 1.25), (RoutingKind::Adaptive, 1.0)]
    {
        let g = run(RouterKind::Generic, routing, TrafficKind::Uniform, 0.25);
        let p = run(RouterKind::PathSensitive, routing, TrafficKind::Uniform, 0.25);
        let r = run(RouterKind::RoCo, routing, TrafficKind::Uniform, 0.25);
        assert!(
            r.avg_latency < g.avg_latency * slack,
            "{routing}: RoCo {:.1} vs generic {:.1}",
            r.avg_latency,
            g.avg_latency
        );
        assert!(
            r.avg_latency < p.avg_latency * slack.max(1.02),
            "{routing}: RoCo {:.1} vs path-sensitive {:.1}",
            r.avg_latency,
            p.avg_latency
        );
    }
}

/// §5.4 / Fig 13: RoCo consumes ~20 % less energy per packet than the
/// generic router and ~6 % less than the Path-Sensitive router.
#[test]
fn roco_energy_savings_match_paper_band() {
    let g = run(RouterKind::Generic, RoutingKind::Xy, TrafficKind::Uniform, 0.3);
    let p = run(RouterKind::PathSensitive, RoutingKind::Xy, TrafficKind::Uniform, 0.3);
    let r = run(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform, 0.3);
    let vs_generic = 1.0 - r.energy_per_packet / g.energy_per_packet;
    let vs_ps = 1.0 - r.energy_per_packet / p.energy_per_packet;
    assert!(
        (0.10..=0.40).contains(&vs_generic),
        "saving vs generic {vs_generic:.2} outside the paper's band"
    );
    assert!((0.0..=0.20).contains(&vs_ps), "saving vs PS {vs_ps:.2} outside the paper's band");
}

/// Fig 3: the RoCo router has the lowest SA contention probability; the
/// generic router the highest.
#[test]
fn contention_ordering_matches_fig3() {
    let g = run(RouterKind::Generic, RoutingKind::Xy, TrafficKind::Uniform, 0.3);
    let p = run(RouterKind::PathSensitive, RoutingKind::Xy, TrafficKind::Uniform, 0.3);
    let r = run(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform, 0.3);
    let gc = g.contention.total_contention_probability().unwrap();
    let pc = p.contention.total_contention_probability().unwrap();
    let rc = r.contention.total_contention_probability().unwrap();
    assert!(rc < pc && rc < gc, "RoCo {rc:.3} vs PS {pc:.3} vs generic {gc:.3}");
}

/// Fig 3(a)/(b): under XY routing the row (X) inputs contend more than
/// the column (Y) inputs — "the flits of the row input are involved in
/// more severe output conflicts … because of the nature of the routing
/// algorithm".
#[test]
fn xy_routing_contends_more_in_x_than_y() {
    let g = run(RouterKind::Generic, RoutingKind::Xy, TrafficKind::Uniform, 0.3);
    let x = g.contention.x_contention_probability().unwrap();
    let y = g.contention.y_contention_probability().unwrap();
    assert!(x > y, "row contention {x:.3} should exceed column contention {y:.3}");
}

/// Fig 11: under router-centric/critical faults the RoCo router keeps
/// the highest completion probability, and everyone degrades as faults
/// accumulate.
#[test]
fn critical_fault_completion_ordering() {
    let mut completion = std::collections::HashMap::new();
    for router in RouterKind::ALL {
        for n in [1usize, 4] {
            let mut cfg = SimConfig::paper_scaled(router, RoutingKind::Xy, TrafficKind::Uniform);
            cfg.warmup_packets = 200;
            cfg.measured_packets = 3_000;
            cfg.stall_window = 3_000;
            cfg.faults = FaultPlan::random(FaultCategory::Isolating, n, cfg.mesh, 77);
            let r = roco_noc::sim::run(cfg);
            completion.insert((router, n), r.completion_probability());
        }
    }
    for n in [1usize, 4] {
        let r = completion[&(RouterKind::RoCo, n)];
        let g = completion[&(RouterKind::Generic, n)];
        let p = completion[&(RouterKind::PathSensitive, n)];
        assert!(r >= g, "{n} faults: RoCo {r:.3} vs generic {g:.3}");
        assert!(r >= p, "{n} faults: RoCo {r:.3} vs PS {p:.3}");
    }
    assert!(
        completion[&(RouterKind::Generic, 4)] < completion[&(RouterKind::Generic, 1)],
        "more faults must hurt the generic router"
    );
}

/// Fig 12: message-centric/non-critical faults are fully recycled by
/// RoCo (completion stays 1.0) while they still kill baseline nodes.
#[test]
fn recyclable_faults_cost_roco_nothing() {
    for router in RouterKind::ALL {
        let mut cfg = SimConfig::paper_scaled(router, RoutingKind::Xy, TrafficKind::Uniform);
        cfg.warmup_packets = 200;
        cfg.measured_packets = 3_000;
        cfg.stall_window = 3_000;
        cfg.faults = FaultPlan::random(FaultCategory::Recyclable, 4, cfg.mesh, 55);
        let r = roco_noc::sim::run(cfg);
        match router {
            RouterKind::RoCo => assert_eq!(
                r.completion_probability(),
                1.0,
                "Hardware Recycling must save every packet"
            ),
            _ => assert!(
                r.completion_probability() < 1.0,
                "{router} should lose packets to blocked nodes"
            ),
        }
    }
}

/// §5.4 / Fig 14: combining latency, energy and completion, RoCo's PEF
/// beats both baselines under faults.
#[test]
fn pef_favors_roco_under_faults() {
    let mut pef = std::collections::HashMap::new();
    for router in RouterKind::ALL {
        let mut cfg = SimConfig::paper_scaled(router, RoutingKind::Adaptive, TrafficKind::Uniform);
        cfg.warmup_packets = 200;
        cfg.measured_packets = 3_000;
        cfg.stall_window = 3_000;
        cfg.faults = FaultPlan::random(FaultCategory::Isolating, 2, cfg.mesh, 33);
        let r = roco_noc::sim::run(cfg);
        pef.insert(router, r.pef_inputs().pef());
    }
    assert!(pef[&RouterKind::RoCo] < pef[&RouterKind::Generic]);
    assert!(pef[&RouterKind::RoCo] < pef[&RouterKind::PathSensitive]);
}

/// Table 2's analytic ordering, cross-checked against measured
/// contention: the architecture with the higher non-blocking
/// probability contends less in simulation.
#[test]
fn analytic_and_measured_contention_agree() {
    use roco_noc::analysis::{generic_non_blocking_probability, roco_non_blocking_probability};
    let analytic_gap = roco_non_blocking_probability() / generic_non_blocking_probability(5);
    assert!(analytic_gap > 5.0);
    let g = run(RouterKind::Generic, RoutingKind::Xy, TrafficKind::Uniform, 0.3);
    let r = run(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform, 0.3);
    assert!(
        r.contention.total_contention_probability().unwrap()
            < g.contention.total_contention_probability().unwrap()
    );
}

/// Early Ejection (§3.1): RoCo never reads destination flits out of a
/// buffer through the crossbar — every delivery is an early ejection.
#[test]
fn roco_uses_early_ejection_for_every_delivery() {
    let r = run(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform, 0.2);
    let flits = r.delivered_packets * 4;
    assert_eq!(r.counters.early_ejections, flits);
    let g = run(RouterKind::Generic, RoutingKind::Xy, TrafficKind::Uniform, 0.2);
    assert_eq!(g.counters.early_ejections, 0, "the generic router has no early ejection");
}

/// Deadlock freedom, machine-checked: the channel-dependency graph of
/// every shipping router × routing configuration is acyclic (Dally &
/// Seitz), so the fault-free completion results above are structural,
/// not luck.
#[test]
fn all_configurations_are_provably_deadlock_free() {
    use roco_noc::core::MeshConfig;
    for router in RouterKind::ALL {
        for routing in RoutingKind::ALL {
            let a = roco_noc::deadlock::verify(router, routing, MeshConfig::new(4, 4));
            assert!(a.deadlock_free(), "{router}/{routing}: {:?}", a.cycle);
        }
    }
}

/// §3.1's utilization claim behind the Table-1 XY configuration: "the
/// injection channel Injxy is much more frequently used than Injyx as a
/// result of the routing scheme" — measured network-wide.
#[test]
fn injxy_dominates_injyx_under_xy_routing() {
    use roco_noc::core::VcClass;
    use roco_noc::router::AnyRouter;
    let mut cfg = SimConfig::paper_scaled(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform);
    cfg.warmup_packets = 100;
    cfg.measured_packets = 2_000;
    cfg.injection_rate = 0.2;
    let mut sim = Simulation::new(cfg);
    while !sim.finished() {
        sim.step();
    }
    let (mut injxy, mut injyx) = (0u64, 0u64);
    for r in sim.routers() {
        let AnyRouter::RoCo(roco) = r else { panic!("homogeneous RoCo mesh") };
        let util = roco.class_utilization();
        injxy += util.get(&VcClass::InjXy).copied().unwrap_or(0);
        injyx += util.get(&VcClass::InjYx).copied().unwrap_or(0);
    }
    // Under XY every packet with a nonzero X displacement (7/8 of
    // uniform traffic) injects X-first.
    assert!(injxy > 3 * injyx, "Injxy {injxy} should dominate Injyx {injyx}");
}
