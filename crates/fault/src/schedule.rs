//! Timed fault/repair schedules: the dynamic generalization of
//! [`FaultPlan`](crate::FaultPlan).
//!
//! A [`FaultSchedule`] is a cycle-ordered list of [`FaultEvent`]s. Each
//! event either injects a [`ComponentFault`] at a router or repairs one
//! previously injected there. Builders expand the three fault kinds the
//! evaluation needs — permanent, transient (inject + one repair after a
//! fixed duration), and intermittent (Pareto-distributed on/off
//! episodes) — into plain event pairs, so the simulator only ever sees
//! the flat timeline. Random generation draws fault arrivals from an
//! exponential inter-arrival distribution (mean time between faults),
//! matching how ongoing wear-out faults reach a fielded chip.
//!
//! All randomness is hand-rolled inverse-CDF sampling over a seeded
//! [`SmallRng`], so a given seed always yields the same schedule.

use crate::classify::FaultCategory;
use noc_core::{Axis, ComponentFault, Coord, FaultComponent, MeshConfig};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What a [`FaultEvent`] does to its site when its cycle arrives.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAction {
    /// The component fault becomes active at the site.
    Inject(ComponentFault),
    /// A previously injected fault is repaired. The router re-applies
    /// whatever faults remain active at the site afterwards.
    Repair(ComponentFault),
}

impl FaultAction {
    /// The component fault this action injects or repairs.
    pub fn fault(&self) -> ComponentFault {
        match self {
            FaultAction::Inject(f) | FaultAction::Repair(f) => *f,
        }
    }

    /// `true` for injections.
    pub fn is_inject(&self) -> bool {
        matches!(self, FaultAction::Inject(_))
    }
}

/// One timed fault or repair at one router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultEvent {
    /// Simulation cycle at which the action takes effect.
    pub cycle: u64,
    /// The afflicted router.
    pub site: Coord,
    /// Inject or repair.
    pub action: FaultAction,
}

/// A cycle-ordered timeline of fault and repair events.
///
/// Events with equal cycles keep their insertion order (stable sort),
/// so schedules are fully deterministic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FaultSchedule {
    events: Vec<FaultEvent>,
}

impl FaultSchedule {
    /// An empty schedule (the fault-free baseline).
    pub fn none() -> Self {
        Self::default()
    }

    /// Wraps the static [`FaultPlan`](crate::FaultPlan): every fault is
    /// injected permanently at cycle 0.
    pub fn from_plan(plan: &crate::FaultPlan) -> Self {
        let mut s = Self::none();
        for &(site, fault) in &plan.faults {
            s.push_permanent(0, site, fault);
        }
        s
    }

    /// Adds a permanent fault at `cycle`.
    pub fn push_permanent(&mut self, cycle: u64, site: Coord, fault: ComponentFault) {
        self.push(FaultEvent { cycle, site, action: FaultAction::Inject(fault) });
    }

    /// Adds a transient fault: injected at `cycle`, repaired
    /// `duration` cycles later.
    ///
    /// # Panics
    ///
    /// Panics when `duration` is zero (the repair would precede the
    /// injection's effects).
    pub fn push_transient(
        &mut self,
        cycle: u64,
        site: Coord,
        fault: ComponentFault,
        duration: u64,
    ) {
        assert!(duration > 0, "transient faults need a non-zero duration");
        self.push(FaultEvent { cycle, site, action: FaultAction::Inject(fault) });
        self.push(FaultEvent {
            cycle: cycle.saturating_add(duration),
            site,
            action: FaultAction::Repair(fault),
        });
    }

    /// Adds an intermittent fault: `episodes` on/off cycles starting at
    /// `cycle`, with on- and off-durations drawn from Pareto
    /// distributions (`scale * u^(-1/alpha)`, the standard inverse-CDF
    /// form), deterministically from `seed`.
    ///
    /// # Panics
    ///
    /// Panics when `episodes` is zero or a scale/shape parameter is not
    /// strictly positive.
    #[allow(clippy::too_many_arguments)]
    pub fn push_intermittent(
        &mut self,
        cycle: u64,
        site: Coord,
        fault: ComponentFault,
        episodes: u32,
        on_scale: f64,
        off_scale: f64,
        alpha: f64,
        seed: u64,
    ) {
        assert!(episodes > 0, "intermittent faults need at least one episode");
        assert!(on_scale > 0.0 && off_scale > 0.0 && alpha > 0.0, "Pareto parameters must be > 0");
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut t = cycle;
        for _ in 0..episodes {
            let on = pareto(&mut rng, on_scale, alpha);
            let off = pareto(&mut rng, off_scale, alpha);
            self.push_transient(t, site, fault, on);
            t = t.saturating_add(on).saturating_add(off);
        }
    }

    /// Draws a random schedule with exponentially distributed fault
    /// inter-arrival times of mean `mtbf` cycles, over `[0, horizon)`.
    ///
    /// Each arrival picks a uniform site, a component of `category`, a
    /// random axis and (for buffer faults) a VC slot in
    /// `0..2 * vcs_per_port` — the size of one RoCo module's VC pool.
    /// When `repair_after` is `Some(d)`, every fault is transient and
    /// heals `d` cycles after onset; `None` makes every fault permanent.
    ///
    /// # Panics
    ///
    /// Panics when `mtbf` is not strictly positive or `vcs_per_port`
    /// is zero.
    pub fn random_mtbf(
        category: FaultCategory,
        mesh: MeshConfig,
        mtbf: f64,
        repair_after: Option<u64>,
        horizon: u64,
        vcs_per_port: u8,
        seed: u64,
    ) -> Self {
        assert!(mtbf > 0.0, "mean time between faults must be > 0");
        assert!(vcs_per_port > 0, "vcs_per_port must be > 0");
        let slots = 2 * vcs_per_port as u32;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut schedule = Self::none();
        let mut t = 0.0f64;
        loop {
            // Exponential inter-arrival via inverse CDF.
            let u: f64 = rng.gen();
            t += -mtbf * (1.0 - u).ln();
            if !t.is_finite() || t >= horizon as f64 {
                break;
            }
            let cycle = t as u64;
            let site = Coord::from_index(rng.gen_range(0..mesh.nodes()), mesh.width);
            let component =
                *category.components().choose(&mut rng).expect("categories are non-empty");
            let axis = if rng.gen_bool(0.5) { Axis::X } else { Axis::Y };
            let fault = if component == FaultComponent::VcBuffer {
                ComponentFault::buffer(axis, rng.gen_range(0..slots) as u8)
            } else {
                ComponentFault::new(component, axis)
            };
            match repair_after {
                Some(d) if d > 0 => schedule.push_transient(cycle, site, fault, d),
                _ => schedule.push_permanent(cycle, site, fault),
            }
        }
        schedule
    }

    /// Appends one event, keeping the timeline cycle-ordered.
    pub fn push(&mut self, event: FaultEvent) {
        self.events.push(event);
        self.events.sort_by_key(|e| e.cycle);
    }

    /// The ordered event list.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// `true` when the schedule has no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The cycle of the last event, if any.
    pub fn last_cycle(&self) -> Option<u64> {
        self.events.last().map(|e| e.cycle)
    }
}

/// A Pareto-distributed duration, rounded to at least one cycle.
fn pareto(rng: &mut SmallRng, scale: f64, alpha: f64) -> u64 {
    let u: f64 = rng.gen::<f64>().max(f64::MIN_POSITIVE);
    let x = scale * u.powf(-1.0 / alpha);
    if x.is_finite() {
        (x as u64).max(1)
    } else {
        u64::MAX / 4
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FaultPlan;

    fn any_fault() -> ComponentFault {
        ComponentFault::new(FaultComponent::Crossbar, Axis::X)
    }

    #[test]
    fn events_stay_sorted_and_ties_keep_insertion_order() {
        let mut s = FaultSchedule::none();
        let f = any_fault();
        s.push_permanent(50, Coord::new(1, 1), f);
        s.push_permanent(10, Coord::new(2, 2), f);
        s.push_permanent(10, Coord::new(3, 3), f);
        let cycles: Vec<u64> = s.events().iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![10, 10, 50]);
        assert_eq!(s.events()[0].site, Coord::new(2, 2), "stable tie-break");
        assert_eq!(s.events()[1].site, Coord::new(3, 3));
    }

    #[test]
    fn transient_expands_to_inject_then_repair() {
        let mut s = FaultSchedule::none();
        let f = any_fault();
        s.push_transient(100, Coord::new(1, 0), f, 40);
        assert_eq!(s.len(), 2);
        assert_eq!(s.events()[0].cycle, 100);
        assert!(s.events()[0].action.is_inject());
        assert_eq!(s.events()[1].cycle, 140);
        assert_eq!(s.events()[1].action, FaultAction::Repair(f));
        assert_eq!(s.events()[1].action.fault(), f);
        assert_eq!(s.last_cycle(), Some(140));
    }

    #[test]
    #[should_panic(expected = "non-zero duration")]
    fn zero_duration_transient_panics() {
        FaultSchedule::none().push_transient(0, Coord::new(0, 0), any_fault(), 0);
    }

    #[test]
    fn intermittent_alternates_and_is_deterministic() {
        let mut a = FaultSchedule::none();
        a.push_intermittent(0, Coord::new(1, 1), any_fault(), 4, 30.0, 60.0, 1.5, 7);
        let mut b = FaultSchedule::none();
        b.push_intermittent(0, Coord::new(1, 1), any_fault(), 4, 30.0, 60.0, 1.5, 7);
        assert_eq!(a, b);
        assert_eq!(a.len(), 8, "4 episodes = 4 inject + 4 repair");
        // Events alternate inject/repair once ordered, and each on
        // duration is at least the Pareto scale.
        let ev = a.events();
        for pair in ev.chunks(2) {
            assert!(pair[0].action.is_inject());
            assert!(!pair[1].action.is_inject());
            assert!(pair[1].cycle - pair[0].cycle >= 30);
        }
    }

    #[test]
    fn from_plan_injects_everything_at_cycle_zero() {
        let plan = FaultPlan::random(FaultCategory::Isolating, 3, MeshConfig::new(4, 4), 11);
        let s = FaultSchedule::from_plan(&plan);
        assert_eq!(s.len(), 3);
        assert!(s.events().iter().all(|e| e.cycle == 0 && e.action.is_inject()));
    }

    #[test]
    fn random_mtbf_is_deterministic_and_bounded() {
        let mesh = MeshConfig::new(4, 4);
        let gen = |seed: u64| {
            FaultSchedule::random_mtbf(
                FaultCategory::Recyclable,
                mesh,
                500.0,
                Some(300),
                10_000,
                3,
                seed,
            )
        };
        let a = gen(42);
        let b = gen(42);
        assert_eq!(a, b);
        assert!(!a.is_empty(), "10k cycles at mtbf 500 should produce arrivals");
        for e in a.events() {
            assert!(e.site.x < 4 && e.site.y < 4);
            if e.action.is_inject() {
                assert!(e.cycle < 10_000, "injections stay inside the horizon");
                assert!(FaultCategory::Recyclable
                    .components()
                    .contains(&e.action.fault().component));
            }
        }
        let c = gen(43);
        assert_ne!(a, c, "different seeds differ");
    }

    #[test]
    fn random_mtbf_buffer_slots_respect_vc_count() {
        let mesh = MeshConfig::new(8, 8);
        for seed in 0..10u64 {
            let s = FaultSchedule::random_mtbf(
                FaultCategory::Recyclable,
                mesh,
                100.0,
                None,
                20_000,
                2,
                seed,
            );
            for e in s.events() {
                let f = e.action.fault();
                if f.component == FaultComponent::VcBuffer {
                    assert!(f.vc < 4, "slot {} out of range for 2 VCs/port", f.vc);
                }
            }
        }
    }

    #[test]
    fn pareto_respects_scale_floor() {
        let mut rng = SmallRng::seed_from_u64(9);
        for _ in 0..1000 {
            let x = pareto(&mut rng, 25.0, 2.0);
            assert!(x >= 25);
        }
    }
}
