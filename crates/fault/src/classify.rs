//! Component fault classification (Table 3 of the paper) and the
//! per-architecture reaction policy (§4.1).

use noc_core::{FaultComponent, RouterKind};
use serde::{Deserialize, Serialize};
use std::fmt;

/// How often a component is exercised.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum OperationRegime {
    /// Driven only by header flits (RC, VA) — low utilization, shareable.
    PerPacket,
    /// Driven by every flit (buffers, SA, crossbar, MUX/DEMUX).
    PerFlit,
}

/// Whether the component sits on the flit datapath.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Pathway {
    /// Datapath (buffers without bypass, MUX/DEMUX, crossbar).
    Critical,
    /// Control logic (RC, VA, SA, buffers with a bypass path).
    NonCritical,
}

/// Whether the component's function depends on router-wide state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Centricity {
    /// Operates on a single message (RC, buffers, MUX/DEMUX).
    MessageCentric,
    /// Arbitrates across messages (VA, SA, crossbar).
    RouterCentric,
}

/// Full Table-3 classification of one component.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultClass {
    /// Per-packet vs per-flit.
    pub regime: OperationRegime,
    /// Critical vs non-critical pathway.
    pub pathway: Pathway,
    /// Message-centric vs router-centric.
    pub centricity: Centricity,
}

/// Classifies `component` per Table 3. `buffer_has_bypass` selects the
/// buffer's column: with a bypass path a buffer fault is non-critical
/// (Virtual Queuing applies); without one it is critical.
pub fn classify(component: FaultComponent, buffer_has_bypass: bool) -> FaultClass {
    use Centricity::*;
    use FaultComponent::*;
    use OperationRegime::*;
    use Pathway::*;
    match component {
        RoutingComputation => {
            FaultClass { regime: PerPacket, pathway: NonCritical, centricity: MessageCentric }
        }
        VcBuffer => FaultClass {
            regime: PerFlit,
            pathway: if buffer_has_bypass { NonCritical } else { Critical },
            centricity: MessageCentric,
        },
        VaArbiter => {
            FaultClass { regime: PerPacket, pathway: NonCritical, centricity: RouterCentric }
        }
        SaArbiter => {
            FaultClass { regime: PerFlit, pathway: NonCritical, centricity: RouterCentric }
        }
        Crossbar => FaultClass { regime: PerFlit, pathway: Critical, centricity: RouterCentric },
        MuxDemux => FaultClass { regime: PerFlit, pathway: Critical, centricity: MessageCentric },
    }
}

/// The two fault families the paper's evaluation injects (Figs 11/12).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FaultCategory {
    /// Router-centric / critical-pathway faults: in RoCo they isolate
    /// one module; in the baselines they block the whole node (Fig 11).
    Isolating,
    /// Message-centric / non-critical faults: RoCo bypasses them via
    /// Hardware Recycling; the baselines still block the node (Fig 12).
    Recyclable,
}

impl FaultCategory {
    /// The components whose failure falls in this category.
    pub fn components(self) -> &'static [FaultComponent] {
        match self {
            FaultCategory::Isolating => {
                &[FaultComponent::VaArbiter, FaultComponent::Crossbar, FaultComponent::MuxDemux]
            }
            FaultCategory::Recyclable => &[
                FaultComponent::RoutingComputation,
                FaultComponent::VcBuffer,
                FaultComponent::SaArbiter,
            ],
        }
    }
}

impl fmt::Display for FaultCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultCategory::Isolating => f.write_str("router-centric/critical"),
            FaultCategory::Recyclable => f.write_str("message-centric/non-critical"),
        }
    }
}

/// A router architecture's reaction to a component fault (§4.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Reaction {
    /// The whole node is taken off-line.
    NodeBlocked,
    /// Only the afflicted Row/Column module is isolated; the other
    /// module and Early Ejection keep serving traffic.
    ModuleBlocked,
    /// Neighbours perform current-node + look-ahead routing for flits
    /// leaving the faulty router (Fig 5).
    DoubleRouting,
    /// The faulty VC is taken out of service; flits are held upstream
    /// and arbitrated remotely over the bypass path (Fig 6).
    VirtualQueuing,
    /// SA arbitrations are offloaded onto idle VA arbiters through
    /// 2-to-1 MUXes (Fig 7): the module runs degraded.
    SaOffload,
}

/// The reaction of `router` to a hard fault in `component`.
///
/// Generic and Path-Sensitive routers have unified control: any hard
/// fault blocks the entire node. The RoCo router reacts per §4.1's
/// recovery schemes.
pub fn reaction(router: RouterKind, component: FaultComponent) -> Reaction {
    match router {
        RouterKind::Generic | RouterKind::PathSensitive => Reaction::NodeBlocked,
        RouterKind::RoCo => match component {
            FaultComponent::RoutingComputation => Reaction::DoubleRouting,
            FaultComponent::VcBuffer => Reaction::VirtualQueuing,
            FaultComponent::VaArbiter => Reaction::ModuleBlocked,
            FaultComponent::SaArbiter => Reaction::SaOffload,
            FaultComponent::Crossbar => Reaction::ModuleBlocked,
            FaultComponent::MuxDemux => Reaction::ModuleBlocked,
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table3_classifications() {
        let rc = classify(FaultComponent::RoutingComputation, true);
        assert_eq!(rc.regime, OperationRegime::PerPacket);
        assert_eq!(rc.pathway, Pathway::NonCritical);
        assert_eq!(rc.centricity, Centricity::MessageCentric);

        let va = classify(FaultComponent::VaArbiter, true);
        assert_eq!(va.regime, OperationRegime::PerPacket);
        assert_eq!(va.centricity, Centricity::RouterCentric);

        let sa = classify(FaultComponent::SaArbiter, true);
        assert_eq!(sa.regime, OperationRegime::PerFlit);
        assert_eq!(sa.pathway, Pathway::NonCritical);

        let xbar = classify(FaultComponent::Crossbar, true);
        assert_eq!(xbar.pathway, Pathway::Critical);
        assert_eq!(xbar.centricity, Centricity::RouterCentric);

        let mux = classify(FaultComponent::MuxDemux, true);
        assert_eq!(mux.pathway, Pathway::Critical);
        assert_eq!(mux.centricity, Centricity::MessageCentric);
    }

    #[test]
    fn buffer_criticality_depends_on_bypass() {
        assert_eq!(classify(FaultComponent::VcBuffer, true).pathway, Pathway::NonCritical);
        assert_eq!(classify(FaultComponent::VcBuffer, false).pathway, Pathway::Critical);
    }

    #[test]
    fn categories_partition_components() {
        let mut all: Vec<FaultComponent> = FaultCategory::Isolating.components().to_vec();
        all.extend(FaultCategory::Recyclable.components());
        all.sort_by_key(|c| format!("{c:?}"));
        let mut expected = FaultComponent::ALL.to_vec();
        expected.sort_by_key(|c| format!("{c:?}"));
        assert_eq!(all, expected);
    }

    #[test]
    fn baselines_always_block_the_node() {
        for component in FaultComponent::ALL {
            assert_eq!(reaction(RouterKind::Generic, component), Reaction::NodeBlocked);
            assert_eq!(reaction(RouterKind::PathSensitive, component), Reaction::NodeBlocked);
        }
    }

    #[test]
    fn roco_reactions_follow_section4() {
        use FaultComponent::*;
        assert_eq!(reaction(RouterKind::RoCo, RoutingComputation), Reaction::DoubleRouting);
        assert_eq!(reaction(RouterKind::RoCo, VcBuffer), Reaction::VirtualQueuing);
        assert_eq!(reaction(RouterKind::RoCo, VaArbiter), Reaction::ModuleBlocked);
        assert_eq!(reaction(RouterKind::RoCo, SaArbiter), Reaction::SaOffload);
        assert_eq!(reaction(RouterKind::RoCo, Crossbar), Reaction::ModuleBlocked);
        assert_eq!(reaction(RouterKind::RoCo, MuxDemux), Reaction::ModuleBlocked);
    }

    #[test]
    fn roco_never_loses_the_whole_node_to_one_fault() {
        for component in FaultComponent::ALL {
            assert_ne!(reaction(RouterKind::RoCo, component), Reaction::NodeBlocked);
        }
    }

    #[test]
    fn category_display() {
        assert_eq!(FaultCategory::Isolating.to_string(), "router-centric/critical");
        assert_eq!(FaultCategory::Recyclable.to_string(), "message-centric/non-critical");
    }
}
