//! Fault-injection plans: which routers break, where, and how.

use crate::classify::FaultCategory;
use noc_core::{Axis, ComponentFault, Coord, FaultComponent, MeshConfig};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// A reproducible set of permanent hardware faults to inject at
/// simulation start (§5.4: "router faults were randomly injected").
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize, Default)]
pub struct FaultPlan {
    /// `(router position, fault)` pairs; at most one fault per router.
    pub faults: Vec<(Coord, ComponentFault)>,
}

impl FaultPlan {
    /// No faults (the fault-free baseline).
    pub fn none() -> Self {
        Self::default()
    }

    /// Draws `count` faults of `category` at distinct random routers of
    /// `mesh`, deterministically from `seed`, assuming the paper's 3
    /// VCs per port (see [`FaultPlan::random_for_vcs`]).
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the node count.
    pub fn random(category: FaultCategory, count: usize, mesh: MeshConfig, seed: u64) -> Self {
        Self::random_for_vcs(category, count, mesh, seed, 3)
    }

    /// Like [`FaultPlan::random`], but buffer-fault VC slots are drawn
    /// from `0..2 * vcs_per_port` — the size of one RoCo module's VC
    /// pool (two ports' worth) — so non-default VC configurations never
    /// receive out-of-range buffer faults.
    ///
    /// # Panics
    ///
    /// Panics if `count` exceeds the node count or `vcs_per_port` is
    /// zero.
    pub fn random_for_vcs(
        category: FaultCategory,
        count: usize,
        mesh: MeshConfig,
        seed: u64,
        vcs_per_port: u8,
    ) -> Self {
        assert!(count <= mesh.nodes(), "more faults than routers");
        assert!(vcs_per_port > 0, "vcs_per_port must be > 0");
        let slots = 2 * vcs_per_port as u32;
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut nodes: Vec<usize> = (0..mesh.nodes()).collect();
        nodes.shuffle(&mut rng);
        let faults = nodes
            .into_iter()
            .take(count)
            .map(|idx| {
                let coord = Coord::from_index(idx, mesh.width);
                let component =
                    *category.components().choose(&mut rng).expect("categories are non-empty");
                let axis = if rng.gen_bool(0.5) { Axis::X } else { Axis::Y };
                let fault = if component == FaultComponent::VcBuffer {
                    ComponentFault::buffer(axis, rng.gen_range(0..slots) as u8)
                } else {
                    ComponentFault::new(component, axis)
                };
                (coord, fault)
            })
            .collect();
        FaultPlan { faults }
    }

    /// A single specific fault (useful in tests and examples).
    pub fn single(coord: Coord, fault: ComponentFault) -> Self {
        FaultPlan { faults: vec![(coord, fault)] }
    }

    /// Number of faulty routers.
    pub fn len(&self) -> usize {
        self.faults.len()
    }

    /// `true` when fault-free.
    pub fn is_empty(&self) -> bool {
        self.faults.is_empty()
    }

    /// The set of faulty router positions.
    pub fn sites(&self) -> Vec<Coord> {
        self.faults.iter().map(|(c, _)| *c).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn random_plan_is_deterministic() {
        let mesh = MeshConfig::new(8, 8);
        let a = FaultPlan::random(FaultCategory::Isolating, 4, mesh, 99);
        let b = FaultPlan::random(FaultCategory::Isolating, 4, mesh, 99);
        assert_eq!(a, b);
        let c = FaultPlan::random(FaultCategory::Isolating, 4, mesh, 100);
        assert_ne!(a, c, "different seeds should give different plans");
    }

    #[test]
    fn sites_are_distinct_and_in_mesh() {
        let mesh = MeshConfig::new(8, 8);
        let plan = FaultPlan::random(FaultCategory::Recyclable, 10, mesh, 5);
        let sites = plan.sites();
        let unique: std::collections::HashSet<_> = sites.iter().collect();
        assert_eq!(unique.len(), 10);
        for s in &sites {
            assert!(s.x < 8 && s.y < 8);
        }
    }

    #[test]
    fn components_respect_category() {
        let mesh = MeshConfig::new(8, 8);
        for seed in 0..20 {
            let plan = FaultPlan::random(FaultCategory::Isolating, 4, mesh, seed);
            for (_, f) in &plan.faults {
                assert!(FaultCategory::Isolating.components().contains(&f.component));
            }
            let plan = FaultPlan::random(FaultCategory::Recyclable, 4, mesh, seed);
            for (_, f) in &plan.faults {
                assert!(FaultCategory::Recyclable.components().contains(&f.component));
            }
        }
    }

    #[test]
    fn buffer_slots_respect_configured_vc_count() {
        let mesh = MeshConfig::new(8, 8);
        for seed in 0..50u64 {
            for vcs in [1u8, 2, 3, 5] {
                let plan = FaultPlan::random_for_vcs(FaultCategory::Recyclable, 8, mesh, seed, vcs);
                for (_, f) in &plan.faults {
                    if f.component == FaultComponent::VcBuffer {
                        assert!(f.vc < 2 * vcs, "slot {} out of range for {vcs} VCs/port", f.vc);
                    }
                }
            }
        }
    }

    #[test]
    fn random_matches_paper_vc_count() {
        // `random` must stay seed-compatible with the original 0..6
        // slot range (3 VCs/port), so every existing seeded experiment
        // keeps its exact fault set.
        let mesh = MeshConfig::new(8, 8);
        for seed in 0..20u64 {
            assert_eq!(
                FaultPlan::random(FaultCategory::Recyclable, 6, mesh, seed),
                FaultPlan::random_for_vcs(FaultCategory::Recyclable, 6, mesh, seed, 3),
            );
        }
    }

    #[test]
    #[should_panic(expected = "more faults than routers")]
    fn too_many_faults_panics() {
        let _ = FaultPlan::random(FaultCategory::Isolating, 17, MeshConfig::new(4, 4), 0);
    }

    #[test]
    fn helpers() {
        assert!(FaultPlan::none().is_empty());
        let single = FaultPlan::single(
            Coord::new(1, 1),
            ComponentFault::new(FaultComponent::Crossbar, Axis::X),
        );
        assert_eq!(single.len(), 1);
        assert_eq!(single.sites(), vec![Coord::new(1, 1)]);
    }
}
