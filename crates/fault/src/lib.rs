//! # noc-fault
//!
//! The paper's §4 fault model: Table-3 component classification, the
//! per-architecture reaction policy (Hardware Recycling for RoCo,
//! whole-node blocking for the baselines), and reproducible random
//! fault-injection plans for the Fig 11/12/14 experiments.
//!
//! # Examples
//!
//! ```
//! use noc_core::{FaultComponent, RouterKind};
//! use noc_fault::{reaction, Reaction};
//!
//! // A switch-allocator fault blocks a generic node outright, but the
//! // RoCo router offloads SA onto its idle VA arbiters (Fig 7).
//! assert_eq!(reaction(RouterKind::Generic, FaultComponent::SaArbiter), Reaction::NodeBlocked);
//! assert_eq!(reaction(RouterKind::RoCo, FaultComponent::SaArbiter), Reaction::SaOffload);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod classify;
mod plan;
mod schedule;

pub use classify::{
    classify, reaction, Centricity, FaultCategory, FaultClass, OperationRegime, Pathway, Reaction,
};
pub use plan::FaultPlan;
pub use schedule::{FaultAction, FaultEvent, FaultSchedule};
