//! Exhaustive property coverage for the §4.1 reaction policy
//! (`noc_fault::classify::reaction`): every `(RouterKind,
//! FaultComponent)` pair must yield a reaction consistent with
//! DESIGN.md §3, and only the RoCo router may ever answer with a
//! Hardware-Recycling reaction.

use noc_core::{FaultComponent, RouterKind};
use noc_fault::{classify, reaction, Centricity, FaultCategory, Pathway, Reaction};

/// `true` for the reactions that keep (part of) the router in service —
/// the Hardware-Recycling family plus module isolation.
fn is_recycling(r: Reaction) -> bool {
    !matches!(r, Reaction::NodeBlocked)
}

#[test]
fn every_pair_has_a_reaction_and_only_roco_recycles() {
    for router in RouterKind::ALL {
        for component in FaultComponent::ALL {
            let r = reaction(router, component);
            match router {
                RouterKind::Generic | RouterKind::PathSensitive => {
                    assert_eq!(
                        r,
                        Reaction::NodeBlocked,
                        "{router} must block the node on a {component:?} fault"
                    );
                }
                RouterKind::RoCo => {
                    assert!(
                        is_recycling(r),
                        "RoCo must never lose the whole node to one {component:?} fault"
                    );
                }
            }
        }
    }
}

#[test]
fn roco_reactions_match_design_section3_table() {
    // DESIGN.md §3 / paper §4.1: RC → Double Routing, VC buffer →
    // Virtual Queuing, SA → SA-on-VA offload, and the router-centric
    // critical components (VA, crossbar, MUX/DEMUX) → module isolation.
    use FaultComponent::*;
    let expected = [
        (RoutingComputation, Reaction::DoubleRouting),
        (VcBuffer, Reaction::VirtualQueuing),
        (VaArbiter, Reaction::ModuleBlocked),
        (SaArbiter, Reaction::SaOffload),
        (Crossbar, Reaction::ModuleBlocked),
        (MuxDemux, Reaction::ModuleBlocked),
    ];
    for (component, want) in expected {
        assert_eq!(reaction(RouterKind::RoCo, component), want, "{component:?}");
    }
}

#[test]
fn recyclable_category_gets_true_recycling_reactions_in_roco() {
    // The message-centric / non-critical components must map to the
    // three bypass schemes (not mere isolation); the isolating category
    // must map to module isolation.
    for &component in FaultCategory::Recyclable.components() {
        let r = reaction(RouterKind::RoCo, component);
        assert!(
            matches!(r, Reaction::DoubleRouting | Reaction::VirtualQueuing | Reaction::SaOffload),
            "{component:?} should be bypassed, got {r:?}"
        );
    }
    for &component in FaultCategory::Isolating.components() {
        assert_eq!(
            reaction(RouterKind::RoCo, component),
            Reaction::ModuleBlocked,
            "{component:?} should isolate one module"
        );
    }
}

#[test]
fn reactions_are_consistent_with_table3_classification() {
    // A component RoCo merely isolates (ModuleBlocked) must be on the
    // critical pathway or router-centric; every component RoCo bypasses
    // must be non-critical given the bypass path exists.
    for component in FaultComponent::ALL {
        let class = classify(component, true);
        match reaction(RouterKind::RoCo, component) {
            Reaction::ModuleBlocked => {
                assert!(
                    class.pathway == Pathway::Critical
                        || class.centricity == Centricity::RouterCentric,
                    "{component:?} was isolated despite being bypassable"
                );
            }
            Reaction::DoubleRouting | Reaction::VirtualQueuing | Reaction::SaOffload => {
                assert_eq!(
                    class.pathway,
                    Pathway::NonCritical,
                    "{component:?} was bypassed despite sitting on the critical pathway"
                );
            }
            Reaction::NodeBlocked => unreachable!("RoCo never blocks the node"),
        }
    }
}
