//! The topology matrix (ISSUE 9): the simulator's full oracle stack —
//! all four cycle kernels, the runtime invariant auditor, and digest
//! determinism — must hold on every supported topology, not just the
//! 2D mesh the paper evaluates. DESIGN.md §17 states the trait
//! contract these tests enforce.
//!
//! Each topology is exercised through [`noc_sim::retarget_topology`],
//! the same entry point CI's `NOC_TOPOLOGY` matrix uses, so a failure
//! here reproduces exactly what the matrix job would see.

use noc_core::{RouterKind, RoutingKind, TopologyConfig, TopologyOps};
use noc_sim::{retarget_topology, run, AuditConfig, KernelMode, SimConfig, SimResults};
use noc_traffic::TrafficKind;

/// The four matrix topologies, as CI draws them for an 8×8 base grid.
fn matrix() -> Vec<(&'static str, TopologyConfig)> {
    vec![
        ("mesh", TopologyConfig::Mesh),
        ("torus", TopologyConfig::Torus),
        ("circulant", TopologyConfig::Circulant { nodes: 13, s1: 1, s2: 5 }),
        (
            "chiplet",
            TopologyConfig::Chiplet {
                chips_x: 2,
                chips_y: 2,
                chip_width: 4,
                chip_height: 4,
                d2d_delay: 3,
            },
        ),
    ]
}

fn audited_cfg(topology: TopologyConfig) -> SimConfig {
    let mut cfg =
        SimConfig::paper_scaled(RouterKind::Generic, RoutingKind::Xy, TrafficKind::Uniform);
    cfg.warmup_packets = 50;
    cfg.measured_packets = 600;
    cfg.injection_rate = 0.1;
    cfg.seed = 0x7090_1064;
    cfg.audit = Some(AuditConfig { interval: 1, max_recorded: 8 });
    retarget_topology(&mut cfg, topology);
    cfg
}

fn all_kernels(cfg: &SimConfig) -> [(KernelMode, SimResults); 4] {
    [KernelMode::Reference, KernelMode::Optimized, KernelMode::Parallel, KernelMode::Soa].map(
        |kernel| {
            let mut c = cfg.clone();
            c.kernel = kernel;
            (kernel, run(c))
        },
    )
}

#[test]
fn four_kernels_agree_and_audit_clean_on_every_topology() {
    for (name, topology) in matrix() {
        let cfg = audited_cfg(topology);
        let results = all_kernels(&cfg);
        let (_, reference) = &results[0];
        assert!(reference.delivered_packets > 0, "{name}: no traffic delivered");
        for (kernel, res) in &results {
            let report = res.audit.as_ref().unwrap_or_else(|| panic!("{name}: no audit report"));
            assert!(report.clean(), "{name}/{kernel:?} audit violations:\n{}", report.render());
            assert_eq!(
                res.digest(),
                reference.digest(),
                "{name}: {kernel:?} digest diverges from reference"
            );
        }
    }
}

#[test]
fn runs_are_seed_deterministic_on_every_topology() {
    for (name, topology) in matrix() {
        let cfg = audited_cfg(topology);
        let a = run(cfg.clone());
        let b = run(cfg);
        assert_eq!(a.digest(), b.digest(), "{name}: same config, different digest");
    }
}

#[test]
fn chiplet_d2d_delay_slows_cross_die_traffic() {
    // The multi-cycle die-to-die links must actually cost cycles: the
    // same workload on the same stitched grid, with only the d2d delay
    // raised, must deliver everything at a strictly higher average
    // latency (uniform traffic guarantees boundary crossings).
    let chiplet = |d2d_delay| {
        audited_cfg(TopologyConfig::Chiplet {
            chips_x: 2,
            chips_y: 2,
            chip_width: 4,
            chip_height: 4,
            d2d_delay,
        })
    };
    let fast = run(chiplet(1));
    let slow = run(chiplet(5));
    assert_eq!(fast.dropped_packets, 0);
    assert_eq!(slow.dropped_packets, 0);
    assert!(
        fast.avg_latency < slow.avg_latency,
        "d2d delay 5 should be slower than 1: {} vs {}",
        slow.avg_latency,
        fast.avg_latency
    );
}

#[test]
fn retarget_snaps_grid_and_support_for_every_matrix_entry() {
    for (name, topology) in matrix() {
        let cfg = audited_cfg(topology);
        let topo = cfg.topology.resolve(cfg.mesh).expect("matrix topology resolves");
        assert_eq!(topo.grid(), cfg.mesh, "{name}: grid not snapped");
        topo.check_support(cfg.router, cfg.routing, cfg.router_config().vcs_per_port as usize)
            .unwrap_or_else(|e| panic!("{name}: unsupported after retarget: {e:?}"));
    }
}
