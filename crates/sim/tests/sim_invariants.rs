//! Simulator-level invariants (run in debug so the engine's
//! `debug_assert!`s — credit conservation, SA-with-credit — are armed).

use noc_core::{RouterKind, RoutingKind};
use noc_sim::{run, SimConfig, Simulation};
use noc_traffic::TrafficKind;

fn cfg(router: RouterKind) -> SimConfig {
    let mut cfg = SimConfig::paper_scaled(router, RoutingKind::Xy, TrafficKind::Uniform);
    cfg.warmup_packets = 100;
    cfg.measured_packets = 900;
    cfg.injection_rate = 0.2;
    cfg
}

#[test]
fn measurement_window_excludes_warmup() {
    let r = run(cfg(RouterKind::RoCo));
    assert_eq!(r.generated_packets, 1_000);
    assert_eq!(r.measured_injected, 900);
    assert_eq!(r.measured_delivered, 900);
    assert_eq!(r.delivered_packets, 1_000);
}

#[test]
fn latency_grows_with_load() {
    let lo = run(cfg(RouterKind::Generic).with_rate(0.05));
    let hi = run(cfg(RouterKind::Generic).with_rate(0.3));
    assert!(hi.avg_latency > lo.avg_latency);
    assert!(lo.avg_latency < 30.0, "zero-ish load latency should be small");
}

#[test]
fn max_latency_bounds_average() {
    let r = run(cfg(RouterKind::PathSensitive));
    assert!(r.max_latency as f64 >= r.avg_latency);
}

#[test]
fn stepping_api_matches_run() {
    let mut sim = Simulation::new(cfg(RouterKind::RoCo));
    while !sim.finished() {
        sim.step();
    }
    let stepped = sim.results();
    let ran = run(cfg(RouterKind::RoCo));
    assert_eq!(stepped.avg_latency, ran.avg_latency);
    assert_eq!(stepped.cycles, ran.cycles);
}

#[test]
fn max_cycles_is_a_hard_cap() {
    let mut c = cfg(RouterKind::Generic);
    c.max_cycles = 200;
    c.measured_packets = 1_000_000; // will never finish generating
    let r = run(c);
    assert_eq!(r.cycles, 200);
}

#[test]
fn counters_scale_with_traffic() {
    let small = run(cfg(RouterKind::RoCo));
    let mut big_cfg = cfg(RouterKind::RoCo);
    big_cfg.measured_packets = 2_900;
    let big = run(big_cfg);
    assert!(big.counters.buffer_writes > small.counters.buffer_writes);
    assert!(big.counters.link_traversals > small.counters.link_traversals);
    assert!(big.energy.total() > small.energy.total());
}

#[test]
fn every_router_kind_reports_activity() {
    for router in RouterKind::ALL {
        let r = run(cfg(router));
        assert!(r.counters.buffer_writes > 0, "{router}");
        assert!(r.counters.crossbar_traversals > 0, "{router}");
        assert!(r.counters.link_traversals > 0, "{router}");
        assert!(r.counters.rc_computations > 0, "{router}");
        assert!(r.counters.va_global_arbs > 0, "{router}");
        assert!(r.counters.sa_global_arbs > 0, "{router}");
        assert!(r.counters.cycles > 0, "{router}");
    }
}

#[test]
fn link_traversals_match_flit_hops() {
    // Each delivered flit crosses (hops) links; RoCo ejects at the
    // destination without an extra local hop. Verify the aggregate is
    // plausible: between 1× and the mesh diameter × flits.
    let r = run(cfg(RouterKind::RoCo));
    let flits = r.delivered_packets * 4;
    assert!(r.counters.link_traversals >= flits, "every flit crosses at least one link");
    assert!(r.counters.link_traversals <= flits * 14, "no flit can exceed the diameter");
}

#[test]
fn mpeg_and_selfsimilar_complete_on_all_routers() {
    for traffic in [TrafficKind::Mpeg, TrafficKind::SelfSimilar] {
        for router in RouterKind::ALL {
            let mut c = cfg(router);
            c.traffic = traffic;
            c.injection_rate = 0.15;
            let r = run(c);
            assert_eq!(r.completion_probability(), 1.0, "{router}/{traffic}");
        }
    }
}
