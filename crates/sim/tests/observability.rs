//! Observability must never change behaviour: the self-profiler and
//! the flow-class telemetry are strictly read-only with respect to the
//! simulated machine, so [`SimResults::digest`] is byte-identical with
//! profiling on or off under every kernel and thread count (DESIGN.md
//! §14). These tests also pin the flow-class surfaces — run results,
//! interval windows — and the SLO gate end to end.

use noc_core::{MeshConfig, RouterKind, RoutingKind};
use noc_sim::{
    check_slos, parse_slos, FlowClass, IntervalSample, KernelMode, MetricsSink, SimConfig,
    SimResults, Simulation,
};
use noc_traffic::TrafficKind;
use std::cell::RefCell;
use std::rc::Rc;

/// A metrics sink sharing its sample store with the test.
#[derive(Debug, Default)]
struct SharedMetrics(Rc<RefCell<Vec<IntervalSample>>>);

impl MetricsSink for SharedMetrics {
    fn record_sample(&mut self, sample: &IntervalSample) {
        self.0.borrow_mut().push(sample.clone());
    }
}

fn base() -> SimConfig {
    let mut cfg = SimConfig::paper_scaled(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform);
    cfg.mesh = MeshConfig::new(4, 4);
    cfg.warmup_packets = 50;
    cfg.measured_packets = 400;
    cfg.injection_rate = 0.15;
    cfg.seed = 0x0B5E;
    cfg
}

fn run_with(kernel: KernelMode, threads: Option<usize>, profile: bool) -> SimResults {
    let mut cfg = base();
    cfg.kernel = kernel;
    cfg.threads = threads;
    cfg.profile = profile;
    noc_sim::run(cfg)
}

/// The acceptance criterion of the profiler: enabling it changes
/// nothing about the simulated run, under all four kernels and at
/// several worker counts.
#[test]
fn digest_identical_with_profiling_on_or_off_across_kernels() {
    let legs: [(KernelMode, Option<usize>); 6] = [
        (KernelMode::Reference, None),
        (KernelMode::Optimized, None),
        (KernelMode::Parallel, Some(1)),
        (KernelMode::Parallel, Some(2)),
        (KernelMode::Parallel, Some(4)),
        (KernelMode::Soa, None),
    ];
    let baseline = run_with(KernelMode::Reference, None, false);
    assert!(baseline.profile.is_none(), "profiling off leaves no report");
    for (kernel, threads) in legs {
        let plain = run_with(kernel, threads, false);
        let profiled = run_with(kernel, threads, true);
        assert_eq!(
            plain.digest(),
            profiled.digest(),
            "{kernel:?} threads {threads:?}: profiling must not change results"
        );
        assert_eq!(
            baseline.digest(),
            profiled.digest(),
            "{kernel:?} threads {threads:?}: kernels must stay bit-identical while profiled"
        );
        let report = profiled.profile.expect("profiling on yields a report");
        assert_eq!(report.cycles, profiled.cycles, "the profiler saw every cycle");
        assert!(report.wall_s > 0.0);
        assert!(report.stepped_max as f64 >= report.stepped_mean);
        assert!(report.wake_fraction > 0.0 && report.wake_fraction <= 1.0);
        if kernel == KernelMode::Reference {
            assert_eq!(
                report.stepped_mean, 16.0,
                "the reference kernel steps every router every cycle"
            );
        }
        if kernel == KernelMode::Parallel && threads == Some(1) {
            assert_eq!(report.shard_imbalance, 1.0, "one shard is perfectly balanced");
        }
    }
}

/// Flow-class summaries appear in run results in `FlowClass::ALL`
/// order, their counts add up to the measured deliveries, and the
/// aggregate tail percentiles are ordered.
#[test]
fn class_percentiles_cover_the_measured_stream() {
    let r = run_with(KernelMode::Optimized, None, false);
    assert_eq!(r.classes.len(), FlowClass::ALL.len());
    for (slot, c) in FlowClass::ALL.iter().zip(&r.classes) {
        assert_eq!(c.class, *slot, "summaries are in reporting order");
    }
    let total: u64 = r.classes.iter().map(|c| c.count).sum();
    assert_eq!(total, r.measured_delivered, "every measured delivery is classified");
    // A 4x4 uniform workload exercises short and medium routes.
    assert!(r.classes[FlowClass::Near.index()].count > 0);
    assert!(r.classes[FlowClass::Mid.index()].count > 0);
    assert!(r.latency_p50 <= r.latency_p95);
    assert!(r.latency_p95 <= r.latency_p99);
    assert!(r.latency_p99 <= r.latency_p999);
    assert!(r.latency_p999 <= r.max_latency);
    for c in r.classes.iter().filter(|c| c.count > 0) {
        assert!(c.p50 <= c.p99 && c.p99 <= c.p999 && c.p999 <= c.max);
    }
}

/// Interval windows carry the same per-class summaries, and their
/// counts account for every delivery the window counted.
#[test]
fn interval_windows_carry_class_summaries() {
    let mut cfg = base();
    cfg.sample_window = 200;
    let samples = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Simulation::new(cfg);
    sim.set_metrics_sink(Box::new(SharedMetrics(Rc::clone(&samples))));
    while !sim.finished() {
        sim.step();
    }
    sim.finish_observability();
    let samples = samples.borrow();
    assert!(samples.len() > 1, "several windows elapsed");
    for s in samples.iter() {
        assert_eq!(s.classes.len(), FlowClass::ALL.len());
        let classified: u64 = s.classes.iter().map(|c| c.count).sum();
        assert_eq!(classified, s.delivered, "window {} classifies every delivery", s.window);
        for c in s.classes.iter().filter(|c| c.count > 0) {
            assert!(c.p99 <= c.p999 && c.p999 <= c.max);
            assert!(c.max <= s.latency_max);
        }
    }
}

/// The SLO machinery end to end: generous bounds pass, an impossible
/// bound reports the measured value, and an untrafficked class passes
/// vacuously.
#[test]
fn slo_gate_end_to_end() {
    let r = run_with(KernelMode::Optimized, None, false);
    let generous = parse_slos("all:p99<=1000000,near:max<=1000000,mean<=1000000").unwrap();
    assert!(check_slos(&generous, &r).is_empty());

    let impossible = parse_slos("all:p50<=0").unwrap();
    let violations = check_slos(&impossible, &r);
    assert_eq!(violations.len(), 1);
    assert_eq!(violations[0].observed, r.latency_p50 as f64);
    assert!(violations[0].to_string().contains("SLO violated"));

    // 0 hops: uniform traffic never sends a packet to its own node, so
    // the `local` class is empty and its clauses pass vacuously.
    assert_eq!(r.classes[FlowClass::Local.index()].count, 0);
    let vacuous = parse_slos("local:p999<=0").unwrap();
    assert!(check_slos(&vacuous, &r).is_empty());
}
