//! Thread-count invariance of the parallel kernel (DESIGN.md §13): the
//! digest of a run must not depend on how many workers stepped the
//! routers. Every config here is run under `KernelMode::Parallel` at
//! 1, 2, 4 and 8 threads — deliberately past the router count of the
//! smallest mesh, so the more-shards-than-work edge is covered — and
//! every digest must equal the single-threaded Optimized kernel's.
//!
//! This holds because Phase 3 routers are stepped from counter-based
//! RNG streams keyed on `(seed, router, cycle)` rather than a shared
//! sequential RNG, and because every shard's outputs are merged in
//! ascending router order regardless of which worker produced them.

use noc_core::{MeshConfig, RouterKind, RoutingKind};
use noc_fault::{FaultCategory, FaultPlan, FaultSchedule};
use noc_sim::{run, KernelMode, RecoveryConfig, SimConfig};
use noc_traffic::TrafficKind;

const THREADS: [usize; 4] = [1, 2, 4, 8];

fn assert_thread_invariant(mut cfg: SimConfig, what: &str) {
    // CI's topology matrix re-runs this suite on every topology; the
    // retarget remaps fault sites and (on wraparound topologies)
    // forces the supported router/routing/VC combination.
    noc_sim::apply_env_topology(&mut cfg);
    let mut optimized = cfg.clone();
    optimized.kernel = KernelMode::Optimized;
    let expect = run(optimized).digest();
    // The single-threaded data-oriented kernel must land on the same
    // digest too — it shares the wake-set bitset with the sharded
    // kernel, so checking it here keeps all digest cross-checks in one
    // failure message namespace.
    let mut soa = cfg.clone();
    soa.kernel = KernelMode::Soa;
    let got = run(soa).digest();
    assert_eq!(got, expect, "{what}: soa digest {got:#018x} != optimized {expect:#018x}");
    for threads in THREADS {
        let mut c = cfg.clone();
        c.kernel = KernelMode::Parallel;
        c.threads = Some(threads);
        let got = run(c).digest();
        assert_eq!(
            got, expect,
            "{what}: digest at {threads} thread(s) {got:#018x} != optimized {expect:#018x}"
        );
    }
}

#[test]
fn digest_is_thread_count_invariant_fault_free() {
    for router in [RouterKind::RoCo, RouterKind::Generic, RouterKind::PathSensitive] {
        let mut cfg = SimConfig::paper_scaled(router, RoutingKind::Xy, TrafficKind::Uniform);
        cfg.warmup_packets = 100;
        cfg.measured_packets = 1_000;
        cfg.injection_rate = 0.15;
        assert_thread_invariant(cfg, &format!("{router:?} fault-free"));
    }
}

#[test]
fn digest_is_thread_count_invariant_under_faults_and_recovery() {
    use noc_core::{Axis, ComponentFault, Coord, FaultComponent};
    let mut cfg = SimConfig::paper_scaled(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform);
    cfg.warmup_packets = 100;
    cfg.measured_packets = 1_000;
    cfg.injection_rate = 0.1;
    cfg.stall_window = 2_000;
    cfg.faults = FaultPlan::random(FaultCategory::Isolating, 2, cfg.mesh, 0x7EAD);
    let mut schedule = FaultSchedule::none();
    schedule.push_transient(
        300,
        Coord::new(1, 2),
        ComponentFault::new(FaultComponent::Crossbar, Axis::X),
        500,
    );
    schedule.push_permanent(800, Coord::new(2, 1), ComponentFault::buffer(Axis::Y, 0));
    let cfg = cfg.with_schedule(schedule).with_recovery(RecoveryConfig::default());
    assert_thread_invariant(cfg, "RoCo faults + schedule + recovery");
}

#[test]
fn digest_is_thread_count_invariant_on_tiny_and_odd_meshes() {
    // 2×2 (4 routers, fewer than 8 threads) and 5×3 (chunk sizes that
    // do not divide the router count) stress the shard-layout math.
    for (w, h) in [(2u16, 2u16), (5, 3)] {
        let mut cfg =
            SimConfig::paper_scaled(RouterKind::Generic, RoutingKind::Xy, TrafficKind::Uniform);
        cfg.mesh = MeshConfig::new(w, h);
        cfg.warmup_packets = 50;
        cfg.measured_packets = 500;
        cfg.injection_rate = 0.1;
        assert_thread_invariant(cfg, &format!("Generic {w}x{h}"));
    }
}
