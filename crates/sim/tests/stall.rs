//! Stall-detector and post-mortem integration: an induced wedge must
//! terminate the run promptly and produce a structured diagnosis.

use noc_core::{Axis, ComponentFault, Coord, FaultComponent, PacketId, RouterKind, RoutingKind};
use noc_fault::FaultPlan;
use noc_sim::{json::Json, SimConfig, Simulation};
use noc_traffic::{ReplayTraffic, TrafficKind};

/// One packet from (0,1) to (3,1) under XY routing, with router (2,1)
/// killed by a crossbar fault and the blocked-packet watchdog disabled:
/// the packet wedges permanently en route, which must trip the stall
/// detector.
fn wedged_config() -> (SimConfig, ReplayTraffic) {
    let mut cfg =
        SimConfig::paper_scaled(RouterKind::Generic, RoutingKind::Xy, TrafficKind::Uniform);
    cfg.mesh = noc_core::MeshConfig::new(4, 4);
    cfg.warmup_packets = 0;
    cfg.measured_packets = 1;
    cfg.stall_window = 100;
    cfg.max_cycles = 5_000;
    cfg.block_timeout = Some(u64::MAX);
    cfg.faults =
        FaultPlan::single(Coord::new(2, 1), ComponentFault::new(FaultComponent::Crossbar, Axis::X));
    let flits = cfg.router_config().num_flits;
    let traffic =
        ReplayTraffic::new(cfg.mesh, vec![(0, Coord::new(0, 1), Coord::new(3, 1))], flits);
    (cfg, traffic)
}

#[test]
fn induced_wedge_trips_the_detector_within_the_stall_window() {
    let (cfg, traffic) = wedged_config();
    let max_cycles = cfg.max_cycles;
    let results = Simulation::with_traffic(cfg, Box::new(traffic)).run();
    assert!(results.stalled, "the wedged packet must trip the stall detector");
    assert_eq!(results.delivered_packets, 0);
    assert!(
        results.cycles < 500,
        "detector fires ~stall_window cycles after the last progress, not at \
         max_cycles ({max_cycles}); took {}",
        results.cycles
    );
    // Satellite: with zero deliveries, energy-per-packet must be a
    // clean 0.0, not a division by zero.
    assert_eq!(results.energy_per_packet, 0.0);
    assert!(results.energy_per_packet.is_finite());
}

#[test]
fn stall_emits_a_structured_postmortem() {
    let (cfg, traffic) = wedged_config();
    let mut sim = Simulation::with_traffic(cfg, Box::new(traffic));
    while !sim.finished() {
        sim.step();
    }
    sim.finish_observability();
    let pm = sim.postmortem().expect("stalled run captures a post-mortem").clone();
    let results = sim.results();
    assert_eq!(results.postmortem.as_ref(), Some(&pm), "results carry the same diagnosis");

    assert!(!pm.wedged.is_empty(), "the stuck packet appears in the wedged list");
    assert!(
        pm.wedged.iter().any(|w| w.packet == Some(PacketId(0))),
        "packet 0 is identified: {:?}",
        pm.wedged
    );
    assert!(pm.wedged.iter().all(|w| w.buffered > 0));
    assert!(!pm.routers.is_empty(), "routers holding flits are diagnosed");
    assert!(!pm.credit_map.is_empty(), "the credit map is captured");
    assert!(
        pm.suspected_loop.is_none(),
        "fault blocking is a chain, not a wait-for cycle: {:?}",
        pm.suspected_loop
    );
    assert!(pm.flits_in_system > 0);
    assert!(pm.cycle > pm.last_progress);

    let text = pm.render();
    assert!(text.contains("stall post-mortem"));
    assert!(text.contains("pkt 0"));
    assert!(text.contains("not a deadlock"));

    let json = Json::parse(&pm.to_json()).expect("post-mortem serializes to valid JSON");
    assert!(!json.get("wedged").unwrap().as_arr().unwrap().is_empty());
}

#[test]
fn postmortem_diagnoses_unroutable_destinations() {
    // The usual wedge — the packet blocks at (1,1) behind the faulted
    // crossbar at (2,1) — plus a mid-run schedule that kills the
    // destination node (3,1) completely at cycle 50, long after the
    // packet is stuck. With `fault_routing` on, the rebuilt
    // reachability map proves the wedged stream can never arrive, and
    // the stall post-mortem must carry the ISSUE 8 `unroutable
    // destination` diagnosis for it.
    use noc_fault::FaultSchedule;
    let (mut cfg, traffic) = wedged_config();
    cfg.fault_routing = true;
    let mut schedule = FaultSchedule::none();
    for axis in [Axis::X, Axis::Y] {
        schedule.push_permanent(
            50,
            Coord::new(3, 1),
            ComponentFault::new(FaultComponent::Crossbar, axis),
        );
    }
    let cfg = cfg.with_schedule(schedule);
    let mut sim = Simulation::with_traffic(cfg, Box::new(traffic));
    while !sim.finished() {
        sim.step();
    }
    sim.finish_observability();
    let pm = sim.postmortem().expect("the blocked packet must trip the stall detector").clone();

    let w = pm
        .wedged
        .iter()
        .find(|w| w.unroutable_dst)
        .expect("a wedged stream is classified as heading to an unroutable destination");
    assert_eq!(w.dst, Some(Coord::new(3, 1)), "the dead destination is named");

    let text = pm.render();
    assert!(text.contains("unroutable destination (3,1)"), "diagnosis rendered: {text}");

    let json = Json::parse(&pm.to_json()).expect("post-mortem serializes to valid JSON");
    let wedged = json.get("wedged").unwrap().as_arr().unwrap();
    assert!(
        wedged.iter().any(|w| w.get("unroutable_dst") == Some(&Json::Bool(true))),
        "JSON carries the unroutable_dst flag"
    );
}

#[test]
fn clean_runs_carry_no_postmortem() {
    let mut cfg = SimConfig::paper_scaled(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform);
    cfg.warmup_packets = 10;
    cfg.measured_packets = 100;
    cfg.injection_rate = 0.1;
    let results = noc_sim::run(cfg);
    assert!(!results.stalled);
    assert!(results.postmortem.is_none());
}
