//! Interval-sampler integration: windows tile the run exactly, their
//! deltas add up to the run totals, and the new pipeline probes are
//! live in all three router microarchitectures.

use noc_core::{RouterKind, RoutingKind};
use noc_sim::{IntervalSample, MetricsSink, SimConfig, Simulation};
use noc_traffic::TrafficKind;
use std::cell::RefCell;
use std::rc::Rc;

/// A sink sharing its sample store with the test.
#[derive(Debug, Default)]
struct Shared(Rc<RefCell<Vec<IntervalSample>>>);

impl MetricsSink for Shared {
    fn record_sample(&mut self, sample: &IntervalSample) {
        self.0.borrow_mut().push(sample.clone());
    }
}

/// An 8x8 transpose run pushed well past saturation, so buffers fill,
/// VA requests fail and credits run out at every architecture.
fn saturated_run(router: RouterKind) -> (noc_sim::SimResults, Vec<IntervalSample>) {
    let mut cfg = SimConfig::paper_scaled(router, RoutingKind::Xy, TrafficKind::Transpose);
    cfg.warmup_packets = 100;
    cfg.measured_packets = 1_500;
    cfg.injection_rate = 0.45;
    cfg.sample_window = 100;
    let store = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Simulation::new(cfg);
    sim.set_metrics_sink(Box::new(Shared(Rc::clone(&store))));
    while !sim.finished() {
        sim.step();
    }
    sim.finish_observability();
    let results = sim.results();
    drop(sim);
    (results, Rc::try_unwrap(store).expect("sole owner").into_inner())
}

#[test]
fn windows_tile_the_run_and_deltas_sum_to_the_totals() {
    let (results, samples) = saturated_run(RouterKind::RoCo);
    assert!(samples.len() > 2, "a multi-thousand-cycle run spans many 100-cycle windows");
    for (i, s) in samples.iter().enumerate() {
        assert_eq!(s.window, i as u64, "windows arrive in order");
        assert!(s.cycle_end > s.cycle_start);
        if i > 0 {
            assert_eq!(s.cycle_start, samples[i - 1].cycle_end, "windows are gap-free");
        }
        assert_eq!(s.routers.len(), 64, "one entry per router");
        if s.delivered > 0 {
            assert!(s.latency_mean > 0.0);
            assert!(s.latency_p99 <= s.latency_max);
        }
    }
    assert_eq!(samples[0].cycle_start, 0);
    assert_eq!(samples.last().unwrap().cycle_end, results.cycles, "the final window is flushed");
    let delivered: u64 = samples.iter().map(|s| s.delivered).sum();
    assert_eq!(delivered, results.delivered_packets, "window deltas add up");
    let generated: u64 = samples.iter().map(|s| s.generated).sum();
    assert_eq!(generated, results.generated_packets);
    let per_router_delivered: u64 =
        samples.iter().flat_map(|s| s.routers.iter().map(|r| r.delivered)).sum();
    assert_eq!(per_router_delivered, results.delivered_packets);
}

#[test]
fn pipeline_probes_fire_in_every_router_architecture() {
    for router in RouterKind::ALL {
        let (results, samples) = saturated_run(router);
        assert!(
            results.counters.occupancy_high_water > 0,
            "{router}: buffers held flits at some point"
        );
        assert!(
            results.counters.va_failures > 0,
            "{router}: a saturated network must see failed VA requests"
        );
        assert!(
            results.counters.credit_stall_cycles > 0,
            "{router}: a saturated network must see credit starvation"
        );
        let window_va: u64 =
            samples.iter().flat_map(|s| s.routers.iter().map(|r| r.va_failures)).sum();
        assert_eq!(window_va, results.counters.va_failures, "VA-failure deltas add up");
        let window_stalls: u64 =
            samples.iter().flat_map(|s| s.routers.iter().map(|r| r.credit_stall_cycles)).sum();
        assert_eq!(
            window_stalls, results.counters.credit_stall_cycles,
            "credit-stall deltas add up"
        );
        assert!(
            samples.iter().any(|s| s.routers.iter().any(|r| r.occupancy > 0)),
            "{router}: instantaneous occupancy visible in some window"
        );
    }
}
