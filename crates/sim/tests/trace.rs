//! Trace-sink integration: every packet's lifecycle is observable and
//! self-consistent.

use noc_core::{Coord, RouterKind, RoutingKind};
use noc_sim::{SimConfig, Simulation, TraceEvent, VecTraceSink};
use noc_traffic::TrafficKind;
use std::collections::HashMap;

/// A sink sharing its event store with the test through `Rc<RefCell>`.
#[derive(Debug, Default)]
struct Shared(std::rc::Rc<std::cell::RefCell<Vec<TraceEvent>>>);

impl noc_sim::TraceSink for Shared {
    fn record(&mut self, event: TraceEvent) {
        self.0.borrow_mut().push(event);
    }
}

fn traced_run() -> Vec<TraceEvent> {
    let store = std::rc::Rc::new(std::cell::RefCell::new(Vec::new()));
    let mut cfg = SimConfig::paper_scaled(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform);
    cfg.warmup_packets = 20;
    cfg.measured_packets = 200;
    cfg.injection_rate = 0.15;
    let mut sim = Simulation::new(cfg);
    sim.set_trace_sink(Box::new(Shared(store.clone())));
    while !sim.finished() {
        sim.step();
    }
    drop(sim);
    std::rc::Rc::try_unwrap(store).expect("sole owner").into_inner()
}

#[test]
fn vec_sink_round_trips_through_the_simulation() {
    let mut cfg = SimConfig::paper_scaled(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform);
    cfg.warmup_packets = 5;
    cfg.measured_packets = 50;
    cfg.injection_rate = 0.1;
    let mut sim = Simulation::new(cfg);
    sim.set_trace_sink(Box::new(VecTraceSink::new()));
    for _ in 0..50 {
        sim.step();
    }
    assert!(sim.take_trace_sink().is_some());
    assert!(sim.take_trace_sink().is_none(), "sink can only be taken once");
}

#[test]
fn every_packet_has_a_complete_lifecycle() {
    let events = traced_run();
    assert!(!events.is_empty());
    let mut generated = HashMap::new();
    let mut injected = HashMap::new();
    let mut delivered = HashMap::new();
    let mut hops: HashMap<_, u64> = HashMap::new();
    for e in &events {
        match e {
            TraceEvent::Generated { packet, src, dst, .. } => {
                generated.insert(*packet, (*src, *dst));
            }
            TraceEvent::Injected { packet, node, .. } => {
                injected.insert(*packet, *node);
            }
            TraceEvent::Delivered { packet, latency, .. } => {
                delivered.insert(*packet, *latency);
            }
            TraceEvent::Hop { packet, .. } => *hops.entry(*packet).or_default() += 1,
            TraceEvent::Dropped { .. }
            | TraceEvent::Unroutable { .. }
            | TraceEvent::Fault { .. }
            | TraceEvent::Repair { .. } => {}
        }
    }
    assert_eq!(generated.len(), 220, "every generated packet traced");
    assert_eq!(delivered.len(), 220, "fault-free: all delivered");
    for (packet, (src, dst)) in &generated {
        assert_eq!(injected.get(packet), Some(src), "{packet} injected at its source");
        assert!(delivered.contains_key(packet), "{packet} delivered");
        // 4 flits x manhattan hops each (RoCo ejects without a local hop).
        let expected = 4 * src.manhattan_distance(*dst) as u64;
        assert_eq!(hops.get(packet), Some(&expected), "{packet} hop count");
    }
}

#[test]
fn events_are_causally_ordered_per_packet() {
    let events = traced_run();
    let mut last_stage: HashMap<_, u8> = HashMap::new();
    let mut last_cycle: HashMap<_, u64> = HashMap::new();
    for e in &events {
        let stage = match e {
            TraceEvent::Generated { .. } => 0,
            TraceEvent::Injected { .. } => 1,
            TraceEvent::Hop { .. } => 2,
            TraceEvent::Delivered { .. }
            | TraceEvent::Dropped { .. }
            | TraceEvent::Unroutable { .. } => 3,
            TraceEvent::Fault { .. } | TraceEvent::Repair { .. } => continue,
        };
        let p = e.packet().expect("packet lifecycle event");
        let prev = last_stage.insert(p, stage).unwrap_or(0);
        assert!(stage >= prev || stage == 2, "stage regression for {p}");
        let prev_cycle = last_cycle.insert(p, e.cycle()).unwrap_or(0);
        assert!(e.cycle() >= prev_cycle, "time regression for {p}");
    }
}

#[test]
fn hop_trace_follows_a_contiguous_path() {
    let events = traced_run();
    // For each packet, head-flit hops must form a connected path from
    // src to the destination's neighbour.
    let mut paths: HashMap<_, Vec<Coord>> = HashMap::new();
    let mut dsts = HashMap::new();
    for e in &events {
        match e {
            TraceEvent::Generated { packet, dst, .. } => {
                dsts.insert(*packet, *dst);
            }
            TraceEvent::Hop { packet, seq: 0, node, .. } => {
                paths.entry(*packet).or_default().push(*node);
            }
            _ => {}
        }
    }
    for (packet, path) in paths {
        for pair in path.windows(2) {
            assert_eq!(
                pair[0].manhattan_distance(pair[1]),
                1,
                "{packet}: head hops must be adjacent"
            );
        }
        let dst = dsts[&packet];
        let last = *path.last().unwrap();
        assert_eq!(last.manhattan_distance(dst), 1, "{packet}: last hop borders the destination");
    }
}
