//! Cycle-kernel equivalence: the wake-set kernel
//! (`KernelMode::Optimized`), the sharded kernel
//! (`KernelMode::Parallel`) and the data-oriented kernel
//! (`KernelMode::Soa`) must produce bit-identical results to the
//! reference kernel that steps every router every cycle, for every
//! architecture, with and without faults. DESIGN.md §10, §13 and §15
//! state the invariants these tests enforce.
//!
//! The parallel legs deliberately leave `threads: None` so the worker
//! count comes from `NOC_THREADS` / the machine — CI runs this suite
//! under several `NOC_THREADS` values, exercising different shard
//! layouts against the same expected digests.
//!
//! The suite is also topology-generic: CI's topology matrix re-runs it
//! under `NOC_TOPOLOGY={mesh,torus,circulant,chiplet}`. Every config
//! funnels through [`all_kernels`], which retargets it via
//! [`noc_sim::apply_env_topology`] — remapping fault sites onto the
//! selected topology's node set and forcing the supported
//! router/routing/VC combination on wraparound topologies — so the
//! four-kernel digest-equality oracle runs unchanged on all four.

use noc_core::{MeshConfig, RouterKind, RoutingKind};
use noc_fault::{FaultCategory, FaultPlan};
use noc_sim::{run, KernelMode, SimConfig, SimResults};
use noc_traffic::TrafficKind;

fn cfg(router: RouterKind, rate: f64) -> SimConfig {
    let mut cfg = SimConfig::paper_scaled(router, RoutingKind::Xy, TrafficKind::Uniform);
    cfg.warmup_packets = 100;
    cfg.measured_packets = 1_500;
    cfg.injection_rate = rate;
    cfg
}

/// Field-by-field bitwise comparison (floats by bit pattern, so even
/// ULP-level divergence fails loudly with the field name).
fn assert_identical(a: &SimResults, b: &SimResults, what: &str) {
    assert_eq!(a.cycles, b.cycles, "{what}: cycles");
    assert_eq!(a.generated_packets, b.generated_packets, "{what}: generated");
    assert_eq!(a.injected_packets, b.injected_packets, "{what}: injected");
    assert_eq!(a.measured_injected, b.measured_injected, "{what}: measured_injected");
    assert_eq!(a.delivered_packets, b.delivered_packets, "{what}: delivered");
    assert_eq!(a.measured_delivered, b.measured_delivered, "{what}: measured_delivered");
    assert_eq!(a.dropped_packets, b.dropped_packets, "{what}: dropped");
    assert_eq!(a.avg_latency.to_bits(), b.avg_latency.to_bits(), "{what}: avg_latency");
    assert_eq!(a.max_latency, b.max_latency, "{what}: max_latency");
    assert_eq!(a.latency_p50, b.latency_p50, "{what}: p50");
    assert_eq!(a.latency_p95, b.latency_p95, "{what}: p95");
    assert_eq!(a.latency_p99, b.latency_p99, "{what}: p99");
    assert_eq!(a.throughput.to_bits(), b.throughput.to_bits(), "{what}: throughput");
    assert_eq!(a.counters, b.counters, "{what}: activity counters");
    assert_eq!(a.contention, b.contention, "{what}: contention counters");
    assert_eq!(a.energy.total().to_bits(), b.energy.total().to_bits(), "{what}: energy");
    assert_eq!(
        a.energy_per_packet.to_bits(),
        b.energy_per_packet.to_bits(),
        "{what}: energy_per_packet"
    );
    assert_eq!(a.stalled, b.stalled, "{what}: stalled");
    assert_eq!(a.postmortem.is_some(), b.postmortem.is_some(), "{what}: postmortem presence");
    assert_eq!(a.recovery, b.recovery, "{what}: recovery stats");
}

fn all_kernels(mut cfg: SimConfig) -> (SimResults, SimResults, SimResults, SimResults) {
    noc_sim::apply_env_topology(&mut cfg);
    let mut reference = cfg.clone();
    reference.kernel = KernelMode::Reference;
    let mut optimized = cfg.clone();
    optimized.kernel = KernelMode::Optimized;
    let mut parallel = cfg.clone();
    parallel.kernel = KernelMode::Parallel;
    let mut soa = cfg;
    soa.kernel = KernelMode::Soa;
    (run(reference), run(optimized), run(parallel), run(soa))
}

#[test]
fn kernels_agree_fault_free() {
    for router in [RouterKind::RoCo, RouterKind::Generic, RouterKind::PathSensitive] {
        for rate in [0.05, 0.25] {
            let (r, o, p, s) = all_kernels(cfg(router, rate));
            assert_identical(&r, &o, &format!("{router:?} @ {rate} (optimized)"));
            assert_identical(&r, &p, &format!("{router:?} @ {rate} (parallel)"));
            assert_identical(&r, &s, &format!("{router:?} @ {rate} (soa)"));
            assert!(o.delivered_packets > 0, "{router:?} @ {rate}: sanity");
        }
    }
}

#[test]
fn kernels_agree_under_faults() {
    for router in [RouterKind::RoCo, RouterKind::Generic, RouterKind::PathSensitive] {
        let mut c = cfg(router, 0.1);
        c.faults = FaultPlan::random(FaultCategory::Isolating, 2, c.mesh, 0xFA_17);
        c.stall_window = 2_000;
        let (r, o, p, s) = all_kernels(c);
        assert_identical(&r, &o, &format!("{router:?} with faults (optimized)"));
        assert_identical(&r, &p, &format!("{router:?} with faults (parallel)"));
        assert_identical(&r, &s, &format!("{router:?} with faults (soa)"));
    }
}

#[test]
fn kernels_agree_with_midrun_fault_schedules() {
    use noc_core::{Axis, ComponentFault, Coord, FaultComponent};
    use noc_fault::FaultSchedule;
    for router in [RouterKind::RoCo, RouterKind::Generic, RouterKind::PathSensitive] {
        for seed in [3u64, 0xBEEF] {
            // A transient crossbar fault that heals mid-run plus a
            // permanent buffer fault landing later: every kernel must
            // walk the §4.1 handshake, purges and retransmissions in
            // lockstep.
            let mut schedule = FaultSchedule::none();
            schedule.push_transient(
                400,
                Coord::new(1, 1),
                ComponentFault::new(FaultComponent::Crossbar, Axis::X),
                600,
            );
            schedule.push_permanent(900, Coord::new(2, 0), ComponentFault::buffer(Axis::Y, 1));
            let mut c = cfg(router, 0.1)
                .with_seed(seed)
                .with_schedule(schedule)
                .with_recovery(noc_sim::RecoveryConfig::default());
            c.stall_window = 2_000;
            let (r, o, p, s) = all_kernels(c);
            assert_identical(
                &r,
                &o,
                &format!("{router:?} mid-run schedule seed {seed} (optimized)"),
            );
            assert_identical(
                &r,
                &p,
                &format!("{router:?} mid-run schedule seed {seed} (parallel)"),
            );
            assert_identical(&r, &s, &format!("{router:?} mid-run schedule seed {seed} (soa)"));
        }
    }
}

#[test]
fn kernels_agree_with_fault_aware_rerouting_midrun() {
    use noc_core::{Axis, ComponentFault, Coord, FaultComponent};
    use noc_fault::FaultSchedule;
    for router in [RouterKind::RoCo, RouterKind::Generic] {
        for seed in [7u64, 0xF00D] {
            // Node (2,2) dies transiently and node (1,0) dies for good
            // (both crossbar axes → node-dead). With `fault_routing` on,
            // every republication rebuilds the link mask and the
            // reachability map, live packets take masked adaptive routes
            // around the holes and traffic toward the dead node is
            // refused as `unroutable` — and all four kernels must do all
            // of it in lockstep, bit for bit.
            let mut schedule = FaultSchedule::none();
            for axis in [Axis::X, Axis::Y] {
                schedule.push_transient(
                    500,
                    Coord::new(2, 2),
                    ComponentFault::new(FaultComponent::Crossbar, axis),
                    700,
                );
                schedule.push_permanent(
                    900,
                    Coord::new(1, 0),
                    ComponentFault::new(FaultComponent::Crossbar, axis),
                );
            }
            let mut c =
                SimConfig::paper_scaled(router, RoutingKind::Adaptive, TrafficKind::Uniform)
                    .with_seed(seed)
                    .with_schedule(schedule)
                    .with_recovery(noc_sim::RecoveryConfig::default())
                    .with_fault_routing();
            c.warmup_packets = 100;
            c.measured_packets = 1_500;
            c.injection_rate = 0.1;
            c.stall_window = 2_000;
            // The topology matrix forces dimension-ordered XY (with
            // dateline VCs) on wraparound topologies, so the
            // adaptive-reroute semantics below only hold where the
            // adaptive function survives retargeting; the four-kernel
            // digest oracle runs everywhere regardless.
            let mut probe = c.clone();
            noc_sim::apply_env_topology(&mut probe);
            let adaptive_survives = probe.routing == RoutingKind::Adaptive;
            let (r, o, p, s) = all_kernels(c);
            assert_identical(&r, &o, &format!("{router:?} fault-aware seed {seed} (optimized)"));
            assert_identical(&r, &p, &format!("{router:?} fault-aware seed {seed} (parallel)"));
            assert_identical(&r, &s, &format!("{router:?} fault-aware seed {seed} (soa)"));
            assert_eq!(r.digest(), o.digest(), "{router:?} fault-aware seed {seed}: digest");
            assert_eq!(r.digest(), p.digest(), "{router:?} fault-aware seed {seed}: digest");
            assert_eq!(r.digest(), s.digest(), "{router:?} fault-aware seed {seed}: digest");
            // The permanently dead node must actually refuse traffic and
            // the ISSUE 8 accounting identity must close on the drained
            // run: delivered + abandoned + unroutable == generated.
            if adaptive_survives {
                assert!(!r.stalled, "{router:?} seed {seed}: fault-aware run must drain");
                let rec = r.recovery.expect("fault routing exposes recovery stats");
                assert!(
                    rec.unroutable_packets > 0,
                    "{router:?} seed {seed}: dead node must refuse packets"
                );
                assert_eq!(
                    r.delivered_packets + rec.abandoned_packets + rec.unroutable_packets,
                    r.generated_packets,
                    "{router:?} seed {seed}: unroutable accounting must balance"
                );
            }
        }
    }
}

#[test]
fn kernels_agree_across_seeds_and_meshes() {
    for seed in [1u64, 0xDEAD] {
        let mut c = cfg(RouterKind::RoCo, 0.15).with_seed(seed);
        c.mesh = MeshConfig::new(5, 4);
        let (r, o, p, s) = all_kernels(c);
        assert_identical(&r, &o, &format!("RoCo 5x4 seed {seed} (optimized)"));
        assert_identical(&r, &p, &format!("RoCo 5x4 seed {seed} (parallel)"));
        assert_identical(&r, &s, &format!("RoCo 5x4 seed {seed} (soa)"));
    }
}

#[test]
fn neighbor_table_matches_coordinate_arithmetic() {
    // Exhaustive over every mesh shape from 2×2 to 9×7: the
    // precomputed table must agree with `Coord::neighbor` for every
    // node and direction (ISSUE: the tables replace the per-cycle
    // neighbour recomputation, so any divergence silently rewires the
    // mesh).
    use noc_core::{Coord, Direction};
    for width in 2u16..=9 {
        for height in 2u16..=7 {
            let mesh = MeshConfig::new(width, height);
            let table = noc_sim::neighbor_table(mesh);
            assert_eq!(table.len(), mesh.nodes());
            for (i, row) in table.iter().enumerate() {
                let coord = Coord::from_index(i, width);
                for dir in Direction::MESH {
                    let expect = coord.neighbor(dir, width, height).map(|n| n.index(width));
                    assert_eq!(row[dir.index()], expect, "{width}x{height} node {i} dir {dir}");
                }
            }
        }
    }
}
