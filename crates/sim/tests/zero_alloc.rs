//! Steady-state allocation check: once every recycled buffer has
//! reached its high-water capacity, `Simulation::step` must not touch
//! the heap at all. A counting global allocator is armed after a
//! warm-up period and every allocation/reallocation is counted.
//!
//! This file must hold exactly one test: the `#[global_allocator]` is
//! binary-wide, and a sibling test running on another thread would
//! pollute the count.

use noc_core::{RouterKind, RoutingKind};
use noc_sim::{KernelMode, SimConfig, Simulation};
use noc_traffic::TrafficKind;
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};

static ARMED: AtomicBool = AtomicBool::new(false);
static PANIC_ON_ALLOC: AtomicBool = AtomicBool::new(false);
static ALLOCS: AtomicUsize = AtomicUsize::new(0);

struct CountingAlloc;

// SAFETY: delegates verbatim to `System`; the only extra work is a
// relaxed counter bump, which allocates nothing.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            if PANIC_ON_ALLOC.load(Ordering::Relaxed) && ARMED.swap(false, Ordering::SeqCst) {
                panic!("steady-state allocation of {} bytes", layout.size());
            }
        }
        System.alloc(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        if ARMED.load(Ordering::Relaxed) {
            ALLOCS.fetch_add(1, Ordering::Relaxed);
            if PANIC_ON_ALLOC.load(Ordering::Relaxed) && ARMED.swap(false, Ordering::SeqCst) {
                panic!("steady-state reallocation to {new_size} bytes");
            }
        }
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_step_is_allocation_free() {
    PANIC_ON_ALLOC.store(std::env::var_os("NOC_ALLOC_PANIC").is_some(), Ordering::SeqCst);
    // The parallel leg is pinned to one worker: a single shard runs
    // inline on the calling thread (no `thread::scope`, which allocates
    // its scope state on every call), so it exercises the recycled
    // `ShardScratch` path. Multi-thread digests are covered by the
    // kernel-equivalence and thread-invariance suites instead.
    // All four kernels: the flit slab backs the VC rings everywhere,
    // so every leg also proves the flit path itself never allocates
    // (a flit hop is an index move inside the pre-sized slab).
    for (kernel, threads) in [
        (KernelMode::Reference, None),
        (KernelMode::Optimized, None),
        (KernelMode::Parallel, Some(1)),
        (KernelMode::Soa, None),
    ] {
        for router in [RouterKind::RoCo, RouterKind::Generic, RouterKind::PathSensitive] {
            let mut cfg = SimConfig::paper_scaled(router, RoutingKind::Xy, TrafficKind::Uniform);
            // Enough packets that generation never finishes mid-test.
            cfg.warmup_packets = 1_000_000;
            cfg.measured_packets = 1_000_000;
            cfg.injection_rate = 0.1;
            cfg.kernel = kernel;
            cfg.threads = threads;
            let mut sim = Simulation::new(cfg);
            // The slab is sized once at construction: nominal VC depth
            // plus the 2-slot poison slop per ring (DESIGN.md §18).
            let slab_bytes = sim.slab().footprint_bytes();
            let slab_slots = sim.slab().slot_count();
            assert!(sim.slab().ring_caps().iter().all(|&c| c >= 2), "+2 slop missing");
            // Warm-up: let every recycled buffer (in-flight lists, router
            // scratch, source queues, arbiter lines) hit its high water.
            for _ in 0..5_000 {
                sim.step();
            }
            ALLOCS.store(0, Ordering::SeqCst);
            ARMED.store(true, Ordering::SeqCst);
            for _ in 0..1_000 {
                sim.step();
            }
            ARMED.store(false, Ordering::SeqCst);
            let n = ALLOCS.load(Ordering::SeqCst);
            assert_eq!(
                n, 0,
                "{kernel:?}/{router:?}: {n} heap allocation(s) in 1000 steady-state cycles"
            );
            assert_eq!(
                (sim.slab().footprint_bytes(), sim.slab().slot_count()),
                (slab_bytes, slab_slots),
                "{kernel:?}/{router:?}: slab grew after construction"
            );
        }
    }
}
