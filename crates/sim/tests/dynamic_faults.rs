//! Mid-run fault/repair behaviour: a transient fault must dent the
//! per-window delivered throughput while active and the network must
//! measurably recover after the repair, with the end-to-end
//! retransmission layer winning back packets the fault destroyed
//! (ISSUE PR 3 acceptance scenario; all runs seeded and deterministic).

use noc_core::{Axis, ComponentFault, Coord, FaultComponent, MeshConfig, RouterKind, RoutingKind};
use noc_fault::FaultSchedule;
use noc_sim::{
    IntervalSample, MetricsSink, RecoveryConfig, SimConfig, SimResults, Simulation, TraceEvent,
    TraceSink,
};
use noc_traffic::TrafficKind;
use std::cell::RefCell;
use std::rc::Rc;

/// A metrics sink sharing its sample store with the test.
#[derive(Debug, Default)]
struct SharedMetrics(Rc<RefCell<Vec<IntervalSample>>>);

impl MetricsSink for SharedMetrics {
    fn record_sample(&mut self, sample: &IntervalSample) {
        self.0.borrow_mut().push(sample.clone());
    }
}

/// A trace sink sharing its event store with the test.
#[derive(Debug, Default)]
struct SharedTrace(Rc<RefCell<Vec<TraceEvent>>>);

impl TraceSink for SharedTrace {
    fn record(&mut self, event: TraceEvent) {
        self.0.borrow_mut().push(event);
    }
}

const FAULT_AT: u64 = 1_000;
const REPAIR_AT: u64 = 3_000;

/// Two routers lose both axis modules (node-dead) at `FAULT_AT` and
/// heal at `REPAIR_AT`: packets to and through them are discarded
/// while the fault is active.
fn scenario() -> SimConfig {
    let mut schedule = FaultSchedule::none();
    for site in [Coord::new(1, 1), Coord::new(2, 2)] {
        for axis in [Axis::X, Axis::Y] {
            schedule.push_transient(
                FAULT_AT,
                site,
                ComponentFault::new(FaultComponent::Crossbar, axis),
                REPAIR_AT - FAULT_AT,
            );
        }
    }
    let mut cfg = SimConfig::paper_scaled(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform);
    cfg.mesh = MeshConfig::new(4, 4);
    cfg.warmup_packets = 100;
    cfg.measured_packets = 4_000;
    cfg.injection_rate = 0.2;
    cfg.sample_window = 250;
    cfg.stall_window = 5_000;
    cfg.with_schedule(schedule).with_recovery(RecoveryConfig {
        timeout: 150,
        max_retries: 6,
        backoff_cap: 1_200,
    })
}

fn run_scenario() -> (SimResults, Vec<IntervalSample>) {
    let store = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Simulation::new(scenario());
    sim.set_metrics_sink(Box::new(SharedMetrics(store.clone())));
    while !sim.finished() {
        sim.step();
    }
    sim.finish_observability();
    let results = sim.results();
    drop(sim);
    (results, Rc::try_unwrap(store).expect("sole owner").into_inner())
}

/// Mean delivered packets per window over the windows lying entirely
/// inside `[from, to)`.
fn mean_delivered(samples: &[IntervalSample], from: u64, to: u64) -> f64 {
    let picked: Vec<u64> = samples
        .iter()
        .filter(|s| s.cycle_start >= from && s.cycle_end <= to)
        .map(|s| s.delivered)
        .collect();
    assert!(!picked.is_empty(), "no complete windows in [{from}, {to})");
    picked.iter().sum::<u64>() as f64 / picked.len() as f64
}

#[test]
fn transient_fault_dents_then_restores_window_throughput() {
    let (results, samples) = run_scenario();
    assert!(!results.stalled, "the healed network must drain cleanly");
    // Skip the first window (cold start) and the windows straddling the
    // fault edges; compare steady-state bands.
    let healthy = mean_delivered(&samples, 250, FAULT_AT);
    let faulted = mean_delivered(&samples, FAULT_AT + 250, REPAIR_AT);
    let healed = mean_delivered(&samples, REPAIR_AT + 250, 4_500);
    assert!(
        faulted < 0.9 * healthy,
        "two dead routers must dent throughput: healthy {healthy}, faulted {faulted}"
    );
    assert!(healed > faulted, "repair must restore throughput: faulted {faulted}, healed {healed}");
    assert!(
        healed > 0.75 * healthy,
        "healed throughput must approach the healthy band: healthy {healthy}, healed {healed}"
    );
}

#[test]
fn retransmission_recovers_packets_lost_to_the_fault() {
    let (results, samples) = run_scenario();
    let recovery = results.recovery.expect("recovery layer enabled");
    assert!(recovery.retransmissions >= 1, "the fault must force retransmissions");
    assert!(recovery.recovered_packets >= 1, "at least one retry must get through");
    assert!(results.dropped_packets >= 1, "the fault must destroy at least one attempt");
    // Every generated packet is resolved exactly once: delivered (first
    // copy) or abandoned after the retry budget. Late duplicates are
    // suppressed, drop events count per attempt.
    assert_eq!(
        results.delivered_packets + recovery.abandoned_packets,
        results.generated_packets,
        "per-packet accounting must balance"
    );
    // The fault/repair timeline reaches the interval metrics: 4 inject
    // + 4 repair events (2 sites x 2 axes).
    let fault_events: u64 = samples.iter().map(|s| s.fault_events).sum();
    assert_eq!(fault_events, 8, "all schedule events surface in the metrics windows");
}

#[test]
fn fault_and_repair_events_reach_the_trace() {
    let store = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Simulation::new(scenario());
    sim.set_trace_sink(Box::new(SharedTrace(store.clone())));
    while !sim.finished() {
        sim.step();
    }
    sim.finish_observability();
    drop(sim);
    let events = Rc::try_unwrap(store).expect("sole owner").into_inner();
    let faults = events.iter().filter(|e| matches!(e, TraceEvent::Fault { .. })).count();
    let repairs = events.iter().filter(|e| matches!(e, TraceEvent::Repair { .. })).count();
    assert_eq!(faults, 4, "4 injections traced");
    assert_eq!(repairs, 4, "4 repairs traced");
    for e in &events {
        if let TraceEvent::Fault { cycle, .. } = e {
            assert_eq!(*cycle, FAULT_AT);
        }
        if let TraceEvent::Repair { cycle, .. } = e {
            assert_eq!(*cycle, REPAIR_AT);
        }
    }
}

/// A mid-run permanent node death (both crossbar axes) at each `site`.
fn node_death(sites: &[Coord], at: u64) -> FaultSchedule {
    let mut schedule = FaultSchedule::none();
    for &site in sites {
        for axis in [Axis::X, Axis::Y] {
            schedule.push_permanent(at, site, ComponentFault::new(FaultComponent::Crossbar, axis));
        }
    }
    schedule
}

/// Shared scenario for the ISSUE 8 reachability tests: adaptive
/// routing on a 4x4 mesh; at cycle 1000 a wall of three nodes dies
/// down column x=1 (only (1,3) survives). A single interior hole is
/// routable with the always-on one-hop §4.1 status checks alone, so
/// the wall is what separates the fault-aware layer from the
/// oblivious baseline: eastbound packets must take the masked
/// west-first *escape* detour through row y=3, which needs the global
/// link mask. The slow handshake keeps sources injecting toward the
/// dead nodes for a while (those packets must be short-circuited at
/// their next timeout instead of burning retries), and the tight
/// retry budget makes wasted attempts toward the wall cost real
/// delivered coverage.
fn reachability_scenario(fault_aware: bool) -> SimConfig {
    let wall = [Coord::new(1, 0), Coord::new(1, 1), Coord::new(1, 2)];
    let mut cfg =
        SimConfig::paper_scaled(RouterKind::RoCo, RoutingKind::Adaptive, TrafficKind::Uniform);
    cfg.mesh = MeshConfig::new(4, 4);
    cfg.warmup_packets = 100;
    cfg.measured_packets = 3_000;
    cfg.injection_rate = 0.15;
    cfg.stall_window = 5_000;
    cfg.handshake_latency = 100;
    cfg.fault_routing = fault_aware;
    cfg.with_schedule(node_death(&wall, 1_000)).with_recovery(RecoveryConfig {
        timeout: 150,
        max_retries: 2,
        backoff_cap: 1_200,
    })
}

#[test]
fn unreachable_destinations_fail_fast_as_unroutable() {
    let mut sim = Simulation::new(reachability_scenario(true));
    while !sim.finished() {
        sim.step();
    }
    let results = sim.results();
    assert!(!results.stalled, "the fault-aware network must drain around the dead node");
    let recovery = results.recovery.expect("recovery + fault routing expose stats");
    assert!(
        recovery.unroutable_packets > 0,
        "uniform traffic toward the dead node must be refused at the source"
    );
    // The ISSUE 8 accounting identity: every generated packet resolves
    // exactly once, as delivered, abandoned or unroutable.
    assert_eq!(
        results.delivered_packets + recovery.abandoned_packets + recovery.unroutable_packets,
        results.generated_packets,
        "unroutable packets must stay inside the conservation identity"
    );
}

#[test]
fn retries_toward_dead_destinations_are_short_circuited() {
    // The short-circuit leg fires for packets already in flight (and
    // outstanding at the source NI) when their destination dies: the
    // trace must show `Unroutable` events for packets that were
    // injected before the death, proving the retry loop was cut rather
    // than burned down to `max_retries`.
    let store = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Simulation::new(reachability_scenario(true));
    sim.set_trace_sink(Box::new(SharedTrace(store.clone())));
    while !sim.finished() {
        sim.step();
    }
    drop(sim);
    let events = Rc::try_unwrap(store).expect("sole owner").into_inner();
    let injected: std::collections::HashSet<_> = events
        .iter()
        .filter_map(|e| match e {
            TraceEvent::Injected { packet, .. } => Some(*packet),
            _ => None,
        })
        .collect();
    let short_circuited = events
        .iter()
        .filter(|e| match e {
            TraceEvent::Unroutable { packet, .. } => injected.contains(packet),
            _ => false,
        })
        .count();
    let refused_at_source = events
        .iter()
        .filter(|e| match e {
            TraceEvent::Unroutable { packet, .. } => !injected.contains(packet),
            _ => false,
        })
        .count();
    assert!(
        short_circuited > 0,
        "at least one in-flight packet must be short-circuited when its destination dies"
    );
    assert!(
        refused_at_source > 0,
        "packets generated after the death must be refused before injection"
    );
}

#[test]
fn fault_aware_routing_retains_more_delivered_coverage() {
    let run = |fault_aware: bool| {
        let mut sim = Simulation::new(reachability_scenario(fault_aware));
        while !sim.finished() {
            sim.step();
        }
        sim.results()
    };
    let aware = run(true);
    let oblivious = run(false);
    // Identical traffic and fault timeline; the only difference is the
    // ISSUE 8 routing layer. Fault-aware must retain strictly more
    // delivered coverage than the fault-oblivious baseline.
    assert_eq!(aware.generated_packets, oblivious.generated_packets, "same offered load");
    assert!(
        aware.delivered_packets > oblivious.delivered_packets,
        "fault-aware must deliver more: aware {} vs oblivious {}",
        aware.delivered_packets,
        oblivious.delivered_packets
    );
    // And it gets there with less wasted work: the reachability map
    // stops retry storms toward the dead node instead of burning the
    // full retry budget per packet.
    let aware_rec = aware.recovery.expect("stats exposed");
    let oblivious_rec = oblivious.recovery.expect("stats exposed");
    assert!(
        aware_rec.retransmissions < oblivious_rec.retransmissions,
        "short-circuiting must cut retransmissions: aware {} vs oblivious {}",
        aware_rec.retransmissions,
        oblivious_rec.retransmissions
    );
    assert_eq!(oblivious_rec.unroutable_packets, 0, "oblivious runs never refuse packets");
}

#[test]
fn dynamic_runs_are_deterministic_per_seed() {
    let (a, _) = run_scenario();
    let (b, _) = run_scenario();
    assert_eq!(a.generated_packets, b.generated_packets);
    assert_eq!(a.delivered_packets, b.delivered_packets);
    assert_eq!(a.dropped_packets, b.dropped_packets);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.avg_latency.to_bits(), b.avg_latency.to_bits());
    assert_eq!(a.recovery, b.recovery);
    assert_eq!(a.counters, b.counters);
}
