//! Trace-exporter integration: the JSONL and Perfetto writers must
//! produce parseable documents whose events respect packet causality.

use noc_core::{RouterKind, RoutingKind};
use noc_sim::json::Json;
use noc_sim::{JsonlTraceSink, PerfettoTraceSink, SimConfig, Simulation};
use noc_traffic::TrafficKind;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// A byte buffer shared between the boxed sink and the test.
#[derive(Debug, Clone, Default)]
struct SharedBuf(Rc<RefCell<Vec<u8>>>);

impl std::io::Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.borrow_mut().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn small_config() -> SimConfig {
    let mut cfg = SimConfig::paper_scaled(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform);
    cfg.warmup_packets = 20;
    cfg.measured_packets = 200;
    cfg.injection_rate = 0.15;
    cfg
}

fn run_with_sink(sink: Box<dyn noc_sim::TraceSink>) -> (noc_sim::SimResults, ()) {
    let mut sim = Simulation::new(small_config());
    sim.set_trace_sink(sink);
    while !sim.finished() {
        sim.step();
    }
    sim.finish_observability();
    (sim.results(), ())
}

#[test]
fn jsonl_export_round_trips_with_causal_event_ordering() {
    let buf = SharedBuf::default();
    let (results, ()) = run_with_sink(Box::new(JsonlTraceSink::new(buf.clone())));
    let text = String::from_utf8(buf.0.borrow().clone()).unwrap();
    assert!(!text.is_empty());

    // (generated, injected, last_hop, delivered) cycles per packet.
    let mut timeline: HashMap<u64, [Option<u64>; 4]> = HashMap::new();
    let mut lines = 0u64;
    for line in text.lines() {
        lines += 1;
        let v = Json::parse(line).expect("every line is a standalone JSON document");
        let cycle = v.get("cycle").unwrap().as_u64().unwrap();
        let packet = v.get("packet").unwrap().as_u64().unwrap();
        let slot = match v.get("event").unwrap().as_str().unwrap() {
            "generated" => 0,
            "injected" => 1,
            "hop" => 2,
            "delivered" | "dropped" => 3,
            other => panic!("unknown event kind '{other}'"),
        };
        let entry = timeline.entry(packet).or_default();
        entry[slot] = Some(entry[slot].map_or(cycle, |c: u64| c.max(cycle)));
    }
    assert!(
        lines >= 3 * results.generated_packets,
        "at least generated/injected/delivered per packet: {lines} lines"
    );
    assert_eq!(timeline.len() as u64, results.generated_packets);
    for (packet, [generated, injected, hop, delivered]) in &timeline {
        let g = generated.expect("generated");
        let i = injected.expect("injected");
        let d = delivered.expect("fault-free: delivered");
        assert!(g <= i, "packet {packet}: generated {g} <= injected {i}");
        if let Some(h) = hop {
            assert!(i <= *h, "packet {packet}: injected {i} <= last hop {h}");
            assert!(*h <= d, "packet {packet}: last hop {h} <= delivered {d}");
        }
        assert!(i <= d, "packet {packet}: injected {i} <= delivered {d}");
    }
}

#[test]
fn perfetto_export_is_valid_chrome_trace_json_with_paired_events() {
    let buf = SharedBuf::default();
    let sink = PerfettoTraceSink::new(buf.clone()).expect("preamble write");
    let (results, ()) = run_with_sink(Box::new(sink));
    let text = String::from_utf8(buf.0.borrow().clone()).unwrap();

    let doc = Json::parse(&text).expect("the whole document is one JSON object");
    let events = doc.get("traceEvents").expect("Chrome trace container").as_arr().unwrap();
    assert!(!events.is_empty());

    let mut begins: HashMap<String, u64> = HashMap::new();
    let mut ends: HashMap<String, u64> = HashMap::new();
    for e in events {
        let ph = e.get("ph").unwrap().as_str().unwrap();
        let id = e.get("id").unwrap().as_str().unwrap().to_string();
        assert_eq!(e.get("cat").unwrap().as_str(), Some("packet"));
        let ts = e.get("ts").unwrap().as_u64().expect("timestamps are non-negative");
        assert!(ts <= results.cycles, "event time within the run");
        match ph {
            "b" => *begins.entry(id).or_default() += 1,
            "e" => *ends.entry(id).or_default() += 1,
            "n" => {}
            other => panic!("unexpected phase '{other}'"),
        }
    }
    assert_eq!(begins.len() as u64, results.generated_packets, "one async track per packet");
    assert_eq!(begins, ends, "every begin is closed exactly once");
    assert!(begins.values().all(|&n| n == 1));
}
