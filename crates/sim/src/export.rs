//! The unified metrics exporter registry.
//!
//! Every observability surface of the simulator — run statistics,
//! per-flow-class latency summaries, energy/PEF breakdowns, recovery
//! accounting, audit counters, interval windows and profiler gauges —
//! registers its values once as [`Metric`] samples, and the registry
//! renders them to either Prometheus text exposition
//! ([`Registry::render_prometheus`], the `--prom-out` flag) or the
//! workspace's hand-rolled JSONL ([`Registry::render_jsonl`]). The
//! campaign server of ROADMAP item 3 consumes this scrape surface
//! unchanged: one registrar call per result, two render calls, no
//! serde.
//!
//! Prometheus names are sanitized to `[a-zA-Z_:][a-zA-Z0-9_:]*` and
//! label values escaped per the text-exposition rules (`\\`, `\"`,
//! `\n`); the JSONL side reuses [`crate::json`]'s escaping. Both are
//! covered by golden-string tests.

use crate::json::{write_f64, write_key, write_str};
use crate::metrics::IntervalSample;
use crate::profile::ProfileReport;
use crate::stats::SimResults;
use std::fmt::Write as _;

/// Prometheus metric type of a registered sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically accumulated count (events, packets, cycles).
    Counter,
    /// Point-in-time or derived value (latency, ratios, seconds).
    Gauge,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword.
    pub fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
        }
    }
}

/// One registered metric sample: a name, kind, help text, ordered
/// label set and value.
#[derive(Debug, Clone, PartialEq)]
pub struct Metric {
    /// Metric family name (sanitized on render).
    pub name: String,
    /// Counter or gauge.
    pub kind: MetricKind,
    /// One-line help text (first registration of a family wins).
    pub help: String,
    /// Ordered `(key, value)` label pairs.
    pub labels: Vec<(String, String)>,
    /// Sample value.
    pub value: f64,
}

/// An ordered collection of metric samples with Prometheus and JSONL
/// renderers. Registration order is preserved; families with several
/// samples (different label sets) are grouped on render.
#[derive(Debug, Clone, Default)]
pub struct Registry {
    metrics: Vec<Metric>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a counter sample.
    pub fn counter(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push(MetricKind::Counter, name, help, labels, value);
    }

    /// Registers a gauge sample.
    pub fn gauge(&mut self, name: &str, help: &str, labels: &[(&str, &str)], value: f64) {
        self.push(MetricKind::Gauge, name, help, labels, value);
    }

    fn push(
        &mut self,
        kind: MetricKind,
        name: &str,
        help: &str,
        labels: &[(&str, &str)],
        value: f64,
    ) {
        self.metrics.push(Metric {
            name: name.to_string(),
            kind,
            help: help.to_string(),
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            value,
        });
    }

    /// The registered samples, in registration order.
    pub fn metrics(&self) -> &[Metric] {
        &self.metrics
    }

    /// Number of registered samples.
    pub fn len(&self) -> usize {
        self.metrics.len()
    }

    /// True when nothing has been registered.
    pub fn is_empty(&self) -> bool {
        self.metrics.is_empty()
    }

    /// Renders the registry in the Prometheus text exposition format:
    /// one `# HELP` / `# TYPE` header per metric family (first
    /// registration wins), samples grouped by family in first-
    /// registration order.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        let mut done: Vec<&str> = Vec::new();
        for m in &self.metrics {
            if done.iter().any(|n| *n == m.name) {
                continue;
            }
            done.push(&m.name);
            let name = sanitize_name(&m.name);
            let _ = writeln!(
                out,
                "# HELP {name} {}",
                m.help.replace('\\', "\\\\").replace('\n', "\\n")
            );
            let _ = writeln!(out, "# TYPE {name} {}", m.kind.as_str());
            for s in self.metrics.iter().filter(|s| s.name == m.name) {
                out.push_str(&name);
                if !s.labels.is_empty() {
                    out.push('{');
                    for (i, (k, v)) in s.labels.iter().enumerate() {
                        if i > 0 {
                            out.push(',');
                        }
                        let _ = write!(out, "{}=\"{}\"", sanitize_name(k), escape_label(v));
                    }
                    out.push('}');
                }
                let _ = writeln!(out, " {}", s.value);
            }
        }
        out
    }

    /// Renders the registry as JSONL: one JSON object per sample, in
    /// registration order, using the workspace's hand-rolled writer
    /// (non-finite values become `null`).
    pub fn render_jsonl(&self) -> String {
        let mut out = String::new();
        for m in &self.metrics {
            let mut first = true;
            out.push('{');
            write_key(&mut out, &mut first, "metric");
            write_str(&mut out, &m.name);
            write_key(&mut out, &mut first, "kind");
            write_str(&mut out, m.kind.as_str());
            write_key(&mut out, &mut first, "labels");
            out.push('{');
            let mut lf = true;
            for (k, v) in &m.labels {
                write_key(&mut out, &mut lf, k);
                write_str(&mut out, v);
            }
            out.push('}');
            write_key(&mut out, &mut first, "value");
            write_f64(&mut out, m.value);
            out.push('}');
            out.push('\n');
        }
        out
    }
}

/// Maps an arbitrary string onto the Prometheus name charset
/// `[a-zA-Z_:][a-zA-Z0-9_:]*` (offending characters become `_`; an
/// empty input becomes `_`).
pub fn sanitize_name(name: &str) -> String {
    if name.is_empty() {
        return "_".to_string();
    }
    name.chars()
        .enumerate()
        .map(|(i, c)| match c {
            'a'..='z' | 'A'..='Z' | '_' | ':' => c,
            '0'..='9' if i > 0 => c,
            _ => '_',
        })
        .collect()
}

/// Escapes a Prometheus label value: `\` → `\\`, `"` → `\"`,
/// newline → `\n`.
pub fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Registers every run-level statistic of `results` under the given
/// base labels: core packet/latency stats, per-flow-class percentiles
/// (label `class`), the energy breakdown (label `component`), PEF
/// (only when defined — a run that delivered nothing has no PEF),
/// recovery accounting and audit counters when present.
pub fn export_results(reg: &mut Registry, results: &SimResults, labels: &[(&str, &str)]) {
    let c = |v: u64| v as f64;
    reg.counter("noc_cycles", "Cycles simulated.", labels, c(results.cycles));
    reg.counter(
        "noc_generated_packets",
        "Packets offered by the traffic model.",
        labels,
        c(results.generated_packets),
    );
    reg.counter(
        "noc_injected_packets",
        "Packets whose head entered the network.",
        labels,
        c(results.injected_packets),
    );
    reg.counter(
        "noc_measured_injected_packets",
        "Measured-window injections.",
        labels,
        c(results.measured_injected),
    );
    reg.counter(
        "noc_delivered_packets",
        "Packets fully delivered.",
        labels,
        c(results.delivered_packets),
    );
    reg.counter(
        "noc_measured_delivered_packets",
        "Measured-window deliveries.",
        labels,
        c(results.measured_delivered),
    );
    reg.counter(
        "noc_dropped_packets",
        "Packets discarded by fault handling.",
        labels,
        c(results.dropped_packets),
    );
    reg.gauge(
        "noc_latency_avg_cycles",
        "Mean measured end-to-end latency.",
        labels,
        results.avg_latency,
    );
    reg.gauge(
        "noc_latency_max_cycles",
        "Largest measured latency.",
        labels,
        c(results.max_latency),
    );
    for (q, v) in [
        ("p50", results.latency_p50),
        ("p95", results.latency_p95),
        ("p99", results.latency_p99),
        ("p999", results.latency_p999),
    ] {
        let mut with_q = labels.to_vec();
        with_q.push(("quantile", q));
        reg.gauge("noc_latency_cycles", "Measured latency quantiles.", &with_q, c(v));
    }
    for cl in &results.classes {
        let mut with_class = labels.to_vec();
        with_class.push(("class", cl.class.name()));
        reg.counter(
            "noc_class_delivered_packets",
            "Measured deliveries per flow class.",
            &with_class,
            c(cl.count),
        );
        reg.gauge(
            "noc_class_latency_mean_cycles",
            "Mean measured latency per flow class.",
            &with_class,
            cl.mean,
        );
        reg.gauge(
            "noc_class_latency_max_cycles",
            "Largest measured latency per flow class.",
            &with_class,
            c(cl.max),
        );
        for (q, v) in [("p50", cl.p50), ("p95", cl.p95), ("p99", cl.p99), ("p999", cl.p999)] {
            let mut with_q = with_class.clone();
            with_q.push(("quantile", q));
            reg.gauge(
                "noc_class_latency_cycles",
                "Measured latency quantiles per flow class.",
                &with_q,
                c(v),
            );
        }
    }
    reg.gauge("noc_throughput", "Delivered flits per node per cycle.", labels, results.throughput);
    reg.gauge(
        "noc_completion_probability",
        "Measured deliveries over measured injections.",
        labels,
        results.completion_probability(),
    );
    for (component, joules) in [
        ("buffers", results.energy.buffers),
        ("crossbar", results.energy.crossbar),
        ("arbitration", results.energy.arbitration),
        ("routing", results.energy.routing),
        ("links", results.energy.links),
        ("leakage", results.energy.leakage),
    ] {
        let mut with_c = labels.to_vec();
        with_c.push(("component", component));
        reg.counter("noc_energy_joules", "Energy by router component.", &with_c, joules);
    }
    reg.counter("noc_energy_total_joules", "Total network energy.", labels, results.energy.total());
    reg.gauge(
        "noc_energy_per_packet_joules",
        "Total energy over delivered packets.",
        labels,
        results.energy_per_packet,
    );
    let completion = results.completion_probability();
    if completion > 0.0 && completion <= 1.0 {
        reg.gauge(
            "noc_pef",
            "Performance-energy-fault product metric.",
            labels,
            results.pef_inputs().pef(),
        );
    }
    reg.gauge(
        "noc_stalled",
        "1 when the run ended on the stall detector.",
        labels,
        results.stalled as u64 as f64,
    );
    if let Some(rec) = results.recovery {
        reg.counter(
            "noc_retransmissions",
            "Source retransmissions issued.",
            labels,
            c(rec.retransmissions),
        );
        reg.counter(
            "noc_recovered_packets",
            "Packets delivered by a retry.",
            labels,
            c(rec.recovered_packets),
        );
        reg.counter(
            "noc_abandoned_packets",
            "Packets given up after the retry budget.",
            labels,
            c(rec.abandoned_packets),
        );
        reg.counter(
            "noc_duplicates_suppressed",
            "Late duplicates suppressed at sinks.",
            labels,
            c(rec.duplicates_suppressed),
        );
    }
    if let Some(audit) = &results.audit {
        reg.counter("noc_audit_checks", "Audit sweeps executed.", labels, c(audit.checks_run));
        reg.counter(
            "noc_audit_flits_observed",
            "Link transfers seen by per-flit checks.",
            labels,
            c(audit.flits_observed),
        );
        reg.counter(
            "noc_audit_violations",
            "Invariant violations detected.",
            labels,
            c(audit.total_violations),
        );
        for &(kind, count) in &audit.counts {
            let mut with_k = labels.to_vec();
            with_k.push(("kind", kind.label()));
            reg.counter(
                "noc_audit_violations_by_kind",
                "Invariant violations per kind.",
                &with_k,
                c(count),
            );
        }
    }
}

/// Registers one interval window's network-wide statistics and
/// per-class latency summaries. Base labels should identify the run;
/// a `window` label carrying the window index is added to every
/// sample.
pub fn export_interval(reg: &mut Registry, sample: &IntervalSample, labels: &[(&str, &str)]) {
    let window = sample.window.to_string();
    let mut with_w = labels.to_vec();
    with_w.push(("window", &window));
    let c = |v: u64| v as f64;
    reg.gauge(
        "noc_window_start_cycle",
        "First cycle of the window.",
        &with_w,
        c(sample.cycle_start),
    );
    reg.gauge(
        "noc_window_end_cycle",
        "One past the last cycle of the window.",
        &with_w,
        c(sample.cycle_end),
    );
    reg.gauge(
        "noc_window_generated_packets",
        "Packets generated in the window.",
        &with_w,
        c(sample.generated),
    );
    reg.gauge(
        "noc_window_injected_packets",
        "Packets injected in the window.",
        &with_w,
        c(sample.injected),
    );
    reg.gauge(
        "noc_window_delivered_packets",
        "Packets delivered in the window.",
        &with_w,
        c(sample.delivered),
    );
    reg.gauge(
        "noc_window_dropped_packets",
        "Flits dropped in the window.",
        &with_w,
        c(sample.dropped),
    );
    reg.gauge(
        "noc_window_latency_mean_cycles",
        "Mean window latency.",
        &with_w,
        sample.latency_mean,
    );
    reg.gauge(
        "noc_window_latency_max_cycles",
        "Largest window latency.",
        &with_w,
        c(sample.latency_max),
    );
    for (q, v) in [("p99", sample.latency_p99), ("p999", sample.latency_p999)] {
        let mut with_q = with_w.clone();
        with_q.push(("quantile", q));
        reg.gauge("noc_window_latency_cycles", "Window latency quantiles.", &with_q, c(v));
    }
    reg.gauge(
        "noc_window_throughput",
        "Delivered flits per node per cycle.",
        &with_w,
        sample.throughput(),
    );
    reg.gauge(
        "noc_window_flits_in_system",
        "Flits in flight at the sample instant.",
        &with_w,
        c(sample.flits_in_system),
    );
    reg.gauge(
        "noc_window_fault_events",
        "Fault/repair events in the window.",
        &with_w,
        c(sample.fault_events),
    );
    for cl in &sample.classes {
        let mut with_class = with_w.clone();
        with_class.push(("class", cl.class.name()));
        reg.gauge(
            "noc_window_class_delivered_packets",
            "Window deliveries per flow class.",
            &with_class,
            c(cl.count),
        );
        for (q, v) in [("p50", cl.p50), ("p99", cl.p99), ("p999", cl.p999)] {
            let mut with_q = with_class.clone();
            with_q.push(("quantile", q));
            reg.gauge(
                "noc_window_class_latency_cycles",
                "Window latency quantiles per flow class.",
                &with_q,
                c(v),
            );
        }
    }
}

/// Registers the self-profiler gauges of one run.
pub fn export_profile(reg: &mut Registry, profile: &ProfileReport, labels: &[(&str, &str)]) {
    reg.counter(
        "noc_profile_cycles",
        "Cycles the profiler observed.",
        labels,
        profile.cycles as f64,
    );
    reg.gauge("noc_profile_wall_seconds", "Wall time of the run.", labels, profile.wall_s);
    for (phase, seconds) in [
        ("faults", profile.faults_s),
        ("links", profile.links_s),
        ("traffic", profile.traffic_s),
        ("routers", profile.routers_s),
        ("audit", profile.audit_s),
        ("metrics", profile.metrics_s),
    ] {
        let mut with_p = labels.to_vec();
        with_p.push(("phase", phase));
        reg.gauge("noc_profile_phase_seconds", "Wall time per step phase.", &with_p, seconds);
    }
    reg.gauge(
        "noc_profile_absorb_seconds",
        "Parallel-kernel merge time.",
        labels,
        profile.absorb_s,
    );
    reg.gauge(
        "noc_profile_stepped_mean",
        "Mean routers stepped per cycle.",
        labels,
        profile.stepped_mean,
    );
    reg.gauge(
        "noc_profile_stepped_max",
        "Max routers stepped in one cycle.",
        labels,
        profile.stepped_max as f64,
    );
    reg.gauge(
        "noc_profile_wake_fraction",
        "Wake-set occupancy as a mesh fraction.",
        labels,
        profile.wake_fraction,
    );
    reg.gauge(
        "noc_profile_shard_imbalance",
        "Mean busiest-shard load over mean shard load.",
        labels,
        profile.shard_imbalance,
    );
    reg.gauge(
        "noc_profile_capacity_growth_events",
        "Steady-state in-flight buffer capacity growths.",
        labels,
        profile.capacity_growth_events as f64,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn prometheus_exposition_golden() {
        let mut reg = Registry::new();
        reg.counter(
            "noc_delivered_packets",
            "Packets fully delivered.",
            &[("router", "roco")],
            1234.0,
        );
        reg.counter(
            "noc_delivered_packets",
            "Packets fully delivered.",
            &[("router", "generic")],
            90.0,
        );
        reg.gauge("noc_latency_avg_cycles", "Mean latency.", &[], 18.25);
        let text = reg.render_prometheus();
        let expected = "# HELP noc_delivered_packets Packets fully delivered.\n\
                        # TYPE noc_delivered_packets counter\n\
                        noc_delivered_packets{router=\"roco\"} 1234\n\
                        noc_delivered_packets{router=\"generic\"} 90\n\
                        # HELP noc_latency_avg_cycles Mean latency.\n\
                        # TYPE noc_latency_avg_cycles gauge\n\
                        noc_latency_avg_cycles 18.25\n";
        assert_eq!(text, expected);
    }

    #[test]
    fn prometheus_escapes_names_and_label_values() {
        let mut reg = Registry::new();
        reg.gauge("9bad name-with.dots", "h", &[("mesh size", "8x8 \"wide\"\nquoted\\path")], 1.0);
        let text = reg.render_prometheus();
        let expected = "# HELP _bad_name_with_dots h\n\
                        # TYPE _bad_name_with_dots gauge\n\
                        _bad_name_with_dots{mesh_size=\"8x8 \\\"wide\\\"\\nquoted\\\\path\"} 1\n";
        assert_eq!(text, expected);
        assert_eq!(sanitize_name(""), "_");
        assert_eq!(sanitize_name("a:b_c9"), "a:b_c9");
    }

    #[test]
    fn jsonl_escapes_and_parses() {
        let mut reg = Registry::new();
        reg.gauge("noc_x", "h", &[("note", "tab\there \"quoted\"")], f64::NAN);
        reg.counter("noc_y", "h", &[], 7.0);
        let text = reg.render_jsonl();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert_eq!(
            lines[0],
            "{\"metric\":\"noc_x\",\"kind\":\"gauge\",\"labels\":\
             {\"note\":\"tab\\there \\\"quoted\\\"\"},\"value\":null}"
        );
        for line in &lines {
            Json::parse(line).expect("each JSONL line parses");
        }
        let v = Json::parse(lines[1]).unwrap();
        assert_eq!(v.get("value").unwrap().as_f64(), Some(7.0));
        assert_eq!(v.get("kind").unwrap().as_str(), Some("counter"));
    }

    #[test]
    fn exposition_groups_families_once() {
        let mut reg = Registry::new();
        for q in ["p50", "p99"] {
            reg.gauge("noc_latency_cycles", "Quantiles.", &[("quantile", q)], 10.0);
        }
        let text = reg.render_prometheus();
        assert_eq!(text.matches("# TYPE noc_latency_cycles gauge").count(), 1);
        assert_eq!(text.matches("noc_latency_cycles{").count(), 2);
    }
}
