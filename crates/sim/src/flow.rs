//! Flow-class latency telemetry and SLO gating.
//!
//! Aggregate latency hides how service degrades: under faults, long
//! routes around a disabled region suffer first while single-hop
//! traffic still looks healthy. This module classifies every delivered
//! packet into a *flow class* by src→dst Manhattan hop distance and
//! keeps one mergeable [`LatencyHistogram`] per class, so run
//! summaries, interval windows and campaign reports can show tail
//! percentiles (p50/p95/p99/p999) per class rather than in aggregate.
//!
//! The classifier is deliberately a closed enum keyed only on data
//! already carried by every flit (`src`, `dst`): it works identically
//! in all three cycle kernels and costs one subtraction per delivery.
//! The run-level traffic pattern is a *label* on exported metrics (the
//! whole run shares one pattern), and a request/reply dimension will
//! join as a third axis once closed-loop traffic lands (ROADMAP).
//!
//! [`SloSpec`] is the machine-checkable form of ROADMAP item 5's SLO
//! reporting: `near:p99<=40` parses into a spec that
//! [`check_slos`] evaluates against [`SimResults`], and the CLI turns
//! violations into a nonzero exit. It lives in the library (not the
//! CLI) so the campaign server of ROADMAP item 3 can reuse it.

use crate::histogram::LatencyHistogram;
use crate::stats::SimResults;
use noc_core::Coord;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// A latency flow class: the src→dst Manhattan hop-distance band.
///
/// Bands are fixed (not mesh-relative) so a class name means the same
/// thing across sweep points and campaign cells of different mesh
/// sizes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowClass {
    /// Same-node traffic (0 hops): pure injection/ejection cost.
    Local,
    /// 1–2 hops: immediate-neighbourhood traffic.
    Near,
    /// 3–6 hops: mid-range traffic.
    Mid,
    /// 7 or more hops: cross-chip traffic, the first to degrade when
    /// routes lengthen around faults.
    Far,
}

impl FlowClass {
    /// All classes, in reporting order.
    pub const ALL: [FlowClass; 4] =
        [FlowClass::Local, FlowClass::Near, FlowClass::Mid, FlowClass::Far];

    /// Number of flow classes.
    pub const COUNT: usize = Self::ALL.len();

    /// Classifies a src→dst pair by Manhattan hop distance.
    pub fn of(src: Coord, dst: Coord) -> FlowClass {
        match src.manhattan_distance(dst) {
            0 => FlowClass::Local,
            1..=2 => FlowClass::Near,
            3..=6 => FlowClass::Mid,
            _ => FlowClass::Far,
        }
    }

    /// Stable lowercase name, used in JSON output, Prometheus labels
    /// and `--slo` specs.
    pub fn name(self) -> &'static str {
        match self {
            FlowClass::Local => "local",
            FlowClass::Near => "near",
            FlowClass::Mid => "mid",
            FlowClass::Far => "far",
        }
    }

    /// Index into [`Self::ALL`]-ordered storage.
    pub fn index(self) -> usize {
        self as usize
    }
}

impl fmt::Display for FlowClass {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

impl FromStr for FlowClass {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "local" => Ok(FlowClass::Local),
            "near" => Ok(FlowClass::Near),
            "mid" => Ok(FlowClass::Mid),
            "far" => Ok(FlowClass::Far),
            other => Err(format!("unknown flow class '{other}' (local|near|mid|far)")),
        }
    }
}

/// One mergeable latency histogram per flow class.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ClassHistograms {
    hists: Vec<LatencyHistogram>,
}

impl Default for ClassHistograms {
    fn default() -> Self {
        Self::new()
    }
}

impl ClassHistograms {
    /// Empty histograms for every class.
    pub fn new() -> Self {
        ClassHistograms { hists: vec![LatencyHistogram::new(); FlowClass::COUNT] }
    }

    /// Records one latency sample under `class`.
    pub fn record(&mut self, class: FlowClass, latency: u64) {
        self.hists[class.index()].record(latency);
    }

    /// The histogram of one class.
    pub fn class(&self, class: FlowClass) -> &LatencyHistogram {
        &self.hists[class.index()]
    }

    /// Merges another set of per-class histograms into this one
    /// (class-wise; see [`LatencyHistogram::merge`]).
    pub fn merge(&mut self, other: &ClassHistograms) {
        for (a, b) in self.hists.iter_mut().zip(&other.hists) {
            a.merge(b);
        }
    }

    /// Resets every class to empty without releasing bucket storage.
    pub fn clear(&mut self) {
        for h in &mut self.hists {
            h.clear();
        }
    }

    /// Total samples across all classes.
    pub fn total_count(&self) -> u64 {
        self.hists.iter().map(LatencyHistogram::count).sum()
    }

    /// Percentile summaries for every class, in [`FlowClass::ALL`]
    /// order (empty classes report all-zero statistics).
    pub fn summaries(&self) -> Vec<ClassLatency> {
        FlowClass::ALL
            .iter()
            .map(|&class| {
                let h = self.class(class);
                ClassLatency {
                    class,
                    count: h.count(),
                    mean: h.mean(),
                    p50: h.p50(),
                    p95: h.p95(),
                    p99: h.p99(),
                    p999: h.p999(),
                    max: h.max(),
                }
            })
            .collect()
    }
}

/// Latency percentile summary of one flow class over a run or window.
///
/// A class nobody sent traffic to has `count == 0` and all-zero
/// statistics (see [`LatencyHistogram::is_empty`]).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ClassLatency {
    /// The flow class summarized.
    pub class: FlowClass,
    /// Samples recorded under this class.
    pub count: u64,
    /// Mean latency in cycles (0 when empty).
    pub mean: f64,
    /// Median latency (bucket resolution).
    pub p50: u64,
    /// 95th-percentile latency.
    pub p95: u64,
    /// 99th-percentile latency.
    pub p99: u64,
    /// 99.9th-percentile latency.
    pub p999: u64,
    /// Largest recorded latency.
    pub max: u64,
}

/// The latency statistic an SLO bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SloMetric {
    /// Median latency.
    P50,
    /// 95th percentile.
    P95,
    /// 99th percentile.
    P99,
    /// 99.9th percentile.
    P999,
    /// Mean latency.
    Mean,
    /// Maximum latency.
    Max,
}

impl SloMetric {
    /// Stable lowercase name as written in `--slo` specs.
    pub fn name(self) -> &'static str {
        match self {
            SloMetric::P50 => "p50",
            SloMetric::P95 => "p95",
            SloMetric::P99 => "p99",
            SloMetric::P999 => "p999",
            SloMetric::Mean => "mean",
            SloMetric::Max => "max",
        }
    }
}

impl FromStr for SloMetric {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "p50" => Ok(SloMetric::P50),
            "p95" => Ok(SloMetric::P95),
            "p99" => Ok(SloMetric::P99),
            "p999" => Ok(SloMetric::P999),
            "mean" => Ok(SloMetric::Mean),
            "max" => Ok(SloMetric::Max),
            other => Err(format!("unknown SLO metric '{other}' (p50|p95|p99|p999|mean|max)")),
        }
    }
}

/// One parsed SLO clause: `class:metric<=limit`.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloSpec {
    /// The flow class the bound applies to, or `None` for the
    /// aggregate (`all`) latency distribution.
    pub class: Option<FlowClass>,
    /// The bounded statistic.
    pub metric: SloMetric,
    /// Inclusive upper bound, in cycles.
    pub limit: f64,
}

impl SloSpec {
    /// The measured value of this spec's statistic, or `None` when the
    /// targeted class recorded no samples (a vacuous pass: no traffic,
    /// no violation).
    pub fn observed(&self, results: &SimResults) -> Option<f64> {
        match self.class {
            None => {
                if results.measured_delivered == 0 {
                    return None;
                }
                Some(match self.metric {
                    SloMetric::P50 => results.latency_p50 as f64,
                    SloMetric::P95 => results.latency_p95 as f64,
                    SloMetric::P99 => results.latency_p99 as f64,
                    SloMetric::P999 => results.latency_p999 as f64,
                    SloMetric::Mean => results.avg_latency,
                    SloMetric::Max => results.max_latency as f64,
                })
            }
            Some(class) => {
                let c = results.classes.iter().find(|c| c.class == class)?;
                if c.count == 0 {
                    return None;
                }
                Some(match self.metric {
                    SloMetric::P50 => c.p50 as f64,
                    SloMetric::P95 => c.p95 as f64,
                    SloMetric::P99 => c.p99 as f64,
                    SloMetric::P999 => c.p999 as f64,
                    SloMetric::Mean => c.mean,
                    SloMetric::Max => c.max as f64,
                })
            }
        }
    }

    /// The class name as written in specs (`all` for the aggregate).
    pub fn class_name(&self) -> &'static str {
        self.class.map_or("all", FlowClass::name)
    }
}

impl fmt::Display for SloSpec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}<={}", self.class_name(), self.metric.name(), self.limit)
    }
}

/// One SLO clause the run failed to meet.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SloViolation {
    /// The violated clause.
    pub spec: SloSpec,
    /// The measured value that exceeded the limit.
    pub observed: f64,
}

impl fmt::Display for SloViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "SLO violated: {}:{} = {} exceeds limit {}",
            self.spec.class_name(),
            self.spec.metric.name(),
            self.observed,
            self.spec.limit
        )
    }
}

/// Parses a comma-separated `--slo` argument such as
/// `near:p99<=40,all:p999<=200`. The class may be omitted
/// (`p99<=40` bounds the aggregate distribution, as does `all:`).
///
/// # Errors
///
/// Returns a description of the first malformed clause.
pub fn parse_slos(text: &str) -> Result<Vec<SloSpec>, String> {
    let mut specs = Vec::new();
    for clause in text.split(',') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let (lhs, limit) = clause
            .split_once("<=")
            .ok_or_else(|| format!("SLO clause '{clause}' is missing '<=' (class:metric<=N)"))?;
        let limit: f64 = limit
            .trim()
            .parse()
            .map_err(|_| format!("SLO clause '{clause}' has a non-numeric limit"))?;
        if !limit.is_finite() || limit < 0.0 {
            return Err(format!("SLO clause '{clause}' needs a finite non-negative limit"));
        }
        let (class, metric) = match lhs.trim().split_once(':') {
            Some(("all", metric)) => (None, metric),
            Some((class, metric)) => (Some(class.parse::<FlowClass>()?), metric),
            None => (None, lhs.trim()),
        };
        specs.push(SloSpec { class, metric: metric.trim().parse()?, limit });
    }
    if specs.is_empty() {
        return Err("empty --slo specification".to_string());
    }
    Ok(specs)
}

/// Evaluates SLO clauses against run results, returning every
/// violation (empty ⇒ the run met its SLOs). Clauses targeting a
/// class with no samples pass vacuously.
pub fn check_slos(specs: &[SloSpec], results: &SimResults) -> Vec<SloViolation> {
    specs
        .iter()
        .filter_map(|spec| {
            let observed = spec.observed(results)?;
            (observed > spec.limit).then_some(SloViolation { spec: *spec, observed })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn classifies_by_manhattan_distance() {
        let o = Coord::new(0, 0);
        assert_eq!(FlowClass::of(o, o), FlowClass::Local);
        assert_eq!(FlowClass::of(o, Coord::new(1, 0)), FlowClass::Near);
        assert_eq!(FlowClass::of(o, Coord::new(1, 1)), FlowClass::Near);
        assert_eq!(FlowClass::of(o, Coord::new(2, 1)), FlowClass::Mid);
        assert_eq!(FlowClass::of(o, Coord::new(3, 3)), FlowClass::Mid);
        assert_eq!(FlowClass::of(o, Coord::new(4, 3)), FlowClass::Far);
        assert_eq!(FlowClass::of(Coord::new(7, 7), o), FlowClass::Far);
    }

    #[test]
    fn class_names_round_trip() {
        for class in FlowClass::ALL {
            assert_eq!(class.name().parse::<FlowClass>().unwrap(), class);
            assert_eq!(FlowClass::ALL[class.index()], class);
        }
        assert!("bogus".parse::<FlowClass>().is_err());
    }

    #[test]
    fn class_histograms_record_merge_and_summarize() {
        let mut a = ClassHistograms::new();
        a.record(FlowClass::Near, 10);
        a.record(FlowClass::Near, 20);
        a.record(FlowClass::Far, 100);
        let mut b = ClassHistograms::new();
        b.record(FlowClass::Near, 30);
        a.merge(&b);
        assert_eq!(a.total_count(), 4);
        let summaries = a.summaries();
        assert_eq!(summaries.len(), FlowClass::COUNT);
        let near = summaries[FlowClass::Near.index()];
        assert_eq!(near.count, 3);
        assert_eq!(near.p50, 20);
        assert_eq!(near.max, 30);
        let local = summaries[FlowClass::Local.index()];
        assert_eq!(local.count, 0);
        assert_eq!(local.p999, 0);
        a.clear();
        assert_eq!(a.total_count(), 0);
    }

    #[test]
    fn parses_slo_specs() {
        let specs = parse_slos("near:p99<=40, all:p999<=200.5,mean<=12").unwrap();
        assert_eq!(specs.len(), 3);
        assert_eq!(specs[0].class, Some(FlowClass::Near));
        assert_eq!(specs[0].metric, SloMetric::P99);
        assert_eq!(specs[0].limit, 40.0);
        assert_eq!(specs[1].class, None);
        assert_eq!(specs[1].metric, SloMetric::P999);
        assert_eq!(specs[2].class, None);
        assert_eq!(specs[2].metric, SloMetric::Mean);
        assert_eq!(specs[0].to_string(), "near:p99<=40");
    }

    #[test]
    fn rejects_malformed_slo_specs() {
        assert!(parse_slos("").is_err());
        assert!(parse_slos("p99=40").is_err(), "missing <=");
        assert!(parse_slos("bogus:p99<=40").is_err(), "unknown class");
        assert!(parse_slos("near:p98<=40").is_err(), "unknown metric");
        assert!(parse_slos("near:p99<=abc").is_err(), "bad limit");
        assert!(parse_slos("near:p99<=-1").is_err(), "negative limit");
    }
}
