//! The flit-level, cycle-accurate mesh simulator (§5.1).
//!
//! Per cycle: (1) flits and credits emitted in the previous cycle are
//! delivered across their one-cycle links; (2) the traffic model offers
//! new packets to the network interfaces, which inject at most one flit
//! per node per cycle; (3) every router executes one pipeline step
//! (stage 1 = look-ahead RC + VA + speculative SA, stage 2 = switch
//! traversal of the previous cycle's winners). All randomness flows
//! from a single seeded RNG, so runs are exactly reproducible.

use crate::config::SimConfig;
use crate::report::{NodeReport, NodeSummary};
use crate::stats::{SimResults, StatsCollector};
use crate::trace::{TraceEvent, TraceSink};
use noc_core::{
    Coord, Credit, Cycle, Direction, Flit, NodeStatus, PacketId, RouterNode, StepContext,
};
use noc_power::{energy_of, EnergyBreakdown, RouterEnergyProfile};
use noc_router::AnyRouter;
use noc_routing::RouteComputer;
use noc_traffic::{build_traffic, Traffic};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::collections::VecDeque;

/// A flit in flight on a link, due at `node` on side `from`.
#[derive(Debug, Clone)]
struct FlitInFlight {
    node: usize,
    from: Direction,
    vc: u8,
    flit: Flit,
}

/// A credit in flight, due at `node`'s output `output`.
#[derive(Debug, Clone, Copy)]
struct CreditInFlight {
    node: usize,
    output: Direction,
    credit: Credit,
}

/// A running simulation. Most callers use [`Simulation::run`]; the
/// stepping API exists for tests and interactive tooling.
#[derive(Debug)]
pub struct Simulation {
    cfg: SimConfig,
    routers: Vec<AnyRouter>,
    traffic: Box<dyn Traffic>,
    computer: RouteComputer,
    sources: Vec<VecDeque<Flit>>,
    flits_in_flight: Vec<FlitInFlight>,
    credits_in_flight: Vec<CreditInFlight>,
    rng: SmallRng,
    cycle: Cycle,
    stats: StatsCollector,
    per_node: Vec<NodeSummary>,
    trace: Option<Box<dyn TraceSink>>,
    next_packet: u64,
    last_progress: Cycle,
    stalled: bool,
}

impl Simulation {
    /// Builds the network, injects the fault plan and wires the links.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(cfg: SimConfig) -> Self {
        let rcfg = cfg.router_config();
        let traffic = build_traffic(cfg.traffic, cfg.mesh, cfg.injection_rate, rcfg.num_flits);
        Self::with_traffic(cfg, traffic)
    }

    /// Like [`Simulation::new`] but with a caller-supplied traffic
    /// generator (e.g. [`noc_traffic::ReplayTraffic`] to replay a
    /// recorded schedule; the config's `traffic`/`injection_rate`
    /// fields are then only documentation).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn with_traffic(cfg: SimConfig, traffic: Box<dyn Traffic>) -> Self {
        cfg.mesh.validate().expect("invalid mesh");
        let rcfg = cfg.router_config();
        rcfg.validate().expect("invalid router config");
        let mesh = cfg.mesh;
        let mut routers: Vec<AnyRouter> = (0..mesh.nodes())
            .map(|i| AnyRouter::build(Coord::from_index(i, mesh.width), rcfg, mesh))
            .collect();
        // Faults first: the wiring below publishes post-fault VC lists,
        // modelling the neighbour handshake of §4.1.
        for (coord, fault) in &cfg.faults.faults {
            routers[coord.index(mesh.width)].inject_fault(*fault);
        }
        // Wire each output to the neighbour's opposite-side VC list.
        for i in 0..routers.len() {
            let coord = Coord::from_index(i, mesh.width);
            for dir in Direction::MESH {
                if let Some(n) = coord.neighbor(dir, mesh.width, mesh.height) {
                    let descs = routers[n.index(mesh.width)]
                        .vcs_on_link(dir.opposite())
                        .to_vec();
                    routers[i].connect_output(dir, &descs);
                }
            }
        }
        let computer = RouteComputer::new(cfg.routing, mesh);
        let rng = SmallRng::seed_from_u64(cfg.seed);
        let nodes = mesh.nodes();
        Simulation {
            cfg,
            routers,
            traffic,
            computer,
            sources: vec![VecDeque::new(); nodes],
            flits_in_flight: Vec::new(),
            credits_in_flight: Vec::new(),
            rng,
            cycle: 0,
            stats: StatsCollector::new(),
            per_node: vec![NodeSummary::default(); nodes],
            trace: None,
            next_packet: 0,
            last_progress: 0,
            stalled: false,
        }
    }

    /// Attaches a trace sink receiving every packet lifecycle event.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Detaches and returns the trace sink, if any.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    fn emit(&mut self, event: TraceEvent) {
        if let Some(sink) = self.trace.as_mut() {
            sink.record(event);
        }
    }

    /// The current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Read access to the routers (tests, tooling).
    pub fn routers(&self) -> &[AnyRouter] {
        &self.routers
    }

    /// Flits currently anywhere in the system (buffers, links, sources).
    pub fn flits_in_system(&self) -> usize {
        self.routers.iter().map(|r| r.occupancy()).sum::<usize>()
            + self.flits_in_flight.len()
            + self.sources.iter().map(|s| s.len()).sum::<usize>()
    }

    /// Whether the run has finished (drained or stalled).
    pub fn finished(&self) -> bool {
        if self.cycle >= self.cfg.max_cycles || self.stalled {
            return true;
        }
        self.generation_done() && self.flits_in_system() == 0
    }

    fn generation_done(&self) -> bool {
        self.next_packet >= self.cfg.total_packets()
    }

    /// Whether a packet serial number falls in the measured window.
    fn measured(&self, serial: u64) -> bool {
        serial >= self.cfg.warmup_packets
    }

    /// Advances the simulation one cycle.
    pub fn step(&mut self) {
        let mesh = self.cfg.mesh;
        // Phase 1: link delivery.
        for f in std::mem::take(&mut self.flits_in_flight) {
            self.routers[f.node].deliver_flit(f.from, f.vc, f.flit);
        }
        for c in std::mem::take(&mut self.credits_in_flight) {
            self.routers[c.node].deliver_credit(c.output, c.credit);
        }
        // Phase 2: traffic generation and injection.
        self.generate_traffic();
        self.inject();
        // Phase 3: router pipelines.
        let statuses: Vec<NodeStatus> = self.routers.iter().map(|r| r.status()).collect();
        for i in 0..self.routers.len() {
            let coord = Coord::from_index(i, mesh.width);
            let mut ctx = StepContext::new(self.cycle, &mut self.rng);
            for dir in Direction::MESH {
                ctx.neighbors[dir.index()] = coord
                    .neighbor(dir, mesh.width, mesh.height)
                    .map(|n| statuses[n.index(mesh.width)]);
            }
            let out = self.routers[i].step(&mut ctx);
            for (dir, vc, flit) in out.flits {
                let n = coord
                    .neighbor(dir, mesh.width, mesh.height)
                    .expect("emitted flit must have a neighbour");
                self.emit(TraceEvent::Hop {
                    cycle: self.cycle,
                    packet: flit.packet,
                    seq: flit.seq,
                    node: coord,
                    out: dir,
                });
                self.flits_in_flight.push(FlitInFlight {
                    node: n.index(mesh.width),
                    from: dir.opposite(),
                    vc,
                    flit,
                });
            }
            for (side, credit) in out.credits {
                let n = coord
                    .neighbor(side, mesh.width, mesh.height)
                    .expect("credits only flow to real neighbours");
                self.credits_in_flight.push(CreditInFlight {
                    node: n.index(mesh.width),
                    output: side.opposite(),
                    credit,
                });
            }
            for flit in out.ejected {
                debug_assert_eq!(flit.dst, coord, "flit ejected at the wrong node");
                if flit.kind.is_tail() {
                    let latency = self.cycle - flit.created_at;
                    let measured = self.measured(flit.packet.0);
                    self.stats.record_delivery(latency, measured);
                    let node = &mut self.per_node[i];
                    node.delivered += 1;
                    node.latency_sum += latency;
                    self.last_progress = self.cycle;
                    self.emit(TraceEvent::Delivered {
                        cycle: self.cycle,
                        packet: flit.packet,
                        latency,
                    });
                }
                self.stats.delivered_flits += 1;
            }
            for flit in out.dropped {
                if flit.kind.is_head() {
                    self.stats.dropped += 1;
                    self.per_node[i].dropped += 1;
                    self.last_progress = self.cycle;
                    self.emit(TraceEvent::Dropped {
                        cycle: self.cycle,
                        packet: flit.packet,
                        node: coord,
                    });
                }
            }
        }
        // Stall detection: once generation has ended, a long silence
        // means the remaining packets are wedged behind faults.
        if self.generation_done()
            && self.flits_in_system() > 0
            && self.cycle.saturating_sub(self.last_progress) > self.cfg.stall_window
        {
            self.stalled = true;
        }
        self.cycle += 1;
    }

    fn generate_traffic(&mut self) {
        if self.generation_done() {
            return;
        }
        let mesh = self.cfg.mesh;
        let flits_per_packet = self.cfg.router_config().num_flits;
        for i in 0..self.routers.len() {
            if self.generation_done() {
                break;
            }
            let node = Coord::from_index(i, mesh.width);
            if self.routers[i].status().node_dead() {
                // A dead router's PE cannot reach the network at all; it
                // stops offering traffic (documented in DESIGN.md).
                continue;
            }
            if let Some(dst) = self.traffic.generate(node, self.cycle, &mut self.rng) {
                let id = PacketId(self.next_packet);
                self.next_packet += 1;
                let order = self.computer.choose_order(node, dst, &mut self.rng);
                let flits =
                    Flit::packet_flits(id, node, dst, self.cycle, flits_per_packet, order);
                self.sources[i].extend(flits);
                self.stats.generated += 1;
                self.emit(TraceEvent::Generated { cycle: self.cycle, packet: id, src: node, dst });
            }
        }
    }

    fn inject(&mut self) {
        for i in 0..self.routers.len() {
            let Some(&flit) = self.sources[i].front() else { continue };
            let mut ctx = StepContext::new(self.cycle, &mut self.rng);
            if self.routers[i].try_inject(flit, &mut ctx) {
                self.sources[i].pop_front();
                if flit.kind.is_head() {
                    self.stats.injected += 1;
                    self.per_node[i].injected += 1;
                    if self.measured(flit.packet.0) {
                        self.stats.measured_injected += 1;
                    }
                    self.emit(TraceEvent::Injected {
                        cycle: self.cycle,
                        packet: flit.packet,
                        node: Coord::from_index(i, self.cfg.mesh.width),
                    });
                }
            }
        }
    }

    /// Runs to completion and aggregates the results.
    pub fn run(mut self) -> SimResults {
        while !self.finished() {
            self.step();
        }
        self.results()
    }

    /// Per-node report: traffic summaries plus each router's activity
    /// and contention counters (heatmap-ready).
    pub fn node_report(&self) -> NodeReport {
        NodeReport {
            mesh: self.cfg.mesh,
            nodes: self.per_node.clone(),
            activity: self.routers.iter().map(|r| *r.counters()).collect(),
            contention: self.routers.iter().map(|r| *r.contention()).collect(),
        }
    }

    /// The measured-latency histogram (percentile queries).
    pub fn latency_histogram(&self) -> &crate::histogram::LatencyHistogram {
        &self.stats.histogram
    }

    /// Aggregates results at the current point of the run.
    pub fn results(&self) -> SimResults {
        let profile = RouterEnergyProfile::synthesized(&self.cfg.router_config());
        let mut counters = noc_core::ActivityCounters::new();
        let mut contention = noc_core::ContentionCounters::new();
        let mut energy = EnergyBreakdown::default();
        for r in &self.routers {
            counters.merge(r.counters());
            contention.merge(r.contention());
            energy.merge(&energy_of(r.counters(), &profile));
        }
        // Link energy is accounted from the same counters (one link
        // traversal per emitted flit), already inside `energy`.
        let delivered = self.stats.delivered.max(1);
        let nodes = self.cfg.mesh.nodes() as f64;
        SimResults {
            cycles: self.cycle,
            generated_packets: self.stats.generated,
            injected_packets: self.stats.injected,
            measured_injected: self.stats.measured_injected,
            delivered_packets: self.stats.delivered,
            measured_delivered: self.stats.measured_delivered,
            dropped_packets: self.stats.dropped,
            avg_latency: self.stats.avg_latency(),
            max_latency: self.stats.max_latency,
            latency_p50: self.stats.histogram.percentile(0.50),
            latency_p95: self.stats.histogram.percentile(0.95),
            latency_p99: self.stats.histogram.percentile(0.99),
            throughput: self.stats.delivered_flits as f64 / (self.cycle.max(1) as f64 * nodes),
            counters,
            contention,
            energy,
            energy_per_packet: energy.total() / delivered as f64,
            stalled: self.stalled,
        }
    }
}

/// Convenience: build and run in one call.
pub fn run(cfg: SimConfig) -> SimResults {
    Simulation::new(cfg).run()
}
