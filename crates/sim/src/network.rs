//! The flit-level, cycle-accurate mesh simulator (§5.1).
//!
//! Per cycle: (0) scheduled fault/repair events fire, §4.1 status
//! republications land, and end-to-end recovery timeouts retransmit;
//! then (1) flits and credits emitted in the previous cycle are
//! delivered across their one-cycle links; (2) the traffic model offers
//! new packets to the network interfaces, which inject at most one flit
//! per node per cycle; (3) every router executes one pipeline step
//! (stage 1 = look-ahead RC + VA + speculative SA, stage 2 = switch
//! traversal of the previous cycle's winners). All randomness is
//! counter-based: the sequential phases draw from the seeded master
//! RNG, and each router step draws from its own
//! `(seed, router, cycle)` stream ([`noc_core::router_rng`]), so runs
//! are exactly reproducible regardless of kernel or thread count.
//!
//! The cycle kernel is allocation-free in steady state: topology is
//! precomputed into index tables, in-flight lists and router outputs
//! are recycled as double/scratch buffers, and under the default
//! [`KernelMode::Optimized`] a wake-set skips routers that are provably
//! quiescent (see DESIGN.md §10 for the invariant and the proof
//! obligations that keep the kernels bit-identical).
//! [`KernelMode::Parallel`] additionally shards Phase 3 across scoped
//! worker threads and merges shard outputs in canonical router order
//! (DESIGN.md §13), so its results are byte-identical to the
//! sequential kernels at any worker count.

use crate::audit::Auditor;
use crate::config::{KernelMode, SimConfig};
use crate::flow::{ClassHistograms, FlowClass};
use crate::metrics::{IntervalSample, MetricsSink, RouterWindow};
use crate::postmortem::{
    CreditLine, FaultTimelineEntry, RouterDiagnosis, StallPostmortem, WedgedPacket,
};
use crate::profile::{Phase, Profiler};
use crate::report::{NodeReport, NodeSummary};
use crate::stats::{RecoveryStats, SimResults, StatsCollector};
use crate::trace::{TraceEvent, TraceSink};
use noc_core::{
    router_rng, ActivityCounters, ComponentFault, Coord, Credit, Cycle, Direction, Flit, FlitSlab,
    LinkMask, NodeStatus, PacketId, ReachabilityMap, RouterNode, RouterOutputs, SlabShard,
    StepContext, Topology, TopologyOps, VcDescriptor, VcPhase, WakeSet, WakeView, EJECT_VC,
    RNG_STREAM_INJECT, RNG_STREAM_STEP,
};
use noc_deadlock::{find_channel_cycle, Channel};
use noc_fault::{FaultAction, FaultEvent};
use noc_power::{energy_of, EnergyBreakdown, RouterEnergyProfile};
use noc_router::AnyRouter;
use noc_routing::RouteComputer;
use noc_traffic::{build_traffic, Traffic};
use rand::rngs::SmallRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap, VecDeque};
use std::time::Instant;

/// Precomputed adjacency: for each node index, the node index of the
/// neighbour in every port direction (indexed by [`Direction::index`];
/// `None` at an unconnected port). Built once per simulation so the
/// hot loop never recomputes [`TopologyOps::neighbor`]; the
/// `kernel_equivalence` tests check it against the coordinate
/// arithmetic exhaustively for every mesh shape from 2×2 to 9×7.
/// Accepts a plain [`noc_core::MeshConfig`] (via `From`) or any resolved
/// [`Topology`] — wraparound and die-to-die links land in the same
/// flat table the kernels index.
pub fn neighbor_table(topo: impl Into<Topology>) -> Vec<[Option<usize>; 4]> {
    let topo = topo.into();
    let grid = topo.grid();
    (0..topo.nodes())
        .map(|i| {
            let coord = Coord::from_index(i, grid.width);
            let mut row = [None; 4];
            for dir in Direction::MESH {
                row[dir.index()] = topo.neighbor(coord, dir).map(|n| n.index(grid.width));
            }
            row
        })
        .collect()
}

/// Per-node, per-direction link delays in cycles (1 everywhere except
/// a chiplet mesh's die-to-die boundary links).
fn link_delay_table(topo: &Topology) -> Vec<[u8; 4]> {
    let grid = topo.grid();
    (0..topo.nodes())
        .map(|i| {
            let coord = Coord::from_index(i, grid.width);
            let mut row = [1u8; 4];
            for dir in Direction::MESH {
                row[dir.index()] = topo.link_delay(coord, dir);
            }
            row
        })
        .collect()
}

/// A flit in flight on a link, due at `node` on side `from`.
#[derive(Debug, Clone)]
pub(crate) struct FlitInFlight {
    pub(crate) node: usize,
    pub(crate) from: Direction,
    pub(crate) vc: u8,
    pub(crate) flit: Flit,
}

/// A credit in flight, due at `node`'s output `output`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct CreditInFlight {
    pub(crate) node: usize,
    pub(crate) output: Direction,
    pub(crate) credit: Credit,
}

/// Per-worker scratch for the parallel kernel's Phase 3, recycled
/// across cycles (DESIGN.md §13). Each shard records which of its
/// routers actually stepped and keeps one [`RouterOutputs`] slot per
/// local router, so the coordinator can absorb results in canonical
/// ascending router order after the join without copying flits twice.
#[derive(Debug, Default)]
struct ShardScratch {
    /// Within-shard indices of the routers stepped this cycle, in
    /// ascending order.
    stepped: Vec<u32>,
    /// One recycled output scratch per local router slot.
    outs: Vec<RouterOutputs>,
    /// Net buffered-flit occupancy change across the shard this cycle.
    occ_delta: i64,
}

/// One worker's share of Phase 3: steps the active routers of one
/// contiguous shard. Runs inside `std::thread::scope` (or inline when
/// there is a single shard); it touches only shard-local slices
/// (`routers`, `active`, `occ_cache`) plus shared read-only topology,
/// so shards never contend, and every router draws from its own
/// counter-based RNG stream, so the draws match the sequential kernels
/// exactly.
#[allow(clippy::too_many_arguments)]
fn shard_phase3(
    base: usize,
    cycle: Cycle,
    seed: u64,
    routers: &mut [AnyRouter],
    mut slab: SlabShard<'_>,
    mut active: WakeView<'_>,
    occ_cache: &mut [usize],
    statuses: &[NodeStatus],
    neighbor_idx: &[[Option<usize>; 4]],
    mask: Option<&LinkMask>,
    scratch: &mut ShardScratch,
) {
    scratch.stepped.clear();
    scratch.occ_delta = 0;
    for (local, router) in routers.iter_mut().enumerate() {
        if !active.is_awake(local) {
            // Quiescent and nothing arrived: stepping would only
            // advance the clocked-cycle counter (DESIGN.md §10).
            router.tick_idle();
            continue;
        }
        let i = base + local;
        let mut rng = router_rng(seed, i, cycle, RNG_STREAM_STEP);
        let mut ctx = StepContext::new(cycle, &mut rng);
        for dir in Direction::MESH {
            ctx.neighbors[dir.index()] = neighbor_idx[i][dir.index()].map(|n| statuses[n]);
        }
        ctx.mask = mask;
        router.step(&mut ctx, &mut slab.window(local), &mut scratch.outs[local]);
        scratch.stepped.push(local as u32);
        let occ = router.occupancy();
        scratch.occ_delta += occ as i64 - occ_cache[local] as i64;
        occ_cache[local] = occ;
        active.set(local, !router.is_quiescent());
    }
}

/// End-to-end recovery bookkeeping for one not-yet-delivered packet.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Outstanding {
    src: Coord,
    dst: Coord,
    created_at: Cycle,
    /// Retransmission attempts issued so far (0 = original send).
    attempt: u32,
    /// Cycle the current attempt times out at. Only ever *read* from
    /// the `timeouts` heap entries (lazy deletion — stale heap entries
    /// are detected by the `attempt` counter); kept here so the
    /// authoritative per-packet state is inspectable in one place.
    #[allow(dead_code)]
    deadline: Cycle,
    /// Whether the head has been counted in the injected statistics
    /// (retries re-inject the same packet without re-counting it).
    injected_counted: bool,
}

/// Interval-sampler state: the baselines captured at the previous
/// window boundary, subtracted from the live totals to form per-window
/// deltas.
#[derive(Debug)]
struct Sampler {
    /// Index of the window currently accumulating.
    window: u64,
    /// Cycle the current window started at.
    window_start: Cycle,
    /// Per-router counter baselines.
    counters: Vec<ActivityCounters>,
    /// Per-node injected-packet baselines.
    injected: Vec<u64>,
    /// Per-node delivered-packet baselines.
    delivered: Vec<u64>,
    /// Network-wide baselines.
    generated: u64,
    injected_total: u64,
    delivered_total: u64,
    dropped: u64,
    fault_events: u64,
    /// Latencies of packets delivered during the current window.
    latencies: Vec<u64>,
    /// Per-flow-class histograms of the current window's deliveries.
    class_hists: ClassHistograms,
}

impl Sampler {
    fn new(nodes: usize) -> Self {
        Sampler {
            window: 0,
            window_start: 0,
            counters: vec![ActivityCounters::default(); nodes],
            injected: vec![0; nodes],
            delivered: vec![0; nodes],
            generated: 0,
            injected_total: 0,
            delivered_total: 0,
            dropped: 0,
            fault_events: 0,
            latencies: Vec::new(),
            class_hists: ClassHistograms::new(),
        }
    }
}

/// A running simulation. Most callers use [`Simulation::run`]; the
/// stepping API exists for tests and interactive tooling.
#[derive(Debug)]
pub struct Simulation {
    pub(crate) cfg: SimConfig,
    pub(crate) routers: Vec<AnyRouter>,
    /// Flat flit storage for every router's VC buffers (ISSUE 10): one
    /// contiguous per-network slab of fixed-capacity rings, indexed by
    /// `(router, ring)`. Routers keep the control state (heads of line,
    /// credits, phases); the flits themselves live here, so a flit hop
    /// is an index move instead of a `VecDeque` operation. A separate
    /// field from `routers` on purpose — the kernels borrow the two
    /// disjointly (windows/shards of the slab alongside `&mut` routers).
    pub(crate) slab: FlitSlab,
    traffic: Box<dyn Traffic>,
    computer: RouteComputer,
    pub(crate) sources: Vec<VecDeque<Flit>>,
    pub(crate) flits_in_flight: Vec<FlitInFlight>,
    pub(crate) credits_in_flight: Vec<CreditInFlight>,
    /// Double buffers for the in-flight lists: swapped with
    /// `*_in_flight` at the top of every cycle and drained, so the
    /// steady state reuses two allocations instead of growing new ones.
    flits_arriving: Vec<FlitInFlight>,
    credits_arriving: Vec<CreditInFlight>,
    /// The resolved network topology ([`SimConfig::topology`]). The
    /// default mesh reproduces pre-topology behaviour exactly; the
    /// kernels themselves only see the flat `neighbor_idx` /
    /// `link_delay` tables derived from it.
    pub(crate) topology: Topology,
    /// Per-node, per-direction link delays ([`link_delay_table`]);
    /// all-ones except on chiplet die-to-die boundaries.
    link_delay: Vec<[u8; 4]>,
    /// Delay-wheel slots for flits on multi-cycle links, one slot per
    /// future arrival cycle beyond the next (`max_link_delay - 1`
    /// slots; empty on single-cycle topologies, where the legacy
    /// `flits_in_flight`/`flits_arriving` double buffer is the whole
    /// story). A flit emitted at cycle `T` over a delay-`d` link sits
    /// in slot `(T + d) % slots` until promoted into
    /// `flits_in_flight` one cycle before delivery.
    flits_future: Vec<Vec<FlitInFlight>>,
    /// Delay-wheel slots for credits (credits cross the same wires, so
    /// they pay the same die-to-die latency).
    credits_future: Vec<Vec<CreditInFlight>>,
    /// Precomputed per-node coordinates (index ↔ coord cache).
    pub(crate) coords: Vec<Coord>,
    /// Precomputed per-node neighbour indices ([`neighbor_table`]).
    pub(crate) neighbor_idx: Vec<[Option<usize>; 4]>,
    /// Per-node status as last *published* to the neighbours through
    /// the §4.1 handshake. A mid-run fault or repair changes the
    /// afflicted router immediately, but this buffer — and therefore
    /// every neighbour's look-ahead decision — only updates when the
    /// republication fires `handshake_latency` cycles later.
    pub(crate) statuses: Vec<NodeStatus>,
    /// Network-wide usable-link mask derived from the *published*
    /// statuses (ISSUE 8): rebuilt whenever a §4.1 republication lands,
    /// so it inherits the same bounded `handshake_latency` staleness
    /// every neighbour view has. `None` unless
    /// [`SimConfig::fault_routing`] is on — the routers then behave
    /// exactly as before the mask existed.
    pub(crate) mask: Option<LinkMask>,
    /// Source-side reachability map over the reversed masked link
    /// graph, recomputed together with `mask`. Drives the generation-
    /// time fail-fast and the retry short-circuit (the `unroutable`
    /// outcome). `None` unless fault-aware routing is on.
    pub(crate) reach: Option<ReachabilityMap>,
    /// Reusable router-output scratch ([`RouterNode::step`] contract),
    /// used by the sequential kernels.
    outputs: RouterOutputs,
    /// Resolved worker count for [`KernelMode::Parallel`], fixed at
    /// construction ([`crate::worker_threads`]; ignored by the
    /// sequential kernels). Results never depend on it.
    threads: usize,
    /// Per-shard recycled scratch for the parallel kernel (empty until
    /// the first parallel step).
    shards: Vec<ShardScratch>,
    /// Wake-set: an awake bit means the router may do observable work
    /// this cycle and must be stepped. Set on flit/credit delivery and
    /// successful injection; cleared after a step that leaves the
    /// router quiescent. Ignored under [`KernelMode::Reference`].
    /// Packed into `u64` words ([`WakeSet`]) so the kernels scan 64
    /// routers per word via `trailing_zeros` (DESIGN.md §15).
    pub(crate) wake: WakeSet,
    /// Flat mirror of each router's `status().node_dead()`, refreshed
    /// whenever a fault event strikes. Saves the traffic generator one
    /// virtual dispatch per node per cycle.
    node_dead: Vec<bool>,
    /// Busy-VC tag masks reported by the SoA kernel's hot steps (bit =
    /// internal VC id; flat, router-major). Diagnostic SoA state: the
    /// other kernels leave a router's entry at `u64::MAX` (unknown).
    pub(crate) vc_busy: Vec<u64>,
    /// Counting-sort scratch for the SoA kernel's batched link pass:
    /// per-node bucket cursors, then the node-grouped arrival order.
    link_offsets: Vec<u32>,
    flits_sorted: Vec<FlitInFlight>,
    credits_sorted: Vec<CreditInFlight>,
    /// Last observed per-router occupancy (valid after each phase 3:
    /// a router's occupancy only changes in cycles it is stepped in).
    pub(crate) occ_cache: Vec<usize>,
    /// Σ `occ_cache` — buffered flits network-wide, kept incrementally.
    pub(crate) occ_total: usize,
    /// Σ `sources[i].len()` — flits awaiting injection, kept
    /// incrementally so [`Simulation::flits_in_system`] is O(1).
    pub(crate) source_total: usize,
    /// Master RNG, consumed only by the sequential phases (traffic
    /// generation, injection ordering). Router steps and injections
    /// draw from counter-based per-router streams instead
    /// ([`router_rng`]), so their draws are independent of kernel,
    /// step order and thread count.
    rng: SmallRng,
    pub(crate) cycle: Cycle,
    pub(crate) stats: StatsCollector,
    per_node: Vec<NodeSummary>,
    trace: Option<Box<dyn TraceSink>>,
    metrics: Option<Box<dyn MetricsSink>>,
    sampler: Sampler,
    pub(crate) next_packet: u64,
    last_progress: Cycle,
    pub(crate) stalled: bool,
    postmortem: Option<StallPostmortem>,
    /// Index of the next unfired event in `cfg.schedule`.
    schedule_cursor: usize,
    /// Faults currently active at each node (repairs remove theirs,
    /// then re-inject the remainder).
    active_faults: Vec<Vec<ComponentFault>>,
    /// Pending §4.1 republications: `(due cycle, node index)`, pushed
    /// in nondecreasing due order because the handshake latency is
    /// constant.
    republish_queue: VecDeque<(Cycle, usize)>,
    /// Every applied fault/repair event, for the stall post-mortem.
    fault_log: Vec<FaultTimelineEntry>,
    /// Cumulative applied fault/repair events (interval-sampler source).
    fault_events_total: u64,
    /// Outstanding-packet table of the recovery layer, keyed by packet
    /// id (empty when recovery is disabled).
    pub(crate) outstanding: HashMap<u64, Outstanding>,
    /// Retransmission deadlines: a min-heap of `(deadline, packet id,
    /// attempt)` with lazy deletion (stale attempts are skipped).
    timeouts: BinaryHeap<Reverse<(Cycle, u64, u32)>>,
    /// Recovery outcome counters (reported when recovery is enabled).
    pub(crate) recovery: RecoveryStats,
    /// The runtime invariant checker, present when [`SimConfig::audit`]
    /// is set. Boxed: the checker carries per-packet/per-stream tables
    /// that would bloat the `Simulation` footprint, and it is taken out
    /// and put back around every sweep so it can borrow the simulation
    /// immutably.
    auditor: Option<Box<Auditor>>,
    /// The self-profiler, present when [`SimConfig::profile`] is set.
    /// Strictly read-only with respect to simulated state: it observes
    /// wall clocks and already-computed sizes, so digests are identical
    /// with profiling on or off (asserted by the observability tests).
    profiler: Option<Box<Profiler>>,
}

impl Simulation {
    /// Builds the network, injects the fault plan and wires the links.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn new(cfg: SimConfig) -> Self {
        let rcfg = cfg.router_config();
        let traffic = build_traffic(cfg.traffic, cfg.mesh, cfg.injection_rate, rcfg.num_flits);
        Self::with_traffic(cfg, traffic)
    }

    /// Like [`Simulation::new`] but with a caller-supplied traffic
    /// generator (e.g. [`noc_traffic::ReplayTraffic`] to replay a
    /// recorded schedule; the config's `traffic`/`injection_rate`
    /// fields are then only documentation).
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails validation.
    pub fn with_traffic(cfg: SimConfig, traffic: Box<dyn Traffic>) -> Self {
        // Grid legality is per-topology (a circulant's N×1 bounding
        // strip is not a legal *mesh*), so `resolve` owns it.
        let rcfg = cfg.router_config();
        rcfg.validate().expect("invalid router config");
        let topo = cfg.topology.resolve(cfg.mesh).expect("invalid topology");
        assert_eq!(
            topo.grid(),
            cfg.mesh,
            "SimConfig::mesh must equal the topology's bounding grid \
             (use SimConfig::with_topology, which snaps it)"
        );
        topo.check_support(rcfg.router, cfg.routing, rcfg.vcs_per_port as usize)
            .expect("router/routing unsupported on this topology");
        let mesh = cfg.mesh;
        let mut routers: Vec<AnyRouter> = (0..mesh.nodes())
            .map(|i| AnyRouter::build_on(Coord::from_index(i, mesh.width), rcfg, &topo))
            .collect();
        // Faults first: the wiring below publishes post-fault VC lists,
        // modelling the neighbour handshake of §4.1. Construction
        // faults also seed the active-fault registry, so a scheduled
        // mid-run repair at the same node re-applies them correctly.
        let mut active_faults: Vec<Vec<ComponentFault>> = vec![Vec::new(); mesh.nodes()];
        for (coord, fault) in &cfg.faults.faults {
            routers[coord.index(mesh.width)].inject_fault(*fault);
            active_faults[coord.index(mesh.width)].push(*fault);
        }
        // Wire each output to the neighbour's opposite-side VC list.
        // One scratch vector bridges the `routers[n]` read / `routers[i]`
        // write borrow conflict for all links instead of a fresh copy
        // per link.
        let neighbor_idx = neighbor_table(&topo);
        let mut descs: Vec<VcDescriptor> = Vec::new();
        for i in 0..routers.len() {
            for dir in Direction::MESH {
                if let Some(n) = neighbor_idx[i][dir.index()] {
                    descs.clear();
                    descs.extend_from_slice(routers[n].vcs_on_link(dir.opposite()));
                    routers[i].connect_output(dir, &descs);
                }
            }
        }
        let computer = RouteComputer::on(cfg.routing, topo.clone());
        let rng = SmallRng::seed_from_u64(cfg.seed);
        let threads = crate::worker_threads(cfg.threads);
        let nodes = mesh.nodes();
        let statuses: Vec<NodeStatus> = routers.iter().map(|r| r.status()).collect();
        let statuses_dead = statuses.iter().map(|s| s.node_dead()).collect();
        let auditor = cfg.audit.map(|a| Box::new(Auditor::new(a, &cfg)));
        let profiler = cfg.profile.then(|| Box::new(Profiler::new()));
        // Construction faults are part of the initial published statuses
        // (§4.1 wires post-fault VC lists above), so the initial mask
        // and reachability view already account for them.
        let mask = cfg.fault_routing.then(|| LinkMask::from_statuses(&topo, &statuses));
        let reach = mask.as_ref().map(ReachabilityMap::compute);
        let link_delay = link_delay_table(&topo);
        // One wheel slot per arrival cycle beyond the next; none at all
        // on single-cycle topologies, where the double buffer alone
        // carries every in-flight flit exactly as before.
        let wheel_slots = topo.max_link_delay().saturating_sub(1) as usize;
        // One slab ring per internal VC, every router identical: the
        // mesh is homogeneous (same RouterConfig everywhere), and ring
        // capacities are nominal + slop — construction faults shrink a
        // VC's *credited* capacity, never its storage, so the slab
        // layout is fault-invariant.
        let ring_caps = routers[0].ring_capacities();
        debug_assert!(
            routers.iter().all(|r| r.ring_capacities() == ring_caps),
            "slab layout requires homogeneous routers"
        );
        let slab = FlitSlab::new(nodes, &ring_caps);
        Simulation {
            cfg,
            routers,
            slab,
            traffic,
            computer,
            // Source queues absorb generation bursts that outpace
            // injection; a generous initial capacity keeps occasional
            // new backlog records from reallocating mid-run (the
            // steady-state zero-allocation guarantee). Built with map,
            // not vec![..; n]: cloning a VecDeque drops its capacity.
            sources: (0..nodes).map(|_| VecDeque::with_capacity(256)).collect(),
            flits_in_flight: Vec::new(),
            credits_in_flight: Vec::new(),
            flits_arriving: Vec::new(),
            credits_arriving: Vec::new(),
            topology: topo,
            link_delay,
            flits_future: (0..wheel_slots).map(|_| Vec::new()).collect(),
            credits_future: (0..wheel_slots).map(|_| Vec::new()).collect(),
            coords: (0..nodes).map(|i| Coord::from_index(i, mesh.width)).collect(),
            neighbor_idx,
            statuses,
            mask,
            reach,
            outputs: RouterOutputs::new(),
            threads,
            shards: Vec::new(),
            // All routers start on the wake-set: the first step settles
            // each one into its true quiescence state.
            wake: WakeSet::all_awake(nodes),
            node_dead: statuses_dead,
            vc_busy: vec![u64::MAX; nodes],
            link_offsets: vec![0; nodes + 1],
            flits_sorted: Vec::new(),
            credits_sorted: Vec::new(),
            occ_cache: vec![0; nodes],
            occ_total: 0,
            source_total: 0,
            rng,
            cycle: 0,
            stats: StatsCollector::new(),
            per_node: vec![NodeSummary::default(); nodes],
            trace: None,
            metrics: None,
            sampler: Sampler::new(nodes),
            next_packet: 0,
            last_progress: 0,
            stalled: false,
            postmortem: None,
            schedule_cursor: 0,
            active_faults,
            republish_queue: VecDeque::new(),
            fault_log: Vec::new(),
            fault_events_total: 0,
            outstanding: HashMap::new(),
            timeouts: BinaryHeap::new(),
            recovery: RecoveryStats::default(),
            auditor,
            profiler,
        }
    }

    /// Attaches a trace sink receiving every packet lifecycle event.
    pub fn set_trace_sink(&mut self, sink: Box<dyn TraceSink>) {
        self.trace = Some(sink);
    }

    /// Detaches and returns the trace sink, if any.
    pub fn take_trace_sink(&mut self) -> Option<Box<dyn TraceSink>> {
        self.trace.take()
    }

    /// Attaches a metrics sink receiving one [`IntervalSample`] every
    /// `sample_window` cycles. The sampler baseline resets to the
    /// current state, so a sink attached mid-run sees deltas from this
    /// point onward only.
    pub fn set_metrics_sink(&mut self, sink: Box<dyn MetricsSink>) {
        self.reset_sampler();
        self.metrics = Some(sink);
    }

    /// Detaches and returns the metrics sink, if any.
    pub fn take_metrics_sink(&mut self) -> Option<Box<dyn MetricsSink>> {
        self.metrics.take()
    }

    /// The stall diagnosis, present once the inactivity detector fired.
    pub fn postmortem(&self) -> Option<&StallPostmortem> {
        self.postmortem.as_ref()
    }

    fn reset_sampler(&mut self) {
        self.sampler.window = 0;
        self.sampler.window_start = self.cycle;
        self.sampler.counters = self.routers.iter().map(|r| *r.counters()).collect();
        self.sampler.injected = self.per_node.iter().map(|n| n.injected).collect();
        self.sampler.delivered = self.per_node.iter().map(|n| n.delivered).collect();
        self.sampler.generated = self.stats.generated;
        self.sampler.injected_total = self.stats.injected;
        self.sampler.delivered_total = self.stats.delivered;
        self.sampler.dropped = self.stats.dropped;
        self.sampler.fault_events = self.fault_events_total;
        self.sampler.latencies.clear();
        self.sampler.class_hists.clear();
    }

    fn emit(&mut self, event: TraceEvent) {
        if let Some(sink) = self.trace.as_mut() {
            sink.record(event);
        }
    }

    /// The current cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Read access to the routers (tests, tooling).
    pub fn routers(&self) -> &[AnyRouter] {
        &self.routers
    }

    /// Read access to the flat flit slab (benchmarks report its
    /// footprint; the audit layer derives conservation from it).
    pub fn slab(&self) -> &FlitSlab {
        &self.slab
    }

    /// The resolved topology the network was built on.
    pub fn topology(&self) -> &Topology {
        &self.topology
    }

    /// Every flit currently on a link: the next-cycle arrivals plus any
    /// still riding the multi-cycle delay wheel. The audit layer's
    /// credit-book check walks this instead of `flits_in_flight` so
    /// die-to-die links stay conservation-accurate.
    pub(crate) fn flits_on_links(&self) -> impl Iterator<Item = &FlitInFlight> {
        self.flits_in_flight.iter().chain(self.flits_future.iter().flatten())
    }

    /// Every credit currently on a link (see
    /// [`Simulation::flits_on_links`]).
    pub(crate) fn credits_on_links(&self) -> impl Iterator<Item = &CreditInFlight> {
        self.credits_in_flight.iter().chain(self.credits_future.iter().flatten())
    }

    /// Flits currently anywhere in the system (buffers, links, sources).
    /// O(1) in the network size: maintained incrementally by the cycle
    /// kernel (the delay wheel adds one length read per slot, and the
    /// wheel has at most `max_link_delay - 1` slots).
    pub fn flits_in_system(&self) -> usize {
        debug_assert_eq!(
            self.occ_total,
            self.routers.iter().map(|r| r.occupancy()).sum::<usize>(),
            "incremental occupancy diverged from the router buffers"
        );
        debug_assert_eq!(
            self.source_total,
            self.sources.iter().map(|s| s.len()).sum::<usize>(),
            "incremental source count diverged from the source queues"
        );
        let wheel: usize = self.flits_future.iter().map(|s| s.len()).sum();
        self.occ_total + self.flits_in_flight.len() + wheel + self.source_total
    }

    /// Whether the run has finished (drained or stalled). With recovery
    /// enabled the run also waits for the outstanding-packet table to
    /// empty, so pending retransmissions still get their chance.
    pub fn finished(&self) -> bool {
        if self.cycle >= self.cfg.max_cycles || self.stalled {
            return true;
        }
        self.generation_done() && self.flits_in_system() == 0 && self.outstanding.is_empty()
    }

    fn generation_done(&self) -> bool {
        self.next_packet >= self.cfg.total_packets()
    }

    /// Whether a packet serial number falls in the measured window.
    fn measured(&self, serial: u64) -> bool {
        serial >= self.cfg.warmup_packets
    }

    /// Advances the simulation one cycle. Allocation-free in steady
    /// state: every buffer below is recycled across cycles.
    pub fn step(&mut self) {
        // Self-profiler segment mark: `None` (and every prof_phase
        // call a no-op) unless profiling is enabled.
        let mut mark = self.profiler.as_ref().map(|_| Instant::now());
        // Phase 0: dynamic faults and recovery. Scheduled fault/repair
        // events strike the afflicted router immediately; the updated
        // availability reaches the neighbours when the §4.1
        // republication fires `handshake_latency` cycles later.
        // Recovery timeouts fire here so retransmitted flits reach the
        // source queues before this cycle's injection phase.
        self.process_schedule();
        self.process_republications();
        self.process_timeouts();
        self.prof_phase(Phase::Faults, &mut mark);
        // Phase 1: link delivery. Swap last cycle's in-flight lists
        // into the arriving double buffers and drain them, so the
        // emission lists below refill the (already sized) originals.
        std::mem::swap(&mut self.flits_in_flight, &mut self.flits_arriving);
        std::mem::swap(&mut self.credits_in_flight, &mut self.credits_arriving);
        // Delay-wheel promotion (multi-cycle links only): flits and
        // credits due next cycle move into the just-emptied in-flight
        // lists ahead of this cycle's emissions, so per-link delivery
        // order is emission order and identical under every kernel.
        if !self.flits_future.is_empty() {
            let slots = self.flits_future.len() as u64;
            let idx = ((self.cycle + 1) % slots) as usize;
            let due = &mut self.flits_future[idx];
            self.flits_in_flight.append(due);
            let due = &mut self.credits_future[idx];
            self.credits_in_flight.append(due);
        }
        if self.cfg.kernel == KernelMode::Soa {
            self.deliver_flits_batched();
        } else {
            for f in self.flits_arriving.drain(..) {
                if let Some(a) = self.auditor.as_deref_mut() {
                    a.on_link_flit(self.cycle, f.node, f.from, f.vc, &f.flit);
                }
                self.routers[f.node].deliver_flit(
                    &mut self.slab.window(f.node),
                    f.from,
                    f.vc,
                    f.flit,
                );
                self.wake.wake(f.node);
            }
        }
        self.prof_phase(Phase::Links, &mut mark);
        if self.cfg.kernel == KernelMode::Soa {
            self.deliver_credits_batched();
        } else {
            for c in self.credits_arriving.drain(..) {
                self.routers[c.node].deliver_credit(c.output, c.credit);
                self.wake.wake(c.node);
            }
        }
        self.prof_phase(Phase::Credits, &mut mark);
        // Phase 2: traffic generation and injection.
        self.generate_traffic();
        self.inject();
        self.prof_phase(Phase::Traffic, &mut mark);
        // Wake-set gauge: the routers due to step this cycle (all of
        // them under Reference, the active set otherwise).
        if self.profiler.is_some() {
            let n = self.routers.len() as u64;
            let stepped = if self.cfg.kernel == KernelMode::Reference {
                n
            } else {
                self.wake.count_awake() as u64
            };
            let occupied = self.wake.occupied_words() as u64;
            let words = self.wake.words().len() as u64;
            if let Some(p) = self.profiler.as_deref_mut() {
                p.record_wake(stepped, n);
                p.record_wake_words(occupied, words);
            }
        }
        // Phase 3: router pipelines. Neighbour statuses come from the
        // published-status buffer, which only changes when a §4.1
        // republication fires — routers act on the last published
        // availability, not the instantaneous one. Every stepped
        // router draws from its own counter-based RNG stream, so
        // results do not depend on which kernel runs this phase.
        match self.cfg.kernel {
            KernelMode::Parallel => self.step_routers_parallel(),
            KernelMode::Soa => self.step_routers_soa(),
            KernelMode::Reference | KernelMode::Optimized => self.step_routers_sequential(),
        }
        self.prof_phase(Phase::Routers, &mut mark);
        // Stall detection: once generation has ended, a long silence
        // means the remaining packets are wedged behind faults.
        if self.generation_done()
            && self.flits_in_system() > 0
            && self.cycle.saturating_sub(self.last_progress) > self.cfg.stall_window
        {
            self.stalled = true;
            self.postmortem = Some(self.build_postmortem());
        }
        // Audit sweep: taken out so the checker can borrow the whole
        // simulation immutably. Read-only — the sweep never perturbs a
        // run, so digests are identical with auditing on or off.
        if let Some(mut a) = self.auditor.take() {
            if self.cycle % a.interval() == 0 {
                a.check(self);
            }
            self.auditor = Some(a);
        }
        self.prof_phase(Phase::Audit, &mut mark);
        self.cycle += 1;
        if self.metrics.is_some()
            && self.cfg.sample_window > 0
            && self.cycle.saturating_sub(self.sampler.window_start) >= self.cfg.sample_window
        {
            self.flush_window();
        }
        self.prof_phase(Phase::Metrics, &mut mark);
        if let Some(p) = self.profiler.as_deref_mut() {
            p.end_cycle(
                self.flits_in_flight.capacity() + self.flits_arriving.capacity(),
                self.credits_in_flight.capacity() + self.credits_arriving.capacity(),
            );
        }
    }

    /// Charges the wall time since `mark` to `phase` and restarts the
    /// mark. A no-op when profiling is off (`mark` is `None`).
    fn prof_phase(&mut self, phase: Phase, mark: &mut Option<Instant>) {
        if let (Some(p), Some(t)) = (self.profiler.as_deref_mut(), mark.as_mut()) {
            p.add_phase(phase, *t);
            *t = Instant::now();
        }
    }

    /// Phase 3, sequential kernels: step (or idle-tick) every router in
    /// ascending index order, absorbing each router's outputs as it
    /// steps.
    fn step_routers_sequential(&mut self) {
        let wake_all = self.cfg.kernel == KernelMode::Reference;
        let mut out = std::mem::take(&mut self.outputs);
        for i in 0..self.routers.len() {
            if !wake_all && !self.wake.is_awake(i) {
                // Quiescent and nothing arrived: stepping would only
                // advance the clocked-cycle counter (DESIGN.md §10).
                self.routers[i].tick_idle();
                continue;
            }
            let mut rng = router_rng(self.cfg.seed, i, self.cycle, RNG_STREAM_STEP);
            let mut ctx = StepContext::new(self.cycle, &mut rng);
            for dir in Direction::MESH {
                ctx.neighbors[dir.index()] =
                    self.neighbor_idx[i][dir.index()].map(|n| self.statuses[n]);
            }
            ctx.mask = self.mask.as_ref();
            self.routers[i].step(&mut ctx, &mut self.slab.window(i), &mut out);
            self.absorb_step(i, &out);
            // Wake-set + occupancy bookkeeping. Only stepped routers
            // can change occupancy, so refreshing here keeps the
            // incremental total exact.
            let occ = self.routers[i].occupancy();
            self.occ_total = self.occ_total - self.occ_cache[i] + occ;
            self.occ_cache[i] = occ;
            self.wake.set(i, !self.routers[i].is_quiescent());
        }
        self.outputs = out;
    }

    /// Phase 3, data-oriented kernel ([`KernelMode::Soa`], DESIGN.md
    /// §15): scan the wake bitset word by word (`trailing_zeros`
    /// recovers each awake router in ascending order, so the absorb
    /// order — and therefore every digest — matches the sequential
    /// kernels), and run each awake router's fused [`RouterNode::step_hot`]
    /// path, which returns occupancy, quiescence and the busy-VC tag
    /// mask in one call. Asleep routers cost nothing at all: their
    /// clocked-cycle counter is materialised lazily on read
    /// ([`Simulation::materialized_counters`]) instead of via
    /// `tick_idle`.
    fn step_routers_soa(&mut self) {
        // Lookahead distances for the two prefetch stages below: raw
        // `AnyRouter` struct lines land first (their addresses need no
        // dependent load — the routers vector stores the enum inline),
        // then `warm_hot` chases the now-warm headers to the VC structs
        // and queue blocks. Both are semantic no-ops.
        const LA_RAW: usize = 12;
        const LA_WARM: usize = 4;
        let mut out = std::mem::take(&mut self.outputs);
        let mut idx = [0usize; 64];
        for w in 0..self.wake.words().len() {
            // Snapshot the word: `sleep` edits below must not perturb
            // the scan of the cycle's starting wake population.
            let mut bits = self.wake.word(w);
            let mut n = 0;
            while bits != 0 {
                idx[n] = w * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                n += 1;
            }
            for k in 0..n {
                #[cfg(target_arch = "x86_64")]
                if let Some(&j) = idx[..n].get(k + LA_RAW) {
                    use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
                    let p = (&self.routers[j] as *const AnyRouter).cast::<i8>();
                    for line in 0..std::mem::size_of::<AnyRouter>().div_ceil(64) {
                        // SAFETY: prefetch has no memory effects and the
                        // address stays inside the routers vector.
                        unsafe { _mm_prefetch(p.add(line * 64), _MM_HINT_T0) };
                    }
                }
                if let Some(&j) = idx[..n].get(k + LA_WARM) {
                    self.routers[j].warm_hot(&self.slab.view(j));
                }
                let i = idx[k];
                let mut rng = router_rng(self.cfg.seed, i, self.cycle, RNG_STREAM_STEP);
                let mut ctx = StepContext::new(self.cycle, &mut rng);
                for dir in Direction::MESH {
                    ctx.neighbors[dir.index()] =
                        self.neighbor_idx[i][dir.index()].map(|n| self.statuses[n]);
                }
                ctx.mask = self.mask.as_ref();
                let hot = self.routers[i].step_hot(&mut ctx, &mut self.slab.window(i), &mut out);
                self.absorb_step(i, &out);
                self.vc_busy[i] = hot.busy_vcs;
                self.occ_total = self.occ_total - self.occ_cache[i] + hot.occupancy;
                self.occ_cache[i] = hot.occupancy;
                if hot.quiescent {
                    self.wake.sleep(i);
                }
            }
        }
        self.outputs = out;
    }

    /// The SoA kernel's batched Phase-1 flit pass: a counting sort
    /// groups this cycle's arrivals by destination router (stable, so
    /// per-router delivery order — the only order observers can see —
    /// is exactly the emission order), then one linear walk delivers
    /// them node by node. Consecutive deliveries hit the same router's
    /// state instead of ping-ponging across the mesh.
    fn deliver_flits_batched(&mut self) {
        if self.flits_arriving.is_empty() {
            return;
        }
        let n = self.routers.len();
        self.link_offsets[..=n].fill(0);
        for f in &self.flits_arriving {
            self.link_offsets[f.node + 1] += 1;
        }
        for i in 0..n {
            self.link_offsets[i + 1] += self.link_offsets[i];
        }
        self.flits_sorted.clear();
        let filler = self.flits_arriving[0].clone();
        self.flits_sorted.resize(self.flits_arriving.len(), filler);
        for f in self.flits_arriving.drain(..) {
            let slot = &mut self.link_offsets[f.node];
            self.flits_sorted[*slot as usize] = f;
            *slot += 1;
        }
        for f in self.flits_sorted.drain(..) {
            if let Some(a) = self.auditor.as_deref_mut() {
                a.on_link_flit(self.cycle, f.node, f.from, f.vc, &f.flit);
            }
            // Node-grouped delivery writes straight into consecutive
            // slab windows: one router's rings are contiguous, so the
            // batched pass streams through the slab in address order.
            self.routers[f.node].deliver_flit(&mut self.slab.window(f.node), f.from, f.vc, f.flit);
            self.wake.wake(f.node);
        }
    }

    /// The SoA kernel's batched Phase-1 credit pass (same counting-sort
    /// grouping as [`Simulation::deliver_flits_batched`]; credit
    /// delivery to distinct routers commutes, and per-router order is
    /// preserved).
    fn deliver_credits_batched(&mut self) {
        if self.credits_arriving.is_empty() {
            return;
        }
        let n = self.routers.len();
        self.link_offsets[..=n].fill(0);
        for c in &self.credits_arriving {
            self.link_offsets[c.node + 1] += 1;
        }
        for i in 0..n {
            self.link_offsets[i + 1] += self.link_offsets[i];
        }
        self.credits_sorted.clear();
        let filler = self.credits_arriving[0];
        self.credits_sorted.resize(self.credits_arriving.len(), filler);
        for c in self.credits_arriving.drain(..) {
            let slot = &mut self.link_offsets[c.node];
            self.credits_sorted[*slot as usize] = c;
            *slot += 1;
        }
        for c in self.credits_sorted.drain(..) {
            self.routers[c.node].deliver_credit(c.output, c.credit);
            self.wake.wake(c.node);
        }
    }

    /// Phase 3, parallel kernel: split the router vector into
    /// contiguous shards, step each shard on a scoped worker thread
    /// (the wake-set applies, as under `Optimized`), then absorb every
    /// shard's staged outputs on the coordinating thread in ascending
    /// router order. The merge order — not the execution order — is
    /// what observers see, so results are byte-identical to the
    /// sequential kernels at any worker count (DESIGN.md §13).
    fn step_routers_parallel(&mut self) {
        let n = self.routers.len();
        let workers = self.threads.clamp(1, n.max(1));
        // Shards are rounded up to a whole number of wake-set words so
        // the `u64` bitset splits cleanly: two workers never write bits
        // of the same word. (On meshes smaller than `64 × workers` this
        // merges shards; digests never depend on the shard layout.)
        let chunk = n.div_ceil(workers).div_ceil(64) * 64;
        let shard_count = n.div_ceil(chunk);
        self.ensure_shards(chunk, shard_count);
        let mut shards = std::mem::take(&mut self.shards);
        {
            let cycle = self.cycle;
            let seed = self.cfg.seed;
            let statuses = &self.statuses[..];
            let neighbor_idx = &self.neighbor_idx[..];
            let mask = self.mask.as_ref();
            let jobs = self
                .routers
                .chunks_mut(chunk)
                .zip(self.slab.shards(chunk))
                .zip(self.wake.views_mut(chunk))
                .zip(self.occ_cache.chunks_mut(chunk))
                .zip(shards.iter_mut())
                .enumerate()
                .map(|(s, ((((routers, slab), active), occ_cache), scratch))| {
                    let base = s * chunk;
                    move || {
                        shard_phase3(
                            base,
                            cycle,
                            seed,
                            routers,
                            slab,
                            active,
                            occ_cache,
                            statuses,
                            neighbor_idx,
                            mask,
                            scratch,
                        )
                    }
                });
            if shard_count == 1 {
                // Single worker: same shard code path, run inline — no
                // thread machinery, so the steady state stays
                // allocation-free (the zero-alloc test covers this).
                jobs.for_each(|job| job());
            } else {
                std::thread::scope(|scope| {
                    // The final shard runs on the coordinating thread
                    // while the spawned workers process the rest.
                    let mut last = None;
                    for (k, job) in jobs.enumerate() {
                        if k + 1 == shard_count {
                            last = Some(job);
                        } else {
                            scope.spawn(job);
                        }
                    }
                    last.expect("at least one shard")();
                });
            }
        }
        // Shard load-balance gauge: how evenly the wake-set spread
        // across the workers this cycle.
        if let Some(p) = self.profiler.as_deref_mut() {
            let max = shards.iter().map(|s| s.stepped.len() as u64).max().unwrap_or(0);
            let total: u64 = shards.iter().map(|s| s.stepped.len() as u64).sum();
            p.record_shards(max, total, shards.len() as u64);
        }
        let absorb_mark = self.profiler.as_ref().map(|_| Instant::now());
        // Canonical merge: shards in ascending base order, routers in
        // ascending local order — every side effect (audit hooks,
        // trace events, in-flight pushes, stats, recovery accounting)
        // lands in exactly the order the sequential kernels produce.
        let mut occ_total = self.occ_total as i64;
        for (s, scratch) in shards.iter().enumerate() {
            occ_total += scratch.occ_delta;
            let base = s * chunk;
            for &local in &scratch.stepped {
                self.absorb_step(base + local as usize, &scratch.outs[local as usize]);
            }
        }
        self.occ_total = occ_total.try_into().expect("network-wide occupancy went negative");
        self.shards = shards;
        if let (Some(p), Some(t)) = (self.profiler.as_deref_mut(), absorb_mark) {
            p.add_absorb(t);
        }
    }

    /// (Re)builds the per-shard scratch when the shard layout changes —
    /// in practice once, on the first parallel step, since the worker
    /// count is fixed per simulation.
    fn ensure_shards(&mut self, chunk: usize, shard_count: usize) {
        let n = self.routers.len();
        let fits = self.shards.len() == shard_count
            && self
                .shards
                .iter()
                .enumerate()
                .all(|(s, sh)| sh.outs.len() == ((s + 1) * chunk).min(n) - s * chunk);
        if fits {
            return;
        }
        self.shards = (0..shard_count)
            .map(|s| {
                let len = ((s + 1) * chunk).min(n) - s * chunk;
                ShardScratch {
                    stepped: Vec::with_capacity(len),
                    outs: (0..len).map(|_| RouterOutputs::new()).collect(),
                    occ_delta: 0,
                }
            })
            .collect();
    }

    /// Absorbs one stepped router's [`RouterOutputs`] into the global
    /// simulation state: emitted flits and credits onto their links,
    /// local ejections (delivery, recovery accounting, duplicate
    /// suppression), fault drops — plus the audit hooks and trace
    /// events for each. Every kernel funnels every stepped router
    /// through this method in ascending router order, which is what
    /// keeps `flits_in_flight`, `credits_in_flight`, traces and stats
    /// byte-identical across kernels and thread counts.
    fn absorb_step(&mut self, i: usize, out: &RouterOutputs) {
        let coord = self.coords[i];
        for &(dir, vc, flit) in &out.flits {
            let n = self.neighbor_idx[i][dir.index()].expect("emitted flit must have a neighbour");
            if let Some(a) = self.auditor.as_deref_mut() {
                a.on_emission(self.cycle, n, self.coords[n], self.statuses[n], &flit);
            }
            self.emit(TraceEvent::Hop {
                cycle: self.cycle,
                packet: flit.packet,
                seq: flit.seq,
                node: coord,
                out: dir,
            });
            let hop = FlitInFlight { node: n, from: dir.opposite(), vc, flit };
            let d = self.link_delay[i][dir.index()];
            if d <= 1 {
                self.flits_in_flight.push(hop);
            } else {
                // Multi-cycle (die-to-die) link: park the flit on the
                // wheel slot for its arrival cycle `cycle + d`.
                let slots = self.flits_future.len() as u64;
                let slot = ((self.cycle + d as u64) % slots) as usize;
                self.flits_future[slot].push(hop);
            }
        }
        for &(side, credit) in &out.credits {
            let n =
                self.neighbor_idx[i][side.index()].expect("credits only flow to real neighbours");
            let back = CreditInFlight { node: n, output: side.opposite(), credit };
            let d = self.link_delay[i][side.index()];
            if d <= 1 {
                self.credits_in_flight.push(back);
            } else {
                let slots = self.credits_future.len() as u64;
                let slot = ((self.cycle + d as u64) % slots) as usize;
                self.credits_future[slot].push(back);
            }
        }
        for &flit in &out.ejected {
            if flit.poison {
                if let Some(a) = self.auditor.as_deref_mut() {
                    a.on_poison_ejected(self.cycle, coord, flit.packet.0);
                }
                // The poison tail chasing a fragmented packet made
                // it to the ejection port: the fragment is
                // discarded here (§4.1), never delivered. (A
                // sentinel id means the aborting router no longer
                // knew which packet the wormhole carried.)
                self.stats.dropped += 1;
                self.per_node[i].dropped += 1;
                self.last_progress = self.cycle;
                if flit.packet.0 != u64::MAX {
                    self.emit(TraceEvent::Dropped {
                        cycle: self.cycle,
                        packet: flit.packet,
                        node: coord,
                    });
                }
                continue;
            }
            debug_assert_eq!(flit.dst, coord, "flit ejected at the wrong node");
            if flit.kind.is_tail() {
                let mut deliver = true;
                if self.cfg.recovery.is_some() {
                    match self.outstanding.remove(&flit.packet.0) {
                        Some(o) => {
                            if o.attempt > 0 {
                                self.recovery.recovered_packets += 1;
                            }
                        }
                        None => {
                            // An earlier attempt already delivered
                            // this packet: sink-side duplicate
                            // suppression.
                            self.recovery.duplicates_suppressed += 1;
                            self.last_progress = self.cycle;
                            deliver = false;
                            if let Some(a) = self.auditor.as_deref_mut() {
                                a.on_duplicate(self.cycle, coord, flit.packet.0);
                            }
                        }
                    }
                }
                if deliver {
                    let latency = self.cycle - flit.created_at;
                    let measured = self.measured(flit.packet.0);
                    let class = FlowClass::of(flit.src, flit.dst);
                    self.stats.record_delivery(latency, measured, class);
                    if let Some(a) = self.auditor.as_deref_mut() {
                        a.on_delivered(self.cycle, coord, flit.packet.0);
                    }
                    let node = &mut self.per_node[i];
                    node.delivered += 1;
                    node.latency_sum += latency;
                    if self.metrics.is_some() {
                        self.sampler.latencies.push(latency);
                        self.sampler.class_hists.record(class, latency);
                    }
                    self.last_progress = self.cycle;
                    self.emit(TraceEvent::Delivered {
                        cycle: self.cycle,
                        packet: flit.packet,
                        latency,
                    });
                }
            }
            self.stats.delivered_flits += 1;
        }
        for &flit in &out.dropped {
            if let Some(a) = self.auditor.as_deref_mut() {
                a.on_dropped(self.cycle, coord, &flit);
            }
            if flit.kind.is_head() {
                self.stats.dropped += 1;
                self.per_node[i].dropped += 1;
                self.last_progress = self.cycle;
                self.emit(TraceEvent::Dropped {
                    cycle: self.cycle,
                    packet: flit.packet,
                    node: coord,
                });
            }
        }
    }

    /// Emits the sample for the window ending at the current cycle and
    /// advances the sampler baseline.
    fn flush_window(&mut self) {
        let mesh = self.cfg.mesh;
        let mut latencies = std::mem::take(&mut self.sampler.latencies);
        latencies.sort_unstable();
        let rank = |p: f64| {
            ((latencies.len() as f64 * p).ceil() as usize)
                .saturating_sub(1)
                .min(latencies.len().saturating_sub(1))
        };
        let (latency_mean, latency_p99, latency_p999, latency_max) = if latencies.is_empty() {
            (0.0, 0, 0, 0)
        } else {
            let sum: u128 = latencies.iter().map(|&l| l as u128).sum();
            let mean = sum as f64 / latencies.len() as f64;
            (
                mean,
                latencies[rank(0.99)],
                latencies[rank(0.999)],
                *latencies.last().expect("non-empty"),
            )
        };
        let mut routers = Vec::with_capacity(self.routers.len());
        for i in 0..self.routers.len() {
            let now = *self.routers[i].counters();
            let prev = self.sampler.counters[i];
            routers.push(RouterWindow {
                node: Coord::from_index(i, mesh.width),
                occupancy: self.routers[i].occupancy() as u64,
                occupancy_high_water: now.occupancy_high_water,
                injected: self.per_node[i].injected - self.sampler.injected[i],
                delivered: self.per_node[i].delivered - self.sampler.delivered[i],
                credit_stall_cycles: now.credit_stall_cycles - prev.credit_stall_cycles,
                va_failures: now.va_failures - prev.va_failures,
                blocked_packets: now.blocked_packets,
                rc: now.rc_computations - prev.rc_computations,
                va: (now.va_local_arbs + now.va_global_arbs)
                    - (prev.va_local_arbs + prev.va_global_arbs),
                sa: (now.sa_local_arbs + now.sa_global_arbs)
                    - (prev.sa_local_arbs + prev.sa_global_arbs),
                st: now.crossbar_traversals - prev.crossbar_traversals,
                lt: now.link_traversals - prev.link_traversals,
            });
            self.sampler.counters[i] = now;
            self.sampler.injected[i] = self.per_node[i].injected;
            self.sampler.delivered[i] = self.per_node[i].delivered;
        }
        let sample = IntervalSample {
            window: self.sampler.window,
            cycle_start: self.sampler.window_start,
            cycle_end: self.cycle,
            generated: self.stats.generated - self.sampler.generated,
            injected: self.stats.injected - self.sampler.injected_total,
            delivered: self.stats.delivered - self.sampler.delivered_total,
            dropped: self.stats.dropped - self.sampler.dropped,
            latency_mean,
            latency_p99,
            latency_p999,
            latency_max,
            flits_in_system: self.flits_in_system() as u64,
            fault_events: self.fault_events_total - self.sampler.fault_events,
            classes: self.sampler.class_hists.summaries(),
            routers,
        };
        self.sampler.class_hists.clear();
        self.sampler.window += 1;
        self.sampler.window_start = self.cycle;
        self.sampler.generated = self.stats.generated;
        self.sampler.injected_total = self.stats.injected;
        self.sampler.delivered_total = self.stats.delivered;
        self.sampler.dropped = self.stats.dropped;
        self.sampler.fault_events = self.fault_events_total;
        if let Some(sink) = self.metrics.as_mut() {
            sink.record_sample(&sample);
        }
    }

    /// Freezes the wedged network state into a structured diagnosis.
    fn build_postmortem(&self) -> StallPostmortem {
        let mesh = self.cfg.mesh;
        let mut wedged = Vec::new();
        let mut adj: HashMap<Channel, Vec<Channel>> = HashMap::new();
        for (i, router) in self.routers.iter().enumerate() {
            let coord = Coord::from_index(i, mesh.width);
            for s in router.vc_snapshots(&self.slab.view(i)) {
                if s.buffered == 0 {
                    continue;
                }
                wedged.push(WedgedPacket {
                    packet: s.head_packet,
                    node: coord,
                    input_side: s.input_side,
                    vc: s.link_index,
                    phase: s.phase,
                    out: s.out,
                    buffered: s.buffered,
                    credit_starved: s.credit_starved,
                    blocked_since: s.blocked_since,
                    dst: s.head_dst,
                    // Topology-native destination rendering (ISSUE 9):
                    // a circulant's `#7` or a chiplet's
                    // `chip(1,0)/(0,1)` instead of the raw grid coord.
                    dst_name: s.head_dst.map(|d| self.topology.node_name(d)),
                    // `unroutable destination` diagnosis class (ISSUE
                    // 8): the stream is wedged because no usable-link
                    // path from here reaches where it was going.
                    unroutable_dst: self
                        .reach
                        .as_ref()
                        .zip(s.head_dst)
                        .is_some_and(|(r, d)| !r.reachable(coord, d)),
                });
                // Observed wait-for edges: an Active VC starved of
                // credits waits on the specific downstream VC it holds;
                // a VC stuck in VA waits (over-approximately) on every
                // VC of the link it requested. A cycle among these
                // edges is a deadlock signature; fault blocking
                // produces only chains.
                let here = Channel { node: coord, side: s.input_side, vc: s.link_index };
                let Some(out) = s.out else { continue };
                if out == Direction::Local {
                    continue;
                }
                let Some(n) = self.topology.neighbor(coord, out) else {
                    continue;
                };
                let side = out.opposite();
                match s.phase {
                    VcPhase::Active if s.credit_starved => {
                        if let Some(dvc) = s.downstream_vc.filter(|&v| v != EJECT_VC) {
                            adj.entry(here).or_default().push(Channel { node: n, side, vc: dvc });
                        }
                    }
                    VcPhase::WaitingVa => {
                        let count = self.routers[n.index(mesh.width)].vcs_on_link(side).len();
                        adj.entry(here).or_default().extend((0..count as u8).map(|vc| Channel {
                            node: n,
                            side,
                            vc,
                        }));
                    }
                    _ => {}
                }
            }
        }
        let routers = self
            .routers
            .iter()
            .enumerate()
            .filter_map(|(i, r)| {
                let c = r.counters();
                let buffered = r.occupancy() as u64;
                (buffered > 0 || c.blocked_packets > 0).then(|| RouterDiagnosis {
                    node: Coord::from_index(i, mesh.width),
                    blocked_packets: c.blocked_packets,
                    buffered,
                    credit_stall_cycles: c.credit_stall_cycles,
                })
            })
            .collect();
        let credit_map = self
            .routers
            .iter()
            .enumerate()
            .flat_map(|(i, r)| {
                let node = Coord::from_index(i, mesh.width);
                r.credit_map().into_iter().map(move |(output, credits)| CreditLine {
                    node,
                    output,
                    credits,
                })
            })
            .collect();
        let suspected_loop = find_channel_cycle(&adj).map(|cycle| {
            cycle.iter().map(|ch| format!("{} {}#{}", ch.node, ch.side, ch.vc)).collect()
        });
        StallPostmortem {
            cycle: self.cycle,
            last_progress: self.last_progress,
            flits_in_system: self.flits_in_system() as u64,
            wedged,
            routers,
            credit_map,
            suspected_loop,
            fault_timeline: self.fault_log.clone(),
            abandoned_packets: self.recovery.abandoned_packets,
            unroutable_packets: self.recovery.unroutable_packets,
        }
    }

    /// Flushes the final (possibly partial) sample window and calls
    /// `finish` on the metrics and trace sinks. [`Simulation::run`]
    /// does this automatically; drivers that step manually and then
    /// take the sinks back should call it once the run has finished.
    pub fn finish_observability(&mut self) {
        if let Some(mut a) = self.auditor.take() {
            a.finish(self);
            self.auditor = Some(a);
        }
        if self.metrics.is_some() && self.cycle > self.sampler.window_start {
            self.flush_window();
        }
        if let Some(sink) = self.metrics.as_mut() {
            sink.finish();
        }
        if let Some(sink) = self.trace.as_mut() {
            sink.finish();
        }
    }

    fn generate_traffic(&mut self) {
        if self.generation_done() {
            return;
        }
        let flits_per_packet = self.cfg.router_config().num_flits;
        for i in 0..self.routers.len() {
            if self.generation_done() {
                break;
            }
            let node = self.coords[i];
            if self.node_dead[i] {
                // A dead router's PE cannot reach the network at all; it
                // stops offering traffic (documented in DESIGN.md).
                continue;
            }
            if let Some(dst) = self.traffic.generate(node, self.cycle, &mut self.rng) {
                let id = PacketId(self.next_packet);
                self.next_packet += 1;
                // Generation-time fail-fast (ISSUE 8): when the
                // reachability map proves no path of usable links leads
                // to `dst`, the packet is refused at the source instead
                // of being injected into a retry/abandon cycle. It still
                // counts as generated — the accounting closes as
                // delivered + abandoned + unroutable == generated.
                if self.reach.as_ref().is_some_and(|r| !r.reachable(node, dst)) {
                    self.stats.generated += 1;
                    self.recovery.unroutable_packets += 1;
                    self.last_progress = self.cycle;
                    if let Some(a) = self.auditor.as_deref_mut() {
                        a.on_generated(self.cycle, id.0);
                        a.on_unroutable(self.cycle, id.0);
                    }
                    self.emit(TraceEvent::Generated {
                        cycle: self.cycle,
                        packet: id,
                        src: node,
                        dst,
                    });
                    self.emit(TraceEvent::Unroutable {
                        cycle: self.cycle,
                        packet: id,
                        src: node,
                        dst,
                    });
                    continue;
                }
                let order = self.computer.choose_order(node, dst, &mut self.rng);
                self.sources[i].extend(Flit::packet_flit_iter(
                    id,
                    node,
                    dst,
                    self.cycle,
                    flits_per_packet,
                    order,
                ));
                self.source_total += flits_per_packet as usize;
                self.stats.generated += 1;
                if let Some(a) = self.auditor.as_deref_mut() {
                    a.on_generated(self.cycle, id.0);
                }
                if let Some(rc) = self.cfg.recovery {
                    let deadline = self.cycle + rc.timeout.max(1);
                    self.outstanding.insert(
                        id.0,
                        Outstanding {
                            src: node,
                            dst,
                            created_at: self.cycle,
                            attempt: 0,
                            deadline,
                            injected_counted: false,
                        },
                    );
                    self.timeouts.push(Reverse((deadline, id.0, 0)));
                }
                self.emit(TraceEvent::Generated { cycle: self.cycle, packet: id, src: node, dst });
            }
        }
    }

    fn inject(&mut self) {
        for i in 0..self.routers.len() {
            let Some(&flit) = self.sources[i].front() else {
                continue;
            };
            // Injection gets its own counter-based stream (distinct
            // from the step stream) so any future randomized admission
            // policy stays kernel- and thread-count-independent.
            let mut rng = router_rng(self.cfg.seed, i, self.cycle, RNG_STREAM_INJECT);
            let mut ctx = StepContext::new(self.cycle, &mut rng);
            if self.routers[i].try_inject(&mut self.slab.window(i), flit, &mut ctx) {
                self.sources[i].pop_front();
                self.source_total -= 1;
                self.wake.wake(i);
                if flit.kind.is_head() {
                    // Retransmitted heads re-enter the network but must
                    // not inflate the injected (completion-denominator)
                    // statistics: each packet is counted once.
                    let count = if self.cfg.recovery.is_none() {
                        true
                    } else {
                        match self.outstanding.get_mut(&flit.packet.0) {
                            Some(o) => !std::mem::replace(&mut o.injected_counted, true),
                            None => false,
                        }
                    };
                    if count {
                        self.stats.injected += 1;
                        self.per_node[i].injected += 1;
                        if self.measured(flit.packet.0) {
                            self.stats.measured_injected += 1;
                        }
                    }
                    self.emit(TraceEvent::Injected {
                        cycle: self.cycle,
                        packet: flit.packet,
                        node: self.coords[i],
                    });
                }
            }
        }
    }

    /// Puts router `i` back on the wake-set and refreshes its entry in
    /// the incremental occupancy total. Any mutation of a router that
    /// happens outside its normal pipeline step (fault injection,
    /// purges, resyncs, retransmission enqueues) must route through
    /// this so the `Optimized` kernel stays digest-identical to the
    /// `Reference` kernel (DESIGN.md §10).
    fn wake_and_refresh(&mut self, i: usize) {
        let occ = self.routers[i].occupancy();
        self.occ_total = self.occ_total - self.occ_cache[i] + occ;
        self.occ_cache[i] = occ;
        self.wake.wake(i);
    }

    /// Applies every schedule event due at or before the current cycle.
    fn process_schedule(&mut self) {
        while let Some(&ev) = self.cfg.schedule.events().get(self.schedule_cursor) {
            if ev.cycle > self.cycle {
                break;
            }
            self.schedule_cursor += 1;
            self.apply_fault_event(ev);
        }
    }

    /// Applies one fault or repair event to the target router: updates
    /// the active-fault registry, reconfigures the router, discards
    /// in-flight fragments through the faulted module (§4), and queues
    /// the §4.1 status republication `handshake_latency` cycles out.
    fn apply_fault_event(&mut self, ev: FaultEvent) {
        let site = ev.site.index(self.cfg.mesh.width);
        let fault = ev.action.fault();
        match ev.action {
            FaultAction::Inject(_) => {
                self.active_faults[site].push(fault);
                self.routers[site].inject_fault(fault);
                self.emit(TraceEvent::Fault { cycle: self.cycle, node: ev.site, fault });
            }
            FaultAction::Repair(_) => {
                if let Some(pos) = self.active_faults[site].iter().position(|f| *f == fault) {
                    self.active_faults[site].remove(pos);
                }
                // Faults overlap arbitrarily (a node may carry several at
                // once), so a repair rebuilds the router's fault state
                // from scratch: clear everything, re-apply the survivors.
                self.routers[site].clear_faults();
                for i in 0..self.active_faults[site].len() {
                    let f = self.active_faults[site][i];
                    self.routers[site].inject_fault(f);
                }
                self.emit(TraceEvent::Repair { cycle: self.cycle, node: ev.site, fault });
            }
        }
        // §4: packets caught mid-wormhole through a newly faulted (or
        // just-reconfigured) module are discarded on the spot; poison
        // tails chase the fragments out of downstream routers.
        self.routers[site].purge_faulted(&mut self.slab.window(site));
        self.fault_log.push(FaultTimelineEntry {
            cycle: self.cycle,
            node: ev.site,
            repair: !ev.action.is_inject(),
            fault,
        });
        self.fault_events_total += 1;
        self.wake_and_refresh(site);
        // Live/dead status only changes here, so the flat mirror the
        // traffic generator scans every cycle is refreshed in place.
        self.node_dead[site] = self.routers[site].status().node_dead();
        if let Some(a) = self.auditor.as_deref_mut() {
            a.on_fault_event(self.cycle, site, self.neighbor_idx[site]);
        }
        // A dead node's PE is cut off entirely: flush its source queue,
        // counting each waiting packet as dropped at the source.
        if self.node_dead[site] && !self.sources[site].is_empty() {
            let flushed = std::mem::take(&mut self.sources[site]);
            self.source_total -= flushed.len();
            let node = self.coords[site];
            for flit in flushed {
                if let Some(a) = self.auditor.as_deref_mut() {
                    a.on_dropped(self.cycle, node, &flit);
                }
                if flit.kind.is_head() {
                    self.stats.dropped += 1;
                    self.per_node[site].dropped += 1;
                    self.emit(TraceEvent::Dropped { cycle: self.cycle, packet: flit.packet, node });
                }
            }
            self.last_progress = self.cycle;
        }
        self.republish_queue.push_back((self.cycle + self.cfg.handshake_latency, site));
    }

    /// Fires every queued §4.1 status republication that has come due.
    /// `handshake_latency` is constant, so the queue is naturally
    /// sorted by due cycle and a FIFO scan suffices.
    fn process_republications(&mut self) {
        let mut changed = false;
        while let Some(&(due, site)) = self.republish_queue.front() {
            if due > self.cycle {
                break;
            }
            self.republish_queue.pop_front();
            self.republish(site);
            changed = true;
        }
        if changed && self.cfg.fault_routing {
            self.rebuild_fault_view();
        }
    }

    /// Rebuilds the usable-link mask and the source-side reachability
    /// map from the just-updated published statuses (ISSUE 8). Runs
    /// only when a §4.1 republication actually landed, so the fault-
    /// aware routing view changes exactly when the neighbour views do
    /// — never earlier, never later — and carries the same bounded
    /// `handshake_latency` staleness.
    fn rebuild_fault_view(&mut self) {
        let mask = LinkMask::from_statuses(&self.topology, &self.statuses);
        self.reach = Some(ReachabilityMap::compute(&mask));
        self.mask = Some(mask);
        // The routing function just changed globally: a router wedged
        // toward a now-masked (or now-recovered) link may be asleep far
        // from the republishing site. Wake everyone so the reroute
        // happens on the same cycle under every kernel — the sequential
        // Reference kernel steps every router regardless, and digest
        // equality demands the wake-gated kernels observe the change on
        // the same cycle.
        for i in 0..self.routers.len() {
            self.wake.wake(i);
        }
    }

    /// Publishes router `site`'s current status and VC availability to
    /// its neighbours (§4.1): neighbours resynchronise their output-side
    /// credit books against the router's post-fault VC capacities, and
    /// links that just came back into service get their demux state
    /// cleared.
    fn republish(&mut self, site: usize) {
        let prev = self.statuses[site];
        let now = self.routers[site].status();
        let mut descs: Vec<VcDescriptor> = Vec::new();
        for dir in Direction::MESH {
            let Some(n) = self.neighbor_idx[site][dir.index()] else {
                continue;
            };
            if !prev.can_serve_output(dir) && now.can_serve_output(dir) {
                // The output module covering `dir` was repaired: any
                // stale mid-wormhole demux state on the input side of
                // that link belongs to packets that no longer exist.
                self.routers[site].reset_input_link(&mut self.slab.window(site), dir);
            }
            descs.clear();
            descs.extend_from_slice(self.routers[site].vcs_on_link(dir));
            self.routers[n].resync_output(&mut self.slab.window(n), dir.opposite(), &descs);
            self.wake_and_refresh(n);
        }
        self.statuses[site] = now;
        self.wake_and_refresh(site);
        if let Some(a) = self.auditor.as_deref_mut() {
            a.on_republish(self.cycle, site);
        }
    }

    /// Retransmission clock: expires overdue outstanding packets,
    /// re-enqueueing a fresh copy at the source with exponential
    /// backoff until the retry budget runs out.
    fn process_timeouts(&mut self) {
        let Some(rc) = self.cfg.recovery else { return };
        let flits_per_packet = self.cfg.router_config().num_flits;
        while let Some(&Reverse((due, id, attempt))) = self.timeouts.peek() {
            if due > self.cycle {
                break;
            }
            self.timeouts.pop();
            // Lazy deletion: entries for delivered packets or stale
            // attempts stay in the heap and are skipped here.
            let Some(&o) = self.outstanding.get(&id) else {
                continue;
            };
            if o.attempt != attempt {
                continue;
            }
            // Retry short-circuit (ISSUE 8): when the destination is
            // provably unreachable over the usable-link graph, further
            // retransmissions are a retry storm toward a dead node.
            // Fail the packet fast as unroutable instead of burning the
            // remaining retry budget; a late delivery (the destination
            // repaired mid-flight) is suppressed sink-side as a
            // duplicate, so the accounting stays closed.
            if self.reach.as_ref().is_some_and(|r| !r.reachable(o.src, o.dst)) {
                self.outstanding.remove(&id);
                self.recovery.unroutable_packets += 1;
                self.last_progress = self.cycle;
                if let Some(a) = self.auditor.as_deref_mut() {
                    a.on_unroutable(self.cycle, id);
                }
                self.emit(TraceEvent::Unroutable {
                    cycle: self.cycle,
                    packet: PacketId(id),
                    src: o.src,
                    dst: o.dst,
                });
                continue;
            }
            let src = o.src.index(self.cfg.mesh.width);
            if o.attempt >= rc.max_retries || self.routers[src].status().node_dead() {
                self.outstanding.remove(&id);
                self.recovery.abandoned_packets += 1;
                self.last_progress = self.cycle;
                if let Some(a) = self.auditor.as_deref_mut() {
                    a.on_abandoned(self.cycle, id);
                }
                continue;
            }
            let attempt = o.attempt + 1;
            let backoff =
                rc.timeout.saturating_mul(1u64 << attempt.min(20)).min(rc.backoff_cap.max(1));
            let deadline = self.cycle + backoff.max(1);
            let order = self.computer.choose_order(o.src, o.dst, &mut self.rng);
            self.sources[src].extend(Flit::packet_flit_iter(
                PacketId(id),
                o.src,
                o.dst,
                o.created_at,
                flits_per_packet,
                order,
            ));
            self.source_total += flits_per_packet as usize;
            self.wake.wake(src);
            self.outstanding.insert(id, Outstanding { attempt, deadline, ..o });
            self.timeouts.push(Reverse((deadline, id, attempt)));
            self.recovery.retransmissions += 1;
            self.last_progress = self.cycle;
        }
    }

    /// Runs one audit sweep immediately, outside the normal cadence, so
    /// mutation-style negative tests can corrupt state and observe the
    /// verdict without waiting for (or perturbing) a full step.
    #[cfg(test)]
    pub(crate) fn audit_sweep_now(&mut self) {
        if let Some(mut a) = self.auditor.take() {
            a.check(self);
            self.auditor = Some(a);
        }
    }

    /// Runs to completion and aggregates the results.
    pub fn run(mut self) -> SimResults {
        while !self.finished() {
            self.step();
        }
        self.finish_observability();
        self.results()
    }

    /// Per-node report: traffic summaries plus each router's activity
    /// and contention counters (heatmap-ready).
    pub fn node_report(&self) -> NodeReport {
        NodeReport {
            mesh: self.cfg.mesh,
            nodes: self.per_node.clone(),
            activity: self.routers.iter().map(|r| self.materialized_counters(r)).collect(),
            contention: self.routers.iter().map(|r| *r.contention()).collect(),
        }
    }

    /// A router's activity counters with the clocked-cycle count
    /// materialised. The `Soa` kernel never calls `tick_idle` on
    /// skipped routers — every router's clocked cycles always equal the
    /// simulation cycle in every kernel, so instead of touching each
    /// sleeping router per cycle the value is stamped at read-out.
    fn materialized_counters(&self, r: &AnyRouter) -> ActivityCounters {
        let mut c = *r.counters();
        if self.cfg.kernel == KernelMode::Soa {
            c.cycles = self.cycle;
        }
        c
    }

    /// The measured-latency histogram (percentile queries).
    pub fn latency_histogram(&self) -> &crate::histogram::LatencyHistogram {
        &self.stats.histogram
    }

    /// Aggregates results at the current point of the run.
    pub fn results(&self) -> SimResults {
        let profile = RouterEnergyProfile::synthesized(&self.cfg.router_config());
        let mut counters = noc_core::ActivityCounters::new();
        let mut contention = noc_core::ContentionCounters::new();
        let mut energy = EnergyBreakdown::default();
        for r in &self.routers {
            let c = self.materialized_counters(r);
            counters.merge(&c);
            contention.merge(r.contention());
            energy.merge(&energy_of(&c, &profile));
        }
        // Link energy is accounted from the same counters (one link
        // traversal per emitted flit), already inside `energy`.
        let delivered = self.stats.delivered;
        let nodes = self.cfg.mesh.nodes() as f64;
        SimResults {
            cycles: self.cycle,
            generated_packets: self.stats.generated,
            injected_packets: self.stats.injected,
            measured_injected: self.stats.measured_injected,
            delivered_packets: self.stats.delivered,
            measured_delivered: self.stats.measured_delivered,
            dropped_packets: self.stats.dropped,
            avg_latency: self.stats.avg_latency(),
            max_latency: self.stats.max_latency,
            latency_p50: self.stats.histogram.p50(),
            latency_p95: self.stats.histogram.p95(),
            latency_p99: self.stats.histogram.p99(),
            latency_p999: self.stats.histogram.p999(),
            throughput: self.stats.delivered_flits as f64 / (self.cycle.max(1) as f64 * nodes),
            classes: self.stats.class_histograms.summaries(),
            counters,
            contention,
            energy,
            energy_per_packet: if delivered == 0 { 0.0 } else { energy.total() / delivered as f64 },
            stalled: self.stalled,
            postmortem: self.postmortem.clone(),
            // Fault-aware routing reports its unroutable fail-fasts
            // through the same counters even without retransmission.
            recovery: (self.cfg.recovery.is_some() || self.cfg.fault_routing)
                .then_some(self.recovery),
            audit: self.auditor.as_ref().map(|a| a.report()),
            profile: self.profiler.as_ref().map(|p| p.report()),
        }
    }
}

/// Convenience: build and run in one call.
pub fn run(cfg: SimConfig) -> SimResults {
    Simulation::new(cfg).run()
}
