//! Experiment configuration.

use noc_core::{Coord, MeshConfig, RouterConfig, RouterKind, RoutingKind, TopologyConfig};
use noc_fault::{FaultEvent, FaultPlan, FaultSchedule};
use noc_traffic::TrafficKind;
use serde::{Deserialize, Serialize};

/// Cycle-kernel selection for [`crate::Simulation`].
///
/// All four kernels produce bit-identical [`crate::SimResults`] for a
/// given config and seed — routers draw from counter-based per-router
/// RNG streams ([`noc_core::router_rng`]), so results do not depend on
/// step order, wake-set skipping, or thread count (the determinism
/// tests, the fuzz oracle, and the `perf` benchmark binary assert
/// this). `Reference` exists as the equivalence baseline and for
/// measuring the wake-set speedup.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum KernelMode {
    /// Step every router every cycle (the pre-optimization kernel).
    Reference,
    /// Active-router scheduling: quiescent routers are skipped and only
    /// tick their clocked-cycle counter (the default).
    #[default]
    Optimized,
    /// Sharded Phase-3 kernel: the router vector is split into
    /// contiguous chunks stepped by `std::thread::scope` workers, each
    /// with its own recycled scratch; shard outputs are merged in
    /// ascending router order so results stay byte-identical at any
    /// thread count (DESIGN.md §13). Honors the wake-set like
    /// `Optimized`; worker count comes from [`SimConfig::threads`] /
    /// `NOC_THREADS` / `available_parallelism`.
    Parallel,
    /// Data-oriented single-thread kernel (DESIGN.md §15): routers step
    /// through the fused `step_hot` path (one busy-VC scan feeding the
    /// pipeline stages instead of repeated full-VC sweeps), the wake
    /// bitset is scanned word-at-a-time, link and credit delivery run
    /// as batched counting-sort passes, and idle routers' clocked-cycle
    /// counters are materialised at read-out instead of ticked. Results
    /// stay bit-identical to the other kernels.
    Soa,
}

/// Full description of one simulation run (§5.4's experimental setup).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Router architecture.
    pub router: RouterKind,
    /// Routing algorithm.
    pub routing: RoutingKind,
    /// Mesh dimensions (paper: 8×8). With a non-mesh
    /// [`SimConfig::topology`] this is the topology's bounding grid and
    /// must equal `topology.grid(mesh)`.
    pub mesh: MeshConfig,
    /// Network topology (ISSUE 9). The default [`TopologyConfig::Mesh`]
    /// reproduces pre-topology behaviour byte for byte; `Torus`,
    /// `Circulant` and `Chiplet` reshape the port map, link delays and
    /// routing while every kernel, the fault engine, the audit layer and
    /// the energy pipeline run unchanged.
    #[serde(default)]
    pub topology: TopologyConfig,
    /// Workload family.
    pub traffic: TrafficKind,
    /// Offered load in flits/node/cycle (the paper's x-axis).
    pub injection_rate: f64,
    /// Unmeasured warm-up packets (paper: 20 000).
    pub warmup_packets: u64,
    /// Measured packets injected after warm-up (paper: 1 000 000).
    pub measured_packets: u64,
    /// RNG seed (traffic, arbitration tie-breaks, fault sites).
    pub seed: u64,
    /// Permanent faults injected before the first cycle.
    pub faults: FaultPlan,
    /// Hard wall-clock cap in cycles (safety net).
    pub max_cycles: u64,
    /// Terminate after this many cycles without a delivery or drop once
    /// generation has finished (the paper's "long period of inactivity").
    pub stall_window: u64,
    /// Whether the RoCo router uses the Mirroring-Effect allocator
    /// (ablation toggle; ignored by the other architectures).
    pub mirror_allocator: bool,
    /// Override of the paper's VCs-per-port (generic router ablations;
    /// the RoCo Table-1 layout requires exactly 3).
    pub vcs_per_port: Option<u8>,
    /// Override of the paper's per-VC buffer depth.
    pub buffer_depth: Option<u8>,
    /// Whether heads may bid for the switch in their VA cycle
    /// (speculative 2-stage pipeline; `false` = 3-stage ablation).
    pub speculative_sa: bool,
    /// Interval-sampler window in cycles: every `sample_window` cycles
    /// the simulation snapshots network-wide and per-router time-series
    /// into the attached `MetricsSink` (no-op without one).
    #[serde(default = "default_sample_window")]
    pub sample_window: u64,
    /// Override of the baseline routers' blocked-packet watchdog timeout
    /// (`u64::MAX` disables the watchdog so fault-blocked packets wedge
    /// forever; used to exercise the stall detector and post-mortem).
    #[serde(default)]
    pub block_timeout: Option<u64>,
    /// Which cycle kernel drives the routers (results are identical
    /// either way; see [`KernelMode`]).
    #[serde(default)]
    pub kernel: KernelMode,
    /// Worker-thread count for [`KernelMode::Parallel`] (ignored by the
    /// sequential kernels). `None` defers to the `NOC_THREADS`
    /// environment variable, then to `available_parallelism` — see
    /// [`crate::worker_threads`]. Results never depend on this value.
    #[serde(default)]
    pub threads: Option<usize>,
    /// Timed mid-run fault/repair events, applied when their cycle
    /// arrives (empty = static faults only). The static `faults` plan
    /// still fires before cycle 0, exactly as before.
    #[serde(default)]
    pub schedule: FaultSchedule,
    /// Cycles between a mid-run fault (or repair) taking effect inside
    /// a router and its updated availability reaching the neighbours
    /// through the §4.1 handshake signals. Until the republication
    /// lands, neighbours keep acting on the stale status. `0` models an
    /// ideal instant handshake.
    #[serde(default = "default_handshake_latency")]
    pub handshake_latency: u64,
    /// End-to-end recovery: source network interfaces retransmit
    /// timed-out packets and sinks suppress late duplicates. `None`
    /// (the default) disables the whole layer.
    #[serde(default)]
    pub recovery: Option<RecoveryConfig>,
    /// Fault-aware adaptive routing (ISSUE 8): when `true`, the
    /// published §4.1 statuses are condensed into a network-wide
    /// [`noc_core::LinkMask`] handed to every router's route
    /// computation (masked candidate sets + the west-first escape
    /// path), and a [`noc_core::ReachabilityMap`] lets sources fail
    /// packets toward unreachable destinations fast as `unroutable`.
    /// `false` (the default) keeps the fault-oblivious behaviour
    /// byte-identical to earlier releases.
    #[serde(default)]
    pub fault_routing: bool,
    /// Runtime invariant auditing: when set, an [`crate::Auditor`] runs
    /// inside every [`crate::Simulation::step`], checking flit
    /// conservation, credit-book consistency, VC state-machine legality
    /// and fault-status coherence. `None` (the default) keeps the hot
    /// path audit-free.
    #[serde(default)]
    pub audit: Option<AuditConfig>,
    /// Simulator self-profiling: when set, per-phase wall-time timers,
    /// wake-set/shard-balance gauges and steady-state allocation
    /// counters run inside every [`crate::Simulation::step`], and
    /// [`crate::SimResults`] carries a [`crate::ProfileReport`].
    /// Strictly read-only — results and digests are identical with
    /// profiling on or off.
    #[serde(default)]
    pub profile: bool,
}

/// Serde default for [`SimConfig::sample_window`].
fn default_sample_window() -> u64 {
    100
}

/// Serde default for [`SimConfig::handshake_latency`].
fn default_handshake_latency() -> u64 {
    4
}

/// Source-retransmission parameters for the end-to-end recovery layer.
///
/// A source keeps every injected packet in an outstanding table until
/// the sink's delivery is observed. A packet that stays outstanding for
/// `timeout` cycles is re-sent from the network interface; each retry
/// doubles the wait (capped at `backoff_cap`) until `max_retries`
/// attempts have failed, after which the packet is abandoned and
/// counted in [`crate::RecoveryStats::abandoned_packets`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryConfig {
    /// Cycles a packet may stay outstanding before its first
    /// retransmission.
    pub timeout: u64,
    /// Maximum number of retransmission attempts per packet.
    pub max_retries: u32,
    /// Upper bound on the exponentially backed-off timeout.
    pub backoff_cap: u64,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig { timeout: 200, max_retries: 4, backoff_cap: 2_000 }
    }
}

/// Parameters of the runtime invariant auditor (see `crate::audit`).
///
/// Per-flit checks (stream ordering, the conservation ledger, status
/// coherence) always run every cycle while auditing is on; `interval`
/// only paces the global state sweep (credit books, VC legality,
/// quiescence), which walks every router.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AuditConfig {
    /// Cycles between global invariant sweeps (1 = every cycle).
    #[serde(default = "default_audit_interval")]
    pub interval: u64,
    /// At most this many violations are recorded verbatim in the
    /// report (all violations are still *counted*).
    #[serde(default = "default_audit_max_recorded")]
    pub max_recorded: usize,
}

/// Serde default for [`AuditConfig::interval`].
fn default_audit_interval() -> u64 {
    1
}

/// Serde default for [`AuditConfig::max_recorded`].
fn default_audit_max_recorded() -> usize {
    16
}

impl Default for AuditConfig {
    fn default() -> Self {
        AuditConfig {
            interval: default_audit_interval(),
            max_recorded: default_audit_max_recorded(),
        }
    }
}

impl SimConfig {
    /// A scaled-down version of the paper's setup that regenerates every
    /// figure in seconds: 1 000 warm-up + 20 000 measured packets on an
    /// 8×8 mesh. Scale `warmup_packets`/`measured_packets` up to
    /// 20 000 / 1 000 000 for the full-size runs.
    pub fn paper_scaled(router: RouterKind, routing: RoutingKind, traffic: TrafficKind) -> Self {
        SimConfig {
            router,
            routing,
            mesh: MeshConfig::new(8, 8),
            topology: TopologyConfig::Mesh,
            traffic,
            injection_rate: 0.3,
            warmup_packets: 1_000,
            measured_packets: 20_000,
            seed: 0xC0C0,
            faults: FaultPlan::none(),
            max_cycles: 2_000_000,
            stall_window: 10_000,
            mirror_allocator: true,
            vcs_per_port: None,
            buffer_depth: None,
            speculative_sa: true,
            sample_window: default_sample_window(),
            block_timeout: None,
            kernel: KernelMode::default(),
            threads: None,
            schedule: FaultSchedule::none(),
            handshake_latency: default_handshake_latency(),
            recovery: None,
            fault_routing: false,
            audit: None,
            profile: false,
        }
    }

    /// The per-router configuration implied by this run.
    pub fn router_config(&self) -> RouterConfig {
        let mut cfg = RouterConfig::paper(self.router, self.routing);
        cfg.mirror_allocator = self.mirror_allocator;
        if let Some(v) = self.vcs_per_port {
            cfg.vcs_per_port = v;
        }
        if let Some(d) = self.buffer_depth {
            cfg.buffer_depth = d;
        }
        cfg.speculative_sa = self.speculative_sa;
        if let Some(t) = self.block_timeout {
            cfg.block_timeout = t;
        }
        cfg
    }

    /// Selects the network topology (builder style), snapping the mesh
    /// dimensions to the topology's bounding grid so flat node indexing
    /// stays coherent.
    pub fn with_topology(mut self, topology: TopologyConfig) -> Self {
        self.topology = topology;
        self.mesh = topology.grid(self.mesh);
        self
    }

    /// Sets the injection rate (builder style).
    pub fn with_rate(mut self, rate: f64) -> Self {
        self.injection_rate = rate;
        self
    }

    /// Sets the RNG seed (builder style).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Selects the cycle kernel (builder style).
    pub fn with_kernel(mut self, kernel: KernelMode) -> Self {
        self.kernel = kernel;
        self
    }

    /// Requests an explicit worker-thread count for the parallel kernel
    /// (builder style). Results are identical at any thread count.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Sets the fault plan (builder style).
    pub fn with_faults(mut self, faults: FaultPlan) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the mid-run fault/repair schedule (builder style).
    pub fn with_schedule(mut self, schedule: FaultSchedule) -> Self {
        self.schedule = schedule;
        self
    }

    /// Enables end-to-end recovery (builder style).
    pub fn with_recovery(mut self, recovery: RecoveryConfig) -> Self {
        self.recovery = Some(recovery);
        self
    }

    /// Enables fault-aware adaptive routing with reachability-aware
    /// recovery (builder style). See [`SimConfig::fault_routing`].
    pub fn with_fault_routing(mut self) -> Self {
        self.fault_routing = true;
        self
    }

    /// Enables runtime invariant auditing (builder style).
    pub fn with_audit(mut self, audit: AuditConfig) -> Self {
        self.audit = Some(audit);
        self
    }

    /// Enables the simulator self-profiler (builder style). Results
    /// and digests are identical with profiling on or off.
    pub fn with_profile(mut self) -> Self {
        self.profile = true;
        self
    }

    /// Total packets to generate.
    pub fn total_packets(&self) -> u64 {
        self.warmup_packets + self.measured_packets
    }
}

/// Re-targets an existing config onto `topology`, adjusting whatever
/// else must move with it (unlike [`SimConfig::with_topology`], which
/// only snaps the grid):
///
/// * a torus grows the mesh to at least 3×3 (rings need three nodes to
///   wrap meaningfully), and the mesh then snaps to the topology's
///   bounding grid;
/// * wraparound topologies (torus, circulant) force the Generic router
///   with deterministic XY routing and ≥ 2 VCs per port — the dateline
///   scheme's support envelope ([`noc_core::TopologyOps::check_support`]);
/// * fault-plan and fault-schedule sites are remapped onto the new node
///   set by flat index modulo the node count, so a campaign drawn for
///   an 8×8 mesh keeps striking *somewhere* on a 13-node circulant
///   instead of panicking off-grid.
///
/// This is the transform behind the CI topology matrix
/// ([`apply_env_topology`]) and the fuzz harness's topology draw.
pub fn retarget_topology(cfg: &mut SimConfig, topology: TopologyConfig) {
    if topology == TopologyConfig::Torus {
        cfg.mesh = MeshConfig::new(cfg.mesh.width.max(3), cfg.mesh.height.max(3));
    }
    let old_width = cfg.mesh.width;
    let old_nodes = cfg.mesh.nodes();
    cfg.topology = topology;
    cfg.mesh = topology.grid(cfg.mesh);
    if matches!(topology, TopologyConfig::Torus | TopologyConfig::Circulant { .. }) {
        cfg.router = RouterKind::Generic;
        cfg.routing = RoutingKind::Xy;
        if cfg.router_config().vcs_per_port < 2 {
            cfg.vcs_per_port = Some(2);
        }
    }
    let nodes = cfg.mesh.nodes();
    if cfg.mesh.width != old_width || nodes != old_nodes {
        let remap = |site: Coord| Coord::from_index(site.index(old_width) % nodes, cfg.mesh.width);
        for (site, _) in cfg.faults.faults.iter_mut() {
            *site = remap(*site);
        }
        if !cfg.schedule.is_empty() {
            let mut remapped = FaultSchedule::none();
            for &ev in cfg.schedule.events() {
                remapped.push(FaultEvent { site: remap(ev.site), ..ev });
            }
            cfg.schedule = remapped;
        }
    }
}

/// Applies the `NOC_TOPOLOGY` environment selection to `cfg` — the hook
/// the CI topology matrix uses to sweep the kernel-equivalence and
/// thread-invariance suites across all four topologies without
/// duplicating their config tables (ISSUE 9).
///
/// Recognised values: the bare names `mesh`, `torus`, `circulant` and
/// `chiplet` (with matrix-friendly defaults: C(13; 1, 5) for the
/// circulant; the mesh factorised into up to 2×2 chips with a 3-cycle
/// die-to-die delay for the chiplet), or any full
/// [`TopologyConfig::parse_spec`] spec such as `circulant:25,1,7` or
/// `chiplet:2x2,4x4,3`. Unset or empty leaves `cfg` untouched. The
/// re-targeting semantics are those of [`retarget_topology`].
///
/// # Panics
///
/// Panics on an unparseable spec: in CI a typo in the matrix must fail
/// the job, not silently run the mesh again.
pub fn apply_env_topology(cfg: &mut SimConfig) {
    let Ok(raw) = std::env::var("NOC_TOPOLOGY") else { return };
    let spec = raw.trim();
    if spec.is_empty() {
        return;
    }
    let topology = match spec {
        "circulant" => TopologyConfig::Circulant { nodes: 13, s1: 1, s2: 5 },
        "chiplet" => {
            let chips_x = if cfg.mesh.width % 2 == 0 { 2 } else { 1 };
            let chips_y = if cfg.mesh.height % 2 == 0 { 2 } else { 1 };
            TopologyConfig::Chiplet {
                chips_x,
                chips_y,
                chip_width: cfg.mesh.width / chips_x,
                chip_height: cfg.mesh.height / chips_y,
                d2d_delay: 3,
            }
        }
        spec => {
            TopologyConfig::parse_spec(spec).unwrap_or_else(|e| panic!("NOC_TOPOLOGY={spec}: {e}"))
        }
    };
    retarget_topology(cfg, topology);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scaled_defaults() {
        let c = SimConfig::paper_scaled(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform);
        assert_eq!(c.mesh.nodes(), 64);
        assert_eq!(c.total_packets(), 21_000);
        assert!(c.faults.is_empty());
        assert!(c.schedule.is_empty());
        assert!(c.recovery.is_none());
        assert!(!c.fault_routing, "fault-aware routing is opt-in");
        assert_eq!(c.router_config().buffer_depth, 5);
    }

    #[test]
    fn builders() {
        let c = SimConfig::paper_scaled(RouterKind::Generic, RoutingKind::Xy, TrafficKind::Uniform)
            .with_rate(0.1)
            .with_seed(7)
            .with_kernel(KernelMode::Parallel)
            .with_threads(4);
        assert_eq!(c.injection_rate, 0.1);
        assert_eq!(c.seed, 7);
        assert_eq!(c.kernel, KernelMode::Parallel);
        assert_eq!(c.threads, Some(4));
        assert_eq!(c.router_config().buffer_depth, 4);
    }

    #[test]
    fn topology_builder_snaps_mesh_to_grid() {
        let c = SimConfig::paper_scaled(RouterKind::Generic, RoutingKind::Xy, TrafficKind::Uniform);
        assert_eq!(c.topology, TopologyConfig::Mesh, "mesh topology is the default");
        let c = c.with_topology(TopologyConfig::Circulant { nodes: 13, s1: 1, s2: 5 });
        assert_eq!(c.mesh, MeshConfig::new(13, 1));
        let c = SimConfig::paper_scaled(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform)
            .with_topology(TopologyConfig::Chiplet {
                chips_x: 2,
                chips_y: 2,
                chip_width: 4,
                chip_height: 4,
                d2d_delay: 3,
            });
        assert_eq!(c.mesh, MeshConfig::new(8, 8));
    }

    #[test]
    fn retarget_forces_wraparound_support_and_remaps_faults() {
        use noc_core::{ComponentFault, TopologyOps};
        let mut c =
            SimConfig::paper_scaled(RouterKind::RoCo, RoutingKind::Adaptive, TrafficKind::Uniform);
        let fault = ComponentFault::new(noc_core::FaultComponent::Crossbar, noc_core::Axis::X);
        // A site valid on the 8×8 mesh but off-grid on a 13×1 strip.
        c.faults = FaultPlan::single(Coord::new(7, 7), fault);
        c.schedule.push_permanent(50, Coord::new(7, 7), fault);
        retarget_topology(&mut c, TopologyConfig::Circulant { nodes: 13, s1: 1, s2: 5 });
        assert_eq!(c.mesh, MeshConfig::new(13, 1));
        assert_eq!(c.router, RouterKind::Generic, "wraparound forces Generic");
        assert_eq!(c.routing, RoutingKind::Xy, "wraparound forces XY");
        assert!(c.router_config().vcs_per_port >= 2, "dateline scheme needs 2 VCs");
        let site = c.faults.faults[0].0;
        assert_eq!(site, Coord::from_index(63 % 13, 13), "site remapped by index mod nodes");
        assert_eq!(c.schedule.events()[0].site, site);
        // Resolves and passes the support check end to end.
        let topo = c.topology.resolve(c.mesh).unwrap();
        topo.check_support(c.router, c.routing, c.router_config().vcs_per_port as usize).unwrap();
    }

    #[test]
    fn retarget_torus_grows_small_grids() {
        let mut c =
            SimConfig::paper_scaled(RouterKind::Generic, RoutingKind::Xy, TrafficKind::Uniform);
        c.mesh = MeshConfig::new(2, 2);
        retarget_topology(&mut c, TopologyConfig::Torus);
        assert_eq!(c.mesh, MeshConfig::new(3, 3));
        assert!(c.topology.resolve(c.mesh).is_ok());
    }

    #[test]
    fn default_kernel_is_optimized_with_unset_threads() {
        let c = SimConfig::paper_scaled(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform);
        assert_eq!(c.kernel, KernelMode::Optimized);
        assert_eq!(c.threads, None);
    }
}
