//! The simulator self-profiler (opt-in via [`crate::SimConfig`]'s
//! `profile` flag).
//!
//! With four cycle kernels sharing one step loop, "where does the
//! wall time go" is a real question: per-phase timers bracket the
//! sections of [`crate::Simulation::step`], the wake-set gauge records
//! how many routers each cycle actually steps, the parallel kernel
//! reports shard load imbalance and the coordinator's absorb (merge)
//! time, and a steady-state allocation counter watches the recycled
//! in-flight buffers for capacity growth after warm-up.
//!
//! The profiler is strictly read-only with respect to the simulated
//! machine: it observes wall clocks and already-computed sizes, never
//! an RNG, a router or a queue. [`crate::SimResults::digest`] is
//! therefore byte-identical with profiling on or off (asserted by the
//! `observability` test suite across all four kernels), and the
//! [`ProfileReport`] — being nondeterministic wall-clock data — is
//! excluded from the digest, the golden corpus and every byte-compared
//! artifact.

use crate::json::{write_f64, write_key};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::time::Instant;

/// The instrumented sections of one simulation cycle, in step order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Phase {
    /// Phase 0: scheduled faults, republications, recovery timeouts.
    Faults,
    /// Phase 1a: link flit delivery (batched under the `Soa` kernel).
    Links,
    /// Phase 1b: credit delivery (batched under the `Soa` kernel).
    Credits,
    /// Phase 2: traffic generation and injection.
    Traffic,
    /// Phase 3: router pipeline steps (all kernels).
    Routers,
    /// Stall detection plus the periodic audit sweep.
    Audit,
    /// Interval-sampler window flushes.
    Metrics,
}

const PHASE_COUNT: usize = 7;

impl Phase {
    fn index(self) -> usize {
        self as usize
    }
}

/// Wall-time and load-balance accumulators, attached to a
/// [`crate::Simulation`] when profiling is enabled.
#[derive(Debug)]
pub(crate) struct Profiler {
    started: Instant,
    phase_ns: [u64; PHASE_COUNT],
    absorb_ns: u64,
    cycles: u64,
    stepped_total: u64,
    stepped_max: u64,
    routers: u64,
    shard_cycles: u64,
    imbalance_sum: f64,
    capacity_events: u64,
    flit_capacity: usize,
    credit_capacity: usize,
    wake_words_occupied: u64,
    wake_words_total: u64,
}

impl Profiler {
    /// Starts the run clock.
    pub(crate) fn new() -> Self {
        Profiler {
            started: Instant::now(),
            phase_ns: [0; PHASE_COUNT],
            absorb_ns: 0,
            cycles: 0,
            stepped_total: 0,
            stepped_max: 0,
            routers: 0,
            shard_cycles: 0,
            imbalance_sum: 0.0,
            capacity_events: 0,
            flit_capacity: 0,
            credit_capacity: 0,
            wake_words_occupied: 0,
            wake_words_total: 0,
        }
    }

    /// Charges the time since `since` to `phase`.
    pub(crate) fn add_phase(&mut self, phase: Phase, since: Instant) {
        self.phase_ns[phase.index()] += since.elapsed().as_nanos() as u64;
    }

    /// Charges the time since `since` to the parallel kernel's
    /// absorb/merge section (also part of the `Routers` phase).
    pub(crate) fn add_absorb(&mut self, since: Instant) {
        self.absorb_ns += since.elapsed().as_nanos() as u64;
    }

    /// Records the wake-set occupancy of one cycle: `stepped` of
    /// `routers` routers were due to step.
    pub(crate) fn record_wake(&mut self, stepped: u64, routers: u64) {
        self.stepped_total += stepped;
        self.stepped_max = self.stepped_max.max(stepped);
        self.routers = routers;
    }

    /// Records the wake bitset's word occupancy of one cycle:
    /// `occupied` of `words` `u64` words held at least one awake bit.
    /// A low ratio means the word-skipping scan of the `Soa` kernel
    /// jumps over most of the mesh in one comparison per 64 routers.
    pub(crate) fn record_wake_words(&mut self, occupied: u64, words: u64) {
        self.wake_words_occupied += occupied;
        self.wake_words_total += words;
    }

    /// Records one parallel-kernel cycle's shard balance: the busiest
    /// shard stepped `max_stepped` routers of `total_stepped` across
    /// `shards` shards.
    pub(crate) fn record_shards(&mut self, max_stepped: u64, total_stepped: u64, shards: u64) {
        if total_stepped == 0 || shards == 0 {
            return;
        }
        let mean = total_stepped as f64 / shards as f64;
        self.shard_cycles += 1;
        self.imbalance_sum += max_stepped as f64 / mean;
    }

    /// Ends one cycle: advances the cycle count and watches the
    /// recycled in-flight buffers for steady-state capacity growth
    /// (the first observation seeds the watermark without counting).
    pub(crate) fn end_cycle(&mut self, flit_capacity: usize, credit_capacity: usize) {
        if self.cycles > 0 {
            if flit_capacity > self.flit_capacity {
                self.capacity_events += 1;
            }
            if credit_capacity > self.credit_capacity {
                self.capacity_events += 1;
            }
        }
        self.flit_capacity = self.flit_capacity.max(flit_capacity);
        self.credit_capacity = self.credit_capacity.max(credit_capacity);
        self.cycles += 1;
    }

    /// Snapshots the accumulators into a report.
    pub(crate) fn report(&self) -> ProfileReport {
        let s = |ns: u64| ns as f64 / 1e9;
        let stepped_mean =
            if self.cycles == 0 { 0.0 } else { self.stepped_total as f64 / self.cycles as f64 };
        ProfileReport {
            cycles: self.cycles,
            wall_s: self.started.elapsed().as_nanos() as f64 / 1e9,
            faults_s: s(self.phase_ns[Phase::Faults.index()]),
            links_s: s(self.phase_ns[Phase::Links.index()]),
            credits_s: s(self.phase_ns[Phase::Credits.index()]),
            traffic_s: s(self.phase_ns[Phase::Traffic.index()]),
            routers_s: s(self.phase_ns[Phase::Routers.index()]),
            audit_s: s(self.phase_ns[Phase::Audit.index()]),
            metrics_s: s(self.phase_ns[Phase::Metrics.index()]),
            absorb_s: s(self.absorb_ns),
            stepped_mean,
            stepped_max: self.stepped_max,
            wake_fraction: if self.routers == 0 { 0.0 } else { stepped_mean / self.routers as f64 },
            shard_imbalance: if self.shard_cycles == 0 {
                0.0
            } else {
                self.imbalance_sum / self.shard_cycles as f64
            },
            wake_word_occupancy: if self.wake_words_total == 0 {
                0.0
            } else {
                self.wake_words_occupied as f64 / self.wake_words_total as f64
            },
            capacity_growth_events: self.capacity_events,
        }
    }
}

/// The simulator self-profile of one run: per-phase wall time,
/// wake-set occupancy, parallel-kernel load balance and steady-state
/// allocation behaviour.
///
/// All `*_s` fields are wall-clock seconds and vary run to run; the
/// report is diagnostic output only and never enters digests, goldens
/// or byte-compared campaign JSON.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ProfileReport {
    /// Cycles the profiler observed.
    pub cycles: u64,
    /// Wall time from simulation construction to report.
    pub wall_s: f64,
    /// Phase 0: scheduled faults, republications, recovery timeouts.
    pub faults_s: f64,
    /// Phase 1a: link flit delivery.
    pub links_s: f64,
    /// Phase 1b: credit delivery.
    pub credits_s: f64,
    /// Phase 2: traffic generation and injection.
    pub traffic_s: f64,
    /// Phase 3: router pipeline steps (includes `absorb_s`).
    pub routers_s: f64,
    /// Stall detection plus periodic audit sweeps.
    pub audit_s: f64,
    /// Interval-sampler window flushes.
    pub metrics_s: f64,
    /// Parallel kernel only: coordinator time spent absorbing shard
    /// outputs after the join (the serial merge section).
    pub absorb_s: f64,
    /// Mean routers stepped per cycle (wake-set occupancy).
    pub stepped_mean: f64,
    /// Largest number of routers stepped in any one cycle.
    pub stepped_max: u64,
    /// `stepped_mean` as a fraction of the mesh (1.0 = every router
    /// steps every cycle, as under the Reference kernel).
    pub wake_fraction: f64,
    /// Parallel kernel only: mean over cycles of busiest-shard stepped
    /// count divided by the per-shard mean (1.0 = perfectly balanced;
    /// 0 when the parallel kernel never ran).
    pub shard_imbalance: f64,
    /// Mean fraction of wake-bitset `u64` words holding at least one
    /// awake bit (how much of the mesh the word-skipping scan touches;
    /// 1.0 = every word occupied every cycle).
    pub wake_word_occupancy: f64,
    /// Times a recycled in-flight buffer grew its capacity after the
    /// first observed cycle (0 = allocation-free steady state).
    pub capacity_growth_events: u64,
}

impl ProfileReport {
    /// Multi-line human-readable report (the `noc run --profile` view).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "self-profile ({} cycles, {:.3}s wall)", self.cycles, self.wall_s);
        let _ = writeln!(
            out,
            "  phases        faults {:.3}s | links {:.3}s | credits {:.3}s | traffic {:.3}s \
             | routers {:.3}s | audit {:.3}s | metrics {:.3}s",
            self.faults_s,
            self.links_s,
            self.credits_s,
            self.traffic_s,
            self.routers_s,
            self.audit_s,
            self.metrics_s
        );
        let _ = writeln!(
            out,
            "  wake set      mean {:.1} routers/cycle ({:.1}% of mesh), max {}, \
             {:.1}% of words occupied",
            self.stepped_mean,
            self.wake_fraction * 100.0,
            self.stepped_max,
            self.wake_word_occupancy * 100.0
        );
        if self.shard_imbalance > 0.0 {
            let _ = writeln!(
                out,
                "  parallel      shard imbalance {:.3} (1.0 = balanced), absorb {:.3}s",
                self.shard_imbalance, self.absorb_s
            );
        }
        let _ = writeln!(
            out,
            "  allocation    {} steady-state capacity growth event(s)",
            self.capacity_growth_events
        );
        out
    }

    /// Serializes the report as one JSON object (the `profile` section
    /// of BENCH_sim_throughput.json).
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        let mut first = true;
        write_key(&mut out, &mut first, "cycles");
        let _ = write!(out, "{}", self.cycles);
        for (key, value) in [
            ("wall_s", self.wall_s),
            ("faults_s", self.faults_s),
            ("links_s", self.links_s),
            ("credits_s", self.credits_s),
            ("traffic_s", self.traffic_s),
            ("routers_s", self.routers_s),
            ("audit_s", self.audit_s),
            ("metrics_s", self.metrics_s),
            ("absorb_s", self.absorb_s),
            ("stepped_mean", self.stepped_mean),
            ("wake_fraction", self.wake_fraction),
            ("shard_imbalance", self.shard_imbalance),
            ("wake_word_occupancy", self.wake_word_occupancy),
        ] {
            write_key(&mut out, &mut first, key);
            write_f64(&mut out, value);
        }
        write_key(&mut out, &mut first, "stepped_max");
        let _ = write!(out, "{}", self.stepped_max);
        write_key(&mut out, &mut first, "capacity_growth_events");
        let _ = write!(out, "{}", self.capacity_growth_events);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    #[test]
    fn accumulates_phases_and_wake_set() {
        let mut p = Profiler::new();
        let t = Instant::now();
        p.add_phase(Phase::Routers, t);
        p.add_absorb(t);
        p.record_wake(3, 16);
        p.record_wake_words(1, 4);
        p.end_cycle(10, 10);
        p.record_wake(5, 16);
        p.record_wake_words(2, 4);
        p.end_cycle(10, 10);
        let r = p.report();
        assert_eq!(r.cycles, 2);
        assert_eq!(r.stepped_max, 5);
        assert!((r.stepped_mean - 4.0).abs() < 1e-12);
        assert!((r.wake_fraction - 0.25).abs() < 1e-12);
        assert!((r.wake_word_occupancy - 3.0 / 8.0).abs() < 1e-12);
        assert_eq!(r.capacity_growth_events, 0);
        assert_eq!(r.shard_imbalance, 0.0);
    }

    #[test]
    fn counts_capacity_growth_after_first_cycle() {
        let mut p = Profiler::new();
        p.end_cycle(64, 64); // seeds the watermark, no event
        p.end_cycle(64, 64);
        p.end_cycle(128, 64); // flit buffer grew
        p.end_cycle(128, 96); // credit buffer grew
        assert_eq!(p.report().capacity_growth_events, 2);
    }

    #[test]
    fn shard_imbalance_averages_over_cycles() {
        let mut p = Profiler::new();
        p.record_shards(4, 8, 2); // max 4 vs mean 4 → 1.0
        p.record_shards(6, 8, 2); // max 6 vs mean 4 → 1.5
        p.record_shards(0, 0, 2); // idle cycle: ignored
        assert!((p.report().shard_imbalance - 1.25).abs() < 1e-12);
    }

    #[test]
    fn report_serializes_to_parseable_json() {
        let mut p = Profiler::new();
        p.record_wake(2, 4);
        p.end_cycle(8, 8);
        let r = p.report();
        let v = Json::parse(&r.to_json()).expect("valid JSON");
        assert_eq!(v.get("cycles").unwrap().as_u64(), Some(1));
        assert_eq!(v.get("stepped_max").unwrap().as_u64(), Some(2));
        assert!(v.get("wall_s").unwrap().as_f64().is_some());
        assert!(v.get("credits_s").unwrap().as_f64().is_some());
        assert!(v.get("wake_word_occupancy").unwrap().as_f64().is_some());
        assert!(r.render().contains("wake set"));
    }
}
