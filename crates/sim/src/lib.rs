//! # noc-sim
//!
//! The flit-level, cycle-accurate NoC simulator of §5.1: a network of
//! routers (generic, Path-Sensitive or RoCo) on a configurable topology
//! (mesh, torus, ring circulant, or chiplet mesh — see
//! [`noc_core::TopologyConfig`]), credit-based virtual-channel flow
//! control, wormhole switching, single-cycle links (multi-cycle on
//! chiplet die-to-die boundaries), deterministic seeded execution,
//! warm-up + measurement phases, fault injection, and full
//! activity/energy/contention accounting.
//!
//! # Examples
//!
//! ```
//! use noc_core::{RouterKind, RoutingKind};
//! use noc_sim::{run, SimConfig};
//! use noc_traffic::TrafficKind;
//!
//! let mut cfg = SimConfig::paper_scaled(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform);
//! cfg.warmup_packets = 50;
//! cfg.measured_packets = 200;
//! let results = run(cfg);
//! assert_eq!(results.completion_probability(), 1.0); // fault-free: everything arrives
//! assert!(results.avg_latency > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod audit;
mod config;
pub mod export;
mod flow;
mod histogram;
pub mod json;
mod metrics;
mod network;
mod postmortem;
mod profile;
mod report;
mod stats;
mod threads;
mod trace;

pub use audit::{AuditKind, AuditReport, AuditViolation, Auditor};
pub use config::{
    apply_env_topology, retarget_topology, AuditConfig, KernelMode, RecoveryConfig, SimConfig,
};
pub use export::{Metric, MetricKind, Registry};
pub use flow::{
    check_slos, parse_slos, ClassHistograms, ClassLatency, FlowClass, SloMetric, SloSpec,
    SloViolation,
};
pub use histogram::LatencyHistogram;
pub use metrics::{IntervalSample, JsonlMetricsSink, MetricsSink, RouterWindow, VecMetricsSink};
pub use network::{neighbor_table, run, Simulation};
pub use postmortem::{
    CreditLine, FaultTimelineEntry, RouterDiagnosis, StallPostmortem, WedgedPacket,
};
pub use profile::ProfileReport;
pub use report::{render_heatmap, NodeReport, NodeSummary};
pub use stats::{RecoveryStats, SimResults, StatsCollector};
pub use threads::worker_threads;
pub use trace::{
    replay_entries, CsvTraceSink, JsonlTraceSink, PerfettoTraceSink, TraceEvent, TraceSink,
    VecTraceSink,
};
