//! Stall post-mortems: a structured diagnosis emitted when the
//! inactivity detector fires.
//!
//! When generation has finished, flits remain in the system, and no
//! delivery or drop has happened for `stall_window` cycles, the
//! simulation declares itself stalled. Instead of just setting a flag,
//! it now freezes the network state into a [`StallPostmortem`]: every
//! wedged packet with its node/VC and pipeline phase, per-router
//! blocked/buffered counts, the full credit map, and — via the
//! `noc-deadlock` crate's cycle detector run over the *observed*
//! wait-for edges — a suspected deadlock loop when one exists.

use crate::json::{write_key, write_str};
use noc_core::{ComponentFault, Coord, Cycle, Direction, PacketId, VcPhase};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// One entry of the fault/repair history leading up to a stall.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultTimelineEntry {
    /// Cycle the event took effect.
    pub cycle: Cycle,
    /// Afflicted router.
    pub node: Coord,
    /// `true` for a repair, `false` for a fault injection.
    pub repair: bool,
    /// The fault injected or repaired.
    pub fault: ComponentFault,
}

/// One packet (or packet fragment) stuck in the network at stall time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct WedgedPacket {
    /// The packet at the head of the VC (`None` for a headless fragment
    /// whose head was dropped elsewhere).
    pub packet: Option<PacketId>,
    /// Router holding the flits.
    pub node: Coord,
    /// Input side of the occupied VC.
    pub input_side: Direction,
    /// VC index on that link.
    pub vc: u8,
    /// Pipeline phase the VC is frozen in.
    pub phase: VcPhase,
    /// Output the VC wants (or holds), when known.
    pub out: Option<Direction>,
    /// Flits buffered in the VC.
    pub buffered: usize,
    /// Whether the VC is `Active` but starved of downstream credits.
    pub credit_starved: bool,
    /// The cycle a `Blocked` VC wedged at.
    pub blocked_since: Option<Cycle>,
    /// Destination of the head flit, when one is buffered.
    #[serde(default)]
    pub dst: Option<Coord>,
    /// Topology-native rendering of `dst` (ISSUE 9): `(x,y)` on a
    /// mesh/torus, `#i` on a circulant, `chip(cx,cy)/(lx,ly)` on a
    /// chiplet mesh. `None` in diagnoses recorded before the topology
    /// layer existed; the renderer then falls back to the raw grid
    /// coordinate.
    #[serde(default)]
    pub dst_name: Option<String>,
    /// `unroutable destination` diagnosis class (ISSUE 8): the packet's
    /// destination is unreachable over the usable-link graph at stall
    /// time — the stream is wedged behind dead links, not a deadlock.
    /// Only ever `true` when fault-aware routing is enabled.
    #[serde(default)]
    pub unroutable_dst: bool,
}

/// Per-router summary of the wedged state.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RouterDiagnosis {
    /// Mesh position.
    pub node: Coord,
    /// Lifetime fault-blocked packets at this router.
    pub blocked_packets: u64,
    /// Flits buffered at stall time.
    pub buffered: u64,
    /// Lifetime credit-starved cycles.
    pub credit_stall_cycles: u64,
}

/// Credits remaining on one output link at stall time.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CreditLine {
    /// Upstream router.
    pub node: Coord,
    /// Its output direction.
    pub output: Direction,
    /// Per-downstream-VC remaining credits, in link order.
    pub credits: Vec<u8>,
}

/// The full structured diagnosis of a stalled run.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StallPostmortem {
    /// Cycle the detector fired.
    pub cycle: Cycle,
    /// Last cycle that saw a delivery or drop.
    pub last_progress: Cycle,
    /// Flits still buffered, latched, queued at sources or on links.
    pub flits_in_system: u64,
    /// Every stuck packet, in node-index order.
    pub wedged: Vec<WedgedPacket>,
    /// Routers holding flits or with blocked-packet history.
    pub routers: Vec<RouterDiagnosis>,
    /// The complete credit map (every wired output of every router).
    pub credit_map: Vec<CreditLine>,
    /// A wait-for loop among the wedged channels, rendered as
    /// `"(x,y) in S#v"` strings with the first channel repeated at the
    /// end — present only when the observed dependencies actually close
    /// a cycle (a true deadlock signature, not mere fault blocking).
    pub suspected_loop: Option<Vec<String>>,
    /// Every mid-run fault/repair event applied before the stall, in
    /// order — a stall right after an injection usually implicates it.
    #[serde(default)]
    pub fault_timeline: Vec<FaultTimelineEntry>,
    /// Packets the end-to-end recovery layer gave up on after
    /// exhausting its retry budget. These left the system deliberately —
    /// they are *not* wedged — so they are classified separately from
    /// the `wedged` list.
    #[serde(default)]
    pub abandoned_packets: u64,
    /// Packets the fault-aware routing layer failed fast because their
    /// destination was provably unreachable (ISSUE 8). Like abandoned
    /// packets, these left the system deliberately.
    #[serde(default)]
    pub unroutable_packets: u64,
}

impl StallPostmortem {
    /// Human-readable multi-line rendering (the CLI prints this).
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "stall post-mortem: no progress since cycle {} (detector fired at cycle {}, {} \
             flits in system)",
            self.last_progress, self.cycle, self.flits_in_system
        );
        if !self.fault_timeline.is_empty() {
            let _ =
                writeln!(out, "  fault/repair timeline ({} events):", self.fault_timeline.len());
            for e in &self.fault_timeline {
                let _ = writeln!(
                    out,
                    "    cycle {}: {} {:?} ({}-axis) at {}",
                    e.cycle,
                    if e.repair { "repair" } else { "fault" },
                    e.fault.component,
                    e.fault.axis,
                    e.node
                );
            }
        }
        if self.abandoned_packets > 0 {
            let _ = writeln!(
                out,
                "  abandoned after retry budget: {} packets (recovery gave up; not wedged)",
                self.abandoned_packets
            );
        }
        if self.unroutable_packets > 0 {
            let _ = writeln!(
                out,
                "  failed fast as unroutable: {} packets (destination unreachable over the \
                 usable-link graph; not wedged)",
                self.unroutable_packets
            );
        }
        let _ = writeln!(out, "  wedged packets ({}):", self.wedged.len());
        for w in &self.wedged {
            let packet = match w.packet {
                Some(p) => format!("pkt {}", p.0),
                None => "fragment".to_string(),
            };
            let mut line = format!(
                "    {packet} at {} in {}#{} phase {} ({} flits buffered",
                w.node,
                w.input_side,
                w.vc,
                w.phase.label(),
                w.buffered
            );
            if w.credit_starved {
                line.push_str(", credit-starved");
            }
            if let Some(since) = w.blocked_since {
                let _ = write!(line, ", blocked since cycle {since}");
            }
            if let Some(d) = w.out {
                let _ = write!(line, ", wants {d}");
            }
            if w.unroutable_dst {
                match (&w.dst_name, w.dst) {
                    (Some(name), _) => {
                        let _ = write!(line, ", unroutable destination {name}");
                    }
                    (None, Some(d)) => {
                        let _ = write!(line, ", unroutable destination {d}");
                    }
                    (None, None) => line.push_str(", unroutable destination"),
                }
            }
            line.push(')');
            let _ = writeln!(out, "{line}");
        }
        let _ = writeln!(out, "  routers holding flits or blocked packets:");
        for r in &self.routers {
            let _ = writeln!(
                out,
                "    {}: {} buffered, {} blocked packets, {} credit-stall cycles",
                r.node, r.buffered, r.blocked_packets, r.credit_stall_cycles
            );
        }
        let exhausted: Vec<&CreditLine> =
            self.credit_map.iter().filter(|l| l.credits.contains(&0)).collect();
        let _ = writeln!(
            out,
            "  outputs with exhausted downstream VCs ({} of {}):",
            exhausted.len(),
            self.credit_map.len()
        );
        for l in exhausted {
            let credits: Vec<String> = l.credits.iter().map(u8::to_string).collect();
            let _ =
                writeln!(out, "    {} -> {}: credits [{}]", l.node, l.output, credits.join(","));
        }
        match &self.suspected_loop {
            Some(cycle) => {
                let _ = writeln!(out, "  suspected deadlock loop: {}", cycle.join(" -> "));
            }
            None => {
                let _ = writeln!(
                    out,
                    "  no wait-for cycle among wedged channels (fault-induced blocking, \
                     not a deadlock)"
                );
            }
        }
        out
    }

    /// Serializes the diagnosis as one JSON object.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024);
        out.push('{');
        let mut first = true;
        for (key, value) in [
            ("cycle", self.cycle),
            ("last_progress", self.last_progress),
            ("flits_in_system", self.flits_in_system),
        ] {
            write_key(&mut out, &mut first, key);
            let _ = write!(out, "{value}");
        }
        write_key(&mut out, &mut first, "wedged");
        out.push('[');
        for (i, w) in self.wedged.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            let mut wf = true;
            write_key(&mut out, &mut wf, "packet");
            match w.packet {
                Some(p) => {
                    let _ = write!(out, "{}", p.0);
                }
                None => out.push_str("null"),
            }
            write_key(&mut out, &mut wf, "node");
            let _ = write!(out, "[{},{}]", w.node.x, w.node.y);
            write_key(&mut out, &mut wf, "input_side");
            write_str(&mut out, &w.input_side.to_string());
            write_key(&mut out, &mut wf, "vc");
            let _ = write!(out, "{}", w.vc);
            write_key(&mut out, &mut wf, "phase");
            write_str(&mut out, w.phase.label());
            write_key(&mut out, &mut wf, "buffered");
            let _ = write!(out, "{}", w.buffered);
            write_key(&mut out, &mut wf, "credit_starved");
            out.push_str(if w.credit_starved { "true" } else { "false" });
            write_key(&mut out, &mut wf, "dst");
            match w.dst {
                Some(d) => {
                    let _ = write!(out, "[{},{}]", d.x, d.y);
                }
                None => out.push_str("null"),
            }
            write_key(&mut out, &mut wf, "dst_name");
            match &w.dst_name {
                Some(name) => write_str(&mut out, name),
                None => out.push_str("null"),
            }
            write_key(&mut out, &mut wf, "unroutable_dst");
            out.push_str(if w.unroutable_dst { "true" } else { "false" });
            out.push('}');
        }
        out.push(']');
        write_key(&mut out, &mut first, "routers");
        out.push('[');
        for (i, r) in self.routers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            let mut rf = true;
            write_key(&mut out, &mut rf, "node");
            let _ = write!(out, "[{},{}]", r.node.x, r.node.y);
            for (key, value) in [
                ("blocked_packets", r.blocked_packets),
                ("buffered", r.buffered),
                ("credit_stall_cycles", r.credit_stall_cycles),
            ] {
                write_key(&mut out, &mut rf, key);
                let _ = write!(out, "{value}");
            }
            out.push('}');
        }
        out.push(']');
        write_key(&mut out, &mut first, "credit_map");
        out.push('[');
        for (i, l) in self.credit_map.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            let mut lf = true;
            write_key(&mut out, &mut lf, "node");
            let _ = write!(out, "[{},{}]", l.node.x, l.node.y);
            write_key(&mut out, &mut lf, "output");
            write_str(&mut out, &l.output.to_string());
            write_key(&mut out, &mut lf, "credits");
            out.push('[');
            for (j, c) in l.credits.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{c}");
            }
            out.push(']');
            out.push('}');
        }
        out.push(']');
        write_key(&mut out, &mut first, "suspected_loop");
        match &self.suspected_loop {
            Some(cycle) => {
                out.push('[');
                for (i, ch) in cycle.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_str(&mut out, ch);
                }
                out.push(']');
            }
            None => out.push_str("null"),
        }
        write_key(&mut out, &mut first, "fault_timeline");
        out.push('[');
        for (i, e) in self.fault_timeline.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            let mut ef = true;
            write_key(&mut out, &mut ef, "cycle");
            let _ = write!(out, "{}", e.cycle);
            write_key(&mut out, &mut ef, "node");
            let _ = write!(out, "[{},{}]", e.node.x, e.node.y);
            write_key(&mut out, &mut ef, "action");
            write_str(&mut out, if e.repair { "repair" } else { "fault" });
            write_key(&mut out, &mut ef, "component");
            write_str(&mut out, &format!("{:?}", e.fault.component));
            out.push('}');
        }
        out.push(']');
        write_key(&mut out, &mut first, "abandoned_packets");
        let _ = write!(out, "{}", self.abandoned_packets);
        write_key(&mut out, &mut first, "unroutable_packets");
        let _ = write!(out, "{}", self.unroutable_packets);
        out.push('}');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json::Json;

    fn postmortem() -> StallPostmortem {
        StallPostmortem {
            cycle: 1500,
            last_progress: 400,
            flits_in_system: 4,
            wedged: vec![WedgedPacket {
                packet: Some(PacketId(3)),
                node: Coord::new(1, 1),
                input_side: Direction::West,
                vc: 0,
                phase: VcPhase::Blocked,
                out: None,
                buffered: 4,
                credit_starved: false,
                blocked_since: Some(410),
                dst: Some(Coord::new(3, 3)),
                dst_name: None,
                unroutable_dst: true,
            }],
            routers: vec![RouterDiagnosis {
                node: Coord::new(1, 1),
                blocked_packets: 1,
                buffered: 4,
                credit_stall_cycles: 0,
            }],
            credit_map: vec![CreditLine {
                node: Coord::new(0, 1),
                output: Direction::East,
                credits: vec![0, 5, 5],
            }],
            suspected_loop: None,
            fault_timeline: vec![FaultTimelineEntry {
                cycle: 405,
                node: Coord::new(1, 1),
                repair: false,
                fault: ComponentFault::new(noc_core::FaultComponent::Crossbar, noc_core::Axis::X),
            }],
            abandoned_packets: 2,
            unroutable_packets: 3,
        }
    }

    #[test]
    fn render_mentions_the_wedged_packet_and_router() {
        let text = postmortem().render();
        assert!(text.contains("pkt 3"));
        assert!(text.contains("(1,1)"));
        assert!(text.contains("phase blocked"));
        assert!(text.contains("blocked since cycle 410"));
        assert!(text.contains("1 blocked packets"));
        assert!(text.contains("not a deadlock"));
        assert!(text.contains("cycle 405: fault Crossbar"));
        assert!(text.contains("abandoned after retry budget: 2 packets"));
        assert!(text.contains("failed fast as unroutable: 3 packets"));
        assert!(text.contains("unroutable destination (3,3)"));
    }

    #[test]
    fn topology_node_name_overrides_grid_coordinate() {
        let mut pm = postmortem();
        pm.wedged[0].dst_name = Some("chip(1,0)/(1,1)".into());
        let text = pm.render();
        assert!(text.contains("unroutable destination chip(1,0)/(1,1)"));
        assert!(!text.contains("unroutable destination (3,3)"));
        let v = Json::parse(&pm.to_json()).unwrap();
        let wedged = v.get("wedged").unwrap().as_arr().unwrap();
        assert_eq!(wedged[0].get("dst_name").unwrap().as_str(), Some("chip(1,0)/(1,1)"));
    }

    #[test]
    fn json_form_parses() {
        let v = Json::parse(&postmortem().to_json()).expect("valid JSON");
        assert_eq!(v.get("cycle").unwrap().as_u64(), Some(1500));
        let wedged = v.get("wedged").unwrap().as_arr().unwrap();
        assert_eq!(wedged.len(), 1);
        assert_eq!(wedged[0].get("packet").unwrap().as_u64(), Some(3));
        assert_eq!(wedged[0].get("phase").unwrap().as_str(), Some("blocked"));
        assert_eq!(v.get("suspected_loop"), Some(&Json::Null));
        let credits = v.get("credit_map").unwrap().as_arr().unwrap()[0].get("credits").unwrap();
        assert_eq!(credits.as_arr().unwrap()[0].as_u64(), Some(0));
        let timeline = v.get("fault_timeline").unwrap().as_arr().unwrap();
        assert_eq!(timeline.len(), 1);
        assert_eq!(timeline[0].get("action").unwrap().as_str(), Some("fault"));
        assert_eq!(timeline[0].get("component").unwrap().as_str(), Some("Crossbar"));
        assert_eq!(v.get("abandoned_packets").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("unroutable_packets").unwrap().as_u64(), Some(3));
        assert_eq!(wedged[0].get("unroutable_dst"), Some(&Json::Bool(true)));
        let dst = wedged[0].get("dst").unwrap().as_arr().unwrap();
        assert_eq!(dst[0].as_u64(), Some(3));
    }

    #[test]
    fn loop_renders_with_arrows() {
        let mut pm = postmortem();
        pm.suspected_loop = Some(vec!["(1,1) W#0".into(), "(2,1) W#0".into(), "(1,1) W#0".into()]);
        assert!(pm.render().contains("(1,1) W#0 -> (2,1) W#0 -> (1,1) W#0"));
        let v = Json::parse(&pm.to_json()).unwrap();
        assert_eq!(v.get("suspected_loop").unwrap().as_arr().unwrap().len(), 3);
    }
}
