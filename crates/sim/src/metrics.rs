//! Interval time-series metrics: the `MetricsSink` abstraction and its
//! JSONL exporter.
//!
//! Every `sample_window` cycles the simulation snapshots one
//! [`IntervalSample`]: network-wide deltas (injected/delivered packets,
//! window latency statistics) plus one [`RouterWindow`] per router with
//! buffer occupancy, credit stalls, VA failures, and per-stage
//! RC/VA/SA/ST/LT activity deltas. Samples stream into a
//! [`MetricsSink`], mirroring how packet events stream into
//! [`crate::TraceSink`].

use crate::flow::ClassLatency;
use crate::json::{write_f64, write_key, write_str};
use noc_core::{Coord, Cycle};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;
use std::io::Write;

/// Per-router portion of one sample window.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterWindow {
    /// Mesh position.
    pub node: Coord,
    /// Flits buffered in this router at the sample instant.
    pub occupancy: u64,
    /// Lifetime buffer-occupancy high-water mark (cumulative, not a
    /// delta: a high-water mark has no meaningful per-window form).
    pub occupancy_high_water: u64,
    /// Packets injected at this node during the window.
    pub injected: u64,
    /// Packets delivered to this node during the window.
    pub delivered: u64,
    /// Credit-starved cycles during the window.
    pub credit_stall_cycles: u64,
    /// Failed VA requests during the window.
    pub va_failures: u64,
    /// Lifetime fault-blocked packets (cumulative).
    pub blocked_packets: u64,
    /// Route computations during the window (RC stage).
    pub rc: u64,
    /// VA arbitration operations (local + global) during the window.
    pub va: u64,
    /// SA arbitration operations (local + global) during the window.
    pub sa: u64,
    /// Crossbar traversals during the window (ST stage).
    pub st: u64,
    /// Link traversals during the window (LT stage).
    pub lt: u64,
}

/// One interval of network-wide and per-router time-series data.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntervalSample {
    /// Zero-based window index.
    pub window: u64,
    /// First cycle covered by the window.
    pub cycle_start: Cycle,
    /// One past the last cycle covered.
    pub cycle_end: Cycle,
    /// Packets generated during the window.
    pub generated: u64,
    /// Packets injected during the window.
    pub injected: u64,
    /// Packets delivered during the window.
    pub delivered: u64,
    /// Flits dropped during the window.
    pub dropped: u64,
    /// Mean latency of packets delivered in the window (0 when none).
    pub latency_mean: f64,
    /// P99 latency of packets delivered in the window (0 when none).
    pub latency_p99: u64,
    /// P99.9 latency of packets delivered in the window (0 when none).
    #[serde(default)]
    pub latency_p999: u64,
    /// Maximum latency of packets delivered in the window (0 when none).
    pub latency_max: u64,
    /// Flits in flight (buffered or on links) at the sample instant.
    pub flits_in_system: u64,
    /// Mid-run fault/repair events applied during the window.
    #[serde(default)]
    pub fault_events: u64,
    /// Per-flow-class latency summaries of the window, in
    /// [`crate::FlowClass::ALL`] order (empty classes all-zero).
    #[serde(default)]
    pub classes: Vec<ClassLatency>,
    /// Per-router breakdown, in node-index order.
    pub routers: Vec<RouterWindow>,
}

impl IntervalSample {
    /// Delivered packets per node per cycle over the window — the
    /// throughput axis of the paper's load-latency curves.
    pub fn throughput(&self) -> f64 {
        let cycles = self.cycle_end.saturating_sub(self.cycle_start);
        if cycles == 0 || self.routers.is_empty() {
            return 0.0;
        }
        self.delivered as f64 / cycles as f64 / self.routers.len() as f64
    }

    /// Serializes the sample as one JSON object (a single JSONL line,
    /// without the trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(256 + 160 * self.routers.len());
        out.push('{');
        let mut first = true;
        for (key, value) in [
            ("window", self.window),
            ("cycle_start", self.cycle_start),
            ("cycle_end", self.cycle_end),
            ("generated", self.generated),
            ("injected", self.injected),
            ("delivered", self.delivered),
            ("dropped", self.dropped),
        ] {
            write_key(&mut out, &mut first, key);
            let _ = write!(out, "{value}");
        }
        write_key(&mut out, &mut first, "latency_mean");
        write_f64(&mut out, self.latency_mean);
        for (key, value) in [
            ("latency_p99", self.latency_p99),
            ("latency_p999", self.latency_p999),
            ("latency_max", self.latency_max),
            ("flits_in_system", self.flits_in_system),
            ("fault_events", self.fault_events),
        ] {
            write_key(&mut out, &mut first, key);
            let _ = write!(out, "{value}");
        }
        write_key(&mut out, &mut first, "throughput");
        write_f64(&mut out, self.throughput());
        write_key(&mut out, &mut first, "classes");
        out.push('[');
        for (i, c) in self.classes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            let mut cf = true;
            write_key(&mut out, &mut cf, "class");
            write_str(&mut out, c.class.name());
            write_key(&mut out, &mut cf, "count");
            let _ = write!(out, "{}", c.count);
            write_key(&mut out, &mut cf, "mean");
            write_f64(&mut out, c.mean);
            for (key, value) in
                [("p50", c.p50), ("p95", c.p95), ("p99", c.p99), ("p999", c.p999), ("max", c.max)]
            {
                write_key(&mut out, &mut cf, key);
                let _ = write!(out, "{value}");
            }
            out.push('}');
        }
        out.push(']');
        write_key(&mut out, &mut first, "routers");
        out.push('[');
        for (i, r) in self.routers.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            let mut rf = true;
            write_key(&mut out, &mut rf, "node");
            let _ = write!(out, "[{},{}]", r.node.x, r.node.y);
            for (key, value) in [
                ("occupancy", r.occupancy),
                ("occupancy_high_water", r.occupancy_high_water),
                ("injected", r.injected),
                ("delivered", r.delivered),
                ("credit_stall_cycles", r.credit_stall_cycles),
                ("va_failures", r.va_failures),
                ("blocked_packets", r.blocked_packets),
                ("rc", r.rc),
                ("va", r.va),
                ("sa", r.sa),
                ("st", r.st),
                ("lt", r.lt),
            ] {
                write_key(&mut out, &mut rf, key);
                let _ = write!(out, "{value}");
            }
            out.push('}');
        }
        out.push(']');
        out.push('}');
        out
    }
}

/// A consumer of interval samples, attached to a simulation via
/// [`crate::Simulation::set_metrics_sink`].
pub trait MetricsSink: std::fmt::Debug {
    /// Receives one completed sample window.
    fn record_sample(&mut self, sample: &IntervalSample);

    /// Called once after the final (possibly partial) window, before
    /// the simulation releases the sink. Writers flush here.
    fn finish(&mut self) {}
}

/// A sink that buffers samples in memory (tests, the `timeline` command).
#[derive(Debug, Default)]
pub struct VecMetricsSink {
    /// The samples received so far.
    pub samples: Vec<IntervalSample>,
}

impl VecMetricsSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl MetricsSink for VecMetricsSink {
    fn record_sample(&mut self, sample: &IntervalSample) {
        self.samples.push(sample.clone());
    }
}

/// A sink writing one JSON object per line (JSONL).
#[derive(Debug)]
pub struct JsonlMetricsSink<W: Write + std::fmt::Debug> {
    writer: W,
}

impl<W: Write + std::fmt::Debug> JsonlMetricsSink<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        JsonlMetricsSink { writer }
    }

    /// Unwraps the writer (tests read back the bytes).
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: Write + std::fmt::Debug> MetricsSink for JsonlMetricsSink<W> {
    fn record_sample(&mut self, sample: &IntervalSample) {
        let _ = writeln!(self.writer, "{}", sample.to_json());
    }

    fn finish(&mut self) {
        let _ = self.writer.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flow::FlowClass;
    use crate::json::Json;

    fn sample() -> IntervalSample {
        IntervalSample {
            window: 2,
            cycle_start: 200,
            cycle_end: 300,
            generated: 40,
            injected: 38,
            delivered: 35,
            dropped: 1,
            latency_mean: 18.25,
            latency_p99: 44,
            latency_p999: 49,
            latency_max: 51,
            flits_in_system: 12,
            fault_events: 0,
            classes: vec![ClassLatency {
                class: FlowClass::Near,
                count: 20,
                mean: 12.5,
                p50: 11,
                p95: 30,
                p99: 40,
                p999: 44,
                max: 51,
            }],
            routers: vec![RouterWindow {
                node: Coord::new(3, 4),
                occupancy: 5,
                occupancy_high_water: 9,
                injected: 2,
                delivered: 1,
                credit_stall_cycles: 7,
                va_failures: 3,
                blocked_packets: 0,
                rc: 11,
                va: 12,
                sa: 13,
                st: 14,
                lt: 15,
            }],
        }
    }

    #[test]
    fn sample_serializes_to_parseable_json() {
        let s = sample();
        let v = Json::parse(&s.to_json()).expect("valid JSON");
        assert_eq!(v.get("window").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("delivered").unwrap().as_u64(), Some(35));
        assert_eq!(v.get("latency_mean").unwrap().as_f64(), Some(18.25));
        assert_eq!(v.get("latency_p999").unwrap().as_u64(), Some(49));
        let classes = v.get("classes").unwrap().as_arr().unwrap();
        assert_eq!(classes.len(), 1);
        assert_eq!(classes[0].get("class").unwrap().as_str(), Some("near"));
        assert_eq!(classes[0].get("p999").unwrap().as_u64(), Some(44));
        let routers = v.get("routers").unwrap().as_arr().unwrap();
        assert_eq!(routers.len(), 1);
        let r = &routers[0];
        assert_eq!(r.get("node").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(r.get("credit_stall_cycles").unwrap().as_u64(), Some(7));
        assert_eq!(r.get("st").unwrap().as_u64(), Some(14));
    }

    #[test]
    fn throughput_is_per_node_per_cycle() {
        let s = sample();
        assert!((s.throughput() - 35.0 / 100.0).abs() < 1e-12);
        let empty = IntervalSample { routers: Vec::new(), ..sample() };
        assert_eq!(empty.throughput(), 0.0);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_sample() {
        let mut sink = JsonlMetricsSink::new(Vec::new());
        sink.record_sample(&sample());
        sink.record_sample(&sample());
        sink.finish();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            Json::parse(line).expect("each line is a standalone document");
        }
    }
}
