//! A fixed-memory latency histogram with percentile queries.

use serde::{Deserialize, Serialize};

/// Number of unit-width buckets before switching to overflow handling.
const UNIT_BUCKETS: usize = 1024;
/// Width of the coarse buckets covering the tail.
const COARSE_WIDTH: u64 = 64;
/// Number of coarse buckets (covers up to 1024 + 64·1024 ≈ 66.5k cycles).
const COARSE_BUCKETS: usize = 1024;

/// A latency histogram: exact counts for latencies below
/// 1024 cycles, 64-cycle buckets up to ~66 000 cycles, and a single
/// overflow bucket beyond — bounded memory at any run size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    unit: Vec<u64>,
    coarse: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            unit: vec![0; UNIT_BUCKETS],
            coarse: vec![0; COARSE_BUCKETS],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.sum += latency as u128;
        self.max = self.max.max(latency);
        if latency < UNIT_BUCKETS as u64 {
            self.unit[latency as usize] += 1;
        } else {
            let idx = ((latency - UNIT_BUCKETS as u64) / COARSE_WIDTH) as usize;
            if idx < COARSE_BUCKETS {
                self.coarse[idx] += 1;
            } else {
                self.overflow += 1;
            }
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// True when no samples have been recorded.
    ///
    /// Every statistic of an empty histogram is defined as 0 —
    /// [`mean`](Self::mean), [`max`](Self::max) and every
    /// [`percentile`](Self::percentile) query return 0 rather than
    /// panicking — so callers may query unconditionally and treat
    /// `count() == 0` as "no data" when 0 would be misleading.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Resets the histogram to empty without releasing bucket storage,
    /// so per-window histograms can be reused allocation-free.
    pub fn clear(&mut self) {
        self.unit.fill(0);
        self.coarse.fill(0);
        self.overflow = 0;
        self.count = 0;
        self.sum = 0;
        self.max = 0;
    }

    /// Mean latency, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `p`-th percentile (0.0–1.0), resolved to bucket granularity
    /// (exact below 1024 cycles). Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64 * p).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (latency, &c) in self.unit.iter().enumerate() {
            seen += c;
            if seen >= target {
                return latency as u64;
            }
        }
        for (idx, &c) in self.coarse.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Report the bucket's upper edge.
                return UNIT_BUCKETS as u64 + (idx as u64 + 1) * COARSE_WIDTH - 1;
            }
        }
        self.max
    }

    /// Median (p50) sample, or 0 when empty.
    pub fn p50(&self) -> u64 {
        self.percentile(0.50)
    }

    /// 95th-percentile sample, or 0 when empty.
    pub fn p95(&self) -> u64 {
        self.percentile(0.95)
    }

    /// 99th-percentile sample, or 0 when empty.
    pub fn p99(&self) -> u64 {
        self.percentile(0.99)
    }

    /// 99.9th-percentile sample, or 0 when empty — the SLO tail
    /// quantile of ROADMAP item 5.
    pub fn p999(&self) -> u64 {
        self.percentile(0.999)
    }

    /// Merges another histogram into this one.
    ///
    /// Bucket counts add, so merging the histograms of disjoint sample
    /// sets is exactly equivalent to recording the union into one
    /// histogram: every percentile query agrees bit-for-bit (property-
    /// tested below). This is what makes per-window and per-flow-class
    /// histograms composable into run totals.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.unit.iter_mut().zip(&other.unit) {
            *a += b;
        }
        for (a, b) in self.coarse.iter_mut().zip(&other.coarse) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        // Every percentile of an empty histogram is 0, never a panic.
        for p in [0.0, 0.5, 0.95, 0.99, 0.999, 1.0] {
            assert_eq!(h.percentile(p), 0);
        }
        assert_eq!(h.p50(), 0);
        assert_eq!(h.p95(), 0);
        assert_eq!(h.p99(), 0);
        assert_eq!(h.p999(), 0);
    }

    #[test]
    fn clear_resets_to_empty() {
        let mut h = LatencyHistogram::new();
        for v in [3, 700, 2_000, 900_000] {
            h.record(v);
        }
        assert!(!h.is_empty());
        h.clear();
        assert!(h.is_empty());
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.max(), 0);
        assert_eq!(h.percentile(1.0), 0);
        // A cleared histogram behaves exactly like a fresh one.
        h.record(41);
        assert_eq!(h.count(), 1);
        assert_eq!(h.p50(), 41);
        assert_eq!(h.max(), 41);
    }

    #[test]
    fn p999_resolves_the_tail() {
        let mut h = LatencyHistogram::new();
        for _ in 0..999 {
            h.record(10);
        }
        h.record(500);
        assert_eq!(h.p50(), 10);
        assert_eq!(h.p99(), 10);
        assert_eq!(h.p999(), 10);
        h.record(600);
        // 1001 samples: rank ceil(1001·0.999) = 1000 → the 500 outlier.
        assert_eq!(h.p999(), 500);
        assert_eq!(h.percentile(1.0), 600);
    }

    /// Deterministic xorshift generator so the property test below
    /// needs no external crate.
    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    /// Property: merging histograms of split sample sets is
    /// indistinguishable from recording the whole set into one
    /// histogram — for any split point, and for samples spanning the
    /// unit, coarse and overflow ranges.
    #[test]
    fn merge_of_splits_equals_recomputed_whole() {
        for seed in 1..=24u64 {
            let mut state = seed.wrapping_mul(0x9e37_79b9_7f4a_7c15);
            let len = 1 + (xorshift(&mut state) % 400) as usize;
            let samples: Vec<u64> = (0..len)
                .map(|_| match xorshift(&mut state) % 3 {
                    0 => xorshift(&mut state) % 1024,            // unit range
                    1 => 1024 + xorshift(&mut state) % 65_536,   // coarse range
                    _ => 70_000 + xorshift(&mut state) % 10_000, // overflow
                })
                .collect();
            let split = (xorshift(&mut state) as usize) % (len + 1);
            let mut whole = LatencyHistogram::new();
            let mut left = LatencyHistogram::new();
            let mut right = LatencyHistogram::new();
            for (i, &v) in samples.iter().enumerate() {
                whole.record(v);
                if i < split {
                    left.record(v)
                } else {
                    right.record(v)
                }
            }
            left.merge(&right);
            assert_eq!(left.count(), whole.count(), "seed {seed}");
            assert_eq!(left.max(), whole.max(), "seed {seed}");
            assert_eq!(left.mean().to_bits(), whole.mean().to_bits(), "seed {seed}");
            for p in [0.0, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99, 0.999, 1.0] {
                assert_eq!(left.percentile(p), whole.percentile(p), "seed {seed} p {p}");
            }
        }
    }

    #[test]
    fn exact_percentiles_in_unit_range() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(0.5), 50);
        assert_eq!(h.percentile(0.95), 95);
        assert_eq!(h.percentile(1.0), 100);
        assert_eq!(h.percentile(0.0), 1);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn coarse_range_is_bucketed() {
        let mut h = LatencyHistogram::new();
        h.record(2_000);
        let p = h.percentile(1.0);
        assert!((2_000..2_000 + 64).contains(&p), "bucketed tail estimate, got {p}");
    }

    #[test]
    fn overflow_reports_max() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_000);
        assert_eq!(h.percentile(0.99), 1_000_000);
        assert_eq!(h.max(), 1_000_000);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in 1..=50 {
            a.record(v);
        }
        for v in 51..=100 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.percentile(0.5), 50);
        assert_eq!(a.max(), 100);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn bad_percentile_panics() {
        let h = LatencyHistogram::new();
        let _ = h.percentile(1.5);
    }
}
