//! A fixed-memory latency histogram with percentile queries.

use serde::{Deserialize, Serialize};

/// Number of unit-width buckets before switching to overflow handling.
const UNIT_BUCKETS: usize = 1024;
/// Width of the coarse buckets covering the tail.
const COARSE_WIDTH: u64 = 64;
/// Number of coarse buckets (covers up to 1024 + 64·1024 ≈ 66.5k cycles).
const COARSE_BUCKETS: usize = 1024;

/// A latency histogram: exact counts for latencies below
/// 1024 cycles, 64-cycle buckets up to ~66 000 cycles, and a single
/// overflow bucket beyond — bounded memory at any run size.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LatencyHistogram {
    unit: Vec<u64>,
    coarse: Vec<u64>,
    overflow: u64,
    count: u64,
    sum: u128,
    max: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            unit: vec![0; UNIT_BUCKETS],
            coarse: vec![0; COARSE_BUCKETS],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Records one latency sample.
    pub fn record(&mut self, latency: u64) {
        self.count += 1;
        self.sum += latency as u128;
        self.max = self.max.max(latency);
        if latency < UNIT_BUCKETS as u64 {
            self.unit[latency as usize] += 1;
        } else {
            let idx = ((latency - UNIT_BUCKETS as u64) / COARSE_WIDTH) as usize;
            if idx < COARSE_BUCKETS {
                self.coarse[idx] += 1;
            } else {
                self.overflow += 1;
            }
        }
    }

    /// Number of samples.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean latency, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Largest recorded sample.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// The `p`-th percentile (0.0–1.0), resolved to bucket granularity
    /// (exact below 1024 cycles). Returns 0 when empty.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    pub fn percentile(&self, p: f64) -> u64 {
        assert!((0.0..=1.0).contains(&p), "percentile must be in [0, 1]");
        if self.count == 0 {
            return 0;
        }
        let target = ((self.count as f64 * p).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (latency, &c) in self.unit.iter().enumerate() {
            seen += c;
            if seen >= target {
                return latency as u64;
            }
        }
        for (idx, &c) in self.coarse.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Report the bucket's upper edge.
                return UNIT_BUCKETS as u64 + (idx as u64 + 1) * COARSE_WIDTH - 1;
            }
        }
        self.max
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &LatencyHistogram) {
        for (a, b) in self.unit.iter_mut().zip(&other.unit) {
            *a += b;
        }
        for (a, b) in self.coarse.iter_mut().zip(&other.coarse) {
            *a += b;
        }
        self.overflow += other.overflow;
        self.count += other.count;
        self.sum += other.sum;
        self.max = self.max.max(other.max);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean(), 0.0);
        assert_eq!(h.percentile(0.5), 0);
    }

    #[test]
    fn exact_percentiles_in_unit_range() {
        let mut h = LatencyHistogram::new();
        for v in 1..=100u64 {
            h.record(v);
        }
        assert_eq!(h.count(), 100);
        assert_eq!(h.percentile(0.5), 50);
        assert_eq!(h.percentile(0.95), 95);
        assert_eq!(h.percentile(1.0), 100);
        assert_eq!(h.percentile(0.0), 1);
        assert!((h.mean() - 50.5).abs() < 1e-9);
        assert_eq!(h.max(), 100);
    }

    #[test]
    fn coarse_range_is_bucketed() {
        let mut h = LatencyHistogram::new();
        h.record(2_000);
        let p = h.percentile(1.0);
        assert!(p >= 2_000 && p < 2_000 + 64, "bucketed tail estimate, got {p}");
    }

    #[test]
    fn overflow_reports_max() {
        let mut h = LatencyHistogram::new();
        h.record(1_000_000);
        assert_eq!(h.percentile(0.99), 1_000_000);
        assert_eq!(h.max(), 1_000_000);
    }

    #[test]
    fn merge_combines_counts() {
        let mut a = LatencyHistogram::new();
        let mut b = LatencyHistogram::new();
        for v in 1..=50 {
            a.record(v);
        }
        for v in 51..=100 {
            b.record(v);
        }
        a.merge(&b);
        assert_eq!(a.count(), 100);
        assert_eq!(a.percentile(0.5), 50);
        assert_eq!(a.max(), 100);
    }

    #[test]
    #[should_panic(expected = "percentile")]
    fn bad_percentile_panics() {
        let h = LatencyHistogram::new();
        let _ = h.percentile(1.5);
    }
}
