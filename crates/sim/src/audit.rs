//! Runtime invariant auditing (the simulation audit layer).
//!
//! When [`crate::SimConfig::audit`] is set, an [`Auditor`] rides inside
//! every [`crate::Simulation::step`] and checks that the simulator's
//! flow-control and accounting machinery never drifts from the
//! protocol it claims to implement:
//!
//! * **Flit conservation** — every generated packet is eventually
//!   delivered, dropped, or abandoned, exactly once; no packet is
//!   delivered twice and no event references a packet that was never
//!   generated. Poison tails and recovery retransmissions are folded
//!   into the ledger (a retried packet may fragment several times but
//!   resolves exactly once).
//! * **Credit-book consistency** — for every link and VC, the sender's
//!   credit counter equals the downstream capacity minus the flits and
//!   credits provably in the pipeline (switch latch, link, receiver
//!   buffer, pending and in-flight credits). Links touched by a mid-run
//!   fault or repair are *tainted* — §4.1 deliberately lets the books
//!   desynchronise until the availability republication and clamps heal
//!   them — and only re-checked exactly once the link is fully at rest.
//! * **VC state-machine legality** — heads open streams, bodies and
//!   tails continue them in sequence order, nothing interleaves within
//!   a link VC (Early Ejection transfers excepted, which are per-flit),
//!   every `Active` stream holds a downstream VC that is marked
//!   non-free, no two streams hold the same downstream VC, and buffers
//!   never exceed their nominal capacity (poison tails excepted).
//! * **Fault-status coherence** — no non-poison flit is emitted toward
//!   a node whose *published* status is dead, once the §4.1
//!   republication that published it is more than the one-cycle
//!   switch-latch grace old.
//! * **Quiescence / accounting** — under the `Optimized` and `Soa`
//!   kernels a router off the wake-set is provably quiescent; under
//!   `Soa` every non-quiet VC additionally sits inside the router's
//!   recorded busy-tag mask (the superset invariant DESIGN.md §15's
//!   fused hot path relies on); and the incremental occupancy/source
//!   totals match a from-scratch re-derivation (the release-mode
//!   version of the kernel's debug assertions).
//!
//! Violations are recorded as structured [`AuditViolation`]s (cycle,
//! router, link/VC, packet, post-mortem-style detail) and surfaced in
//! [`crate::SimResults::audit`]; the differential fuzz harness and the
//! `noc audit` CLI subcommand both gate on [`AuditReport::clean`].

use crate::config::{AuditConfig, KernelMode};
use crate::network::Simulation;
use noc_core::{AuditProbe, Coord, Cycle, Direction, Flit, NodeStatus, RouterNode, EJECT_VC};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};

/// The invariant families the auditor distinguishes. Mutation-style
/// negative tests assert that a seeded corruption is reported under the
/// exact kind it belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AuditKind {
    /// A packet was lost, duplicated, or resolved inconsistently.
    Conservation,
    /// A sender's credit counter disagrees with the derived number of
    /// outstanding flits on a healthy link.
    CreditBook,
    /// Head/body/tail ordering was broken on a link VC.
    StreamOrder,
    /// A router's VC or allocation state is illegal.
    VcState,
    /// A flit was emitted toward a node published as dead.
    StatusCoherence,
    /// A non-quiescent router was left off the wake-set.
    Quiescence,
    /// The incremental statistics diverged from a re-derivation.
    Accounting,
    /// The flat flit slab's ring indices or the router's incremental
    /// buffered counter diverged from the slab contents (ISSUE 10).
    SlabCoherence,
}

impl AuditKind {
    /// Every kind, in reporting order.
    pub const ALL: [AuditKind; 8] = [
        AuditKind::Conservation,
        AuditKind::CreditBook,
        AuditKind::StreamOrder,
        AuditKind::VcState,
        AuditKind::StatusCoherence,
        AuditKind::Quiescence,
        AuditKind::Accounting,
        AuditKind::SlabCoherence,
    ];

    /// Stable index into per-kind count arrays.
    fn index(self) -> usize {
        match self {
            AuditKind::Conservation => 0,
            AuditKind::CreditBook => 1,
            AuditKind::StreamOrder => 2,
            AuditKind::VcState => 3,
            AuditKind::StatusCoherence => 4,
            AuditKind::Quiescence => 5,
            AuditKind::Accounting => 6,
            AuditKind::SlabCoherence => 7,
        }
    }

    /// Short lower-case label used in reports.
    pub fn label(self) -> &'static str {
        match self {
            AuditKind::Conservation => "conservation",
            AuditKind::CreditBook => "credit-book",
            AuditKind::StreamOrder => "stream-order",
            AuditKind::VcState => "vc-state",
            AuditKind::StatusCoherence => "status-coherence",
            AuditKind::Quiescence => "quiescence",
            AuditKind::Accounting => "accounting",
            AuditKind::SlabCoherence => "slab-coherence",
        }
    }
}

/// One detected invariant violation, with enough context to start a
/// post-mortem without re-running the simulation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditViolation {
    /// Cycle the violation was detected at.
    pub cycle: Cycle,
    /// Which invariant family was broken.
    pub kind: AuditKind,
    /// The router the violation localises to, when it does.
    pub node: Option<Coord>,
    /// The link (output direction at `node`) involved, when one is.
    pub link: Option<Direction>,
    /// The VC index involved, when one is.
    pub vc: Option<u8>,
    /// The packet id involved, when one is.
    pub packet: Option<u64>,
    /// Human-readable context dump (expected vs observed).
    pub detail: String,
}

impl AuditViolation {
    /// One-line rendering for logs and the CLI.
    pub fn render_line(&self) -> String {
        let mut line = format!("cycle {:>8}  [{}]", self.cycle, self.kind.label());
        if let Some(n) = self.node {
            line.push_str(&format!("  {n}"));
        }
        if let Some(l) = self.link {
            line.push_str(&format!("  {l}"));
        }
        if let Some(v) = self.vc {
            line.push_str(&format!("#{v}"));
        }
        if let Some(p) = self.packet {
            line.push_str(&format!("  pkt {p}"));
        }
        line.push_str("  ");
        line.push_str(&self.detail);
        line
    }
}

/// Aggregated audit outcome of one run, attached to
/// [`crate::SimResults::audit`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditReport {
    /// Global invariant sweeps executed.
    pub checks_run: u64,
    /// Link flit transfers observed by the per-flit checks.
    pub flits_observed: u64,
    /// Total violations detected (all kinds, recorded or not).
    pub total_violations: u64,
    /// Violations per kind (only kinds that fired appear).
    pub counts: Vec<(AuditKind, u64)>,
    /// The first violations verbatim, capped at
    /// [`crate::AuditConfig::max_recorded`].
    pub violations: Vec<AuditViolation>,
}

impl AuditReport {
    /// Whether the run passed every check.
    pub fn clean(&self) -> bool {
        self.total_violations == 0
    }

    /// Multi-line human-readable rendering for the CLI.
    pub fn render(&self) -> String {
        let mut out = format!(
            "audit: {} sweep(s), {} link flits observed, {} violation(s)\n",
            self.checks_run, self.flits_observed, self.total_violations
        );
        for &(kind, n) in &self.counts {
            out.push_str(&format!("  {:>6}x {}\n", n, kind.label()));
        }
        for v in &self.violations {
            out.push_str("  ");
            out.push_str(&v.render_line());
            out.push('\n');
        }
        if self.total_violations as usize > self.violations.len() {
            out.push_str(&format!(
                "  ... {} more violation(s) not recorded verbatim\n",
                self.total_violations as usize - self.violations.len()
            ));
        }
        out
    }
}

/// Per-link-VC stream state of the head/body/tail order checker.
#[derive(Debug, Clone, Copy)]
struct Stream {
    /// The packet whose wormhole is open on this link VC.
    packet: u64,
    /// Sequence number of the last flit observed.
    last_seq: u16,
}

/// Outcome of a ledger resolution attempt.
enum Resolution {
    /// The packet was live and is now resolved.
    Fresh,
    /// The packet had already been resolved (a later fragment event).
    Already,
    /// The packet was never generated — always a violation.
    Unknown,
}

/// The runtime invariant checker. One instance rides inside a
/// [`Simulation`] when [`crate::SimConfig::audit`] is set; the hot path
/// calls its per-event hooks every cycle and its global [`check`] sweep
/// every [`AuditConfig::interval`] cycles.
///
/// [`check`]: Auditor::check
#[derive(Debug)]
pub struct Auditor {
    /// Sweep pacing and recording cap.
    cfg: AuditConfig,
    /// Mesh width, for index → coordinate rendering.
    width: u16,
    /// Whether end-to-end recovery is on (changes ledger resolution).
    recovery: bool,
    /// Whether the run carries no faults at all (enables the strict
    /// variants of the buffer-bound checks).
    fault_free: bool,
    /// Open wormholes per `(node, arrival-side index, vc)` link VC.
    streams: HashMap<(usize, u8, u8), Stream>,
    /// Generated but not yet resolved packet ids.
    live: HashSet<u64>,
    /// Resolved (delivered / dropped / abandoned) packet ids.
    resolved: HashSet<u64>,
    /// Ledger counters, cross-checked against the simulator's.
    generated: u64,
    delivered: u64,
    abandoned: u64,
    unroutable: u64,
    /// Last §4.1 republication cycle per node (0 = construction).
    last_republish: Vec<Cycle>,
    /// Directed links `(sender node, direction index)` whose credit
    /// books §4.1 currently allows to be desynchronised, mapped to the
    /// `(faulted site, event cycle)` that tainted them. Set on every
    /// fault/repair event touching either endpoint; cleared only after
    /// the site's republication has landed *and* the books agree with
    /// the derivation again. Clearing any earlier is unsound: a link at
    /// rest when the fault strikes can still desynchronise afterwards,
    /// because flits launched before the republication arrives are
    /// swallowed by the dead node without a credit return.
    tainted: HashMap<(usize, u8), (usize, Cycle)>,
    /// Report accumulators.
    checks_run: u64,
    flits_observed: u64,
    total: u64,
    counts: [u64; 8],
    recorded: Vec<AuditViolation>,
    /// Whether the final end-of-run checks have fired.
    done: bool,
}

impl Auditor {
    /// Builds an auditor for a simulation of `sim_cfg`'s shape.
    pub(crate) fn new(cfg: AuditConfig, sim_cfg: &crate::SimConfig) -> Self {
        Auditor {
            cfg,
            width: sim_cfg.mesh.width,
            recovery: sim_cfg.recovery.is_some(),
            fault_free: sim_cfg.faults.is_empty() && sim_cfg.schedule.is_empty(),
            streams: HashMap::new(),
            live: HashSet::new(),
            resolved: HashSet::new(),
            generated: 0,
            delivered: 0,
            abandoned: 0,
            unroutable: 0,
            last_republish: vec![0; sim_cfg.mesh.nodes()],
            tainted: HashMap::new(),
            checks_run: 0,
            flits_observed: 0,
            total: 0,
            counts: [0; 8],
            recorded: Vec::new(),
            done: false,
        }
    }

    /// The sweep interval (≥ 1).
    pub(crate) fn interval(&self) -> u64 {
        self.cfg.interval.max(1)
    }

    /// Snapshot of the accumulated report.
    pub(crate) fn report(&self) -> AuditReport {
        AuditReport {
            checks_run: self.checks_run,
            flits_observed: self.flits_observed,
            total_violations: self.total,
            counts: AuditKind::ALL
                .iter()
                .filter(|k| self.counts[k.index()] > 0)
                .map(|&k| (k, self.counts[k.index()]))
                .collect(),
            violations: self.recorded.clone(),
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn violate(
        &mut self,
        kind: AuditKind,
        cycle: Cycle,
        node: Option<Coord>,
        link: Option<Direction>,
        vc: Option<u8>,
        packet: Option<u64>,
        detail: String,
    ) {
        self.total += 1;
        self.counts[kind.index()] += 1;
        if self.recorded.len() < self.cfg.max_recorded {
            self.recorded.push(AuditViolation { cycle, kind, node, link, vc, packet, detail });
        }
    }

    fn coord(&self, i: usize) -> Coord {
        Coord::from_index(i, self.width)
    }

    // ------------------------------------------------------------------
    // Conservation ledger
    // ------------------------------------------------------------------

    fn resolve(&mut self, id: u64) -> Resolution {
        if self.live.remove(&id) {
            self.resolved.insert(id);
            Resolution::Fresh
        } else if self.resolved.contains(&id) {
            Resolution::Already
        } else {
            Resolution::Unknown
        }
    }

    fn known(&self, id: u64) -> bool {
        self.live.contains(&id) || self.resolved.contains(&id)
    }

    /// A new packet left the traffic generator.
    pub(crate) fn on_generated(&mut self, cycle: Cycle, id: u64) {
        self.generated += 1;
        if self.resolved.contains(&id) || !self.live.insert(id) {
            self.violate(
                AuditKind::Accounting,
                cycle,
                None,
                None,
                None,
                Some(id),
                "packet id generated twice".into(),
            );
        }
    }

    /// A tail was ejected at its destination and counted as delivered.
    pub(crate) fn on_delivered(&mut self, cycle: Cycle, node: Coord, id: u64) {
        self.delivered += 1;
        match self.resolve(id) {
            Resolution::Fresh => {}
            Resolution::Already => self.violate(
                AuditKind::Conservation,
                cycle,
                Some(node),
                None,
                None,
                Some(id),
                "packet delivered twice (already resolved)".into(),
            ),
            Resolution::Unknown => self.violate(
                AuditKind::Conservation,
                cycle,
                Some(node),
                None,
                None,
                Some(id),
                "delivery of a packet that was never generated".into(),
            ),
        }
    }

    /// A late duplicate delivery was suppressed at the sink.
    pub(crate) fn on_duplicate(&mut self, cycle: Cycle, node: Coord, id: u64) {
        if self.live.contains(&id) {
            self.violate(
                AuditKind::Conservation,
                cycle,
                Some(node),
                None,
                None,
                Some(id),
                "duplicate suppressed while the packet is still outstanding".into(),
            );
        } else if !self.resolved.contains(&id) {
            self.violate(
                AuditKind::Conservation,
                cycle,
                Some(node),
                None,
                None,
                Some(id),
                "duplicate of a packet that was never generated".into(),
            );
        }
    }

    /// A fragment of `id` was provably destroyed. Without recovery this
    /// resolves the packet (it can never complete); with recovery the
    /// packet stays live until delivery or abandonment.
    fn resolve_fragment(&mut self, cycle: Cycle, node: Coord, id: u64, what: &str) {
        if self.recovery {
            if !self.known(id) {
                self.violate(
                    AuditKind::Conservation,
                    cycle,
                    Some(node),
                    None,
                    None,
                    Some(id),
                    format!("{what} of a packet that was never generated"),
                );
            }
            return;
        }
        if let Resolution::Unknown = self.resolve(id) {
            self.violate(
                AuditKind::Conservation,
                cycle,
                Some(node),
                None,
                None,
                Some(id),
                format!("{what} of a packet that was never generated"),
            );
        }
    }

    /// A flit surfaced in a router's drop list (fault discard paths) or
    /// a dead node's source-queue flush.
    pub(crate) fn on_dropped(&mut self, cycle: Cycle, node: Coord, flit: &Flit) {
        let id = flit.packet.0;
        if flit.poison {
            // A discarded poison tail is pure control traffic; resolve
            // its packet when the aborting router still knew it.
            if id != u64::MAX {
                self.resolve_fragment(cycle, node, id, "poison drop");
            }
            return;
        }
        if flit.kind.is_head() || flit.kind.is_tail() {
            self.resolve_fragment(cycle, node, id, "drop");
        } else if !self.known(id) {
            self.violate(
                AuditKind::Conservation,
                cycle,
                Some(node),
                None,
                None,
                Some(id),
                "dropped body flit of a packet that was never generated".into(),
            );
        }
    }

    /// A poison tail reached an ejection port.
    pub(crate) fn on_poison_ejected(&mut self, cycle: Cycle, node: Coord, raw_id: u64) {
        if raw_id != u64::MAX {
            self.resolve_fragment(cycle, node, raw_id, "poison ejection");
        }
        // Sentinel poisons resolve on the link where they crossed an
        // open stream (the stream state names the truncated packet).
    }

    /// Fault-aware routing failed a packet fast: its destination is
    /// provably unreachable over the usable-link graph (ISSUE 8). Like
    /// abandonment, this resolves the packet exactly once.
    pub(crate) fn on_unroutable(&mut self, cycle: Cycle, id: u64) {
        self.unroutable += 1;
        match self.resolve(id) {
            Resolution::Fresh => {}
            _ => self.violate(
                AuditKind::Conservation,
                cycle,
                None,
                None,
                None,
                Some(id),
                "unroutable packet was not outstanding".into(),
            ),
        }
    }

    /// The recovery layer gave a packet up.
    pub(crate) fn on_abandoned(&mut self, cycle: Cycle, id: u64) {
        self.abandoned += 1;
        match self.resolve(id) {
            Resolution::Fresh => {}
            _ => self.violate(
                AuditKind::Conservation,
                cycle,
                None,
                None,
                None,
                Some(id),
                "abandoned packet was not outstanding".into(),
            ),
        }
    }

    // ------------------------------------------------------------------
    // Link stream checker
    // ------------------------------------------------------------------

    /// A flit is being delivered across a link: `node` receives it on
    /// side `from`, destined for input VC `vc`.
    pub(crate) fn on_link_flit(
        &mut self,
        cycle: Cycle,
        node: usize,
        from: Direction,
        vc: u8,
        flit: &Flit,
    ) {
        self.flits_observed += 1;
        if vc == EJECT_VC {
            // Early Ejection transfers are per-flit: flits of different
            // packets legally interleave on the link's ejection lane.
            return;
        }
        let coord = self.coord(node);
        let key = (node, from.index() as u8, vc);
        let id = flit.packet.0;
        if flit.poison {
            if let Some(s) = self.streams.remove(&key) {
                if id != u64::MAX && id != s.packet {
                    self.violate(
                        AuditKind::StreamOrder,
                        cycle,
                        Some(coord),
                        Some(from),
                        Some(vc),
                        Some(id),
                        format!("poison tail names packet {id} but stream {} is open", s.packet),
                    );
                }
                // The open stream can never complete: its wormhole was
                // just closed by force.
                let truncated = s.packet;
                self.resolve_fragment(cycle, coord, truncated, "poison-closed stream");
            } else if id != u64::MAX {
                self.resolve_fragment(cycle, coord, id, "poison transfer");
            }
            return;
        }
        if flit.kind.is_head() {
            if let Some(s) = self.streams.get(&key) {
                let open = s.packet;
                self.violate(
                    AuditKind::StreamOrder,
                    cycle,
                    Some(coord),
                    Some(from),
                    Some(vc),
                    Some(id),
                    format!("head arrived while packet {open}'s wormhole is still open"),
                );
            }
            if flit.seq != 0 {
                self.violate(
                    AuditKind::StreamOrder,
                    cycle,
                    Some(coord),
                    Some(from),
                    Some(vc),
                    Some(id),
                    format!("head flit carries sequence {} (expected 0)", flit.seq),
                );
            }
            if flit.kind.is_tail() {
                self.streams.remove(&key);
            } else {
                self.streams.insert(key, Stream { packet: id, last_seq: flit.seq });
            }
            return;
        }
        // Body or tail: must continue the open stream in order. The
        // stream entry is inspected (and advanced) first so the map
        // borrow ends before any violation is recorded.
        let (open, last_seq) = match self.streams.get_mut(&key) {
            None => {
                self.violate(
                    AuditKind::StreamOrder,
                    cycle,
                    Some(coord),
                    Some(from),
                    Some(vc),
                    Some(id),
                    format!("{:?} flit arrived with no wormhole open", flit.kind),
                );
                return;
            }
            Some(s) => {
                let prior = (s.packet, s.last_seq);
                if s.packet == id {
                    s.last_seq = flit.seq;
                }
                prior
            }
        };
        if open != id {
            self.violate(
                AuditKind::StreamOrder,
                cycle,
                Some(coord),
                Some(from),
                Some(vc),
                Some(id),
                format!("flit of packet {id} interleaved into packet {open}'s wormhole"),
            );
        } else {
            let expected = last_seq.wrapping_add(1);
            if flit.seq != expected {
                let got = flit.seq;
                self.violate(
                    AuditKind::StreamOrder,
                    cycle,
                    Some(coord),
                    Some(from),
                    Some(vc),
                    Some(id),
                    format!("sequence gap: expected {expected}, got {got}"),
                );
            }
        }
        if flit.kind.is_tail() {
            self.streams.remove(&key);
        }
    }

    // ------------------------------------------------------------------
    // Status coherence
    // ------------------------------------------------------------------

    /// A router emitted a flit toward neighbour `receiver` (published
    /// status `status`).
    pub(crate) fn on_emission(
        &mut self,
        cycle: Cycle,
        receiver: usize,
        receiver_coord: Coord,
        status: NodeStatus,
        flit: &Flit,
    ) {
        if flit.poison || !status.node_dead() {
            return;
        }
        // One-cycle grace: flits latched for switch traversal before
        // the republication landed legally flush the cycle it lands.
        if cycle > self.last_republish[receiver] {
            self.violate(
                AuditKind::StatusCoherence,
                cycle,
                Some(receiver_coord),
                None,
                None,
                Some(flit.packet.0),
                "flit emitted toward a node published as dead".into(),
            );
        }
    }

    /// A fault or repair event fired at `site`: §4.1 allows every link
    /// touching it to desynchronise until the site's republication has
    /// landed and the books have provably resynchronised.
    pub(crate) fn on_fault_event(
        &mut self,
        cycle: Cycle,
        site: usize,
        neighbors: [Option<usize>; 4],
    ) {
        for dir in Direction::MESH {
            if let Some(n) = neighbors[dir.index()] {
                self.tainted.insert((site, dir.index() as u8), (site, cycle));
                self.tainted.insert((n, dir.opposite().index() as u8), (site, cycle));
            }
        }
    }

    /// A §4.1 status republication for `site` landed.
    pub(crate) fn on_republish(&mut self, cycle: Cycle, site: usize) {
        self.last_republish[site] = cycle;
    }

    // ------------------------------------------------------------------
    // Global sweep
    // ------------------------------------------------------------------

    /// Runs the global invariant sweep against the simulation state at
    /// the end of a cycle's phase 3 (credit books, VC legality,
    /// quiescence, incremental-accounting re-derivation).
    pub(crate) fn check(&mut self, sim: &Simulation) {
        self.checks_run += 1;
        let cycle = sim.cycle;
        let nodes = sim.routers.len();
        let probes: Vec<AuditProbe> =
            sim.routers.iter().enumerate().map(|(i, r)| r.audit_probe(&sim.slab.view(i))).collect();

        // Receiver-side index: (node, side, link_index) -> probe VC slot.
        let mut rcv: Vec<[Vec<usize>; 5]> = Vec::with_capacity(nodes);
        for p in &probes {
            let mut m: [Vec<usize>; 5] = Default::default();
            for (k, v) in p.vcs.iter().enumerate() {
                let side = v.input_side.index();
                let li = v.link_index as usize;
                if m[side].len() <= li {
                    m[side].resize(li + 1, usize::MAX);
                }
                m[side][li] = k;
            }
            rcv.push(m);
        }

        // In-pipeline flit/credit tallies keyed by link VC.
        let mut latched: HashMap<(usize, u8, u8), u32> = HashMap::new();
        let mut pend_credits: HashMap<(usize, u8, u8), u32> = HashMap::new();
        for (i, p) in probes.iter().enumerate() {
            for l in &p.latched {
                if l.out != Direction::Local && l.dvc != EJECT_VC {
                    *latched.entry((i, l.out.index() as u8, l.dvc)).or_insert(0) += 1;
                }
            }
            for &(side, vc) in &p.pending_credits {
                *pend_credits.entry((i, side.index() as u8, vc)).or_insert(0) += 1;
            }
        }
        // `flits_on_links` includes the multi-cycle delay wheel, so
        // flits mid-flight across a die-to-die link still count
        // against the upstream credit book.
        let mut on_link: HashMap<(usize, u8, u8), u32> = HashMap::new();
        for f in sim.flits_on_links() {
            if f.vc != EJECT_VC {
                *on_link.entry((f.node, f.from.index() as u8, f.vc)).or_insert(0) += 1;
            }
        }
        let mut cred_link: HashMap<(usize, u8, u8), u32> = HashMap::new();
        for c in sim.credits_on_links() {
            *cred_link.entry((c.node, c.output.index() as u8, c.credit.vc)).or_insert(0) += 1;
        }

        // Credit books, link by link.
        for i in 0..nodes {
            let coord = self.coord(i);
            for dir in Direction::MESH {
                let Some(n) = sim.neighbor_idx[i][dir.index()] else { continue };
                let books = &probes[i].outputs[dir.index()];
                let opp = dir.opposite();
                let d_idx = dir.index() as u8;
                let o_idx = opp.index() as u8;
                let taint = self.tainted.get(&(i, d_idx)).copied();
                let mut all_match = true;
                for (v, book) in books.iter().enumerate() {
                    let vu = v as u8;
                    if book.credits > book.capacity {
                        self.violate(
                            AuditKind::CreditBook,
                            cycle,
                            Some(coord),
                            Some(dir),
                            Some(vu),
                            None,
                            format!(
                                "credits {} exceed downstream capacity {}",
                                book.credits, book.capacity
                            ),
                        );
                    }
                    let in_latch = latched.get(&(i, d_idx, vu)).copied().unwrap_or(0);
                    let in_flight = on_link.get(&(n, o_idx, vu)).copied().unwrap_or(0);
                    let in_queue = rcv[n][opp.index()]
                        .get(v)
                        .copied()
                        .filter(|&k| k != usize::MAX)
                        .map_or(0u32, |k| probes[n].vcs[k].queue_len as u32);
                    let cred_pend = pend_credits.get(&(n, o_idx, vu)).copied().unwrap_or(0);
                    let cred_fly = cred_link.get(&(i, d_idx, vu)).copied().unwrap_or(0);
                    let outstanding = in_latch + in_flight + in_queue + cred_pend + cred_fly;
                    let expected = (book.capacity as u32).saturating_sub(outstanding) as u8;
                    if book.credits != expected {
                        all_match = false;
                    }
                    if taint.is_none() && book.credits != expected {
                        self.violate(
                            AuditKind::CreditBook,
                            cycle,
                            Some(coord),
                            Some(dir),
                            Some(vu),
                            None,
                            format!(
                                "credits {} != capacity {} - outstanding {} \
                                 (latch {in_latch} + link {in_flight} + queue {in_queue} \
                                 + credits pending {cred_pend} + in flight {cred_fly})",
                                book.credits, book.capacity, outstanding
                            ),
                        );
                    }
                }
                if let Some((src, when)) = taint {
                    // The link goes back to exact checking only once
                    // the faulted site's republication has landed (so
                    // the sender's books have been resynchronised) and
                    // the books actually agree with the derivation —
                    // flits swallowed during the §4.1 window make the
                    // two disagree until republication re-bases them.
                    if self.last_republish[src] >= when && all_match {
                        self.tainted.remove(&(i, d_idx));
                    }
                }
            }
        }

        // VC state legality, router by router.
        for (i, p) in probes.iter().enumerate() {
            let coord = self.coord(i);
            let mut holders: HashSet<(u8, u8)> = HashSet::new();
            for v in &p.vcs {
                let vc = v.link_index;
                let side = v.input_side;
                let overflow_bound = v.nominal_capacity as usize + v.poison_queued;
                if v.queue_len > overflow_bound {
                    self.violate(
                        AuditKind::VcState,
                        cycle,
                        Some(coord),
                        Some(side),
                        Some(vc),
                        None,
                        format!(
                            "buffer holds {} flits, nominal capacity {} (+{} poison)",
                            v.queue_len, v.nominal_capacity, v.poison_queued
                        ),
                    );
                }
                if self.fault_free {
                    if v.queue_len > v.capacity as usize {
                        self.violate(
                            AuditKind::VcState,
                            cycle,
                            Some(coord),
                            Some(side),
                            Some(vc),
                            None,
                            format!(
                                "buffer holds {} flits over capacity {} in a fault-free run",
                                v.queue_len, v.capacity
                            ),
                        );
                    }
                    if v.poison_queued > 0 || v.disabled {
                        self.violate(
                            AuditKind::VcState,
                            cycle,
                            Some(coord),
                            Some(side),
                            Some(vc),
                            None,
                            "poisoned or disabled VC in a fault-free run".into(),
                        );
                    }
                }
                if matches!(
                    v.phase,
                    noc_core::VcPhase::Routing
                        | noc_core::VcPhase::WaitingVa
                        | noc_core::VcPhase::Blocked
                ) && !v.dropping
                    && v.head_is_head_kind == Some(false)
                {
                    self.violate(
                        AuditKind::VcState,
                        cycle,
                        Some(coord),
                        Some(side),
                        Some(vc),
                        None,
                        format!("{:?} VC fronts a non-head flit", v.phase),
                    );
                }
                let (Some(out), Some(dvc)) = (v.active_out, v.active_dvc) else { continue };
                if dvc == EJECT_VC {
                    continue;
                }
                if out == Direction::Local {
                    self.violate(
                        AuditKind::VcState,
                        cycle,
                        Some(coord),
                        Some(side),
                        Some(vc),
                        None,
                        "active stream holds a non-ejection VC on the local port".into(),
                    );
                    continue;
                }
                let books = &p.outputs[out.index()];
                match books.get(dvc as usize) {
                    None => self.violate(
                        AuditKind::VcState,
                        cycle,
                        Some(coord),
                        Some(out),
                        Some(dvc),
                        None,
                        "active stream holds a downstream VC that does not exist".into(),
                    ),
                    Some(b) if b.free => self.violate(
                        AuditKind::VcState,
                        cycle,
                        Some(coord),
                        Some(out),
                        Some(dvc),
                        None,
                        "downstream VC marked free while a stream still holds it".into(),
                    ),
                    Some(_) => {}
                }
                if !holders.insert((out.index() as u8, dvc)) {
                    self.violate(
                        AuditKind::VcState,
                        cycle,
                        Some(coord),
                        Some(out),
                        Some(dvc),
                        None,
                        "two input VCs hold the same downstream VC".into(),
                    );
                }
            }
        }

        // Quiescence (wake-set soundness) and incremental accounting.
        let mut derived_occ_total = 0usize;
        for (i, p) in probes.iter().enumerate() {
            let derived: usize = p.vcs.iter().map(|v| v.queue_len).sum::<usize>()
                + p.latched.len()
                + p.pending_ejects
                + p.pending_drops;
            derived_occ_total += derived;
            if derived != sim.occ_cache[i] {
                self.violate(
                    AuditKind::Accounting,
                    cycle,
                    Some(self.coord(i)),
                    None,
                    None,
                    None,
                    format!("cached occupancy {} != derived occupancy {derived}", sim.occ_cache[i]),
                );
            }
            // Flat flit-slab coherence (ISSUE 10): the router's
            // incrementally maintained buffered counter must equal the
            // summed slab ring lengths, and every ring's head/len must
            // stay inside its capacity. Divergence means the slab and
            // the engine's view of it have drifted apart.
            let ring_total: usize = p.vcs.iter().map(|v| v.queue_len).sum();
            if p.buffered_total != ring_total {
                self.violate(
                    AuditKind::SlabCoherence,
                    cycle,
                    Some(self.coord(i)),
                    None,
                    None,
                    None,
                    format!(
                        "incremental buffered counter {} != summed slab ring lengths {ring_total}",
                        p.buffered_total
                    ),
                );
            }
            if !p.rings_coherent {
                self.violate(
                    AuditKind::SlabCoherence,
                    cycle,
                    Some(self.coord(i)),
                    None,
                    None,
                    None,
                    "slab ring index out of bounds (head or len exceeds ring capacity)".into(),
                );
            }
            if matches!(sim.cfg.kernel, KernelMode::Optimized | KernelMode::Soa)
                && !sim.wake.is_awake(i)
                && !sim.routers[i].is_quiescent()
            {
                self.violate(
                    AuditKind::Quiescence,
                    cycle,
                    Some(self.coord(i)),
                    None,
                    None,
                    None,
                    "router is off the wake-set but not quiescent".into(),
                );
            }
            // Busy-tag superset invariant (DESIGN.md §15): phase 1
            // deliveries precede phase 3, so after a Soa step every
            // non-quiet VC must appear in the mask the step recorded —
            // a miss means the fused hot path skipped live state.
            if sim.cfg.kernel == KernelMode::Soa && p.vcs.len() <= 64 {
                for (vc_id, v) in p.vcs.iter().enumerate() {
                    let quiet = v.phase == noc_core::VcPhase::Idle && !v.dropping;
                    if !quiet && sim.vc_busy[i] & (1u64 << vc_id) == 0 {
                        self.violate(
                            AuditKind::Quiescence,
                            cycle,
                            Some(self.coord(i)),
                            Some(v.input_side),
                            Some(v.link_index),
                            None,
                            "non-quiet VC is outside the recorded busy-tag mask".into(),
                        );
                    }
                }
            }
        }
        if derived_occ_total != sim.occ_total {
            self.violate(
                AuditKind::Accounting,
                cycle,
                None,
                None,
                None,
                None,
                format!("incremental occupancy {} != derived {derived_occ_total}", sim.occ_total),
            );
        }
        let derived_sources: usize = sim.sources.iter().map(|s| s.len()).sum();
        if derived_sources != sim.source_total {
            self.violate(
                AuditKind::Accounting,
                cycle,
                None,
                None,
                None,
                None,
                format!(
                    "incremental source count {} != derived {derived_sources}",
                    sim.source_total
                ),
            );
        }

        // Ledger vs simulator statistics.
        if self.generated != sim.stats.generated {
            self.violate(
                AuditKind::Accounting,
                cycle,
                None,
                None,
                None,
                None,
                format!(
                    "auditor saw {} generated packets, stats say {}",
                    self.generated, sim.stats.generated
                ),
            );
        }
        if self.delivered != sim.stats.delivered {
            self.violate(
                AuditKind::Accounting,
                cycle,
                None,
                None,
                None,
                None,
                format!(
                    "auditor saw {} delivered packets, stats say {}",
                    self.delivered, sim.stats.delivered
                ),
            );
        }
        // Unroutable fail-fasts happen with or without recovery, so the
        // ledger/stats comparison is unconditional (both sides are zero
        // when fault-aware routing is off).
        if self.unroutable != sim.recovery.unroutable_packets {
            self.violate(
                AuditKind::Accounting,
                cycle,
                None,
                None,
                None,
                None,
                format!(
                    "auditor saw {} unroutable packets, recovery stats say {}",
                    self.unroutable, sim.recovery.unroutable_packets
                ),
            );
        }
        if self.recovery {
            if self.abandoned != sim.recovery.abandoned_packets {
                self.violate(
                    AuditKind::Accounting,
                    cycle,
                    None,
                    None,
                    None,
                    None,
                    format!(
                        "auditor saw {} abandoned packets, recovery stats say {}",
                        self.abandoned, sim.recovery.abandoned_packets
                    ),
                );
            }
            if self.live.len() != sim.outstanding.len() {
                self.violate(
                    AuditKind::Conservation,
                    cycle,
                    None,
                    None,
                    None,
                    None,
                    format!(
                        "{} packets unresolved in the ledger but {} outstanding in recovery",
                        self.live.len(),
                        sim.outstanding.len()
                    ),
                );
            }
        }
    }

    /// End-of-run checks: on a clean drain (not stalled, not clipped by
    /// `max_cycles`) every packet must be resolved and every wormhole
    /// closed. Runs one final sweep either way. Idempotent.
    pub(crate) fn finish(&mut self, sim: &Simulation) {
        if self.done {
            return;
        }
        self.done = true;
        self.check(sim);
        let drained = sim.next_packet >= sim.cfg.total_packets()
            && sim.flits_in_system() == 0
            && sim.outstanding.is_empty();
        let clean = drained && !sim.stalled && sim.cycle < sim.cfg.max_cycles;
        if !clean {
            return;
        }
        let cycle = sim.cycle;
        let mut leftovers: Vec<u64> = self.live.iter().copied().collect();
        leftovers.sort_unstable();
        for id in leftovers {
            self.violate(
                AuditKind::Conservation,
                cycle,
                None,
                None,
                None,
                Some(id),
                "packet neither delivered, dropped nor abandoned at clean drain".into(),
            );
        }
        let mut open: Vec<(usize, u8, u8, u64)> =
            self.streams.iter().map(|(&(n, s, v), st)| (n, s, v, st.packet)).collect();
        open.sort_unstable();
        for (n, s, v, packet) in open {
            let node = self.coord(n);
            let side = Direction::ALL[s as usize];
            self.violate(
                AuditKind::StreamOrder,
                cycle,
                Some(node),
                Some(side),
                Some(v),
                Some(packet),
                "wormhole still open at clean drain".into(),
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{AuditConfig, RecoveryConfig, SimConfig};
    use crate::network::{FlitInFlight, Simulation};
    use noc_core::{
        Axis, AxisOrder, ComponentFault, FaultComponent, MeshConfig, ModuleHealth, PacketId,
        RouterKind, RoutingKind, VcPhase,
    };
    use noc_fault::FaultSchedule;
    use noc_traffic::TrafficKind;

    fn small_cfg(router: RouterKind) -> SimConfig {
        let mut cfg = SimConfig::paper_scaled(router, RoutingKind::Xy, TrafficKind::Uniform);
        cfg.mesh = MeshConfig::new(4, 4);
        cfg.injection_rate = 0.25;
        cfg.warmup_packets = 20;
        cfg.measured_packets = 200;
        cfg.max_cycles = 50_000;
        cfg.audit = Some(AuditConfig::default());
        cfg
    }

    fn count_of(report: &AuditReport, kind: AuditKind) -> u64 {
        report.counts.iter().find(|(k, _)| *k == kind).map_or(0, |&(_, n)| n)
    }

    fn dead_status() -> NodeStatus {
        NodeStatus { row: ModuleHealth::Dead, col: ModuleHealth::Dead, rc_ok: false }
    }

    #[test]
    fn clean_runs_audit_clean_for_every_router() {
        for router in RouterKind::ALL {
            let results = Simulation::new(small_cfg(router)).run();
            let report = results.audit.expect("audit was enabled");
            assert!(report.clean(), "{router:?}: {}", report.render());
            assert!(report.checks_run > 0);
            assert!(report.flits_observed > 0, "{router:?} never moved a flit");
            assert!(!results.stalled);
        }
    }

    #[test]
    fn faulted_recovery_runs_audit_clean() {
        for router in [RouterKind::RoCo, RouterKind::Generic] {
            let mut cfg = small_cfg(router);
            let mut schedule = FaultSchedule::none();
            schedule.push_transient(
                200,
                Coord::new(1, 1),
                ComponentFault::new(FaultComponent::Crossbar, Axis::X),
                400,
            );
            schedule.push_permanent(
                500,
                Coord::new(2, 2),
                ComponentFault::new(FaultComponent::VaArbiter, Axis::Y),
            );
            cfg.schedule = schedule;
            cfg.recovery =
                Some(RecoveryConfig { timeout: 300, max_retries: 3, backoff_cap: 2_000 });
            let results = Simulation::new(cfg).run();
            let report = results.audit.expect("audit was enabled");
            assert!(report.clean(), "{router:?}: {}", report.render());
        }
    }

    #[test]
    fn auditing_never_changes_the_results() {
        let audited = Simulation::new(small_cfg(RouterKind::RoCo)).run();
        let mut plain_cfg = small_cfg(RouterKind::RoCo);
        plain_cfg.audit = None;
        let plain = Simulation::new(plain_cfg).run();
        assert_eq!(audited.digest(), plain.digest(), "auditing perturbed the simulation");
        let mut ref_cfg = small_cfg(RouterKind::RoCo);
        ref_cfg.kernel = crate::KernelMode::Reference;
        let reference = Simulation::new(ref_cfg).run();
        assert_eq!(audited.digest(), reference.digest(), "kernels diverged");
    }

    #[test]
    fn corrupted_credit_counter_flags_credit_book() {
        let mut sim = Simulation::new(small_cfg(RouterKind::RoCo));
        for _ in 0..50 {
            sim.step();
        }
        sim.audit_sweep_now();
        assert!(sim.results().audit.expect("enabled").clean(), "corrupted before mutation");
        let mut hit = false;
        'outer: for i in 0..sim.routers.len() {
            let core = sim.routers[i].test_core_mut();
            for d in 0..4 {
                if let Some(p) = core.outputs[d].as_mut() {
                    if let Some(v) = p.vcs.iter_mut().find(|v| v.credits > 0) {
                        v.credits -= 1;
                        hit = true;
                        break 'outer;
                    }
                }
            }
        }
        assert!(hit, "no credited output VC found to corrupt");
        sim.audit_sweep_now();
        let report = sim.results().audit.expect("enabled");
        assert!(count_of(&report, AuditKind::CreditBook) > 0, "{}", report.render());
    }

    #[test]
    fn stolen_in_flight_flit_flags_credit_book() {
        let mut sim = Simulation::new(small_cfg(RouterKind::RoCo));
        let mut victim = None;
        for _ in 0..500 {
            sim.step();
            if let Some(pos) = sim.flits_in_flight.iter().position(|f| f.vc != noc_core::EJECT_VC) {
                victim = Some(pos);
                break;
            }
        }
        let pos = victim.expect("no mesh-link flit ever in flight");
        sim.flits_in_flight.swap_remove(pos);
        sim.audit_sweep_now();
        let report = sim.results().audit.expect("enabled");
        assert!(count_of(&report, AuditKind::CreditBook) > 0, "{}", report.render());
    }

    #[test]
    fn forged_body_flit_flags_stream_order() {
        let mut sim = Simulation::new(small_cfg(RouterKind::Generic));
        for _ in 0..10 {
            sim.step();
        }
        // An interior node, on a link VC that is idle, empty, and not
        // about to receive a genuine flit: the forged body is an orphan.
        let node = Coord::new(1, 1).index(4);
        let probe = sim.routers[node].audit_probe(&sim.slab.view(node));
        let slot = probe
            .vcs
            .iter()
            .find(|v| {
                v.input_side != Direction::Local
                    && v.queue_len == 0
                    && v.phase == VcPhase::Idle
                    && !sim
                        .flits_in_flight
                        .iter()
                        .any(|f| f.node == node && f.from == v.input_side && f.vc == v.link_index)
            })
            .expect("no idle link VC at the interior node");
        let forged = Flit::packet_flit_iter(
            PacketId(999_999_999),
            Coord::new(0, 0),
            Coord::new(3, 3),
            0,
            4,
            AxisOrder::Xy,
        )
        .nth(1)
        .expect("packet has a second flit");
        sim.flits_in_flight.push(FlitInFlight {
            node,
            from: slot.input_side,
            vc: slot.link_index,
            flit: forged,
        });
        sim.step();
        let report = sim.results().audit.expect("enabled");
        assert!(count_of(&report, AuditKind::StreamOrder) > 0, "{}", report.render());
    }

    #[test]
    fn killed_published_status_flags_status_coherence() {
        let mut cfg = small_cfg(RouterKind::Generic);
        cfg.injection_rate = 0.35;
        let mut sim = Simulation::new(cfg);
        // Step until some router is mid-wormhole toward a neighbour with
        // flits still queued behind the head, then lie to the network:
        // publish that neighbour as dead. The committed stream keeps
        // emitting (SA never re-reads the status table), which the
        // status-coherence check must flag.
        let mut victim = None;
        'search: for _ in 0..500 {
            sim.step();
            for (i, r) in sim.routers.iter().enumerate() {
                for v in r.audit_probe(&sim.slab.view(i)).vcs {
                    if v.phase == noc_core::VcPhase::Active
                        && v.queue_len >= 2
                        && v.active_dvc.is_some_and(|d| d != noc_core::EJECT_VC)
                    {
                        let out = v.active_out.expect("active stream holds an output");
                        if let Some(n) = sim.neighbor_idx[i][out.index()] {
                            victim = Some(n);
                            break 'search;
                        }
                    }
                }
            }
        }
        let victim = victim.expect("no mid-wormhole stream found");
        sim.statuses[victim] = dead_status();
        let mut found = false;
        for _ in 0..50 {
            sim.step();
            let report = sim.results().audit.expect("enabled");
            if count_of(&report, AuditKind::StatusCoherence) > 0 {
                found = true;
                break;
            }
        }
        assert!(found, "no emission toward the dead-published node was flagged");
    }

    #[test]
    fn off_wake_set_busy_router_flags_quiescence() {
        let mut sim = Simulation::new(small_cfg(RouterKind::RoCo));
        let mut target = None;
        for _ in 0..500 {
            sim.step();
            if let Some(i) =
                (0..sim.routers.len()).find(|&i| sim.wake.is_awake(i) && sim.occ_cache[i] > 0)
            {
                target = Some(i);
                break;
            }
        }
        let i = target.expect("no busy router found");
        sim.wake.sleep(i);
        sim.audit_sweep_now();
        let report = sim.results().audit.expect("enabled");
        assert!(count_of(&report, AuditKind::Quiescence) > 0, "{}", report.render());
    }

    #[test]
    fn cleared_busy_tag_mask_flags_quiescence_under_soa() {
        let mut cfg = small_cfg(RouterKind::RoCo);
        cfg.kernel = crate::KernelMode::Soa;
        let mut sim = Simulation::new(cfg);
        let mut target = None;
        for _ in 0..500 {
            sim.step();
            // A router with buffered flits necessarily has a non-quiet
            // VC, so zeroing its recorded mask must trip the check.
            if let Some(i) = (0..sim.routers.len()).find(|&i| {
                sim.occ_cache[i] > 0
                    && sim.routers[i]
                        .audit_probe(&sim.slab.view(i))
                        .vcs
                        .iter()
                        .any(|v| v.queue_len > 0)
            }) {
                target = Some(i);
                break;
            }
        }
        let i = target.expect("no router with buffered flits found");
        sim.vc_busy[i] = 0;
        sim.audit_sweep_now();
        let report = sim.results().audit.expect("enabled");
        assert!(count_of(&report, AuditKind::Quiescence) > 0, "{}", report.render());
    }

    #[test]
    fn inflated_generated_stat_flags_accounting() {
        let mut sim = Simulation::new(small_cfg(RouterKind::RoCo));
        for _ in 0..20 {
            sim.step();
        }
        sim.stats.generated += 1;
        sim.audit_sweep_now();
        let report = sim.results().audit.expect("enabled");
        assert!(count_of(&report, AuditKind::Accounting) > 0, "{}", report.render());
    }

    #[test]
    fn corrupted_slab_head_flags_slab_coherence() {
        let mut sim = Simulation::new(small_cfg(RouterKind::RoCo));
        for _ in 0..50 {
            sim.step();
        }
        sim.audit_sweep_now();
        assert!(sim.results().audit.expect("enabled").clean(), "violations before mutation");
        // Push an *empty* ring's head index past its capacity: nothing
        // else in the router observes an empty ring, so the only report
        // must come from the slab-coherence check (exact class).
        let rings = sim.slab.ring_caps().len();
        let (node, ring, cap) = (0..sim.routers.len())
            .flat_map(|n| (0..rings).map(move |r| (n, r)))
            .find_map(|(n, r)| {
                let v = sim.slab.view(n);
                v.is_empty(r).then(|| (n, r, v.ring_cap(r)))
            })
            .expect("no empty VC ring found");
        sim.slab.debug_set_head(node, ring, cap);
        sim.audit_sweep_now();
        let report = sim.results().audit.expect("enabled");
        assert!(count_of(&report, AuditKind::SlabCoherence) > 0, "{}", report.render());
        assert_eq!(
            report.total_violations,
            count_of(&report, AuditKind::SlabCoherence),
            "corruption misattributed to another class: {}",
            report.render()
        );
    }

    #[test]
    fn corrupted_occupancy_total_flags_accounting() {
        let mut sim = Simulation::new(small_cfg(RouterKind::RoCo));
        for _ in 0..20 {
            sim.step();
        }
        sim.occ_total += 1;
        sim.audit_sweep_now();
        let report = sim.results().audit.expect("enabled");
        assert!(count_of(&report, AuditKind::Accounting) > 0, "{}", report.render());
    }

    #[test]
    fn freed_held_downstream_vc_flags_vc_state() {
        let mut sim = Simulation::new(small_cfg(RouterKind::RoCo));
        let mut target = None;
        'search: for _ in 0..500 {
            sim.step();
            for i in 0..sim.routers.len() {
                let probe = sim.routers[i].audit_probe(&sim.slab.view(i));
                for v in &probe.vcs {
                    if let (Some(out), Some(dvc)) = (v.active_out, v.active_dvc) {
                        if out != Direction::Local && dvc != EJECT_VC {
                            target = Some((i, out, dvc));
                            break 'search;
                        }
                    }
                }
            }
        }
        let (i, out, dvc) = target.expect("no active stream found");
        let core = sim.routers[i].test_core_mut();
        core.outputs[out.index()].as_mut().expect("wired output").vcs[dvc as usize].free = true;
        sim.audit_sweep_now();
        let report = sim.results().audit.expect("enabled");
        assert!(count_of(&report, AuditKind::VcState) > 0, "{}", report.render());
    }

    // ---- direct hook tests: exact violation-class mapping ----

    fn bare_auditor() -> Auditor {
        Auditor::new(AuditConfig::default(), &small_cfg(RouterKind::RoCo))
    }

    fn packet_flits(id: u64) -> Vec<Flit> {
        Flit::packet_flit_iter(
            PacketId(id),
            Coord::new(0, 0),
            Coord::new(3, 3),
            0,
            4,
            AxisOrder::Xy,
        )
        .collect()
    }

    #[test]
    fn double_delivery_is_conservation() {
        let mut a = bare_auditor();
        a.on_generated(0, 42);
        a.on_delivered(5, Coord::new(3, 3), 42);
        assert_eq!(a.total, 0);
        a.on_delivered(6, Coord::new(3, 3), 42);
        assert_eq!(count_of(&a.report(), AuditKind::Conservation), 1);
    }

    #[test]
    fn delivery_of_unknown_packet_is_conservation() {
        let mut a = bare_auditor();
        a.on_delivered(5, Coord::new(3, 3), 77);
        assert_eq!(count_of(&a.report(), AuditKind::Conservation), 1);
    }

    #[test]
    fn unroutable_resolves_once_and_double_resolution_is_conservation() {
        let mut a = bare_auditor();
        a.on_generated(0, 42);
        a.on_unroutable(1, 42);
        assert_eq!(a.total, 0, "{}", a.report().render());
        assert!(a.live.is_empty(), "unroutable must resolve the packet");
        // Resolving the same packet again (delivered after fail-fast
        // without sink-side suppression) is a conservation violation.
        a.on_delivered(5, Coord::new(3, 3), 42);
        assert_eq!(count_of(&a.report(), AuditKind::Conservation), 1);
        // An unroutable verdict for a never-generated packet too.
        a.on_unroutable(6, 77);
        assert_eq!(count_of(&a.report(), AuditKind::Conservation), 2);
    }

    #[test]
    fn stream_machine_flags_interleave_gap_and_orphan() {
        let mut a = bare_auditor();
        a.on_generated(0, 1);
        a.on_generated(0, 2);
        let p1 = packet_flits(1);
        let p2 = packet_flits(2);
        // Proper head..tail sequence on one link VC: no violation.
        for f in &p1 {
            a.on_link_flit(1, 5, Direction::West, 0, f);
        }
        assert_eq!(a.total, 0, "{}", a.report().render());
        // Head of packet 2 while packet 1's wormhole is re-opened and
        // left dangling: interleave.
        a.on_link_flit(2, 5, Direction::West, 0, &p1[0]);
        a.on_link_flit(3, 5, Direction::West, 0, &p2[0]);
        assert_eq!(count_of(&a.report(), AuditKind::StreamOrder), 1);
        // A sequence gap within packet 2 (skip seq 1).
        a.on_link_flit(4, 5, Direction::West, 0, &p2[2]);
        assert_eq!(count_of(&a.report(), AuditKind::StreamOrder), 2);
        // A body with no wormhole open on a fresh link VC.
        a.on_link_flit(5, 6, Direction::East, 1, &p1[1]);
        assert_eq!(count_of(&a.report(), AuditKind::StreamOrder), 3);
    }

    #[test]
    fn poison_closes_and_resolves_the_open_stream() {
        let mut a = bare_auditor();
        a.on_generated(0, 9);
        let p = packet_flits(9);
        a.on_link_flit(1, 5, Direction::West, 0, &p[0]);
        a.on_link_flit(2, 5, Direction::West, 0, &p[1]);
        // Sentinel poison: the aborting router no longer knew the id.
        let poison = Flit::poison_tail(
            PacketId(u64::MAX),
            Coord::new(0, 0),
            Coord::new(3, 3),
            Direction::East,
        );
        a.on_link_flit(3, 5, Direction::West, 0, &poison);
        assert_eq!(a.total, 0, "{}", a.report().render());
        assert!(a.live.is_empty(), "poisoned packet must resolve via the stream state");
        assert!(a.streams.is_empty(), "poison must close the wormhole");
    }

    #[test]
    fn emission_toward_published_dead_node_is_status_coherence() {
        let mut a = bare_auditor();
        a.on_generated(0, 3);
        let p = packet_flits(3);
        // Republication landed this cycle: one-cycle switch-latch grace.
        a.on_republish(10, 5);
        a.on_emission(10, 5, Coord::new(1, 1), dead_status(), &p[0]);
        assert_eq!(a.total, 0);
        // Past the grace window: violation.
        a.on_emission(11, 5, Coord::new(1, 1), dead_status(), &p[1]);
        assert_eq!(count_of(&a.report(), AuditKind::StatusCoherence), 1);
        // Poison tails legally chase fragments into dead territory.
        let poison =
            Flit::poison_tail(PacketId(3), Coord::new(0, 0), Coord::new(1, 1), Direction::East);
        a.on_emission(12, 5, Coord::new(1, 1), dead_status(), &poison);
        assert_eq!(count_of(&a.report(), AuditKind::StatusCoherence), 1);
    }

    #[test]
    fn recorded_violations_are_capped_but_all_are_counted() {
        let cfg = small_cfg(RouterKind::RoCo);
        let mut a = Auditor::new(AuditConfig { interval: 1, max_recorded: 2 }, &cfg);
        for id in 0..5 {
            a.on_delivered(1, Coord::new(0, 0), id);
        }
        let report = a.report();
        assert_eq!(report.total_violations, 5);
        assert_eq!(report.violations.len(), 2);
        assert!(!report.clean());
        assert!(report.render().contains("3 more"));
    }
}
