//! Minimal dependency-free JSON support for the telemetry exporters.
//!
//! The workspace deliberately carries no `serde_json` dependency, so the
//! JSONL/Perfetto writers assemble their output with the tiny helpers
//! here, and the test suite validates that output with the equally tiny
//! recursive-descent [`Json::parse`]. Non-finite floats serialize as
//! `null` (JSON has no representation for them), which keeps every
//! emitted record parseable by strict consumers.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Appends a JSON string literal (with escaping) to `out`.
pub fn write_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Appends an `f64` value to `out`; non-finite values become `null`.
pub fn write_f64(out: &mut String, v: f64) {
    if v.is_finite() {
        let _ = write!(out, "{v}");
    } else {
        out.push_str("null");
    }
}

/// Appends a `"key":` prefix to `out`, with a leading comma unless this
/// is the first member of the object.
pub fn write_key(out: &mut String, first: &mut bool, key: &str) {
    if !*first {
        out.push(',');
    }
    *first = false;
    write_str(out, key);
    out.push(':');
}

/// A parsed JSON value.
///
/// Numbers are held as `f64` — ample for the telemetry values the tests
/// inspect (cycle counts, packet ids, occupancies).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object (key order not preserved).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Parses one JSON document (rejecting trailing garbage).
    ///
    /// # Errors
    ///
    /// Returns a description of the first syntax error encountered.
    pub fn parse(text: &str) -> Result<Json, String> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing data at byte {pos}"));
        }
        Ok(value)
    }

    /// The value as a float, when it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as an unsigned integer, when it is a non-negative
    /// number (lossy above 2^53, which telemetry values never reach).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64().filter(|n| *n >= 0.0).map(|n| n as u64)
    }

    /// The value as a string slice, when it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, when it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Member lookup, when the value is an object.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, b: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&b) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!("expected '{}' at byte {pos}", b as char))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Json::Str),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'-' | b'0'..=b'9') => parse_number(bytes, pos),
        Some(&c) => Err(format!("unexpected '{}' at byte {pos}", c as char)),
        None => Err("unexpected end of input".to_string()),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, value: Json) -> Result<Json, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(Json::Num)
        .ok_or_else(|| format!("bad number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("bad \\u escape at byte {pos}"))?;
                        // Surrogate pairs are not needed by our own output.
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte sequences are
                // copied verbatim).
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| "invalid UTF-8 in string".to_string())?;
                let c = rest.chars().next().expect("non-empty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, String> {
    expect(bytes, pos, b'{')?;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        map.insert(key, parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_scalars() {
        assert_eq!(Json::parse("null").unwrap(), Json::Null);
        assert_eq!(Json::parse("true").unwrap(), Json::Bool(true));
        assert_eq!(Json::parse(" -3.5e2 ").unwrap(), Json::Num(-350.0));
        assert_eq!(Json::parse(r#""a\"b\nc""#).unwrap(), Json::Str("a\"b\nc".to_string()));
    }

    #[test]
    fn parses_nested_structures() {
        let doc = r#"{"a":[1,2,{"b":"x"}],"c":null}"#;
        let v = Json::parse(doc).unwrap();
        assert_eq!(v.get("a").unwrap().as_arr().unwrap().len(), 3);
        assert_eq!(v.get("a").unwrap().as_arr().unwrap()[2].get("b").unwrap().as_str(), Some("x"));
        assert_eq!(v.get("c"), Some(&Json::Null));
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(Json::parse("{").is_err());
        assert!(Json::parse("[1,]").is_err());
        assert!(Json::parse("1 2").is_err(), "trailing garbage");
        assert!(Json::parse(r#"{"a" 1}"#).is_err());
    }

    #[test]
    fn writer_escapes_and_nullifies() {
        let mut s = String::new();
        write_str(&mut s, "tab\there \"quoted\"");
        assert_eq!(s, r#""tab\there \"quoted\"""#);
        let mut f = String::new();
        write_f64(&mut f, f64::NAN);
        write_f64(&mut f, f64::INFINITY);
        assert_eq!(f, "nullnull");
        let mut g = String::new();
        write_f64(&mut g, 1.5);
        assert_eq!(g, "1.5");
        // What the writer produces, the parser accepts.
        assert_eq!(Json::parse(&s).unwrap().as_str(), Some("tab\there \"quoted\""));
    }

    #[test]
    fn key_helper_handles_commas() {
        let mut out = String::from("{");
        let mut first = true;
        write_key(&mut out, &mut first, "a");
        out.push('1');
        write_key(&mut out, &mut first, "b");
        out.push('2');
        out.push('}');
        assert_eq!(out, r#"{"a":1,"b":2}"#);
        assert!(Json::parse(&out).is_ok());
    }
}
