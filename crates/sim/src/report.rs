//! Per-node summaries and ASCII heatmap rendering for run reports.

use noc_core::{ActivityCounters, ContentionCounters, Coord, MeshConfig};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Per-node measurements collected over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeSummary {
    /// Packets this node's PE offered to the network.
    pub injected: u64,
    /// Packets delivered *to* this node.
    pub delivered: u64,
    /// Sum of latencies of packets delivered to this node.
    pub latency_sum: u64,
    /// Packets dropped at this router by fault handling.
    pub dropped: u64,
}

impl NodeSummary {
    /// Mean latency of packets terminating here (0 when none).
    pub fn avg_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered as f64
        }
    }
}

/// A full per-node report for one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeReport {
    /// Mesh dimensions.
    pub mesh: MeshConfig,
    /// Traffic summaries in row-major node order.
    pub nodes: Vec<NodeSummary>,
    /// Per-router activity counters in the same order.
    pub activity: Vec<ActivityCounters>,
    /// Per-router contention counters in the same order.
    pub contention: Vec<ContentionCounters>,
}

impl NodeReport {
    /// The summary for `coord`.
    pub fn node(&self, coord: Coord) -> &NodeSummary {
        &self.nodes[coord.index(self.mesh.width)]
    }

    /// Renders an ASCII heatmap of an arbitrary per-node metric.
    pub fn heatmap(&self, title: &str, metric: impl Fn(usize) -> f64) -> String {
        let values: Vec<f64> = (0..self.nodes.len()).map(metric).collect();
        render_heatmap(self.mesh, title, &values)
    }

    /// Heatmap of crossbar traversals per router (hotspot detection).
    pub fn crossbar_heatmap(&self) -> String {
        self.heatmap("crossbar traversals per router", |i| {
            self.activity[i].crossbar_traversals as f64
        })
    }

    /// Heatmap of contention probability per router.
    pub fn contention_heatmap(&self) -> String {
        self.heatmap("SA contention probability per router", |i| {
            self.contention[i].total_contention_probability().unwrap_or(0.0)
        })
    }

    /// Heatmap of packets dropped per router (fault impact).
    pub fn drop_heatmap(&self) -> String {
        self.heatmap("packets dropped per router", |i| self.nodes[i].dropped as f64)
    }
}

/// Renders `values` (row-major) as a fixed-width ASCII grid with a
/// 0–9 shade per cell plus the min/max legend.
pub fn render_heatmap(mesh: MeshConfig, title: &str, values: &[f64]) -> String {
    assert_eq!(values.len(), mesh.nodes(), "one value per node");
    let min = values.iter().copied().fold(f64::INFINITY, f64::min);
    let max = values.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    let mut out = String::new();
    let _ = writeln!(out, "{title}  [min {min:.2}, max {max:.2}]");
    for y in 0..mesh.height {
        let _ = write!(out, "  ");
        for x in 0..mesh.width {
            let v = values[Coord::new(x, y).index(mesh.width)];
            let shade = if max > min { ((v - min) / (max - min) * 9.0).round() as u32 } else { 0 };
            let _ = write!(out, "{shade} ");
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_summary_latency() {
        let n = NodeSummary { injected: 5, delivered: 4, latency_sum: 100, dropped: 0 };
        assert_eq!(n.avg_latency(), 25.0);
        assert_eq!(NodeSummary::default().avg_latency(), 0.0);
    }

    #[test]
    fn heatmap_shape_and_shading() {
        let mesh = MeshConfig::new(3, 2);
        let values = vec![0.0, 1.0, 2.0, 3.0, 4.0, 9.0];
        let map = render_heatmap(mesh, "demo", &values);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 3, "title + 2 rows");
        assert!(lines[0].contains("demo"));
        assert!(lines[0].contains("max 9.00"));
        assert!(lines[1].trim().starts_with('0'), "minimum shades to 0");
        assert!(lines[2].trim().ends_with('9'), "maximum shades to 9");
    }

    #[test]
    fn constant_field_renders_zero_shades() {
        let mesh = MeshConfig::new(2, 2);
        let map = render_heatmap(mesh, "flat", &[5.0; 4]);
        for line in map.lines().skip(1) {
            for token in line.split_whitespace() {
                assert_eq!(token, "0");
            }
        }
    }

    #[test]
    #[should_panic(expected = "one value per node")]
    fn wrong_cardinality_panics() {
        let _ = render_heatmap(MeshConfig::new(2, 2), "bad", &[1.0]);
    }
}
