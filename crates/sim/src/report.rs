//! Per-node summaries and ASCII heatmap rendering for run reports.

use noc_core::{ActivityCounters, ContentionCounters, Coord, MeshConfig};
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Per-node measurements collected over a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct NodeSummary {
    /// Packets this node's PE offered to the network.
    pub injected: u64,
    /// Packets delivered *to* this node.
    pub delivered: u64,
    /// Sum of latencies of packets delivered to this node.
    pub latency_sum: u64,
    /// Packets dropped at this router by fault handling.
    pub dropped: u64,
}

impl NodeSummary {
    /// Mean latency of packets terminating here (0 when none).
    pub fn avg_latency(&self) -> f64 {
        if self.delivered == 0 {
            0.0
        } else {
            self.latency_sum as f64 / self.delivered as f64
        }
    }
}

/// A full per-node report for one run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct NodeReport {
    /// Mesh dimensions.
    pub mesh: MeshConfig,
    /// Traffic summaries in row-major node order.
    pub nodes: Vec<NodeSummary>,
    /// Per-router activity counters in the same order.
    pub activity: Vec<ActivityCounters>,
    /// Per-router contention counters in the same order.
    pub contention: Vec<ContentionCounters>,
}

impl NodeReport {
    /// The summary for `coord`.
    pub fn node(&self, coord: Coord) -> &NodeSummary {
        &self.nodes[coord.index(self.mesh.width)]
    }

    /// Renders an ASCII heatmap of an arbitrary per-node metric.
    pub fn heatmap(&self, title: &str, metric: impl Fn(usize) -> f64) -> String {
        let values: Vec<f64> = (0..self.nodes.len()).map(metric).collect();
        render_heatmap(self.mesh, title, &values)
    }

    /// Heatmap of crossbar traversals per router (hotspot detection).
    pub fn crossbar_heatmap(&self) -> String {
        self.heatmap("crossbar traversals per router", |i| {
            self.activity[i].crossbar_traversals as f64
        })
    }

    /// Heatmap of contention probability per router.
    pub fn contention_heatmap(&self) -> String {
        self.heatmap("SA contention probability per router", |i| {
            self.contention[i].total_contention_probability().unwrap_or(0.0)
        })
    }

    /// Heatmap of packets dropped per router (fault impact).
    pub fn drop_heatmap(&self) -> String {
        self.heatmap("packets dropped per router", |i| self.nodes[i].dropped as f64)
    }

    /// Heatmap of mean end-to-end latency per *destination* node.
    /// Nodes that received nothing render as `-` (no data, not zero).
    pub fn latency_heatmap(&self) -> String {
        self.heatmap("mean latency per destination (cycles)", |i| {
            if self.nodes[i].delivered == 0 {
                f64::NAN
            } else {
                self.nodes[i].avg_latency()
            }
        })
    }

    /// Heatmap of buffer-occupancy high-water marks per router.
    pub fn occupancy_heatmap(&self) -> String {
        self.heatmap("buffer occupancy high-water mark per router (flits)", |i| {
            self.activity[i].occupancy_high_water as f64
        })
    }

    /// Heatmap of credit-starved cycles per router (backpressure).
    pub fn credit_stall_heatmap(&self) -> String {
        self.heatmap("credit-stall cycles per router", |i| {
            self.activity[i].credit_stall_cycles as f64
        })
    }

    /// Heatmap of failed VA requests per router (VC scarcity).
    pub fn va_failure_heatmap(&self) -> String {
        self.heatmap("VA failures per router", |i| self.activity[i].va_failures as f64)
    }
}

/// Renders `values` (row-major) as a fixed-width ASCII grid with a
/// 0–9 shade per cell plus the min/max legend.
///
/// Non-finite values (NaN, ±inf — "no data" markers) are excluded from
/// the min/max scale and render as `-` cells, so one hole cannot poison
/// the whole map.
pub fn render_heatmap(mesh: MeshConfig, title: &str, values: &[f64]) -> String {
    assert_eq!(values.len(), mesh.nodes(), "one value per node");
    let finite = values.iter().copied().filter(|v| v.is_finite());
    let min = finite.clone().fold(f64::INFINITY, f64::min);
    let max = finite.fold(f64::NEG_INFINITY, f64::max);
    let mut out = String::new();
    if min.is_finite() {
        let _ = writeln!(out, "{title}  [min {min:.2}, max {max:.2}]");
    } else {
        let _ = writeln!(out, "{title}  [no finite values]");
    }
    for y in 0..mesh.height {
        let _ = write!(out, "  ");
        for x in 0..mesh.width {
            let v = values[Coord::new(x, y).index(mesh.width)];
            if v.is_finite() {
                let shade =
                    if max > min { ((v - min) / (max - min) * 9.0).round() as u32 } else { 0 };
                let _ = write!(out, "{shade} ");
            } else {
                let _ = write!(out, "- ");
            }
        }
        let _ = writeln!(out);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_summary_latency() {
        let n = NodeSummary { injected: 5, delivered: 4, latency_sum: 100, dropped: 0 };
        assert_eq!(n.avg_latency(), 25.0);
        assert_eq!(NodeSummary::default().avg_latency(), 0.0);
    }

    #[test]
    fn heatmap_shape_and_shading() {
        let mesh = MeshConfig::new(3, 2);
        let values = vec![0.0, 1.0, 2.0, 3.0, 4.0, 9.0];
        let map = render_heatmap(mesh, "demo", &values);
        let lines: Vec<&str> = map.lines().collect();
        assert_eq!(lines.len(), 3, "title + 2 rows");
        assert!(lines[0].contains("demo"));
        assert!(lines[0].contains("max 9.00"));
        assert!(lines[1].trim().starts_with('0'), "minimum shades to 0");
        assert!(lines[2].trim().ends_with('9'), "maximum shades to 9");
    }

    #[test]
    fn constant_field_renders_zero_shades() {
        let mesh = MeshConfig::new(2, 2);
        let map = render_heatmap(mesh, "flat", &[5.0; 4]);
        for line in map.lines().skip(1) {
            for token in line.split_whitespace() {
                assert_eq!(token, "0");
            }
        }
    }

    #[test]
    #[should_panic(expected = "one value per node")]
    fn wrong_cardinality_panics() {
        let _ = render_heatmap(MeshConfig::new(2, 2), "bad", &[1.0]);
    }

    #[test]
    fn non_finite_cells_render_as_dashes() {
        let mesh = MeshConfig::new(2, 2);
        let map = render_heatmap(mesh, "holes", &[1.0, f64::NAN, 3.0, f64::INFINITY]);
        let lines: Vec<&str> = map.lines().collect();
        assert!(lines[0].contains("min 1.00"), "NaN does not poison the scale: {}", lines[0]);
        assert!(lines[0].contains("max 3.00"), "inf does not poison the scale: {}", lines[0]);
        assert_eq!(lines[1].trim(), "0 -");
        assert_eq!(lines[2].trim(), "9 -");
    }

    #[test]
    fn all_non_finite_renders_placeholder_legend() {
        let mesh = MeshConfig::new(2, 1);
        let map = render_heatmap(mesh, "void", &[f64::NAN, f64::NEG_INFINITY]);
        assert!(map.lines().next().unwrap().contains("no finite values"));
        assert_eq!(map.lines().nth(1).unwrap().trim(), "- -");
    }

    #[test]
    fn telemetry_heatmaps_read_their_counters() {
        let mesh = MeshConfig::new(2, 1);
        let mut activity = vec![ActivityCounters::default(); 2];
        activity[1].occupancy_high_water = 8;
        activity[1].credit_stall_cycles = 4;
        activity[1].va_failures = 2;
        let report = NodeReport {
            mesh,
            nodes: vec![
                NodeSummary { injected: 1, delivered: 2, latency_sum: 20, dropped: 0 },
                NodeSummary::default(),
            ],
            activity,
            contention: vec![ContentionCounters::default(); 2],
        };
        let latency = report.latency_heatmap();
        assert!(latency.contains("mean latency"));
        assert!(latency.contains('-'), "the silent node renders as a hole");
        assert!(latency.contains("min 10.00"), "20 cycles over 2 packets: {latency}");
        assert!(report.occupancy_heatmap().contains("high-water"));
        assert!(report.credit_stall_heatmap().contains("credit-stall"));
        assert!(report.va_failure_heatmap().contains("VA failures"));
    }
}
