//! Packet-level event tracing.
//!
//! Attach a [`TraceSink`] to a [`crate::Simulation`] to receive every
//! packet lifecycle event (generation, injection, per-hop link
//! transfer, delivery, drop) as it happens — for debugging, replay, or
//! export to external analysis tools. Mid-run fault injections and
//! repairs appear in the same stream as packet-less [`TraceEvent::Fault`]
//! / [`TraceEvent::Repair`] markers.

use noc_core::{ComponentFault, Coord, Cycle, Direction, PacketId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One packet lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// The traffic model created a packet at `src` addressed to `dst`.
    Generated {
        /// Event cycle.
        cycle: Cycle,
        /// Packet id.
        packet: PacketId,
        /// Source node.
        src: Coord,
        /// Destination node.
        dst: Coord,
    },
    /// The head flit entered the source router.
    Injected {
        /// Event cycle.
        cycle: Cycle,
        /// Packet id.
        packet: PacketId,
        /// Injecting node.
        node: Coord,
    },
    /// A flit crossed the link leaving `node` through `out`.
    Hop {
        /// Event cycle.
        cycle: Cycle,
        /// Packet id.
        packet: PacketId,
        /// Flit sequence number within the packet.
        seq: u16,
        /// Node the flit departed from.
        node: Coord,
        /// Output direction taken.
        out: Direction,
    },
    /// The tail flit reached the destination PE.
    Delivered {
        /// Event cycle.
        cycle: Cycle,
        /// Packet id.
        packet: PacketId,
        /// End-to-end latency in cycles.
        latency: u64,
    },
    /// The packet was discarded by fault handling.
    Dropped {
        /// Event cycle.
        cycle: Cycle,
        /// Packet id.
        packet: PacketId,
        /// Node that discarded it.
        node: Coord,
    },
    /// The fault-aware routing layer proved the packet's destination
    /// unreachable over the usable-link graph and failed it fast
    /// (ISSUE 8): refused at generation, or short-circuited out of the
    /// recovery retry loop.
    Unroutable {
        /// Event cycle.
        cycle: Cycle,
        /// Packet id.
        packet: PacketId,
        /// Source node.
        src: Coord,
        /// The unreachable destination.
        dst: Coord,
    },
    /// A hardware fault struck `node` mid-run (§4).
    Fault {
        /// Event cycle.
        cycle: Cycle,
        /// Afflicted router.
        node: Coord,
        /// The injected component fault.
        fault: ComponentFault,
    },
    /// A previously injected fault at `node` was repaired.
    Repair {
        /// Event cycle.
        cycle: Cycle,
        /// Recovering router.
        node: Coord,
        /// The fault that was repaired.
        fault: ComponentFault,
    },
}

impl TraceEvent {
    /// The packet this event concerns (`None` for the packet-less
    /// fault/repair markers).
    pub fn packet(&self) -> Option<PacketId> {
        match *self {
            TraceEvent::Generated { packet, .. }
            | TraceEvent::Injected { packet, .. }
            | TraceEvent::Hop { packet, .. }
            | TraceEvent::Delivered { packet, .. }
            | TraceEvent::Dropped { packet, .. }
            | TraceEvent::Unroutable { packet, .. } => Some(packet),
            TraceEvent::Fault { .. } | TraceEvent::Repair { .. } => None,
        }
    }

    /// The event cycle.
    pub fn cycle(&self) -> Cycle {
        match *self {
            TraceEvent::Generated { cycle, .. }
            | TraceEvent::Injected { cycle, .. }
            | TraceEvent::Hop { cycle, .. }
            | TraceEvent::Delivered { cycle, .. }
            | TraceEvent::Dropped { cycle, .. }
            | TraceEvent::Unroutable { cycle, .. }
            | TraceEvent::Fault { cycle, .. }
            | TraceEvent::Repair { cycle, .. } => cycle,
        }
    }

    /// A compact one-line CSV rendering
    /// (`cycle,kind,packet,a,b` with event-specific `a`/`b`).
    pub fn to_csv_line(&self) -> String {
        match *self {
            TraceEvent::Generated { cycle, packet, src, dst } => {
                format!("{cycle},generated,{},{src},{dst}", packet.0)
            }
            TraceEvent::Injected { cycle, packet, node } => {
                format!("{cycle},injected,{},{node},", packet.0)
            }
            TraceEvent::Hop { cycle, packet, seq, node, out } => {
                format!("{cycle},hop,{},{node}:{seq},{out}", packet.0)
            }
            TraceEvent::Delivered { cycle, packet, latency } => {
                format!("{cycle},delivered,{},{latency},", packet.0)
            }
            TraceEvent::Dropped { cycle, packet, node } => {
                format!("{cycle},dropped,{},{node},", packet.0)
            }
            TraceEvent::Unroutable { cycle, packet, src, dst } => {
                format!("{cycle},unroutable,{},{src},{dst}", packet.0)
            }
            TraceEvent::Fault { cycle, node, fault } => {
                format!("{cycle},fault,,{node},{:?}", fault.component)
            }
            TraceEvent::Repair { cycle, node, fault } => {
                format!("{cycle},repair,,{node},{:?}", fault.component)
            }
        }
    }
}

/// Extracts the packet schedule from a recorded event stream, ready to
/// feed [`noc_traffic::ReplayTraffic`].
pub fn replay_entries(events: &[TraceEvent]) -> Vec<noc_traffic::ReplayEntry> {
    events
        .iter()
        .filter_map(|e| match *e {
            TraceEvent::Generated { cycle, src, dst, .. } => Some((cycle, src, dst)),
            _ => None,
        })
        .collect()
}

/// Receives trace events during a run.
pub trait TraceSink: fmt::Debug {
    /// Called once per event, in simulation order.
    fn record(&mut self, event: TraceEvent);

    /// Called once when the run ends (or the sink is taken back from
    /// the simulation), letting exporters emit trailers and flush.
    fn finish(&mut self) {}
}

/// Collects every event into memory.
#[derive(Debug, Default)]
pub struct VecTraceSink {
    /// The recorded events, in order.
    pub events: Vec<TraceEvent>,
}

impl VecTraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for VecTraceSink {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Streams events as CSV lines into any writer.
#[derive(Debug)]
pub struct CsvTraceSink<W: std::io::Write + fmt::Debug> {
    writer: W,
}

impl<W: std::io::Write + fmt::Debug> CsvTraceSink<W> {
    /// Wraps `writer` and emits the CSV header.
    pub fn new(mut writer: W) -> std::io::Result<Self> {
        writeln!(writer, "cycle,event,packet,where,detail")?;
        Ok(CsvTraceSink { writer })
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: std::io::Write + fmt::Debug> TraceSink for CsvTraceSink<W> {
    fn record(&mut self, event: TraceEvent) {
        let _ = writeln!(self.writer, "{}", event.to_csv_line());
    }
}

impl TraceEvent {
    /// Serializes the event as one JSON object (a single JSONL line,
    /// without the trailing newline).
    pub fn to_json_line(&self) -> String {
        use std::fmt::Write as _;
        fn node(out: &mut String, first: &mut bool, key: &str, c: Coord) {
            crate::json::write_key(out, first, key);
            let _ = write!(out, "[{},{}]", c.x, c.y);
        }
        let mut out = String::with_capacity(96);
        out.push('{');
        let mut first = true;
        crate::json::write_key(&mut out, &mut first, "cycle");
        let _ = write!(out, "{}", self.cycle());
        crate::json::write_key(&mut out, &mut first, "event");
        let kind = match self {
            TraceEvent::Generated { .. } => "generated",
            TraceEvent::Injected { .. } => "injected",
            TraceEvent::Hop { .. } => "hop",
            TraceEvent::Delivered { .. } => "delivered",
            TraceEvent::Dropped { .. } => "dropped",
            TraceEvent::Unroutable { .. } => "unroutable",
            TraceEvent::Fault { .. } => "fault",
            TraceEvent::Repair { .. } => "repair",
        };
        crate::json::write_str(&mut out, kind);
        if let Some(packet) = self.packet() {
            crate::json::write_key(&mut out, &mut first, "packet");
            let _ = write!(out, "{}", packet.0);
        }
        match *self {
            TraceEvent::Generated { src, dst, .. } => {
                node(&mut out, &mut first, "src", src);
                node(&mut out, &mut first, "dst", dst);
            }
            TraceEvent::Injected { node: n, .. } => node(&mut out, &mut first, "node", n),
            TraceEvent::Hop { seq, node: n, out: dir, .. } => {
                crate::json::write_key(&mut out, &mut first, "seq");
                let _ = write!(out, "{seq}");
                node(&mut out, &mut first, "node", n);
                crate::json::write_key(&mut out, &mut first, "out");
                crate::json::write_str(&mut out, &dir.to_string());
            }
            TraceEvent::Delivered { latency, .. } => {
                crate::json::write_key(&mut out, &mut first, "latency");
                let _ = write!(out, "{latency}");
            }
            TraceEvent::Dropped { node: n, .. } => node(&mut out, &mut first, "node", n),
            TraceEvent::Unroutable { src, dst, .. } => {
                node(&mut out, &mut first, "src", src);
                node(&mut out, &mut first, "dst", dst);
            }
            TraceEvent::Fault { node: n, fault, .. }
            | TraceEvent::Repair { node: n, fault, .. } => {
                node(&mut out, &mut first, "node", n);
                crate::json::write_key(&mut out, &mut first, "component");
                crate::json::write_str(&mut out, &format!("{:?}", fault.component));
            }
        }
        out.push('}');
        out
    }
}

/// Streams events as JSON Lines — one standalone JSON object per event.
#[derive(Debug)]
pub struct JsonlTraceSink<W: std::io::Write + fmt::Debug> {
    writer: W,
}

impl<W: std::io::Write + fmt::Debug> JsonlTraceSink<W> {
    /// Wraps `writer`.
    pub fn new(writer: W) -> Self {
        JsonlTraceSink { writer }
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: std::io::Write + fmt::Debug> TraceSink for JsonlTraceSink<W> {
    fn record(&mut self, event: TraceEvent) {
        let _ = writeln!(self.writer, "{}", event.to_json_line());
    }

    fn finish(&mut self) {
        let _ = self.writer.flush();
    }
}

/// Exports the run in Chrome-trace ("Trace Event") JSON, openable in
/// `ui.perfetto.dev` or `chrome://tracing`.
///
/// Each packet becomes one async track (`cat:"packet"`, `id` = packet
/// id): `Generated` opens it with a `"b"` begin event, `Injected` and
/// every `Hop` land on it as `"n"` instants, and `Delivered`/`Dropped`
/// close it with an `"e"` end event. Timestamps are simulation cycles
/// (interpreted as µs by the viewers — only relative scale matters).
/// Packets still in flight when [`TraceSink::finish`] runs are closed
/// at their last observed cycle so every `"b"` pairs with an `"e"`.
/// Mid-run fault and repair events appear as `"i"` instant markers
/// under `cat:"fault"`, so they line up against the packet tracks.
#[derive(Debug)]
pub struct PerfettoTraceSink<W: std::io::Write + fmt::Debug> {
    writer: W,
    /// Whether any event has been written (comma management).
    wrote_event: bool,
    /// Open async tracks: packet id → last event cycle seen.
    open: std::collections::HashMap<u64, Cycle>,
    /// Guards against double-finishing (take + drop both finish).
    finished: bool,
}

impl<W: std::io::Write + fmt::Debug> PerfettoTraceSink<W> {
    /// Wraps `writer` and emits the JSON preamble.
    ///
    /// # Errors
    ///
    /// Propagates the writer's I/O error.
    pub fn new(mut writer: W) -> std::io::Result<Self> {
        write!(writer, "{{\"traceEvents\":[")?;
        Ok(PerfettoTraceSink {
            writer,
            wrote_event: false,
            open: std::collections::HashMap::new(),
            finished: false,
        })
    }

    /// Unwraps the inner writer (after `finish`).
    pub fn into_inner(self) -> W {
        self.writer
    }

    fn emit(
        &mut self,
        phase: &str,
        cat: &str,
        name: &str,
        id: u64,
        ts: Cycle,
        args: &[(&str, String)],
    ) {
        let mut line = String::with_capacity(128);
        if self.wrote_event {
            line.push(',');
        }
        self.wrote_event = true;
        line.push('{');
        let mut first = true;
        crate::json::write_key(&mut line, &mut first, "ph");
        crate::json::write_str(&mut line, phase);
        crate::json::write_key(&mut line, &mut first, "cat");
        crate::json::write_str(&mut line, cat);
        crate::json::write_key(&mut line, &mut first, "name");
        crate::json::write_str(&mut line, name);
        crate::json::write_key(&mut line, &mut first, "id");
        crate::json::write_str(&mut line, &format!("{id:#x}"));
        crate::json::write_key(&mut line, &mut first, "ts");
        {
            use std::fmt::Write as _;
            let _ = write!(line, "{ts}");
        }
        crate::json::write_key(&mut line, &mut first, "pid");
        line.push('0');
        crate::json::write_key(&mut line, &mut first, "tid");
        line.push('0');
        if !args.is_empty() {
            crate::json::write_key(&mut line, &mut first, "args");
            line.push('{');
            let mut af = true;
            for (k, v) in args {
                crate::json::write_key(&mut line, &mut af, k);
                crate::json::write_str(&mut line, v);
            }
            line.push('}');
        }
        line.push('}');
        let _ = write!(self.writer, "{line}");
    }
}

impl<W: std::io::Write + fmt::Debug> TraceSink for PerfettoTraceSink<W> {
    fn record(&mut self, event: TraceEvent) {
        if self.finished {
            return;
        }
        let cycle = event.cycle();
        let id = event.packet().map_or(0, |p| p.0);
        let track = format!("pkt{id}");
        match event {
            TraceEvent::Generated { src, dst, .. } => {
                self.emit(
                    "b",
                    "packet",
                    &track,
                    id,
                    cycle,
                    &[("src", src.to_string()), ("dst", dst.to_string())],
                );
                self.open.insert(id, cycle);
            }
            TraceEvent::Injected { node, .. } => {
                self.emit("n", "packet", &track, id, cycle, &[("at", format!("inject {node}"))]);
                self.open.entry(id).and_modify(|c| *c = cycle);
            }
            TraceEvent::Hop { seq, node, out, .. } => {
                self.emit(
                    "n",
                    "packet",
                    &track,
                    id,
                    cycle,
                    &[("at", format!("hop {node}->{out} seq {seq}"))],
                );
                self.open.entry(id).and_modify(|c| *c = cycle);
            }
            TraceEvent::Delivered { latency, .. } => {
                self.emit("e", "packet", &track, id, cycle, &[("latency", latency.to_string())]);
                self.open.remove(&id);
            }
            TraceEvent::Dropped { node, .. } => {
                self.emit("e", "packet", &track, id, cycle, &[("dropped_at", node.to_string())]);
                self.open.remove(&id);
            }
            TraceEvent::Unroutable { dst, .. } => {
                self.emit("e", "packet", &track, id, cycle, &[("unroutable_dst", dst.to_string())]);
                self.open.remove(&id);
            }
            TraceEvent::Fault { node, fault, .. } => {
                // Global instant marker on its own category, so fault
                // strikes line up visually against the packet tracks.
                self.emit(
                    "i",
                    "fault",
                    &format!("fault {node}"),
                    0,
                    cycle,
                    &[("component", format!("{:?}", fault.component)), ("node", node.to_string())],
                );
            }
            TraceEvent::Repair { node, fault, .. } => {
                self.emit(
                    "i",
                    "fault",
                    &format!("repair {node}"),
                    0,
                    cycle,
                    &[("component", format!("{:?}", fault.component)), ("node", node.to_string())],
                );
            }
        }
    }

    fn finish(&mut self) {
        if self.finished {
            return;
        }
        // Close tracks of packets still in flight so begins/ends pair.
        let mut in_flight: Vec<(u64, Cycle)> = self.open.drain().collect();
        in_flight.sort_unstable();
        for (id, last_cycle) in in_flight {
            self.emit(
                "e",
                "packet",
                &format!("pkt{id}"),
                id,
                last_cycle,
                &[("note", "in flight at trace end".to_string())],
            );
        }
        let _ = write!(self.writer, "]}}");
        let _ = self.writer.flush();
        self.finished = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_lines_are_stable() {
        let e = TraceEvent::Generated {
            cycle: 5,
            packet: PacketId(7),
            src: Coord::new(0, 0),
            dst: Coord::new(3, 2),
        };
        assert_eq!(e.to_csv_line(), "5,generated,7,(0,0),(3,2)");
        let e = TraceEvent::Hop {
            cycle: 9,
            packet: PacketId(7),
            seq: 2,
            node: Coord::new(1, 0),
            out: Direction::East,
        };
        assert_eq!(e.to_csv_line(), "9,hop,7,(1,0):2,E");
        assert_eq!(e.packet(), Some(PacketId(7)));
        assert_eq!(e.cycle(), 9);
    }

    #[test]
    fn fault_events_render_without_a_packet() {
        let fault = ComponentFault::new(noc_core::FaultComponent::VaArbiter, noc_core::Axis::X);
        let e = TraceEvent::Fault { cycle: 42, node: Coord::new(1, 2), fault };
        assert_eq!(e.packet(), None);
        assert_eq!(e.cycle(), 42);
        assert_eq!(e.to_csv_line(), "42,fault,,(1,2),VaArbiter");
        let v = crate::json::Json::parse(&e.to_json_line()).expect("valid JSON");
        assert_eq!(v.get("event").unwrap().as_str(), Some("fault"));
        assert!(v.get("packet").is_none());
        assert_eq!(v.get("component").unwrap().as_str(), Some("VaArbiter"));
        let e = TraceEvent::Repair { cycle: 50, node: Coord::new(1, 2), fault };
        assert_eq!(e.to_csv_line(), "50,repair,,(1,2),VaArbiter");
    }

    #[test]
    fn unroutable_events_render_in_every_format() {
        let e = TraceEvent::Unroutable {
            cycle: 12,
            packet: PacketId(4),
            src: Coord::new(0, 0),
            dst: Coord::new(3, 3),
        };
        assert_eq!(e.packet(), Some(PacketId(4)));
        assert_eq!(e.cycle(), 12);
        assert_eq!(e.to_csv_line(), "12,unroutable,4,(0,0),(3,3)");
        let v = crate::json::Json::parse(&e.to_json_line()).expect("valid JSON");
        assert_eq!(v.get("event").unwrap().as_str(), Some("unroutable"));
        assert_eq!(v.get("packet").unwrap().as_u64(), Some(4));
        // Perfetto: an unroutable packet's track closes like a drop.
        let mut sink = PerfettoTraceSink::new(Vec::new()).unwrap();
        sink.record(TraceEvent::Generated {
            cycle: 11,
            packet: PacketId(4),
            src: Coord::new(0, 0),
            dst: Coord::new(3, 3),
        });
        sink.record(e);
        sink.finish();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.contains("unroutable_dst"));
        assert!(!text.contains("in flight at trace end"));
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink = VecTraceSink::new();
        for c in 0..3 {
            sink.record(TraceEvent::Delivered { cycle: c, packet: PacketId(c), latency: 10 });
        }
        assert_eq!(sink.events.len(), 3);
        assert!(sink.events.windows(2).all(|w| w[0].cycle() <= w[1].cycle()));
    }

    #[test]
    fn csv_sink_writes_header_and_rows() {
        let mut sink = CsvTraceSink::new(Vec::new()).unwrap();
        sink.record(TraceEvent::Dropped { cycle: 3, packet: PacketId(1), node: Coord::new(2, 2) });
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.starts_with("cycle,event,packet"));
        assert!(text.contains("3,dropped,1,(2,2),"));
    }

    #[test]
    fn jsonl_lines_parse_and_carry_the_event_fields() {
        let e = TraceEvent::Hop {
            cycle: 9,
            packet: PacketId(7),
            seq: 2,
            node: Coord::new(1, 0),
            out: Direction::East,
        };
        let v = crate::json::Json::parse(&e.to_json_line()).expect("valid JSON");
        assert_eq!(v.get("cycle").unwrap().as_u64(), Some(9));
        assert_eq!(v.get("event").unwrap().as_str(), Some("hop"));
        assert_eq!(v.get("packet").unwrap().as_u64(), Some(7));
        assert_eq!(v.get("seq").unwrap().as_u64(), Some(2));
        assert_eq!(v.get("out").unwrap().as_str(), Some("E"));
    }

    #[test]
    fn perfetto_sink_pairs_begin_and_end_and_closes_strays() {
        let mut sink = PerfettoTraceSink::new(Vec::new()).unwrap();
        let src = Coord::new(0, 0);
        let dst = Coord::new(2, 0);
        sink.record(TraceEvent::Generated { cycle: 1, packet: PacketId(0), src, dst });
        sink.record(TraceEvent::Injected { cycle: 2, packet: PacketId(0), node: src });
        sink.record(TraceEvent::Delivered { cycle: 9, packet: PacketId(0), latency: 8 });
        // Packet 1 never completes: finish() must close its track.
        sink.record(TraceEvent::Generated { cycle: 3, packet: PacketId(1), src, dst });
        sink.finish();
        let text = String::from_utf8(sink.into_inner()).unwrap();
        let v = crate::json::Json::parse(&text).expect("valid Chrome-trace JSON");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        let phases = |id: &str, ph: &str| {
            events
                .iter()
                .filter(|e| {
                    e.get("id").unwrap().as_str() == Some(id)
                        && e.get("ph").unwrap().as_str() == Some(ph)
                })
                .count()
        };
        assert_eq!(phases("0x0", "b"), 1);
        assert_eq!(phases("0x0", "e"), 1);
        assert_eq!(phases("0x0", "n"), 1);
        assert_eq!(phases("0x1", "b"), 1);
        assert_eq!(phases("0x1", "e"), 1, "stray track closed at finish");
    }
}
