//! Packet-level event tracing.
//!
//! Attach a [`TraceSink`] to a [`crate::Simulation`] to receive every
//! packet lifecycle event (generation, injection, per-hop link
//! transfer, delivery, drop) as it happens — for debugging, replay, or
//! export to external analysis tools.

use noc_core::{Coord, Cycle, Direction, PacketId};
use serde::{Deserialize, Serialize};
use std::fmt;

/// One packet lifecycle event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum TraceEvent {
    /// The traffic model created a packet at `src` addressed to `dst`.
    Generated {
        /// Event cycle.
        cycle: Cycle,
        /// Packet id.
        packet: PacketId,
        /// Source node.
        src: Coord,
        /// Destination node.
        dst: Coord,
    },
    /// The head flit entered the source router.
    Injected {
        /// Event cycle.
        cycle: Cycle,
        /// Packet id.
        packet: PacketId,
        /// Injecting node.
        node: Coord,
    },
    /// A flit crossed the link leaving `node` through `out`.
    Hop {
        /// Event cycle.
        cycle: Cycle,
        /// Packet id.
        packet: PacketId,
        /// Flit sequence number within the packet.
        seq: u16,
        /// Node the flit departed from.
        node: Coord,
        /// Output direction taken.
        out: Direction,
    },
    /// The tail flit reached the destination PE.
    Delivered {
        /// Event cycle.
        cycle: Cycle,
        /// Packet id.
        packet: PacketId,
        /// End-to-end latency in cycles.
        latency: u64,
    },
    /// The packet was discarded by fault handling.
    Dropped {
        /// Event cycle.
        cycle: Cycle,
        /// Packet id.
        packet: PacketId,
        /// Node that discarded it.
        node: Coord,
    },
}

impl TraceEvent {
    /// The packet this event concerns.
    pub fn packet(&self) -> PacketId {
        match *self {
            TraceEvent::Generated { packet, .. }
            | TraceEvent::Injected { packet, .. }
            | TraceEvent::Hop { packet, .. }
            | TraceEvent::Delivered { packet, .. }
            | TraceEvent::Dropped { packet, .. } => packet,
        }
    }

    /// The event cycle.
    pub fn cycle(&self) -> Cycle {
        match *self {
            TraceEvent::Generated { cycle, .. }
            | TraceEvent::Injected { cycle, .. }
            | TraceEvent::Hop { cycle, .. }
            | TraceEvent::Delivered { cycle, .. }
            | TraceEvent::Dropped { cycle, .. } => cycle,
        }
    }

    /// A compact one-line CSV rendering
    /// (`cycle,kind,packet,a,b` with event-specific `a`/`b`).
    pub fn to_csv_line(&self) -> String {
        match *self {
            TraceEvent::Generated { cycle, packet, src, dst } => {
                format!("{cycle},generated,{},{src},{dst}", packet.0)
            }
            TraceEvent::Injected { cycle, packet, node } => {
                format!("{cycle},injected,{},{node},", packet.0)
            }
            TraceEvent::Hop { cycle, packet, seq, node, out } => {
                format!("{cycle},hop,{},{node}:{seq},{out}", packet.0)
            }
            TraceEvent::Delivered { cycle, packet, latency } => {
                format!("{cycle},delivered,{},{latency},", packet.0)
            }
            TraceEvent::Dropped { cycle, packet, node } => {
                format!("{cycle},dropped,{},{node},", packet.0)
            }
        }
    }
}

/// Extracts the packet schedule from a recorded event stream, ready to
/// feed [`noc_traffic::ReplayTraffic`].
pub fn replay_entries(events: &[TraceEvent]) -> Vec<noc_traffic::ReplayEntry> {
    events
        .iter()
        .filter_map(|e| match *e {
            TraceEvent::Generated { cycle, src, dst, .. } => Some((cycle, src, dst)),
            _ => None,
        })
        .collect()
}

/// Receives trace events during a run.
pub trait TraceSink: fmt::Debug {
    /// Called once per event, in simulation order.
    fn record(&mut self, event: TraceEvent);
}

/// Collects every event into memory.
#[derive(Debug, Default)]
pub struct VecTraceSink {
    /// The recorded events, in order.
    pub events: Vec<TraceEvent>,
}

impl VecTraceSink {
    /// An empty sink.
    pub fn new() -> Self {
        Self::default()
    }
}

impl TraceSink for VecTraceSink {
    fn record(&mut self, event: TraceEvent) {
        self.events.push(event);
    }
}

/// Streams events as CSV lines into any writer.
#[derive(Debug)]
pub struct CsvTraceSink<W: std::io::Write + fmt::Debug> {
    writer: W,
}

impl<W: std::io::Write + fmt::Debug> CsvTraceSink<W> {
    /// Wraps `writer` and emits the CSV header.
    pub fn new(mut writer: W) -> std::io::Result<Self> {
        writeln!(writer, "cycle,event,packet,where,detail")?;
        Ok(CsvTraceSink { writer })
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.writer
    }
}

impl<W: std::io::Write + fmt::Debug> TraceSink for CsvTraceSink<W> {
    fn record(&mut self, event: TraceEvent) {
        let _ = writeln!(self.writer, "{}", event.to_csv_line());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_lines_are_stable() {
        let e = TraceEvent::Generated {
            cycle: 5,
            packet: PacketId(7),
            src: Coord::new(0, 0),
            dst: Coord::new(3, 2),
        };
        assert_eq!(e.to_csv_line(), "5,generated,7,(0,0),(3,2)");
        let e = TraceEvent::Hop {
            cycle: 9,
            packet: PacketId(7),
            seq: 2,
            node: Coord::new(1, 0),
            out: Direction::East,
        };
        assert_eq!(e.to_csv_line(), "9,hop,7,(1,0):2,E");
        assert_eq!(e.packet(), PacketId(7));
        assert_eq!(e.cycle(), 9);
    }

    #[test]
    fn vec_sink_collects_in_order() {
        let mut sink = VecTraceSink::new();
        for c in 0..3 {
            sink.record(TraceEvent::Delivered { cycle: c, packet: PacketId(c), latency: 10 });
        }
        assert_eq!(sink.events.len(), 3);
        assert!(sink.events.windows(2).all(|w| w[0].cycle() <= w[1].cycle()));
    }

    #[test]
    fn csv_sink_writes_header_and_rows() {
        let mut sink = CsvTraceSink::new(Vec::new()).unwrap();
        sink.record(TraceEvent::Dropped {
            cycle: 3,
            packet: PacketId(1),
            node: Coord::new(2, 2),
        });
        let text = String::from_utf8(sink.into_inner()).unwrap();
        assert!(text.starts_with("cycle,event,packet"));
        assert!(text.contains("3,dropped,1,(2,2),"));
    }
}
