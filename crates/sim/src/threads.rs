//! Worker-count selection, shared by everything in the workspace that
//! fans work across threads: the [`crate::KernelMode::Parallel`] cycle
//! kernel, `noc_bench::run_batch`, and the degradation-campaign
//! harness all resolve their thread count here so one knob
//! (`--threads` / `NOC_THREADS`) governs them all.

/// Resolves a worker-thread count.
///
/// Precedence: an explicit request (CLI `--threads`,
/// [`crate::SimConfig::threads`]) wins, then the `NOC_THREADS`
/// environment variable, then [`std::thread::available_parallelism`],
/// then 1. Zero and unparsable values are treated as unset so a bad
/// `NOC_THREADS` degrades to the default instead of panicking.
///
/// Thread count never affects simulation results — the parallel kernel
/// merges shard outputs in canonical order (DESIGN.md §13) — so this
/// is purely a performance knob.
pub fn worker_threads(explicit: Option<usize>) -> usize {
    explicit
        .filter(|&t| t > 0)
        .or_else(|| {
            std::env::var("NOC_THREADS").ok().and_then(|v| v.parse().ok()).filter(|&t| t > 0)
        })
        .unwrap_or_else(|| std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    // Env-var manipulation is process-global, so the three scenarios
    // live in one test to avoid racing parallel test threads.
    #[test]
    fn precedence_explicit_env_detected() {
        std::env::set_var("NOC_THREADS", "3");
        assert_eq!(worker_threads(Some(2)), 2, "explicit beats NOC_THREADS");
        assert_eq!(worker_threads(None), 3, "NOC_THREADS beats detection");
        assert_eq!(worker_threads(Some(0)), 3, "zero explicit is unset");
        std::env::set_var("NOC_THREADS", "0");
        let detected = worker_threads(None);
        assert!(detected >= 1, "zero NOC_THREADS falls back to detection");
        std::env::set_var("NOC_THREADS", "not-a-number");
        assert_eq!(worker_threads(None), detected, "garbage NOC_THREADS is unset");
        std::env::remove_var("NOC_THREADS");
        assert!(worker_threads(None) >= 1);
    }
}
