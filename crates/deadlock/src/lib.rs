//! # noc-deadlock
//!
//! Machine-checked deadlock-freedom analysis for every router × routing
//! × VC configuration in this workspace, via the classic
//! channel-dependency-graph (CDG) argument (Dally & Seitz): if the
//! graph whose vertices are virtual channels and whose edges connect
//! each channel to the channels a resident packet may wait for is
//! **acyclic**, the configuration cannot deadlock.
//!
//! The analysis builds the exact channel set a real network publishes
//! (each router's `vcs_on_link` descriptors, including Table-1 class /
//! arrival / turn / order filters), explores the packet states
//! `(channel, destination, dimension order)` reachable from injection,
//! adds a dependency edge for every legal wait, and runs an iterative
//! cycle check on the channel projection.
//!
//! `analyze` also serves as the *negative* control: lifting the
//! workspace's northbound-only YX restriction (see
//! `RouteComputer::choose_order`) re-introduces the four-turn cycles of
//! unrestricted XY-YX mixing, and the checker finds them.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use noc_core::{
    AxisOrder, Coord, Direction, LinkMask, MeshConfig, RouterConfig, RouterKind, RouterNode,
    RoutingKind, Topology, TopologyOps, VcDescriptor, VcRequest,
};
use noc_router::AnyRouter;
use noc_routing::{quadrant_mask, DirSet, RouteComputer};
use std::collections::{HashMap, HashSet, VecDeque};

/// One virtual channel in the network: the link it sits on (identified
/// by the receiving node and its input side) plus the VC index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Channel {
    /// Node the channel delivers into.
    pub node: Coord,
    /// Input side of that node.
    pub side: Direction,
    /// VC index within the link's published list.
    pub vc: u8,
}

/// Outcome of a CDG analysis.
#[derive(Debug, Clone)]
pub struct Analysis {
    /// Total channels enumerated.
    pub channels: usize,
    /// Dependency edges between distinct channels.
    pub edges: usize,
    /// A channel cycle if one exists (deadlock possible), else `None`
    /// (deadlock-free by the CDG theorem).
    pub cycle: Option<Vec<Channel>>,
}

impl Analysis {
    /// Whether the configuration is proven deadlock-free.
    pub fn deadlock_free(&self) -> bool {
        self.cycle.is_none()
    }
}

/// Which dimension orders the analysis assumes packets may commit to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OrderPolicy {
    /// The workspace's shipping rule: YX only for strictly northbound
    /// packets (see DESIGN.md §7).
    Restricted,
    /// Unrestricted 50/50 XY-YX mixing — the negative control.
    Unrestricted,
}

/// A packet state during reachability: where its head could be
/// buffered, where it is going, its committed order, and its source
/// (consulted by odd-even's source-column turn exemption and by the
/// wraparound topologies' canonical-route and dateline functions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct State {
    channel: Channel,
    dst: Coord,
    order: AxisOrder,
    src: Coord,
}

/// The analyzer.
#[derive(Debug)]
pub struct CdgAnalyzer {
    topo: Topology,
    computer: RouteComputer,
    policy: OrderPolicy,
    /// Per (node, side): the published VC descriptors.
    links: HashMap<(Coord, Direction), Vec<VcDescriptor>>,
    /// Fault mask applied to route computation (ISSUE 8): when present,
    /// candidate sets come from [`RouteComputer::masked_candidates`] —
    /// including the west-first escape detours — and the analysis
    /// proves the *reconfigured* routing function cycle-free.
    mask: Option<LinkMask>,
}

impl CdgAnalyzer {
    /// Builds the channel inventory for `router` under `routing` on
    /// `mesh` by instantiating real routers and reading their published
    /// VC lists.
    pub fn new(
        router: RouterKind,
        routing: RoutingKind,
        mesh: MeshConfig,
        policy: OrderPolicy,
    ) -> Self {
        CdgAnalyzer::on(router, routing, Topology::mesh(mesh), policy)
    }

    /// Like [`CdgAnalyzer::new`], but building the channel graph from an
    /// arbitrary topology's port map (the trait's channel graph — torus
    /// and circulant channels include the wraparound links and dateline
    /// VC classes).
    pub fn on(
        router: RouterKind,
        routing: RoutingKind,
        topo: Topology,
        policy: OrderPolicy,
    ) -> Self {
        let cfg = RouterConfig::paper(router, routing);
        let grid = topo.grid();
        let mut links = HashMap::new();
        for i in 0..topo.nodes() {
            let coord = Coord::from_index(i, grid.width);
            let r = AnyRouter::build_on(coord, cfg, &topo);
            for side in Direction::ALL {
                links.insert((coord, side), r.vcs_on_link(side).to_vec());
            }
        }
        let computer = RouteComputer::on(routing, topo.clone());
        CdgAnalyzer { topo, computer, policy, links, mask: None }
    }

    /// Like [`CdgAnalyzer::new`], but analyzing the fault-aware routing
    /// function reconfigured around `mask` (links the mask declares
    /// unusable are excluded from candidate sets; west-first adds its
    /// escape detours). The mask's topology supplies the channel graph.
    pub fn with_mask(
        router: RouterKind,
        routing: RoutingKind,
        policy: OrderPolicy,
        mask: LinkMask,
    ) -> Self {
        let mut a = CdgAnalyzer::on(router, routing, mask.topology().clone(), policy);
        a.mask = Some(mask);
        a
    }

    /// Candidate outputs at `cur` for the analyzed routing function —
    /// masked (fault-aware, arrival-sensitive) when a mask is set,
    /// plain otherwise.
    fn cands(
        &self,
        src: Coord,
        cur: Coord,
        dst: Coord,
        order: AxisOrder,
        arrival: Direction,
    ) -> DirSet {
        match &self.mask {
            Some(m) => self.computer.masked_candidates(src, cur, dst, order, arrival, m),
            None => self.computer.candidates(src, cur, dst, order),
        }
    }

    /// The dimension orders a packet from `src` to `dst` may commit to
    /// under the active policy.
    fn orders(&self, src: Coord, dst: Coord) -> Vec<AxisOrder> {
        if self.computer.routing() != RoutingKind::XyYx {
            return vec![AxisOrder::Xy];
        }
        match self.policy {
            OrderPolicy::Restricted if dst.y < src.y => vec![AxisOrder::Xy, AxisOrder::Yx],
            OrderPolicy::Restricted => vec![AxisOrder::Xy],
            OrderPolicy::Unrestricted => vec![AxisOrder::Xy, AxisOrder::Yx],
        }
    }

    /// The channels at `node`'s `side` admitting a flit that arrived on
    /// that side and will leave through `out` with the given packet
    /// state.
    fn admitting_channels(
        &self,
        node: Coord,
        side: Direction,
        out: Direction,
        src: Coord,
        dst: Coord,
        order: AxisOrder,
    ) -> Vec<Channel> {
        let descs = &self.links[&(node, side)];
        let req = VcRequest {
            in_dir: side,
            out_dir: out,
            order,
            quadrant_mask: quadrant_mask(node, dst),
            dateline: self.computer.vc_dateline(src, dst, node, side),
        };
        descs
            .iter()
            .enumerate()
            .filter(|(_, d)| d.capacity > 0 && d.accepts(&req))
            .map(|(vc, _)| Channel { node, side, vc: vc as u8 })
            .collect()
    }

    /// Runs the analysis: reachability over packet states, edge
    /// construction, and cycle detection on the channel projection.
    pub fn analyze(&self) -> Analysis {
        // Seed: every (src, dst, order) injection places the head into
        // an injection channel at src; we model the wait edges starting
        // from the first *network* channel instead (injection channels
        // cannot be waited on by network traffic, so they never close a
        // cycle — they only generate reachable states).
        let mut states: VecDeque<State> = VecDeque::new();
        let mut seen: HashSet<State> = HashSet::new();
        let mut edges: HashSet<(Channel, Channel)> = HashSet::new();
        let grid = self.topo.grid();
        for si in 0..self.topo.nodes() {
            let src = Coord::from_index(si, grid.width);
            for di in 0..self.topo.nodes() {
                let dst = Coord::from_index(di, grid.width);
                if src == dst {
                    continue;
                }
                for order in self.orders(src, dst) {
                    // First hop: src's router sends the head toward each
                    // legal first direction; it lands in a channel at
                    // the neighbour.
                    for out in self.cands(src, src, dst, order, Direction::Local).iter() {
                        let Some(b) = self.neighbor(src, out) else { continue };
                        if b == dst {
                            continue; // delivered on arrival, no wait
                        }
                        for onward in self.cands(src, b, dst, order, out.opposite()).iter() {
                            for ch in
                                self.admitting_channels(b, out.opposite(), onward, src, dst, order)
                            {
                                let st = State { channel: ch, dst, order, src };
                                if seen.insert(st) {
                                    states.push_back(st);
                                }
                            }
                        }
                    }
                }
            }
        }
        // BFS over packet states; every move adds a wait edge.
        while let Some(st) = states.pop_front() {
            let State { channel, dst, order, src } = st;
            let node = channel.node;
            for out in self.cands(src, node, dst, order, channel.side).iter() {
                let Some(c) = self.neighbor(node, out) else { continue };
                if c == dst {
                    continue; // ejection: no downstream channel to wait for
                }
                for onward in self.cands(src, c, dst, order, out.opposite()).iter() {
                    for next in self.admitting_channels(c, out.opposite(), onward, src, dst, order)
                    {
                        edges.insert((channel, next));
                        let st2 = State { channel: next, dst, order, src };
                        if seen.insert(st2) {
                            states.push_back(st2);
                        }
                    }
                }
            }
        }
        // Project to channels and find a cycle (iterative DFS).
        let mut adj: HashMap<Channel, Vec<Channel>> = HashMap::new();
        for (a, b) in &edges {
            adj.entry(*a).or_default().push(*b);
        }
        let cycle = find_cycle(&adj);
        Analysis {
            channels: seen.iter().map(|s| s.channel).collect::<HashSet<_>>().len(),
            edges: edges.len(),
            cycle,
        }
    }

    fn neighbor(&self, node: Coord, dir: Direction) -> Option<Coord> {
        self.topo.neighbor(node, dir)
    }
}

/// Iterative three-colour DFS cycle detection; returns the cycle's
/// channel sequence if one exists.
fn find_cycle(adj: &HashMap<Channel, Vec<Channel>>) -> Option<Vec<Channel>> {
    #[derive(Clone, Copy, PartialEq)]
    enum Color {
        White,
        Gray,
        Black,
    }
    let mut color: HashMap<Channel, Color> = HashMap::new();
    let mut nodes: Vec<Channel> = adj.keys().copied().collect();
    nodes.sort();
    for &start in &nodes {
        if *color.get(&start).unwrap_or(&Color::White) != Color::White {
            continue;
        }
        // Stack of (node, next child index); path tracks the gray chain.
        let mut stack: Vec<(Channel, usize)> = vec![(start, 0)];
        let mut path: Vec<Channel> = vec![start];
        color.insert(start, Color::Gray);
        while let Some(&mut (node, ref mut idx)) = stack.last_mut() {
            let children = adj.get(&node).map(|v| v.as_slice()).unwrap_or(&[]);
            if *idx < children.len() {
                let child = children[*idx];
                *idx += 1;
                match *color.get(&child).unwrap_or(&Color::White) {
                    Color::Gray => {
                        // Cycle: slice the path from child onwards.
                        let pos = path.iter().position(|&c| c == child).expect("gray in path");
                        let mut cyc = path[pos..].to_vec();
                        cyc.push(child);
                        return Some(cyc);
                    }
                    Color::White => {
                        color.insert(child, Color::Gray);
                        stack.push((child, 0));
                        path.push(child);
                    }
                    Color::Black => {}
                }
            } else {
                color.insert(node, Color::Black);
                stack.pop();
                path.pop();
            }
        }
    }
    None
}

/// Cycle detection over an arbitrary channel wait-for graph: returns
/// the cycle's channel sequence (first element repeated at the end) if
/// one exists.
///
/// The static analyzer builds its graph from the routing function's
/// *possible* dependencies; this entry point lets a *runtime* observer
/// (the simulator's stall post-mortem) feed in the actually-observed
/// wait-for edges of a wedged network and ask whether they close a
/// loop — the signature of a true deadlock rather than plain
/// fault-induced blocking.
pub fn find_channel_cycle(adj: &HashMap<Channel, Vec<Channel>>) -> Option<Vec<Channel>> {
    find_cycle(adj)
}

/// Convenience: analyze one configuration on a small topology (a plain
/// [`MeshConfig`] converts into a mesh topology) and return the
/// analysis.
pub fn verify(router: RouterKind, routing: RoutingKind, topo: impl Into<Topology>) -> Analysis {
    CdgAnalyzer::on(router, routing, topo.into(), OrderPolicy::Restricted).analyze()
}

/// Convenience: analyze one configuration whose routing function has
/// been reconfigured around `mask` (ISSUE 8) and return the analysis.
/// The channel graph comes from the mask's topology.
pub fn verify_masked(router: RouterKind, routing: RoutingKind, mask: LinkMask) -> Analysis {
    CdgAnalyzer::with_mask(router, routing, OrderPolicy::Restricted, mask).analyze()
}

#[cfg(test)]
mod tests {
    use super::*;

    const MESH: MeshConfig = MeshConfig::new(5, 5);

    #[test]
    fn every_shipping_configuration_is_deadlock_free() {
        for router in RouterKind::ALL {
            for routing in [
                RoutingKind::Xy,
                RoutingKind::XyYx,
                RoutingKind::Adaptive,
                RoutingKind::AdaptiveOddEven,
            ] {
                let a = verify(router, routing, MESH);
                assert!(a.channels > 0 && a.edges > 0, "{router}/{routing}: empty CDG");
                assert!(a.deadlock_free(), "{router}/{routing}: CDG cycle {:?}", a.cycle);
            }
        }
    }

    #[test]
    fn unrestricted_xyyx_has_cycles_on_shared_channels() {
        // The negative control: removing the northbound-only YX
        // restriction re-creates the classic four-turn ring on the
        // generic router's shared Any-admission channels.
        let a = CdgAnalyzer::new(
            RouterKind::Generic,
            RoutingKind::XyYx,
            MESH,
            OrderPolicy::Unrestricted,
        )
        .analyze();
        assert!(!a.deadlock_free(), "unrestricted XY-YX should form a CDG cycle");
        let cycle = a.cycle.unwrap();
        assert!(cycle.len() >= 4, "a mesh ring needs at least four channels");
    }

    #[test]
    fn restricted_xyyx_on_roco_is_acyclic() {
        let a = verify(RouterKind::RoCo, RoutingKind::XyYx, MESH);
        assert!(a.deadlock_free(), "cycle: {:?}", a.cycle);
    }

    #[test]
    fn cycle_detector_finds_a_planted_cycle() {
        let c = |i: u8| Channel { node: Coord::new(i as u16, 0), side: Direction::West, vc: 0 };
        let mut adj = HashMap::new();
        adj.insert(c(0), vec![c(1)]);
        adj.insert(c(1), vec![c(2)]);
        adj.insert(c(2), vec![c(0)]);
        let cyc = find_cycle(&adj).expect("planted cycle found");
        assert!(cyc.len() >= 3);
        assert_eq!(cyc.first(), cyc.last());
    }

    #[test]
    fn cycle_detector_accepts_a_dag() {
        let c = |i: u8| Channel { node: Coord::new(i as u16, 0), side: Direction::West, vc: 0 };
        let mut adj = HashMap::new();
        adj.insert(c(0), vec![c(1), c(2)]);
        adj.insert(c(1), vec![c(3)]);
        adj.insert(c(2), vec![c(3)]);
        assert!(find_cycle(&adj).is_none());
    }

    /// Strips the dateline partition off an analyzer's channel
    /// inventory, modelling a wraparound network that (unsoundly) shares
    /// all VCs between both dateline classes.
    fn strip_datelines(analyzer: &mut CdgAnalyzer) {
        for descs in analyzer.links.values_mut() {
            for d in descs.iter_mut() {
                d.dateline = None;
            }
        }
    }

    #[test]
    fn torus_with_dateline_vcs_is_deadlock_free() {
        use noc_core::TopologyConfig;
        let topo = TopologyConfig::Torus.resolve(MeshConfig::new(4, 4)).unwrap();
        let a = verify(RouterKind::Generic, RoutingKind::Xy, &topo);
        assert!(a.channels > 0 && a.edges > 0, "empty torus CDG");
        assert!(a.deadlock_free(), "torus dateline scheme broken: {:?}", a.cycle);
        // Negative control: with the dateline partition stripped (all
        // VCs shared between both classes) the ring dependency must
        // close. This both proves the wraparound links are in the
        // channel graph and that the dateline VCs are what cut the
        // cycle.
        let mut undated =
            CdgAnalyzer::on(RouterKind::Generic, RoutingKind::Xy, topo, OrderPolicy::Restricted);
        strip_datelines(&mut undated);
        let b = undated.analyze();
        assert!(!b.deadlock_free(), "undated torus rings must close a CDG cycle");
    }

    #[test]
    fn circulant_with_dateline_vcs_is_deadlock_free() {
        use noc_core::TopologyConfig;
        // C(13; 1, 5) has diameter 2: no route ever waits on a second
        // network channel, so its CDG is trivially edge-free. Check it
        // for reachable channels, then run the full cycle argument on a
        // larger ring whose canonical routes chain several hops.
        let c13 = TopologyConfig::Circulant { nodes: 13, s1: 1, s2: 5 }
            .resolve(MeshConfig::new(13, 1))
            .unwrap();
        let a = verify(RouterKind::Generic, RoutingKind::Xy, &c13);
        assert!(a.channels > 0, "empty C(13;1,5) channel set");
        assert!(a.deadlock_free(), "C(13;1,5) dateline scheme broken: {:?}", a.cycle);

        let c25 = TopologyConfig::Circulant { nodes: 25, s1: 1, s2: 7 }
            .resolve(MeshConfig::new(25, 1))
            .unwrap();
        let a = verify(RouterKind::Generic, RoutingKind::Xy, &c25);
        assert!(a.channels > 0 && a.edges > 0, "empty C(25;1,7) CDG");
        assert!(a.deadlock_free(), "circulant dateline scheme broken: {:?}", a.cycle);
        // Negative control, as for the torus: sharing VCs across the
        // dateline closes the generator-ring cycle.
        let mut undated =
            CdgAnalyzer::on(RouterKind::Generic, RoutingKind::Xy, c25, OrderPolicy::Restricted);
        strip_datelines(&mut undated);
        let b = undated.analyze();
        assert!(!b.deadlock_free(), "undated circulant rings must close a CDG cycle");
    }

    #[test]
    fn chiplet_mesh_matches_mesh_deadlock_argument() {
        use noc_core::TopologyConfig;
        let topo = TopologyConfig::Chiplet {
            chips_x: 2,
            chips_y: 2,
            chip_width: 2,
            chip_height: 2,
            d2d_delay: 4,
        }
        .resolve(MeshConfig::new(4, 4))
        .unwrap();
        for router in RouterKind::ALL {
            let a = verify(router, RoutingKind::Xy, &topo);
            assert!(a.deadlock_free(), "{router} on chiplet: {:?}", a.cycle);
        }
    }

    #[test]
    fn channel_counts_match_the_architectures() {
        // Interior links: generic publishes 3 VCs per link, PS 2, RoCo 3.
        let g = verify(RouterKind::Generic, RoutingKind::Xy, MESH);
        let p = verify(RouterKind::PathSensitive, RoutingKind::Xy, MESH);
        assert!(g.channels > p.channels, "generic exposes more channels than PS");
    }
}
