//! Property test for fault-aware routing (ISSUE 8): the reconfigured
//! routing function — masked candidate sets plus the west-first escape
//! detours — must keep the channel-dependency graph acyclic for *every*
//! fault mask, not just the healthy mesh.
//!
//! The test sweeps well over 100 random masks (uniform link drops at
//! several severities, dead-node masks built from published statuses,
//! and severed-column partitions) across all three routers and all four
//! routing algorithms, asserting CDG acyclicity each time.

use noc_core::RouterKind;
use noc_core::{Coord, Direction, LinkMask, MeshConfig, ModuleHealth, NodeStatus, RoutingKind};
use noc_deadlock::verify_masked;

/// Dependency-free splitmix64, so the test needs no RNG crate.
struct SplitMix64(u64);

impl SplitMix64 {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn chance(&mut self, num: u64, den: u64) -> bool {
        self.next_u64() % den < num
    }
}

const MESH: MeshConfig = MeshConfig::new(4, 4);

const ROUTINGS: [RoutingKind; 4] =
    [RoutingKind::Adaptive, RoutingKind::Xy, RoutingKind::XyYx, RoutingKind::AdaptiveOddEven];

fn assert_acyclic(routing: RoutingKind, mask: &LinkMask, what: &str) {
    // The router with the richest VC admission surface differs per
    // draw; rotate through all three so each mask family crosses each
    // architecture.
    for router in RouterKind::ALL {
        let a = verify_masked(router, routing, mask.clone());
        assert!(
            a.deadlock_free(),
            "{what}: {router}/{routing} CDG cycle under mask: {:?}",
            a.cycle
        );
    }
}

#[test]
fn random_link_drop_masks_stay_acyclic() {
    // 96 uniform random masks at three drop severities × 4 routings ×
    // 3 routers = 1152 analyses, all of which must be acyclic.
    let mut rng = SplitMix64(0x5EED_0008);
    let mut checked = 0;
    for severity in [1u64, 2, 3] {
        for round in 0..32u64 {
            let mask = LinkMask::from_fn(MESH, |_, _| !rng.chance(severity, 8));
            let routing = ROUTINGS[((severity * 32 + round) % 4) as usize];
            assert_acyclic(routing, &mask, "random drop");
            checked += 1;
        }
    }
    assert!(checked >= 96);
}

#[test]
fn west_first_escape_is_acyclic_under_heavy_masks() {
    // The escape path only exists under west-first (Adaptive); hammer
    // it specifically with 64 additional heavy masks, where nearly
    // every minimal set loses a member and escapes fire constantly.
    let mut rng = SplitMix64(0xD06_F00D);
    for _ in 0..64 {
        let mask = LinkMask::from_fn(MESH, |_, _| !rng.chance(3, 8));
        assert_acyclic(RoutingKind::Adaptive, &mask, "heavy west-first");
    }
}

#[test]
fn dead_node_masks_stay_acyclic() {
    // Masks as the simulator actually builds them: published statuses
    // with one or two dead nodes (links in and out of the dead node
    // masked both ways).
    let mut rng = SplitMix64(0xBAD_0001);
    for round in 0..24u64 {
        let mut statuses = vec![NodeStatus::healthy(); MESH.nodes()];
        let dead = (rng.next_u64() % MESH.nodes() as u64) as usize;
        statuses[dead] =
            NodeStatus { row: ModuleHealth::Dead, col: ModuleHealth::Dead, rc_ok: false };
        if rng.chance(1, 2) {
            let second = (rng.next_u64() % MESH.nodes() as u64) as usize;
            statuses[second] =
                NodeStatus { row: ModuleHealth::Dead, col: ModuleHealth::Dead, rc_ok: false };
        }
        let mask = LinkMask::from_statuses(MESH, &statuses);
        assert_acyclic(ROUTINGS[(round % 4) as usize], &mask, "dead node");
    }
}

#[test]
fn partitioned_mesh_masks_stay_acyclic() {
    // A severed column partitions the mesh: routing must stay acyclic
    // even when whole destination sets are unreachable.
    for cut_x in 0..3u16 {
        let mask = LinkMask::from_fn(MESH, |n, d| {
            !((n.x == cut_x && d == Direction::East) || (n.x == cut_x + 1 && d == Direction::West))
        });
        for routing in ROUTINGS {
            assert_acyclic(routing, &mask, "severed column");
        }
    }
    // Sanity: the mask type itself round-trips coordinates correctly.
    let m = LinkMask::all_up(MESH);
    assert!(m.usable(Coord::new(1, 1), Direction::East));
}
