//! The generic 2-stage 5-port virtual-channel router baseline (Fig 1a).
//!
//! A monolithic 5×5 crossbar, three `Any`-admission VCs per input port,
//! separable input-first switch allocation, and ejection through the
//! crossbar's PE column (no Early Ejection). Any hard fault blocks the
//! whole node (§4.1).

use crate::engine::{BitIds, RouterCore, Vc};
use noc_arbiter::{SeparableAllocator, SwitchGrant, SwitchRequest};
use noc_core::{
    ActivityCounters, ComponentFault, ContentionCounters, Coord, Credit, Direction, Flit, HotStep,
    MeshConfig, ModuleHealth, NodeStatus, RouterConfig, RouterKind, RouterNode, RouterOutputs,
    SlabView, SlabWindow, StepContext, Topology, TopologyOps, VcAdmission, VcDescriptor,
    VcSnapshot,
};
use noc_routing::RouteComputer;

/// The generic 5-port VC router.
#[derive(Debug)]
pub struct GenericRouter {
    core: RouterCore,
    allocator: SeparableAllocator,
    /// Reusable SA request/grant scratch (cleared every step).
    sa_requests: Vec<SwitchRequest>,
    sa_grants: Vec<SwitchGrant>,
}

impl GenericRouter {
    /// Builds a generic router at `coord`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.router != RouterKind::Generic` or the
    /// configuration fails validation.
    pub fn new(coord: Coord, cfg: RouterConfig, mesh: MeshConfig) -> Self {
        GenericRouter::new_on(coord, cfg, Topology::mesh(mesh))
    }

    /// Builds a generic router at `coord` on an arbitrary topology.
    ///
    /// On wraparound topologies (torus, circulant) the non-Local input
    /// VCs are partitioned into dateline classes: VC 1 holds packets
    /// that crossed the current ring's dateline, every other VC holds
    /// those that have not. The Local (injection) side is unfiltered —
    /// freshly injected packets have crossed nothing yet, and the class
    /// only matters once the packet is buffered on a ring channel.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.router != RouterKind::Generic`, the configuration
    /// fails validation, or the topology rejects the (router, routing,
    /// VC) combination.
    pub fn new_on(coord: Coord, cfg: RouterConfig, topo: Topology) -> Self {
        assert_eq!(cfg.router, RouterKind::Generic, "configuration is for a different router");
        cfg.validate().expect("invalid router configuration");
        topo.check_support(cfg.router, cfg.routing, cfg.vcs_per_port as usize)
            .expect("topology rejects this router configuration");
        let dateline_vcs = topo.needs_dateline_vcs();
        let computer = RouteComputer::on(cfg.routing, topo);
        let v = cfg.vcs_per_port as usize;
        let mut vcs = Vec::with_capacity(5 * v);
        let mut link_map: [Vec<usize>; 5] = Default::default();
        for side in Direction::ALL {
            for i in 0..v {
                let mut desc =
                    VcDescriptor::new(VcAdmission::Any, cfg.buffer_depth).with_arrival(side);
                if dateline_vcs && side != Direction::Local {
                    desc = desc.with_dateline(i == 1);
                }
                link_map[side.index()].push(vcs.len());
                vcs.push(Vc::new(desc, side, i as u8, side.index() as u8));
            }
        }
        let core = RouterCore::new(coord, cfg, computer, vcs, link_map);
        GenericRouter {
            core,
            allocator: SeparableAllocator::new(5, 5, v),
            // Pre-sized to their per-cycle worst case (one request per
            // input VC): recycled scratch must never grow on the hot
            // path, even when the first busy cycle lands late in a run.
            sa_requests: Vec::with_capacity(5 * v),
            sa_grants: Vec::with_capacity(5 * v),
        }
    }

    /// Wires the output towards `dir` to the downstream VC list.
    pub fn connect_output(&mut self, dir: Direction, descs: &[VcDescriptor]) {
        self.core.connect_output(dir, descs);
    }

    /// Mutable access to the shared engine, for mutation-style negative
    /// tests that deliberately corrupt flow-control state to prove the
    /// audit layer notices. Never call this from simulation code.
    #[doc(hidden)]
    pub fn test_core_mut(&mut self) -> &mut RouterCore {
        &mut self.core
    }
}

impl RouterNode for GenericRouter {
    fn coord(&self) -> Coord {
        self.core.coord
    }

    fn config(&self) -> &RouterConfig {
        &self.core.cfg
    }

    fn vcs_on_link(&self, dir: Direction) -> &[VcDescriptor] {
        self.core.link_descriptors(dir)
    }

    fn ring_capacities(&self) -> Vec<u32> {
        self.core.ring_capacities()
    }

    fn deliver_flit(&mut self, slab: &mut SlabWindow<'_>, from: Direction, vc: u8, flit: Flit) {
        self.core.deliver_flit(slab, from, vc, flit);
    }

    fn deliver_credit(&mut self, output: Direction, credit: Credit) {
        self.core.deliver_credit(output, credit);
    }

    fn try_inject(
        &mut self,
        slab: &mut SlabWindow<'_>,
        flit: Flit,
        ctx: &mut StepContext<'_>,
    ) -> bool {
        self.core.try_inject(slab, flit, ctx)
    }

    fn step(
        &mut self,
        ctx: &mut StepContext<'_>,
        slab: &mut SlabWindow<'_>,
        out: &mut RouterOutputs,
    ) {
        out.clear();
        self.core.counters.cycles += 1;
        self.core.probe_cycle(&slab.as_view());
        self.core.flush(out);
        if self.core.node_dead() {
            return;
        }
        self.core.va_stage(ctx, slab);
        // Monolithic separable SA over the 5×5 crossbar.
        let v = self.core.cfg.vcs_per_port as usize;
        let requests = &mut self.sa_requests;
        requests.clear();
        for side in Direction::ALL {
            for i in 0..v {
                let vc_id = self.core.link_map[side.index()][i];
                if let Some(want) = self.core.sa_candidate(&slab.as_view(), vc_id) {
                    requests.push(SwitchRequest {
                        input: side.index(),
                        output: want.index(),
                        vc: i,
                    });
                }
            }
        }
        let effort = self.allocator.allocate_into(requests, &mut self.sa_grants);
        self.core.counters.sa_local_arbs += effort.local_ops;
        self.core.counters.sa_global_arbs += effort.global_ops;
        let mut freed = false;
        for g in &self.sa_grants {
            let vc_id = self.core.link_map[g.input][g.vc];
            freed |= self.core.apply_grant(slab, vc_id);
        }
        if freed {
            self.core.va_stage(ctx, slab);
        }
        // Fig 3 contention accounting: one observation per eligible VC
        // request, classified by its input link's axis ("row input" =
        // the East/West ports, "column input" = North/South); the PE
        // port is not a row/column input and is skipped.
        for r in &self.sa_requests {
            let side = Direction::from_index(r.input);
            let Some(axis) = side.axis() else { continue };
            let granted = self.sa_grants.iter().any(|g| g.input == r.input && g.vc == r.vc);
            self.core.record_contention(axis, granted);
        }
    }

    fn step_hot(
        &mut self,
        ctx: &mut StepContext<'_>,
        slab: &mut SlabWindow<'_>,
        out: &mut RouterOutputs,
    ) -> HotStep {
        if self.core.vcs.len() > 64 {
            self.step(ctx, slab, out);
            return HotStep {
                occupancy: self.core.occupancy(),
                quiescent: self.core.is_quiescent(),
                busy_vcs: u64::MAX,
            };
        }
        out.clear();
        self.core.counters.cycles += 1;
        let busy = self.core.hot_open(&slab.as_view());
        self.core.flush(out);
        if self.core.node_dead() {
            let (occupancy, quiescent) = self.core.hot_close(busy);
            return HotStep { occupancy, quiescent, busy_vcs: busy };
        }
        self.core.va_stage_ids(ctx, slab, BitIds(busy));
        // SA candidates can only be busy VCs (a candidate needs a
        // non-empty Active VC), and VC ids ascend in (side, i) order, so
        // scanning the busy mask yields the same requests in the same
        // order as the classic step's full sweep.
        let requests = &mut self.sa_requests;
        requests.clear();
        for vc_id in BitIds(busy) {
            if let Some(want) = self.core.sa_candidate(&slab.as_view(), vc_id) {
                let vc = &self.core.vcs[vc_id];
                requests.push(SwitchRequest {
                    input: vc.input_side.index(),
                    output: want.index(),
                    vc: vc.link_index as usize,
                });
            }
        }
        let effort = self.allocator.allocate_into(requests, &mut self.sa_grants);
        self.core.counters.sa_local_arbs += effort.local_ops;
        self.core.counters.sa_global_arbs += effort.global_ops;
        let mut freed = false;
        for g in &self.sa_grants {
            let vc_id = self.core.link_map[g.input][g.vc];
            freed |= self.core.apply_grant(slab, vc_id);
        }
        if freed {
            self.core.va_stage_ids(ctx, slab, BitIds(busy));
        }
        for r in &self.sa_requests {
            let side = Direction::from_index(r.input);
            let Some(axis) = side.axis() else { continue };
            let granted = self.sa_grants.iter().any(|g| g.input == r.input && g.vc == r.vc);
            self.core.record_contention(axis, granted);
        }
        let (occupancy, quiescent) = self.core.hot_close(busy);
        HotStep { occupancy, quiescent, busy_vcs: busy }
    }

    fn warm_hot(&self, slab: &SlabView<'_>) {
        self.core.warm_hot(slab);
    }

    fn is_quiescent(&self) -> bool {
        self.core.is_quiescent()
    }

    fn tick_idle(&mut self) {
        self.core.tick_idle();
    }

    fn status(&self) -> NodeStatus {
        self.core.status()
    }

    fn inject_fault(&mut self, _fault: ComponentFault) {
        // Unified control: any hard fault takes the whole node off-line
        // (§4.1: "a hard failure may cause the entire node to be taken
        // off-line, since the operation of the router is unified").
        self.core.module_health = [ModuleHealth::Dead; 2];
        for vc in &mut self.core.vcs {
            vc.disabled = true;
            vc.desc.capacity = 0;
        }
        self.core.refresh_link_descs();
    }

    fn clear_faults(&mut self) {
        self.core.clear_all_faults();
    }

    fn purge_faulted(&mut self, slab: &mut SlabWindow<'_>) {
        self.core.purge_faulted(slab);
    }

    fn resync_output(&mut self, slab: &mut SlabWindow<'_>, dir: Direction, descs: &[VcDescriptor]) {
        self.core.resync_output(slab, dir, descs);
    }

    fn reset_input_link(&mut self, slab: &mut SlabWindow<'_>, from: Direction) {
        self.core.reset_input_link(slab, from);
    }

    fn counters(&self) -> &ActivityCounters {
        &self.core.counters
    }

    fn contention(&self) -> &ContentionCounters {
        &self.core.contention
    }

    fn occupancy(&self) -> usize {
        self.core.occupancy()
    }

    fn vc_snapshots(&self, slab: &SlabView<'_>) -> Vec<VcSnapshot> {
        self.core.vc_snapshots(slab)
    }

    fn credit_map(&self) -> Vec<(Direction, Vec<u8>)> {
        self.core.credit_map()
    }

    fn audit_probe(&self, slab: &SlabView<'_>) -> noc_core::AuditProbe {
        self.core.audit_probe(slab)
    }
}
