//! # noc-router
//!
//! The three router microarchitectures of the RoCo paper (ISCA 2006):
//!
//! * [`RocoRouter`] — the paper's contribution: a Row-Column decoupled
//!   router with dual 2×2 crossbars, Table-1 Guided Flit Queuing,
//!   Mirroring-Effect switch allocation, Early Ejection and §4's
//!   Hardware Recycling fault tolerance.
//! * [`GenericRouter`] — the generic 2-stage 5-port virtual-channel
//!   baseline with a monolithic 5×5 crossbar (Fig 1a).
//! * [`PathSensitiveRouter`] — the DAC 2005 Path-Sensitive baseline
//!   with quadrant path sets and a decomposed 4×4 crossbar.
//!
//! All three implement [`noc_core::RouterNode`] and are driven by the
//! `noc-sim` network simulator; [`AnyRouter`] dispatches over them.
//!
//! # Examples
//!
//! ```
//! use noc_core::{Coord, MeshConfig, RouterConfig, RouterKind, RouterNode, RoutingKind};
//! use noc_router::AnyRouter;
//!
//! let cfg = RouterConfig::paper(RouterKind::RoCo, RoutingKind::Xy);
//! let router = AnyRouter::build(Coord::new(3, 3), cfg, MeshConfig::new(8, 8));
//! // Table 1: three VCs hang off the West input link under XY routing.
//! assert_eq!(router.vcs_on_link(noc_core::Direction::West).len(), 3);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod any;
mod engine;
mod generic;
mod path_sensitive;
mod roco;

pub use any::AnyRouter;
pub use engine::{BitIds, OutputPort, OutputVcState, RouterCore, Vc, VcState};
pub use generic::GenericRouter;
pub use path_sensitive::PathSensitiveRouter;
pub use roco::{class_histogram, table1_vcs, ModulePort, RocoRouter, RocoVcSpec};
