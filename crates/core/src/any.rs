//! Uniform dispatch over the three router architectures.

use crate::{GenericRouter, PathSensitiveRouter, RocoRouter};
use noc_core::{
    ActivityCounters, ComponentFault, ContentionCounters, Coord, Credit, Direction, Flit, HotStep,
    MeshConfig, NodeStatus, RouterConfig, RouterKind, RouterNode, RouterOutputs, SlabView,
    SlabWindow, StepContext, VcDescriptor, VcSnapshot,
};

/// A router of any of the three evaluated architectures.
///
/// Stored inline (not boxed) deliberately: the simulator keeps a
/// `Vec<AnyRouter>` so the SoA kernel's lookahead prefetch can compute
/// router addresses from the vector spine without a dependent load.
/// The variant size spread is modest (~1.1–1.4 kB), so the padding
/// cost is worth the pointer-chase it removes.
#[allow(clippy::large_enum_variant)]
#[derive(Debug)]
pub enum AnyRouter {
    /// Generic 2-stage 5-port VC router.
    Generic(GenericRouter),
    /// Path-Sensitive router (DAC 2005).
    PathSensitive(PathSensitiveRouter),
    /// RoCo decoupled router (this paper).
    RoCo(RocoRouter),
}

impl AnyRouter {
    /// Builds a router of `cfg.router`'s architecture at `coord`.
    pub fn build(coord: Coord, cfg: RouterConfig, mesh: MeshConfig) -> Self {
        match cfg.router {
            RouterKind::Generic => AnyRouter::Generic(GenericRouter::new(coord, cfg, mesh)),
            RouterKind::PathSensitive => {
                AnyRouter::PathSensitive(PathSensitiveRouter::new(coord, cfg, mesh))
            }
            RouterKind::RoCo => AnyRouter::RoCo(RocoRouter::new(coord, cfg, mesh)),
        }
    }

    /// Builds a router of `cfg.router`'s architecture at `coord` on an
    /// arbitrary topology.
    pub fn build_on(coord: Coord, cfg: RouterConfig, topo: &noc_core::Topology) -> Self {
        match cfg.router {
            RouterKind::Generic => {
                AnyRouter::Generic(GenericRouter::new_on(coord, cfg, topo.clone()))
            }
            RouterKind::PathSensitive => {
                AnyRouter::PathSensitive(PathSensitiveRouter::new_on(coord, cfg, topo.clone()))
            }
            RouterKind::RoCo => AnyRouter::RoCo(RocoRouter::new_on(coord, cfg, topo.clone())),
        }
    }

    /// Wires the output towards `dir` to a neighbour's published VCs.
    pub fn connect_output(&mut self, dir: Direction, descs: &[VcDescriptor]) {
        match self {
            AnyRouter::Generic(r) => r.connect_output(dir, descs),
            AnyRouter::PathSensitive(r) => r.connect_output(dir, descs),
            AnyRouter::RoCo(r) => r.connect_output(dir, descs),
        }
    }

    /// Mutable access to the shared engine, for mutation-style negative
    /// tests that deliberately corrupt flow-control state to prove the
    /// audit layer notices. Never call this from simulation code.
    #[doc(hidden)]
    pub fn test_core_mut(&mut self) -> &mut crate::engine::RouterCore {
        match self {
            AnyRouter::Generic(r) => r.test_core_mut(),
            AnyRouter::PathSensitive(r) => r.test_core_mut(),
            AnyRouter::RoCo(r) => r.test_core_mut(),
        }
    }
}

macro_rules! dispatch {
    ($self:expr, $r:ident => $body:expr) => {
        match $self {
            AnyRouter::Generic($r) => $body,
            AnyRouter::PathSensitive($r) => $body,
            AnyRouter::RoCo($r) => $body,
        }
    };
}

impl RouterNode for AnyRouter {
    fn coord(&self) -> Coord {
        dispatch!(self, r => r.coord())
    }

    fn config(&self) -> &RouterConfig {
        dispatch!(self, r => r.config())
    }

    fn vcs_on_link(&self, dir: Direction) -> &[VcDescriptor] {
        dispatch!(self, r => r.vcs_on_link(dir))
    }

    fn ring_capacities(&self) -> Vec<u32> {
        dispatch!(self, r => r.ring_capacities())
    }

    fn deliver_flit(&mut self, slab: &mut SlabWindow<'_>, from: Direction, vc: u8, flit: Flit) {
        dispatch!(self, r => r.deliver_flit(slab, from, vc, flit))
    }

    fn deliver_credit(&mut self, output: Direction, credit: Credit) {
        dispatch!(self, r => r.deliver_credit(output, credit))
    }

    fn try_inject(
        &mut self,
        slab: &mut SlabWindow<'_>,
        flit: Flit,
        ctx: &mut StepContext<'_>,
    ) -> bool {
        dispatch!(self, r => r.try_inject(slab, flit, ctx))
    }

    fn step(
        &mut self,
        ctx: &mut StepContext<'_>,
        slab: &mut SlabWindow<'_>,
        out: &mut RouterOutputs,
    ) {
        dispatch!(self, r => r.step(ctx, slab, out))
    }

    fn step_hot(
        &mut self,
        ctx: &mut StepContext<'_>,
        slab: &mut SlabWindow<'_>,
        out: &mut RouterOutputs,
    ) -> HotStep {
        dispatch!(self, r => r.step_hot(ctx, slab, out))
    }

    fn warm_hot(&self, slab: &SlabView<'_>) {
        dispatch!(self, r => r.warm_hot(slab))
    }

    fn is_quiescent(&self) -> bool {
        dispatch!(self, r => r.is_quiescent())
    }

    fn tick_idle(&mut self) {
        dispatch!(self, r => r.tick_idle())
    }

    fn status(&self) -> NodeStatus {
        dispatch!(self, r => r.status())
    }

    fn inject_fault(&mut self, fault: ComponentFault) {
        dispatch!(self, r => r.inject_fault(fault))
    }

    fn clear_faults(&mut self) {
        dispatch!(self, r => r.clear_faults())
    }

    fn purge_faulted(&mut self, slab: &mut SlabWindow<'_>) {
        dispatch!(self, r => r.purge_faulted(slab))
    }

    fn resync_output(&mut self, slab: &mut SlabWindow<'_>, dir: Direction, descs: &[VcDescriptor]) {
        dispatch!(self, r => r.resync_output(slab, dir, descs))
    }

    fn reset_input_link(&mut self, slab: &mut SlabWindow<'_>, from: Direction) {
        dispatch!(self, r => r.reset_input_link(slab, from))
    }

    fn counters(&self) -> &ActivityCounters {
        dispatch!(self, r => r.counters())
    }

    fn contention(&self) -> &ContentionCounters {
        dispatch!(self, r => r.contention())
    }

    fn occupancy(&self) -> usize {
        dispatch!(self, r => r.occupancy())
    }

    fn vc_snapshots(&self, slab: &SlabView<'_>) -> Vec<VcSnapshot> {
        dispatch!(self, r => r.vc_snapshots(slab))
    }

    fn credit_map(&self) -> Vec<(Direction, Vec<u8>)> {
        dispatch!(self, r => r.credit_map())
    }

    fn audit_probe(&self, slab: &SlabView<'_>) -> noc_core::AuditProbe {
        dispatch!(self, r => r.audit_probe(slab))
    }
}
