//! The Row-Column (RoCo) Decoupled Router (§3).
//!
//! Two operationally independent modules — Row (East/West) and Column
//! (North/South) — each own a compact 2×2 crossbar, a small VA, and a
//! Mirroring-Effect switch allocator (Fig 4). Guided Flit Queuing
//! steers arriving flits into Table-1 path-set buffers, Early Ejection
//! delivers destination flits straight off the input DEMUX, and the
//! Hardware Recycling mechanisms of §4 let the router degrade
//! gracefully instead of failing whole.

mod vc_config;

pub use vc_config::{class_histogram, table1_vcs, ModulePort, RocoVcSpec};

use crate::engine::{BitIds, RouterCore, Vc};
use noc_arbiter::{
    MirrorAllocator, RoundRobinArbiter, SeparableAllocator, SwitchGrant, SwitchRequest,
};
use noc_core::{
    ActivityCounters, Axis, ComponentFault, ContentionCounters, Coord, Credit, Direction, Flit,
    HotStep, MeshConfig, ModuleHealth, NodeStatus, RouterConfig, RouterKind, RouterNode,
    RouterOutputs, SlabView, SlabWindow, StepContext, VcDescriptor, VcSnapshot,
};
use noc_fault::{reaction, Reaction};
use noc_routing::RouteComputer;

/// Whether `vc` is inside the busy mask. Ids past bit 63 are always
/// "busy": the hot path never runs there, and the classic step passes
/// an all-ones mask.
#[inline]
fn busy_has(busy: u64, vc: usize) -> bool {
    vc >= 64 || busy & (1u64 << vc) != 0
}

/// Output direction served by `module` (0 = Row, 1 = Column) and
/// crossbar slot `slot` (0 or 1).
fn slot_direction(module: usize, slot: usize) -> Direction {
    match (module, slot) {
        (0, 0) => Direction::East,
        (0, 1) => Direction::West,
        (1, 0) => Direction::North,
        (1, 1) => Direction::South,
        _ => unreachable!("module/slot out of range"),
    }
}

/// The RoCo decoupled router.
#[derive(Debug)]
pub struct RocoRouter {
    core: RouterCore,
    /// Internal VC ids per module-port (RowP1, RowP2, ColP1, ColP2).
    port_vcs: [Vec<usize>; 4],
    /// Per module-port, per direction-slot local SA arbiters (the two
    /// v:1 arbiters of Fig 4's local arbitration).
    dir_arbs: [[RoundRobinArbiter; 2]; 4],
    /// One Mirror allocator per module (global arbitration).
    mirrors: [MirrorAllocator; 2],
    /// Ablation fallback: input-first separable allocation per module
    /// when `cfg.mirror_allocator` is false.
    separable: [SeparableAllocator; 2],
    /// Reusable SA scratch buffers (cleared every use).
    sa_requests: Vec<SwitchRequest>,
    sa_grants: Vec<SwitchGrant>,
    sa_lines: Vec<bool>,
    sa_eligible: Vec<usize>,
    /// Bitmask of each module's internal VC ids, for the hot path's
    /// module-skip test (all-zero when the VC count exceeds 64 — the
    /// hot path falls back to the classic step then anyway).
    module_vc_mask: [u64; 2],
}

impl RocoRouter {
    /// Builds a RoCo router at `coord`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.router != RouterKind::RoCo` or the configuration
    /// fails validation.
    pub fn new(coord: Coord, cfg: RouterConfig, mesh: MeshConfig) -> Self {
        RocoRouter::new_on(coord, cfg, noc_core::Topology::mesh(mesh))
    }

    /// Builds a RoCo router at `coord` on an arbitrary (mesh-family)
    /// topology.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.router != RouterKind::RoCo`, the configuration
    /// fails validation, or the topology rejects this router
    /// (wraparound topologies do — the Table-1 VC layout cannot express
    /// dateline classes).
    pub fn new_on(coord: Coord, cfg: RouterConfig, topo: noc_core::Topology) -> Self {
        use noc_core::TopologyOps;
        assert_eq!(cfg.router, RouterKind::RoCo, "configuration is for a different router");
        cfg.validate().expect("invalid router configuration");
        topo.check_support(cfg.router, cfg.routing, cfg.vcs_per_port as usize)
            .expect("topology rejects this router configuration");
        let computer = RouteComputer::on(cfg.routing, topo);
        let specs = table1_vcs(&cfg);
        // Build VCs and the per-link DEMUX map.
        let mut link_map: [Vec<usize>; 5] = Default::default();
        let mut port_vcs: [Vec<usize>; 4] = Default::default();
        let mut vcs = Vec::with_capacity(specs.len());
        for (id, spec) in specs.iter().enumerate() {
            let side = spec.desc.arrival.expect("Table-1 VCs have a unique arrival port");
            let link_index = link_map[side.index()].len() as u8;
            link_map[side.index()].push(id);
            port_vcs[spec.port as usize].push(id);
            vcs.push(Vc::new(spec.desc, side, link_index, spec.port as u8));
        }
        let core = RouterCore::new(coord, cfg, computer, vcs, link_map);
        let mut module_vc_mask = [0u64; 2];
        if specs.len() <= 64 {
            for (port, ids) in port_vcs.iter().enumerate() {
                for &vc in ids {
                    module_vc_mask[port / 2] |= 1u64 << vc;
                }
            }
        }
        RocoRouter {
            core,
            port_vcs,
            dir_arbs: std::array::from_fn(|_| {
                std::array::from_fn(|_| RoundRobinArbiter::new(cfg.vcs_per_port as usize))
            }),
            mirrors: [MirrorAllocator::new(), MirrorAllocator::new()],
            separable: [
                SeparableAllocator::new(2, 2, cfg.vcs_per_port as usize),
                SeparableAllocator::new(2, 2, cfg.vcs_per_port as usize),
            ],
            // Pre-sized to their per-cycle worst case (one entry per
            // VC): recycled scratch must never grow on the hot path,
            // even when the first busy cycle lands late in a run.
            sa_requests: Vec::with_capacity(specs.len()),
            sa_grants: Vec::with_capacity(specs.len()),
            sa_lines: Vec::with_capacity(specs.len()),
            sa_eligible: Vec::with_capacity(specs.len()),
            module_vc_mask,
        }
    }

    /// Ablation SA: plain input-first separable allocation on the 2×2
    /// module (no Mirroring Effect, so head-of-line blocking between a
    /// port's two directions is possible).
    fn module_sa_separable(&mut self, slab: &mut SlabWindow<'_>, module: usize, busy: u64) -> bool {
        let mut freed = false;
        let ports = [2 * module, 2 * module + 1];
        let requests = &mut self.sa_requests;
        requests.clear();
        let mut port_had_request = [false; 2];
        for (pi, &port) in ports.iter().enumerate() {
            for (vi, &vc) in self.port_vcs[port].iter().enumerate() {
                // A VC outside the busy mask is empty and Idle, so its
                // `sa_candidate` is always None: skipping the load is
                // bit-exact (see `RouterCore::hot_open`).
                if !busy_has(busy, vc) {
                    continue;
                }
                if let Some(want) = self.core.sa_candidate(&slab.as_view(), vc) {
                    let slot = (0..2)
                        .find(|&s| slot_direction(module, s) == want)
                        .expect("module VCs only want module outputs");
                    requests.push(SwitchRequest { input: pi, output: slot, vc: vi });
                    port_had_request[pi] = true;
                }
            }
        }
        let effort = self.separable[module].allocate_into(requests, &mut self.sa_grants);
        self.core.counters.sa_local_arbs += effort.local_ops;
        self.core.counters.sa_global_arbs += effort.global_ops;
        let mut port_granted = [false; 2];
        for g in &self.sa_grants {
            let vc = self.port_vcs[ports[g.input]][g.vc];
            freed |= self.core.apply_grant(slab, vc);
            port_granted[g.input] = true;
        }
        let axis = if module == 0 { Axis::X } else { Axis::Y };
        for pi in 0..2 {
            if port_had_request[pi] {
                self.core.record_contention(axis, port_granted[pi]);
            }
        }
        freed
    }

    /// Wires the output towards `dir` to the downstream VC list.
    pub fn connect_output(&mut self, dir: Direction, descs: &[VcDescriptor]) {
        self.core.connect_output(dir, descs);
    }

    /// Mutable access to the shared engine, for mutation-style negative
    /// tests that deliberately corrupt flow-control state to prove the
    /// audit layer notices. Never call this from simulation code.
    #[doc(hidden)]
    pub fn test_core_mut(&mut self) -> &mut RouterCore {
        &mut self.core
    }

    /// Lifetime flit writes per Table-1 buffer class — quantifies the
    /// §3.1 utilization claims (e.g. "the injection channel Injxy is
    /// much more frequently used than Injyx" under XY routing).
    pub fn class_utilization(&self) -> std::collections::BTreeMap<noc_core::VcClass, u64> {
        let mut map = std::collections::BTreeMap::new();
        for vc in &self.core.vcs {
            if let noc_core::VcAdmission::Class(c) = vc.desc.admission {
                *map.entry(c).or_insert(0) += vc.writes;
            }
        }
        map
    }

    /// Switch allocation for one module using the Mirroring Effect.
    /// Returns whether a tail departure freed a downstream VC.
    fn module_sa(&mut self, slab: &mut SlabWindow<'_>, module: usize, busy: u64) -> bool {
        let mut freed = false;
        let ports = [2 * module, 2 * module + 1];
        // Local stage: per port, per direction, a v:1 arbiter picks one
        // candidate VC (Fig 4's two arbiters per input port).
        let mut cand: [[Option<usize>; 2]; 2] = [[None; 2]; 2];
        let mut eligible = std::mem::take(&mut self.sa_eligible);
        let mut lines = std::mem::take(&mut self.sa_lines);
        eligible.clear();
        for (pi, &port) in ports.iter().enumerate() {
            // Index loop on purpose: `slot` feeds `slot_direction`,
            // `dir_arbs`, and `cand` symmetrically.
            #[allow(clippy::needless_range_loop)]
            for slot in 0..2 {
                let want = slot_direction(module, slot);
                lines.clear();
                // A VC outside the busy mask is empty and Idle, so its
                // `sa_candidate` is always None: skipping the load is
                // bit-exact (see `RouterCore::hot_open`).
                lines.extend(self.port_vcs[port].iter().map(|&vc| {
                    busy_has(busy, vc) && self.core.sa_candidate(&slab.as_view(), vc) == Some(want)
                }));
                for (vi, &l) in lines.iter().enumerate() {
                    if l && self.core.vcs[self.port_vcs[port][vi]].input_side != Direction::Local {
                        eligible.push(self.port_vcs[port][vi]);
                    }
                }
                if lines.iter().any(|&l| l) {
                    self.core.counters.sa_local_arbs += 1;
                    if let Some(w) = self.dir_arbs[port][slot].arbitrate(&lines) {
                        cand[pi][slot] = Some(self.port_vcs[port][w]);
                    }
                }
            }
        }
        let requests = [
            [cand[0][0].is_some(), cand[0][1].is_some()],
            [cand[1][0].is_some(), cand[1][1].is_some()],
        ];
        if requests.iter().flatten().any(|&r| r) {
            // Global stage: a single 2:1 mirror arbitration per module.
            self.core.counters.sa_global_arbs += 1;
            let grant = self.mirrors[module].allocate(requests);
            let axis = if module == 0 { Axis::X } else { Axis::Y };
            let mut granted_vcs = [None, None];
            for (pi, slot) in [(0, grant.port0), (1, grant.port1)] {
                if let Some(s) = slot {
                    let vc = cand[pi][s].expect("mirror grants only requested slots");
                    freed |= self.core.apply_grant(slab, vc);
                    granted_vcs[pi] = Some(vc);
                }
            }
            // Fig 3: one observation per eligible network VC, on this
            // module's axis (row module = row inputs, column = column).
            for &vc in &eligible {
                let granted = granted_vcs.contains(&Some(vc));
                self.core.record_contention(axis, granted);
            }
        }
        self.sa_eligible = eligible;
        self.sa_lines = lines;
        freed
    }
}

impl RouterNode for RocoRouter {
    fn coord(&self) -> Coord {
        self.core.coord
    }

    fn config(&self) -> &RouterConfig {
        &self.core.cfg
    }

    fn vcs_on_link(&self, dir: Direction) -> &[VcDescriptor] {
        self.core.link_descriptors(dir)
    }

    fn ring_capacities(&self) -> Vec<u32> {
        self.core.ring_capacities()
    }

    fn deliver_flit(&mut self, slab: &mut SlabWindow<'_>, from: Direction, vc: u8, flit: Flit) {
        self.core.deliver_flit(slab, from, vc, flit);
    }

    fn deliver_credit(&mut self, output: Direction, credit: Credit) {
        self.core.deliver_credit(output, credit);
    }

    fn try_inject(
        &mut self,
        slab: &mut SlabWindow<'_>,
        flit: Flit,
        ctx: &mut StepContext<'_>,
    ) -> bool {
        self.core.try_inject(slab, flit, ctx)
    }

    fn step(
        &mut self,
        ctx: &mut StepContext<'_>,
        slab: &mut SlabWindow<'_>,
        out: &mut RouterOutputs,
    ) {
        out.clear();
        self.core.counters.cycles += 1;
        self.core.probe_cycle(&slab.as_view());
        self.core.flush(out);
        if self.core.node_dead() {
            return;
        }
        let va_activity = self.core.va_stage(ctx, slab);
        let mut freed = false;
        // Index loop on purpose: `module` selects health, degradation,
        // VA activity, and the allocator sweep together.
        #[allow(clippy::needless_range_loop)]
        for module in 0..2 {
            if self.core.module_health[module] == ModuleHealth::Dead {
                continue;
            }
            // SA fault: arbitration is offloaded to the VA arbiters via
            // 2-to-1 MUXes (Fig 7) and can only run in cycles where the
            // VA left them idle.
            if self.core.sa_degraded[module] && va_activity[module] {
                continue;
            }
            freed |= if self.core.cfg.mirror_allocator {
                self.module_sa(slab, module, u64::MAX)
            } else {
                self.module_sa_separable(slab, module, u64::MAX)
            };
        }
        if freed {
            // Tail departures freed downstream VCs: a further VA
            // iteration lets waiting heads claim them without a bubble.
            self.core.va_stage(ctx, slab);
        }
    }

    fn step_hot(
        &mut self,
        ctx: &mut StepContext<'_>,
        slab: &mut SlabWindow<'_>,
        out: &mut RouterOutputs,
    ) -> HotStep {
        if self.core.vcs.len() > 64 {
            self.step(ctx, slab, out);
            return HotStep {
                occupancy: self.core.occupancy(),
                quiescent: self.core.is_quiescent(),
                busy_vcs: u64::MAX,
            };
        }
        out.clear();
        self.core.counters.cycles += 1;
        let busy = self.core.hot_open(&slab.as_view());
        self.core.flush(out);
        if self.core.node_dead() {
            let (occupancy, quiescent) = self.core.hot_close(busy);
            return HotStep { occupancy, quiescent, busy_vcs: busy };
        }
        let va_activity = self.core.va_stage_ids(ctx, slab, BitIds(busy));
        let mut freed = false;
        // Index loop on purpose, as in the classic step above.
        #[allow(clippy::needless_range_loop)]
        for module in 0..2 {
            // A module with no busy VC has no SA candidates: the classic
            // step would touch no arbiter and no counter, so skipping it
            // outright is bit-exact.
            if busy & self.module_vc_mask[module] == 0 {
                continue;
            }
            if self.core.module_health[module] == ModuleHealth::Dead {
                continue;
            }
            if self.core.sa_degraded[module] && va_activity[module] {
                continue;
            }
            freed |= if self.core.cfg.mirror_allocator {
                self.module_sa(slab, module, busy)
            } else {
                self.module_sa_separable(slab, module, busy)
            };
        }
        if freed {
            // The busy mask stays a sound superset for the second VA
            // pass: no VC gains flits mid-step.
            self.core.va_stage_ids(ctx, slab, BitIds(busy));
        }
        let (occupancy, quiescent) = self.core.hot_close(busy);
        HotStep { occupancy, quiescent, busy_vcs: busy }
    }

    fn warm_hot(&self, slab: &SlabView<'_>) {
        self.core.warm_hot(slab);
        #[cfg(target_arch = "x86_64")]
        {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            // SA satellites: the per-port VC id lists and the reused
            // line/eligibility scratch live in small heap blocks of
            // their own. SAFETY: prefetch has no memory effects.
            for ids in &self.port_vcs {
                unsafe { _mm_prefetch(ids.as_ptr().cast::<i8>(), _MM_HINT_T0) };
            }
            unsafe {
                _mm_prefetch(self.sa_lines.as_ptr().cast::<i8>(), _MM_HINT_T0);
                _mm_prefetch(self.sa_eligible.as_ptr().cast::<i8>(), _MM_HINT_T0);
            }
        }
    }

    fn is_quiescent(&self) -> bool {
        self.core.is_quiescent()
    }

    fn tick_idle(&mut self) {
        self.core.tick_idle();
    }

    fn status(&self) -> NodeStatus {
        self.core.status()
    }

    fn inject_fault(&mut self, fault: ComponentFault) {
        match reaction(RouterKind::RoCo, fault.component) {
            Reaction::ModuleBlocked => {
                *self.core.module_health_mut(fault.axis) = ModuleHealth::Dead;
                let module = if fault.axis == Axis::X { 0 } else { 1 };
                for port in [2 * module, 2 * module + 1] {
                    for &vc in &self.port_vcs[port] {
                        self.core.vcs[vc].disabled = true;
                        self.core.vcs[vc].desc.capacity = 0;
                    }
                }
                self.core.refresh_link_descs();
            }
            Reaction::DoubleRouting => {
                self.core.rc_ok = false;
            }
            Reaction::VirtualQueuing => {
                // §4.1/Fig 6: the faulty buffer is bypassed — flits are
                // physically stored at the previous node and virtually
                // queued/arbitrated here through the bypass register.
                // Model: the VC stays in service with an effective
                // depth of one flit (the bypass latch), so it streams
                // at the credit round-trip rate: degraded, never lost.
                let module = if fault.axis == Axis::X { 0 } else { 1 };
                let pool: Vec<usize> = self.port_vcs[2 * module]
                    .iter()
                    .chain(&self.port_vcs[2 * module + 1])
                    .copied()
                    .collect();
                let vc = pool[fault.vc as usize % pool.len()];
                self.core.vcs[vc].desc.capacity = 1;
                if *self.core.module_health_mut(fault.axis) == ModuleHealth::Healthy {
                    *self.core.module_health_mut(fault.axis) = ModuleHealth::Degraded;
                }
                self.core.refresh_link_descs();
            }
            Reaction::SaOffload => {
                let module = if fault.axis == Axis::X { 0 } else { 1 };
                self.core.sa_degraded[module] = true;
                if *self.core.module_health_mut(fault.axis) == ModuleHealth::Healthy {
                    *self.core.module_health_mut(fault.axis) = ModuleHealth::Degraded;
                }
            }
            Reaction::NodeBlocked => unreachable!("RoCo never blocks the whole node (§4.1)"),
        }
    }

    fn clear_faults(&mut self) {
        self.core.clear_all_faults();
    }

    fn purge_faulted(&mut self, slab: &mut SlabWindow<'_>) {
        self.core.purge_faulted(slab);
    }

    fn resync_output(&mut self, slab: &mut SlabWindow<'_>, dir: Direction, descs: &[VcDescriptor]) {
        self.core.resync_output(slab, dir, descs);
    }

    fn reset_input_link(&mut self, slab: &mut SlabWindow<'_>, from: Direction) {
        self.core.reset_input_link(slab, from);
    }

    fn counters(&self) -> &ActivityCounters {
        &self.core.counters
    }

    fn contention(&self) -> &ContentionCounters {
        &self.core.contention
    }

    fn occupancy(&self) -> usize {
        self.core.occupancy()
    }

    fn vc_snapshots(&self, slab: &SlabView<'_>) -> Vec<VcSnapshot> {
        self.core.vc_snapshots(slab)
    }

    fn credit_map(&self) -> Vec<(Direction, Vec<u8>)> {
        self.core.credit_map()
    }

    fn audit_probe(&self, slab: &SlabView<'_>) -> noc_core::AuditProbe {
        self.core.audit_probe(slab)
    }
}
