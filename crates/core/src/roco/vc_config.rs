//! Table 1: the RoCo router's 12-VC buffer configuration for each
//! routing algorithm.
//!
//! The router has four path-set ports of three VCs each: Row-Module
//! ports 1 and 2 (feeding the East/West 2×2 crossbar) and Column-Module
//! ports 1 and 2 (North/South). Guided Flit Queuing steers each arriving
//! flit into the buffer class of its output path:
//!
//! | Routing  | Row port 1        | Row port 2      | Col port 1        | Col port 2      |
//! |----------|-------------------|-----------------|-------------------|-----------------|
//! | XY       | dx dx Injxy       | dx dx Injxy     | dy txy Injyx      | dy dy txy       |
//! | XY-YX    | dx tyx Injxy      | dx dx tyx       | dy txy Injyx      | dy dy txy       |
//! | Adaptive | dx tyx Injxy      | dx dx tyx       | dy txy Injyx      | dy txy txy      |
//!
//! Every buffer is fed by exactly one physical input (its *arrival*
//! port), matching the per-input DEMUX fan-out of Fig 1(b); the paper's
//! escape channels (the second dx of Row port 2 and the turn-restricted
//! txy pair of Column port 2 under adaptive routing) are marked as such.

use noc_core::{Direction, RouterConfig, RoutingKind, VcAdmission, VcClass, VcDescriptor};

/// Which module-port a RoCo VC belongs to (the `group` tag used by the
/// Mirror switch allocator).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModulePort {
    /// Row module, input port 1.
    RowP1 = 0,
    /// Row module, input port 2.
    RowP2 = 1,
    /// Column module, input port 1.
    ColP1 = 2,
    /// Column module, input port 2.
    ColP2 = 3,
}

/// One Table-1 entry: descriptor plus its module-port assignment.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RocoVcSpec {
    /// Buffer descriptor (class, arrival, capacity, escape, turns).
    pub desc: VcDescriptor,
    /// Module-port the VC belongs to.
    pub port: ModulePort,
}

fn vc(class: VcClass, capacity: u8) -> VcDescriptor {
    VcDescriptor::new(VcAdmission::Class(class), capacity)
}

/// Builds the 12 Table-1 VCs for `cfg`'s routing algorithm, in port
/// order (Row p1, Row p2, Col p1, Col p2; three VCs each).
///
/// # Panics
///
/// Panics if `cfg.vcs_per_port != 3` (the Table-1 layout is fixed).
pub fn table1_vcs(cfg: &RouterConfig) -> Vec<RocoVcSpec> {
    assert_eq!(cfg.vcs_per_port, 3, "Table 1 defines exactly 3 VCs per path set");
    use Direction::{East, Local, North, South, West};
    use ModulePort::*;
    use VcClass::*;
    let d = cfg.buffer_depth;
    let spec = |desc: VcDescriptor, port: ModulePort| RocoVcSpec { desc, port };
    match cfg.routing {
        // XY: no tyx turns exist; the spare buffers become extra dx/dy
        // and a second Injxy to absorb the X-heavy load (§3.1).
        RoutingKind::Xy => vec![
            spec(vc(Dx, d).with_arrival(West), RowP1),
            spec(vc(Dx, d).with_arrival(West), RowP1),
            spec(vc(InjXy, d).with_arrival(Local), RowP1),
            spec(vc(Dx, d).with_arrival(East), RowP2),
            spec(vc(Dx, d).with_arrival(East), RowP2),
            spec(vc(InjXy, d).with_arrival(Local), RowP2),
            spec(vc(Dy, d).with_arrival(North), ColP1),
            spec(vc(Txy, d).with_arrival(West), ColP1),
            spec(vc(InjYx, d).with_arrival(Local), ColP1),
            spec(vc(Dy, d).with_arrival(South), ColP2),
            spec(vc(Dy, d).with_arrival(South), ColP2),
            spec(vc(Txy, d).with_arrival(East), ColP2),
        ],
        // XY-YX: tyx channels appear for the YX class (northbound
        // packets only — see RouteComputer::choose_order); the second
        // dx of Row port 2 is the paper's extra deadlock-free channel.
        RoutingKind::XyYx => vec![
            spec(vc(Dx, d).with_arrival(West), RowP1),
            spec(vc(Tyx, d).with_arrival(South), RowP1),
            spec(vc(InjXy, d).with_arrival(Local), RowP1),
            spec(vc(Dx, d).with_arrival(East), RowP2),
            spec(vc(Dx, d).with_arrival(West).escape(), RowP2),
            spec(vc(Tyx, d).with_arrival(South), RowP2),
            spec(vc(Dy, d).with_arrival(North), ColP1),
            spec(vc(Txy, d).with_arrival(West), ColP1),
            spec(vc(InjYx, d).with_arrival(Local), ColP1),
            // Northbound flits (arriving on the South port) get both
            // port-2 dy buffers: the YX class only travels north, so
            // the extra Y-dimension load is northbound.
            spec(vc(Dy, d).with_arrival(South), ColP2),
            spec(vc(Dy, d).with_arrival(South), ColP2),
            spec(vc(Txy, d).with_arrival(East), ColP2),
        ],
        // Adaptive: two more txy channels, turn-restricted per §3.1
        // ("the first txy VC … east to south, the second … east to
        // north"). The odd-even extension uses the same Table-1 layout.
        RoutingKind::Adaptive | RoutingKind::AdaptiveOddEven => vec![
            spec(vc(Dx, d).with_arrival(West), RowP1),
            spec(vc(Tyx, d).with_arrival(North), RowP1),
            spec(vc(InjXy, d).with_arrival(Local), RowP1),
            spec(vc(Dx, d).with_arrival(East), RowP2),
            spec(vc(Dx, d).with_arrival(West).escape(), RowP2),
            spec(vc(Tyx, d).with_arrival(South), RowP2),
            spec(vc(Dy, d).with_arrival(North), ColP1),
            spec(vc(Txy, d).with_arrival(West), ColP1),
            spec(vc(InjYx, d).with_arrival(Local), ColP1),
            spec(vc(Dy, d).with_arrival(South), ColP2),
            spec(vc(Txy, d).with_arrival(East).with_turn(East, South).escape(), ColP2),
            spec(vc(Txy, d).with_arrival(East).with_turn(East, North).escape(), ColP2),
        ],
    }
}

/// Counts of each VC class in a Table-1 configuration (for tests and
/// the Table-1 bench target).
pub fn class_histogram(specs: &[RocoVcSpec]) -> std::collections::BTreeMap<String, usize> {
    let mut h = std::collections::BTreeMap::new();
    for s in specs {
        let VcAdmission::Class(c) = s.desc.admission else { continue };
        *h.entry(c.to_string()).or_insert(0) += 1;
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::{AxisOrder, RouterKind, VcRequest};

    fn cfg(routing: RoutingKind) -> RouterConfig {
        RouterConfig::paper(RouterKind::RoCo, routing)
    }

    #[test]
    fn always_twelve_vcs_three_per_port() {
        for routing in RoutingKind::ALL {
            let specs = table1_vcs(&cfg(routing));
            assert_eq!(specs.len(), 12, "{routing}");
            for port in [ModulePort::RowP1, ModulePort::RowP2, ModulePort::ColP1, ModulePort::ColP2]
            {
                assert_eq!(specs.iter().filter(|s| s.port == port).count(), 3, "{routing}");
            }
        }
    }

    #[test]
    fn class_counts_match_table1() {
        let h = class_histogram(&table1_vcs(&cfg(RoutingKind::Xy)));
        assert_eq!(h["dx"], 4);
        assert_eq!(h["dy"], 3);
        assert_eq!(h["txy"], 2);
        assert_eq!(h.get("tyx"), None);
        assert_eq!(h["Injxy"], 2);
        assert_eq!(h["Injyx"], 1);

        let h = class_histogram(&table1_vcs(&cfg(RoutingKind::XyYx)));
        assert_eq!(h["dx"], 3);
        assert_eq!(h["dy"], 3);
        assert_eq!(h["txy"], 2);
        assert_eq!(h["tyx"], 2);
        assert_eq!(h["Injxy"], 1);
        assert_eq!(h["Injyx"], 1);

        let h = class_histogram(&table1_vcs(&cfg(RoutingKind::Adaptive)));
        assert_eq!(h["dx"], 3);
        assert_eq!(h["dy"], 2);
        assert_eq!(h["txy"], 3);
        assert_eq!(h["tyx"], 2);
        assert_eq!(h["Injxy"], 1);
        assert_eq!(h["Injyx"], 1);
    }

    #[test]
    fn row_ports_hold_x_output_classes_only() {
        for routing in RoutingKind::ALL {
            for s in table1_vcs(&cfg(routing)) {
                let VcAdmission::Class(c) = s.desc.admission else { panic!() };
                let is_row = matches!(s.port, ModulePort::RowP1 | ModulePort::RowP2);
                let x_class = c.output_axis() == Some(noc_core::Axis::X);
                assert_eq!(is_row, x_class, "{routing}: {c} in wrong module");
            }
        }
    }

    /// Every traffic class × arrival combination that the routing
    /// algorithm can produce has at least one admissible VC.
    #[test]
    fn coverage_of_all_reachable_requests() {
        use Direction::*;
        for routing in RoutingKind::ALL {
            let specs = table1_vcs(&cfg(routing));
            // Enumerate all (in_dir, out_dir) pairs a minimal route can
            // produce and check admission, per order class the
            // algorithm generates.
            let orders: &[AxisOrder] = match routing {
                RoutingKind::XyYx => &[AxisOrder::Xy, AxisOrder::Yx],
                _ => &[AxisOrder::Xy],
            };
            for &order in orders {
                for in_dir in [North, East, South, West, Local] {
                    for out_dir in [North, East, South, West] {
                        if in_dir == out_dir {
                            continue;
                        }
                        if !reachable(routing, order, in_dir, out_dir) {
                            continue;
                        }
                        let req = VcRequest {
                            in_dir,
                            out_dir,
                            order,
                            quadrant_mask: 0b1111,
                            dateline: false,
                        };
                        assert!(
                            specs.iter().any(|s| s.desc.accepts(&req)),
                            "{routing}/{order}: no VC admits {in_dir}->{out_dir}"
                        );
                    }
                }
            }
        }
    }

    /// Whether a minimal route under `routing`/`order` can move a flit
    /// from input port `in_dir` to output `out_dir`.
    fn reachable(
        routing: RoutingKind,
        order: AxisOrder,
        in_dir: Direction,
        out_dir: Direction,
    ) -> bool {
        use noc_core::Axis;
        let in_axis = in_dir.axis(); // None for Local (injection)
        let out_axis = out_dir.axis().expect("mesh output");
        match (routing, order) {
            // XY: X->X, X->Y turns, Y->Y, injection anywhere. Never Y->X.
            (RoutingKind::Xy, _) => !(in_axis == Some(Axis::Y) && out_axis == Axis::X),
            (RoutingKind::XyYx, AxisOrder::Xy) => {
                !(in_axis == Some(Axis::Y) && out_axis == Axis::X)
            }
            // Restricted YX: northbound first leg, so southbound flits
            // (arriving via the North port) never exist in this class,
            // and X->Y turns never occur.
            (RoutingKind::XyYx, AxisOrder::Yx) => {
                if in_axis == Some(Axis::X) && out_axis == Axis::Y {
                    return false; // YX packets never turn X->Y
                }
                // No southbound movement at all in the YX class.
                !(in_dir == Direction::North || out_dir == Direction::South)
            }
            // Minimal adaptive (west-first or odd-even): every turn
            // type can occur somewhere, except turns into West under
            // west-first — covering them anyway is harmless.
            (RoutingKind::Adaptive | RoutingKind::AdaptiveOddEven, _) => true,
        }
    }

    #[test]
    fn every_network_vc_has_a_unique_arrival_port() {
        for routing in RoutingKind::ALL {
            for s in table1_vcs(&cfg(routing)) {
                assert!(
                    s.desc.arrival.is_some(),
                    "{routing}: every buffer is fed by exactly one DEMUX"
                );
            }
        }
    }

    #[test]
    fn adaptive_escape_turns_match_paper() {
        let specs = table1_vcs(&cfg(RoutingKind::Adaptive));
        let turns: Vec<_> = specs.iter().filter_map(|s| s.desc.turn).collect();
        assert_eq!(turns.len(), 2);
        assert!(turns.iter().any(|t| t.in_dir == Direction::East && t.out_dir == Direction::South));
        assert!(turns.iter().any(|t| t.in_dir == Direction::East && t.out_dir == Direction::North));
    }
}
