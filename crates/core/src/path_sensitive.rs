//! The Path-Sensitive router baseline (Kim et al., DAC 2005; §2).
//!
//! Arriving flits are grouped into four destination-quadrant *path
//! sets* (NE, NW, SE, SW), each holding three VCs — one per possible
//! arrival direction (the two compatible mesh ports plus the local PE).
//! A 4×4 decomposed crossbar connects the sets to the four outputs;
//! every output is shared by exactly two sets, producing the chained
//! arbitration dependency that caps its non-blocking probability at
//! 2/24 (Table 2). Look-ahead routing and arrival-time ejection are
//! used as in the original design; like the generic router, any hard
//! fault blocks the whole node.

use crate::engine::{BitIds, RouterCore, Vc};
use noc_arbiter::{SeparableAllocator, SwitchGrant, SwitchRequest};
use noc_core::{
    ActivityCounters, ComponentFault, ContentionCounters, Coord, Credit, Direction, Flit, HotStep,
    MeshConfig, ModuleHealth, NodeStatus, RouterConfig, RouterKind, RouterNode, RouterOutputs,
    SlabView, SlabWindow, StepContext, VcAdmission, VcDescriptor, VcSnapshot,
};
use noc_routing::{Quadrant, RouteComputer};

/// The two mesh arrival ports whose traffic can be destined for `q`
/// (plus `Local`, which always can).
fn arrivals_of(q: Quadrant) -> [Direction; 2] {
    // A flit moving North arrives on the South port, etc. The flits
    // that can still need quadrant q's outputs are those moving one of
    // q's two directions.
    let [a, b] = q.directions();
    [a.opposite(), b.opposite()]
}

/// The Path-Sensitive router.
#[derive(Debug)]
pub struct PathSensitiveRouter {
    core: RouterCore,
    /// Internal VC ids per path set (quadrant index order).
    set_vcs: [Vec<usize>; 4],
    allocator: SeparableAllocator,
    /// Reusable SA request/grant scratch (cleared every step).
    sa_requests: Vec<SwitchRequest>,
    sa_grants: Vec<SwitchGrant>,
}

impl PathSensitiveRouter {
    /// Builds a Path-Sensitive router at `coord`.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.router != RouterKind::PathSensitive` or the
    /// configuration fails validation.
    pub fn new(coord: Coord, cfg: RouterConfig, mesh: MeshConfig) -> Self {
        PathSensitiveRouter::new_on(coord, cfg, noc_core::Topology::mesh(mesh))
    }

    /// Builds a Path-Sensitive router at `coord` on an arbitrary
    /// (mesh-family) topology.
    ///
    /// # Panics
    ///
    /// Panics if `cfg.router != RouterKind::PathSensitive`, the
    /// configuration fails validation, or the topology rejects this
    /// router (wraparound topologies do — quadrant path sets assume a
    /// bounded mesh).
    pub fn new_on(coord: Coord, cfg: RouterConfig, topo: noc_core::Topology) -> Self {
        use noc_core::TopologyOps;
        assert_eq!(
            cfg.router,
            RouterKind::PathSensitive,
            "configuration is for a different router"
        );
        cfg.validate().expect("invalid router configuration");
        assert_eq!(cfg.vcs_per_port, 3, "a path set holds one VC per arrival group");
        topo.check_support(cfg.router, cfg.routing, cfg.vcs_per_port as usize)
            .expect("topology rejects this router configuration");
        let computer = RouteComputer::on(cfg.routing, topo);
        let mut vcs = Vec::with_capacity(12);
        let mut link_map: [Vec<usize>; 5] = Default::default();
        let mut set_vcs: [Vec<usize>; 4] = Default::default();
        for q in Quadrant::ALL {
            let arrivals = arrivals_of(q);
            for side in [arrivals[0], arrivals[1], Direction::Local] {
                let desc = VcDescriptor::new(VcAdmission::Any, cfg.buffer_depth)
                    .with_quadrant(q.index() as u8)
                    .with_arrival(side);
                let link_index = link_map[side.index()].len() as u8;
                link_map[side.index()].push(vcs.len());
                set_vcs[q.index()].push(vcs.len());
                vcs.push(Vc::new(desc, side, link_index, q.index() as u8));
            }
        }
        let core = RouterCore::new(coord, cfg, computer, vcs, link_map);
        PathSensitiveRouter {
            core,
            set_vcs,
            allocator: SeparableAllocator::new(4, 4, 3),
            // Pre-sized to their per-cycle worst case (one request per
            // input VC): recycled scratch must never grow on the hot
            // path, even when the first busy cycle lands late in a run.
            sa_requests: Vec::with_capacity(12),
            sa_grants: Vec::with_capacity(12),
        }
    }

    /// Wires the output towards `dir` to the downstream VC list.
    pub fn connect_output(&mut self, dir: Direction, descs: &[VcDescriptor]) {
        self.core.connect_output(dir, descs);
    }

    /// Mutable access to the shared engine, for mutation-style negative
    /// tests that deliberately corrupt flow-control state to prove the
    /// audit layer notices. Never call this from simulation code.
    #[doc(hidden)]
    pub fn test_core_mut(&mut self) -> &mut RouterCore {
        &mut self.core
    }
}

impl RouterNode for PathSensitiveRouter {
    fn coord(&self) -> Coord {
        self.core.coord
    }

    fn config(&self) -> &RouterConfig {
        &self.core.cfg
    }

    fn vcs_on_link(&self, dir: Direction) -> &[VcDescriptor] {
        self.core.link_descriptors(dir)
    }

    fn ring_capacities(&self) -> Vec<u32> {
        self.core.ring_capacities()
    }

    fn deliver_flit(&mut self, slab: &mut SlabWindow<'_>, from: Direction, vc: u8, flit: Flit) {
        self.core.deliver_flit(slab, from, vc, flit);
    }

    fn deliver_credit(&mut self, output: Direction, credit: Credit) {
        self.core.deliver_credit(output, credit);
    }

    fn try_inject(
        &mut self,
        slab: &mut SlabWindow<'_>,
        flit: Flit,
        ctx: &mut StepContext<'_>,
    ) -> bool {
        self.core.try_inject(slab, flit, ctx)
    }

    fn step(
        &mut self,
        ctx: &mut StepContext<'_>,
        slab: &mut SlabWindow<'_>,
        out: &mut RouterOutputs,
    ) {
        out.clear();
        self.core.counters.cycles += 1;
        self.core.probe_cycle(&slab.as_view());
        self.core.flush(out);
        if self.core.node_dead() {
            return;
        }
        self.core.va_stage(ctx, slab);
        // Decomposed 4×4 crossbar: inputs are the four path sets.
        let requests = &mut self.sa_requests;
        requests.clear();
        for (set, ids) in self.set_vcs.iter().enumerate() {
            for (i, &vc_id) in ids.iter().enumerate() {
                if let Some(want) = self.core.sa_candidate(&slab.as_view(), vc_id) {
                    requests.push(SwitchRequest { input: set, output: want.index(), vc: i });
                }
            }
        }
        let effort = self.allocator.allocate_into(requests, &mut self.sa_grants);
        self.core.counters.sa_local_arbs += effort.local_ops;
        self.core.counters.sa_global_arbs += effort.global_ops;
        let mut freed = false;
        for g in &self.sa_grants {
            let vc_id = self.set_vcs[g.input][g.vc];
            freed |= self.core.apply_grant(slab, vc_id);
        }
        if freed {
            self.core.va_stage(ctx, slab);
        }
        // Fig 3: one observation per eligible VC, classified by the
        // arrival link's axis (injection VCs are skipped).
        for r in &self.sa_requests {
            let vc_id = self.set_vcs[r.input][r.vc];
            let Some(axis) = self.core.vcs[vc_id].input_side.axis() else { continue };
            let granted = self.sa_grants.iter().any(|g| g.input == r.input && g.vc == r.vc);
            self.core.record_contention(axis, granted);
        }
    }

    fn step_hot(
        &mut self,
        ctx: &mut StepContext<'_>,
        slab: &mut SlabWindow<'_>,
        out: &mut RouterOutputs,
    ) -> HotStep {
        if self.core.vcs.len() > 64 {
            self.step(ctx, slab, out);
            return HotStep {
                occupancy: self.core.occupancy(),
                quiescent: self.core.is_quiescent(),
                busy_vcs: u64::MAX,
            };
        }
        out.clear();
        self.core.counters.cycles += 1;
        let busy = self.core.hot_open(&slab.as_view());
        self.core.flush(out);
        if self.core.node_dead() {
            let (occupancy, quiescent) = self.core.hot_close(busy);
            return HotStep { occupancy, quiescent, busy_vcs: busy };
        }
        self.core.va_stage_ids(ctx, slab, BitIds(busy));
        // Same sweep as the classic step, but only busy VCs can be SA
        // candidates, so non-busy ids are skipped without the
        // `sa_candidate` call.
        let requests = &mut self.sa_requests;
        requests.clear();
        for (set, ids) in self.set_vcs.iter().enumerate() {
            for (i, &vc_id) in ids.iter().enumerate() {
                if busy & (1u64 << vc_id) == 0 {
                    continue;
                }
                if let Some(want) = self.core.sa_candidate(&slab.as_view(), vc_id) {
                    requests.push(SwitchRequest { input: set, output: want.index(), vc: i });
                }
            }
        }
        let effort = self.allocator.allocate_into(requests, &mut self.sa_grants);
        self.core.counters.sa_local_arbs += effort.local_ops;
        self.core.counters.sa_global_arbs += effort.global_ops;
        let mut freed = false;
        for g in &self.sa_grants {
            let vc_id = self.set_vcs[g.input][g.vc];
            freed |= self.core.apply_grant(slab, vc_id);
        }
        if freed {
            self.core.va_stage_ids(ctx, slab, BitIds(busy));
        }
        for r in &self.sa_requests {
            let vc_id = self.set_vcs[r.input][r.vc];
            let Some(axis) = self.core.vcs[vc_id].input_side.axis() else { continue };
            let granted = self.sa_grants.iter().any(|g| g.input == r.input && g.vc == r.vc);
            self.core.record_contention(axis, granted);
        }
        let (occupancy, quiescent) = self.core.hot_close(busy);
        HotStep { occupancy, quiescent, busy_vcs: busy }
    }

    fn warm_hot(&self, slab: &SlabView<'_>) {
        self.core.warm_hot(slab);
    }

    fn is_quiescent(&self) -> bool {
        self.core.is_quiescent()
    }

    fn tick_idle(&mut self) {
        self.core.tick_idle();
    }

    fn status(&self) -> NodeStatus {
        self.core.status()
    }

    fn inject_fault(&mut self, _fault: ComponentFault) {
        // Like the generic router: unified control, whole node blocked.
        self.core.module_health = [ModuleHealth::Dead; 2];
        for vc in &mut self.core.vcs {
            vc.disabled = true;
            vc.desc.capacity = 0;
        }
        self.core.refresh_link_descs();
    }

    fn clear_faults(&mut self) {
        self.core.clear_all_faults();
    }

    fn purge_faulted(&mut self, slab: &mut SlabWindow<'_>) {
        self.core.purge_faulted(slab);
    }

    fn resync_output(&mut self, slab: &mut SlabWindow<'_>, dir: Direction, descs: &[VcDescriptor]) {
        self.core.resync_output(slab, dir, descs);
    }

    fn reset_input_link(&mut self, slab: &mut SlabWindow<'_>, from: Direction) {
        self.core.reset_input_link(slab, from);
    }

    fn counters(&self) -> &ActivityCounters {
        &self.core.counters
    }

    fn contention(&self) -> &ContentionCounters {
        &self.core.contention
    }

    fn occupancy(&self) -> usize {
        self.core.occupancy()
    }

    fn vc_snapshots(&self, slab: &SlabView<'_>) -> Vec<VcSnapshot> {
        self.core.vc_snapshots(slab)
    }

    fn credit_map(&self) -> Vec<(Direction, Vec<u8>)> {
        self.core.credit_map()
    }

    fn audit_probe(&self, slab: &SlabView<'_>) -> noc_core::AuditProbe {
        self.core.audit_probe(slab)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrivals_match_quadrant_semantics() {
        // NE-destined flits move North (arriving on the South port) or
        // East (arriving on the West port).
        let a = arrivals_of(Quadrant::Ne);
        assert!(a.contains(&Direction::South));
        assert!(a.contains(&Direction::West));
        let a = arrivals_of(Quadrant::Sw);
        assert!(a.contains(&Direction::North));
        assert!(a.contains(&Direction::East));
    }

    #[test]
    fn each_mesh_link_exposes_two_vcs() {
        let cfg = RouterConfig::paper(RouterKind::PathSensitive, noc_core::RoutingKind::Xy);
        let r = PathSensitiveRouter::new(Coord::new(3, 3), cfg, MeshConfig::new(8, 8));
        for d in Direction::MESH {
            assert_eq!(r.vcs_on_link(d).len(), 2, "{d}");
        }
        assert_eq!(r.vcs_on_link(Direction::Local).len(), 4);
    }
}
