//! Shared router machinery: virtual-channel state machines, the
//! upstream view of downstream buffers, look-ahead routing + VA, switch
//! traversal, injection, and fault bookkeeping.
//!
//! The three router architectures (generic, Path-Sensitive, RoCo) are
//! thin wrappers around [`RouterCore`]: they define their VC layout and
//! their switch-allocation structure, and delegate the rest here. The
//! per-cycle contract follows the paper's two-stage pipeline: stage 1 =
//! buffer write + look-ahead RC + VA + (speculative) SA, stage 2 =
//! switch traversal, then one cycle of link propagation handled by the
//! network.

use noc_arbiter::RoundRobinArbiter;
use noc_core::{
    ActivityCounters, AuditProbe, Axis, ContentionCounters, Coord, CreditBook, Cycle, Direction,
    Flit, LatchedFlit, LinkMask, ModuleHealth, NodeStatus, PacketId, RouterConfig, RouterOutputs,
    SlabView, SlabWindow, StepContext, VcAudit, VcDescriptor, VcPhase, VcRequest, VcSnapshot,
    EJECT_VC,
};
use noc_routing::{quadrant_mask, DirSet, RouteComputer};

/// Allocation state of one virtual channel's resident packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VcState {
    /// No packet being processed.
    Idle,
    /// Head seen, but route computation is delayed one cycle (Double
    /// Routing penalty when the upstream RC unit is faulty, §4.1).
    RoutePending {
        /// Output at the next router, already computed.
        next_route: Direction,
        /// Cycle at which VA may begin.
        ready_at: Cycle,
    },
    /// Head waiting for a downstream virtual channel.
    WaitingVa {
        /// Output at the next router (look-ahead route).
        next_route: Direction,
    },
    /// Blocked at a fault: the route requires a dead node/module and
    /// this architecture has no graceful-discard handshake. The packet
    /// wedges, back-pressure builds around the fault (the "excessive
    /// congestion around the faulty nodes" of §5.4), and after
    /// [`RouterConfig::block_timeout`] cycles the router's watchdog
    /// discards it.
    Blocked {
        /// Cycle the packet wedged.
        since: Cycle,
    },
    /// Downstream VC allocated; flits stream through SA/ST.
    Active {
        /// Output port at this router.
        out: Direction,
        /// Downstream input-VC index (or [`EJECT_VC`]).
        dvc: u8,
        /// Output at the next router, stamped on departing flits.
        next_route: Direction,
        /// First cycle the head may bid for the switch. Equal to the
        /// VA-grant cycle under speculative SA (§3.1); one later in the
        /// non-speculative 3-stage ablation.
        sa_from: Cycle,
    },
}

/// Extra slab ring slots beyond a VC's nominal capacity: headroom for
/// poison tails, which may transiently exceed the credited capacity
/// (this is the `+2` credit slop the `VecDeque` implementation hid in
/// `Vc::with_capacity`).
pub const RING_SLOP: u32 = 2;

/// One virtual channel's state machine. The flit buffer itself lives in
/// the network-wide [`noc_core::FlitSlab`] (ISSUE 10): ring `vc_id` of
/// this router's [`SlabWindow`] holds the flits, fixed at
/// `nominal_capacity + RING_SLOP` slots for the router's lifetime.
#[derive(Debug, Clone)]
pub struct Vc {
    /// Static descriptor (admission rules, capacity).
    pub desc: VcDescriptor,
    /// Link this VC is fed from (`Local` for injection VCs).
    pub input_side: Direction,
    /// Index of this VC within its link's published list (credit id).
    pub link_index: u8,
    /// Architecture tag: crossbar input port (generic), path set
    /// (Path-Sensitive) or module-port (RoCo).
    pub group: u8,
    /// Packet-processing state.
    pub state: VcState,
    /// Discarding a dropped packet's remaining flits (§4.1: fragmented
    /// packets are discarded).
    pub dropping: bool,
    /// Taken out of service by a buffer fault (Virtual Queuing).
    pub disabled: bool,
    /// The fault-free buffer capacity this VC was built with; repair
    /// ([`RouterCore::clear_all_faults`]) restores `desc.capacity` to
    /// this value. The slab ring is sized from this, so a fault-time
    /// capacity shrink never moves buffered flits.
    pub nominal_capacity: u8,
    /// Flits written into this VC over the router's lifetime
    /// (per-class utilization statistics).
    pub writes: u64,
}

impl Vc {
    /// Creates an idle VC.
    pub fn new(desc: VcDescriptor, input_side: Direction, link_index: u8, group: u8) -> Self {
        Vc {
            desc,
            input_side,
            link_index,
            group,
            state: VcState::Idle,
            dropping: false,
            disabled: false,
            nominal_capacity: desc.capacity,
            writes: 0,
        }
    }

    /// Whether a new packet head may be injected/enqueued atomically.
    /// `empty` is this VC's slab-ring emptiness (the buffer state lives
    /// outside the struct).
    pub fn ready_for_new_packet(&self, empty: bool) -> bool {
        !self.disabled && self.state == VcState::Idle && empty && !self.dropping
    }
}

/// Upstream bookkeeping for one downstream input VC.
#[derive(Debug, Clone)]
pub struct OutputVcState {
    /// The downstream VC's descriptor.
    pub desc: VcDescriptor,
    /// Free buffer slots (credits).
    pub credits: u8,
    /// Whether the VC is free for allocation to a new packet.
    pub free: bool,
}

/// Upstream view of one output link.
#[derive(Debug, Clone)]
pub struct OutputPort {
    /// Downstream input VCs in link order.
    pub vcs: Vec<OutputVcState>,
}

impl OutputPort {
    fn new(descs: &[VcDescriptor]) -> Self {
        OutputPort {
            vcs: descs
                .iter()
                .map(|d| OutputVcState { desc: *d, credits: d.capacity, free: true })
                .collect(),
        }
    }

    /// Total free credits over VCs admissible for `req` — the
    /// backpressure congestion signal used by adaptive look-ahead
    /// selection.
    pub fn credit_score(&self, req: &VcRequest) -> i64 {
        self.vcs
            .iter()
            .filter(|v| v.desc.accepts(req))
            .map(|v| v.credits as i64 + v.free as i64)
            .sum()
    }
}

/// Clone-able ascending iterator over the set bits of a busy-VC mask
/// (see [`RouterCore::hot_open`]), for [`RouterCore::va_stage_ids`].
#[derive(Debug, Clone)]
pub struct BitIds(pub u64);

impl Iterator for BitIds {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.0 == 0 {
            return None;
        }
        let b = self.0.trailing_zeros() as usize;
        self.0 &= self.0 - 1;
        Some(b)
    }
}

/// A VA request: this VC wants that downstream VC.
#[derive(Debug, Clone, Copy)]
struct VaRequest {
    vc_id: usize,
    out: Direction,
    dvc: u8,
    next_route: Direction,
}

/// The shared state and pipeline of every router architecture.
#[derive(Debug)]
pub struct RouterCore {
    /// Mesh position.
    pub coord: Coord,
    /// Configuration.
    pub cfg: RouterConfig,
    /// Route computation (look-ahead).
    pub computer: RouteComputer,
    /// All virtual channels.
    pub vcs: Vec<Vc>,
    /// Per input side: internal VC ids visible on that link, in credit
    /// order. Index 4 (`Local`) lists the injection VCs.
    pub link_map: [Vec<usize>; 5],
    /// Cached descriptors per link (what `vcs_on_link` returns).
    pub link_descs: [Vec<VcDescriptor>; 5],
    /// Upstream view of each mesh output (None at mesh boundaries).
    pub outputs: [Option<OutputPort>; 4],
    /// Switch-traversal latch: SA winners of the previous cycle.
    pub st_latch: Vec<(Direction, u8, Flit)>,
    /// Early-ejected flits awaiting emission this cycle.
    pub pending_ejects: Vec<Flit>,
    /// Credits awaiting emission.
    pub pending_credits: Vec<(Direction, noc_core::Credit)>,
    /// Flits dropped by the fault logic awaiting emission.
    pub pending_drops: Vec<Flit>,
    /// Per-output, per-downstream-VC VA arbiters (second stage of Fig 2).
    va_arbs: [Vec<RoundRobinArbiter>; 4],
    /// Activity counters.
    pub counters: ActivityCounters,
    /// Contention counters (Fig 3).
    pub contention: ContentionCounters,
    /// Health of the Row (X) and Column (Y) modules. Generic and
    /// Path-Sensitive routers fail as a unit: both entries move together.
    pub module_health: [ModuleHealth; 2],
    /// Routing Computation unit health.
    pub rc_ok: bool,
    /// Per-module SA-offload degradation (RoCo SA fault, Fig 7).
    pub sa_degraded: [bool; 2],
    /// Injection binding: the VC currently receiving a packet from the PE.
    inj_vc: Option<usize>,
    /// Discarding the remainder of an unserviceable injected packet.
    inj_dropping: bool,
    /// The most recent cycle seen by `va_stage` (watchdog timestamps).
    last_cycle: Cycle,
    /// Reusable VA-request scratch (cleared every `va_stage` call).
    va_requests: Vec<VaRequest>,
    /// Reusable arbiter request-line scratch.
    va_lines: Vec<bool>,
    /// Persistent superset of the busy-VC bits (bit `v` set ⇒ VC `v`
    /// *may* be non-idle). [`RouterCore::hot_open`] scans only these
    /// bits and narrows the mask to the exact busy set; the only paths
    /// that can make a quiet VC busy between steps —
    /// [`RouterCore::deliver_flit`] and [`RouterCore::try_inject`] —
    /// re-set the bit. Cold reconfiguration paths widen it back to
    /// all-ones defensively. Meaningless (and harmless) when
    /// `vcs.len() > 64`, where the hot path is never taken.
    hot_mask: u64,
    /// Flits currently buffered across every VC ring, maintained
    /// incrementally on each push/pop (ISSUE 10): `occupancy`,
    /// `is_quiescent` and the per-cycle high-water probe read this
    /// instead of re-summing queue lengths.
    buffered: u32,
}

impl RouterCore {
    /// Builds a core from an architecture's VC layout.
    ///
    /// # Panics
    ///
    /// Panics if `link_map` references VC ids out of range or if a
    /// link's VCs are not tagged with that `input_side`.
    pub fn new(
        coord: Coord,
        cfg: RouterConfig,
        computer: RouteComputer,
        vcs: Vec<Vc>,
        link_map: [Vec<usize>; 5],
    ) -> Self {
        for (side, ids) in link_map.iter().enumerate() {
            for (li, &id) in ids.iter().enumerate() {
                assert!(id < vcs.len(), "link map references VC {id} out of range");
                assert_eq!(vcs[id].input_side, Direction::from_index(side));
                assert_eq!(vcs[id].link_index as usize, li, "link index mismatch");
            }
        }
        let link_descs = std::array::from_fn(|side| {
            link_map[side].iter().map(|&id| vcs[id].desc).collect::<Vec<_>>()
        });
        // Scratch vectors are recycled across cycles; pre-sizing them to
        // their worst-case per-cycle population keeps the steady-state
        // hot path allocation-free even when the first contested cycle
        // (or first drop, eject, ...) lands deep into a run.
        let n_vcs = vcs.len();
        RouterCore {
            coord,
            cfg,
            computer,
            vcs,
            link_map,
            link_descs,
            outputs: [None, None, None, None],
            st_latch: Vec::with_capacity(n_vcs),
            pending_ejects: Vec::with_capacity(n_vcs),
            pending_credits: Vec::with_capacity(n_vcs),
            pending_drops: Vec::with_capacity(n_vcs),
            va_arbs: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
            counters: ActivityCounters::new(),
            contention: ContentionCounters::new(),
            module_health: [ModuleHealth::Healthy; 2],
            rc_ok: true,
            sa_degraded: [false; 2],
            inj_vc: None,
            inj_dropping: false,
            last_cycle: 0,
            va_requests: Vec::with_capacity(n_vcs),
            va_lines: Vec::with_capacity(n_vcs),
            hot_mask: u64::MAX,
            buffered: 0,
        }
    }

    /// Fixed slab ring capacity of every VC, in VC-id order (see
    /// [`noc_core::RouterNode::ring_capacities`]): the nominal depth
    /// plus [`RING_SLOP`] headroom for poison tails. Fault
    /// reconfiguration shrinks only `desc.capacity`, never the ring.
    pub fn ring_capacities(&self) -> Vec<u32> {
        self.vcs.iter().map(|v| v.nominal_capacity as u32 + RING_SLOP).collect()
    }

    /// Pushes a flit into `vc_id`'s slab ring, tracking the incremental
    /// buffered-flit counter.
    #[inline]
    fn qpush(&mut self, slab: &mut SlabWindow<'_>, vc_id: usize, flit: Flit) {
        slab.push_back(vc_id, flit);
        self.buffered += 1;
    }

    /// Pops the front flit of `vc_id`'s slab ring, tracking the
    /// incremental buffered-flit counter.
    #[inline]
    fn qpop(&mut self, slab: &mut SlabWindow<'_>, vc_id: usize) -> Option<Flit> {
        let f = slab.pop_front(vc_id);
        if f.is_some() {
            self.buffered -= 1;
        }
        f
    }

    /// Wires this router's `dir` output to a neighbour's published VC
    /// list. Must be called after fault injection so faulted-out VCs
    /// are advertised with zero capacity.
    pub fn connect_output(&mut self, dir: Direction, descs: &[VcDescriptor]) {
        let n = self.vcs.len().max(1);
        self.va_arbs[dir.index()] = descs.iter().map(|_| RoundRobinArbiter::new(n)).collect();
        self.outputs[dir.index()] = Some(OutputPort::new(descs));
        self.hot_mask = u64::MAX;
    }

    /// Refreshes the published link descriptors (after fault injection).
    pub fn refresh_link_descs(&mut self) {
        for side in 0..5 {
            self.link_descs[side] =
                self.link_map[side].iter().map(|&id| self.vcs[id].desc).collect();
        }
        self.hot_mask = u64::MAX;
    }

    /// Current node status from the fault bookkeeping.
    pub fn status(&self) -> NodeStatus {
        NodeStatus { row: self.module_health[0], col: self.module_health[1], rc_ok: self.rc_ok }
    }

    /// Whether the whole node is off-line.
    pub fn node_dead(&self) -> bool {
        self.status().node_dead()
    }

    fn module_of(axis: Axis) -> usize {
        match axis {
            Axis::X => 0,
            Axis::Y => 1,
        }
    }

    /// Health index accessor for `axis` (0 = Row/X, 1 = Column/Y).
    pub fn module_health_mut(&mut self, axis: Axis) -> &mut ModuleHealth {
        &mut self.module_health[Self::module_of(axis)]
    }

    /// The VC descriptors visible on `side` (the `vcs_on_link` answer).
    pub fn link_descriptors(&self, side: Direction) -> &[VcDescriptor] {
        &self.link_descs[side.index()]
    }

    /// Accepts a flit from a link.
    pub fn deliver_flit(&mut self, slab: &mut SlabWindow<'_>, from: Direction, vc: u8, flit: Flit) {
        if self.node_dead() {
            self.pending_drops.push(flit);
            return;
        }
        if vc == EJECT_VC {
            // Early Ejection: straight off the input DEMUX to the PE.
            self.counters.early_ejections += 1;
            self.pending_ejects.push(flit);
            return;
        }
        let id = self.link_map[from.index()][vc as usize];
        if self.vcs[id].disabled {
            // Mid-run buffer fault: the upstream neighbour keeps
            // streaming until the §4.1 availability republication
            // reaches it; flits landing in the dead buffer are lost.
            // The credit still returns upstream so the sender's books
            // stay leak-free even when the fault heals before the
            // republication fires.
            self.send_credit(id, flit.kind.is_tail());
            self.pending_drops.push(flit);
            return;
        }
        let v = &self.vcs[id];
        if !flit.kind.is_head() && !v.dropping && slab.is_empty(id) && v.state == VcState::Idle {
            // Orphan continuation: the head was discarded while this VC
            // was disabled (a transient fault healing before the §4.1
            // republication reaches the sender). A live stream always
            // has its head buffered or an Active/Blocked state, so the
            // rest of the wormhole is discarded as it arrives.
            self.send_credit(id, flit.kind.is_tail());
            self.pending_drops.push(flit);
            return;
        }
        self.counters.buffer_writes += 1;
        self.vcs[id].writes += 1;
        self.qpush(slab, id, flit);
        self.mark_hot(id);
    }

    /// Accepts a credit for output `output`.
    pub fn deliver_credit(&mut self, output: Direction, credit: noc_core::Credit) {
        let port =
            self.outputs[output.index()].as_mut().expect("credit arrived on an unwired output");
        let vc = &mut port.vcs[credit.vc as usize];
        // Saturate instead of asserting: a mid-run capacity shrink
        // (buffer fault) can leave more credits in flight than the new
        // capacity; the §4.1 resynchronisation makes the clamp exact.
        vc.credits = (vc.credits + 1).min(vc.desc.capacity);
        // Note: `credit.vc_freed` is informational only; the VC was
        // already marked reallocatable when the tail was transmitted.
    }

    /// Tears down whatever packet occupies `vc_id` after a mid-run
    /// fault: releases the downstream VC it holds, closes an
    /// already-departed wormhole with a poison tail (see
    /// [`Flit::poison`]) and discards everything still buffered.
    /// `credit_upstream` selects whether the discarded flits return
    /// credits to the upstream neighbour — yes while that link stays
    /// alive, no when the link's bookkeeping is itself being rebuilt by
    /// the §4.1 status republication.
    fn abort_stream(&mut self, slab: &mut SlabWindow<'_>, vc_id: usize, credit_upstream: bool) {
        if let VcState::Active { out, dvc, next_route, .. } = self.vcs[vc_id].state {
            if dvc != EJECT_VC {
                let head_still_here = slab.front(vc_id).is_some_and(|f| f.kind.is_head());
                if head_still_here {
                    // Nothing was forwarded yet: just release the VC.
                    let port = self.outputs[out.index()].as_mut().expect("output wired");
                    port.vcs[dvc as usize].free = true;
                } else {
                    // The head already moved on: close the wormhole with
                    // a poison tail so every downstream hop releases its
                    // VC (§4.1: the fragment is discarded in flight).
                    let (packet, src, dst) = match slab.front(vc_id) {
                        Some(f) => (f.packet, f.src, f.dst),
                        None => (PacketId(u64::MAX), self.coord, self.coord),
                    };
                    let port = self.outputs[out.index()].as_mut().expect("output wired");
                    let d = &mut port.vcs[dvc as usize];
                    d.credits = d.credits.saturating_sub(1);
                    d.free = true;
                    let poison = Flit::poison_tail(packet, src, dst, next_route);
                    self.st_latch.push((out, dvc, poison));
                }
            }
        }
        while let Some(flit) = self.qpop(slab, vc_id) {
            if credit_upstream {
                self.send_credit(vc_id, flit.kind.is_tail());
            }
            self.pending_drops.push(flit);
        }
        self.vcs[vc_id].state = VcState::Idle;
        self.vcs[vc_id].dropping = false;
        if self.inj_vc == Some(vc_id) {
            // The PE is still streaming this packet in; discard the
            // remainder as it arrives.
            self.inj_vc = None;
            self.inj_dropping = true;
        }
    }

    /// Discards every resident packet that a freshly-injected fault
    /// made unserviceable: streams in disabled VCs and streams
    /// committed to an output this node can no longer drive (§4:
    /// packets fragmented by a fault are discarded, not repaired).
    /// Called by the network right after a mid-run `inject_fault` (and
    /// after a repair re-applies the remaining faults).
    pub fn purge_faulted(&mut self, slab: &mut SlabWindow<'_>) {
        self.hot_mask = u64::MAX;
        let own = self.status();
        for vc_id in 0..self.vcs.len() {
            let vc = &self.vcs[vc_id];
            if slab.is_empty(vc_id) && vc.state == VcState::Idle && !vc.dropping {
                continue;
            }
            let committed_out = match vc.state {
                VcState::Active { out, .. } => Some(out),
                _ => slab.front(vc_id).filter(|f| f.kind.is_head()).map(|f| f.next_out),
            };
            let dead_route =
                committed_out.is_some_and(|o| o != Direction::Local && !own.can_serve_output(o));
            if vc.disabled || dead_route {
                // Credits always flow upstream, dead buffer or not: the
                // upstream books must never leak a credit for a flit it
                // sent, and the §4.1 resynchronisation only reconciles
                // genuinely in-flight flits against the new capacity.
                self.abort_stream(slab, vc_id, true);
            }
        }
        if let Some(id) = self.inj_vc {
            if self.vcs[id].disabled {
                self.inj_vc = None;
                self.inj_dropping = true;
            }
        }
    }

    /// Repairs the router: restores every module, the RC unit, the SA
    /// arbiters and all VC buffers to their fault-free state, and
    /// republishes the link descriptors. In-flight state (queues,
    /// arbiter pointers, credits) is untouched — the network follows up
    /// with the §4.1 handshake so neighbours resynchronise.
    pub fn clear_all_faults(&mut self) {
        self.module_health = [ModuleHealth::Healthy; 2];
        self.rc_ok = true;
        self.sa_degraded = [false; 2];
        for vc in &mut self.vcs {
            vc.disabled = false;
            vc.desc.capacity = vc.nominal_capacity;
        }
        self.refresh_link_descs();
    }

    /// Resynchronises the upstream view of the `dir` output with the
    /// neighbour's republished VC descriptors (the §4.1 availability
    /// handshake, delivered `handshake_latency` cycles after the fault
    /// or repair). Credits are recomputed so that flits still counted
    /// as outstanding stay outstanding; streams holding a downstream VC
    /// that vanished are aborted.
    pub fn resync_output(
        &mut self,
        slab: &mut SlabWindow<'_>,
        dir: Direction,
        descs: &[VcDescriptor],
    ) {
        self.hot_mask = u64::MAX;
        let Some(port) = self.outputs[dir.index()].as_mut() else { return };
        debug_assert_eq!(port.vcs.len(), descs.len(), "link VC count is fixed at build time");
        for (v, d) in port.vcs.iter_mut().zip(descs.iter()) {
            let old_cap = v.desc.capacity;
            let outstanding = old_cap.saturating_sub(v.credits);
            v.desc = *d;
            v.credits = d.capacity.saturating_sub(outstanding);
            if d.capacity == 0 {
                v.free = false;
            } else if old_cap == 0 {
                v.free = true;
            }
        }
        for vc_id in 0..self.vcs.len() {
            if let VcState::Active { out, dvc, .. } = self.vcs[vc_id].state {
                if out == dir && dvc != EJECT_VC {
                    let gone = self.outputs[dir.index()]
                        .as_ref()
                        .map_or(true, |p| p.vcs[dvc as usize].desc.capacity == 0);
                    if gone {
                        self.abort_stream(slab, vc_id, true);
                    }
                }
            }
        }
    }

    /// Clears every stream arriving on the `from` link after it was
    /// re-established by a repair (§4.1 handshake): fragments a faulty
    /// upstream left behind are discarded so the rebuilt credit and VC
    /// bookkeeping starts from empty buffers.
    pub fn reset_input_link(&mut self, slab: &mut SlabWindow<'_>, from: Direction) {
        self.hot_mask = u64::MAX;
        for i in 0..self.link_map[from.index()].len() {
            let vc_id = self.link_map[from.index()][i];
            self.abort_stream(slab, vc_id, false);
        }
    }

    /// Flits currently buffered or latched (for drain detection).
    /// Pending drops count too: a flit discarded by the pipeline stays
    /// "in the system" until the next flush hands it to the network for
    /// drop accounting — otherwise a drop landing right as the network
    /// drains would end the run before it is ever recorded.
    pub fn occupancy(&self) -> usize {
        self.buffered as usize
            + self.st_latch.len()
            + self.pending_ejects.len()
            + self.pending_drops.len()
    }

    /// Whether a full `step` would change nothing but the clocked-cycle
    /// counter (see [`noc_core::RouterNode::is_quiescent`]): nothing
    /// buffered, latched or pending, every VC idle, and no packet
    /// mid-injection. A quiescent router's `va_stage` touches no VC,
    /// its SA sees no candidates (so every arbiter stays untouched and
    /// every effort counter stays zero), `probe_cycle` observes nothing,
    /// and no context RNG is consumed.
    pub fn is_quiescent(&self) -> bool {
        self.buffered == 0
            && self.st_latch.is_empty()
            && self.pending_ejects.is_empty()
            && self.pending_credits.is_empty()
            && self.pending_drops.is_empty()
            && !self.inj_dropping
            && self.inj_vc.is_none()
            && self.vcs.iter().all(|v| v.state == VcState::Idle && !v.dropping)
    }

    /// Accounts one clocked (but skipped) cycle: the leakage-energy
    /// bookkeeping that must stay bit-identical to a full `step` on a
    /// quiescent router.
    pub fn tick_idle(&mut self) {
        self.counters.cycles += 1;
    }

    /// Records that `vc_id` may now be busy (a flit entered its queue
    /// between steps), so the next [`RouterCore::hot_open`] scans it.
    #[inline]
    fn mark_hot(&mut self, vc_id: usize) {
        if vc_id < 64 {
            self.hot_mask |= 1u64 << vc_id;
        }
    }

    /// Whether an `Active` VC with flits to send is starved of credits
    /// on its downstream VC (ejection never starves: it needs no VC).
    /// `has_flits` is the VC's slab-ring non-emptiness.
    fn vc_credit_starved(&self, vc: &Vc, has_flits: bool) -> bool {
        match vc.state {
            VcState::Active { out, dvc, .. } if dvc != EJECT_VC && has_flits => {
                self.outputs[out.index()].as_ref().is_some_and(|p| p.vcs[dvc as usize].credits == 0)
            }
            _ => false,
        }
    }

    /// Per-cycle telemetry probe: tracks the buffer-occupancy high-water
    /// mark and counts cycles in which at least one VC is credit-starved.
    /// Called once per `step` by every router architecture. The
    /// high-water read is O(1) off the incremental counter (ISSUE 10);
    /// the starvation scan runs only while flits are buffered at all
    /// (an empty router cannot starve).
    pub fn probe_cycle(&mut self, slab: &SlabView<'_>) {
        let buffered = self.buffered as u64;
        if buffered > self.counters.occupancy_high_water {
            self.counters.occupancy_high_water = buffered;
        }
        if buffered != 0
            && self
                .vcs
                .iter()
                .enumerate()
                .any(|(i, vc)| self.vc_credit_starved(vc, !slab.is_empty(i)))
        {
            self.counters.credit_stall_cycles += 1;
        }
    }

    /// Fused start-of-step scan for the `Soa` kernel's hot path: one
    /// pass over the VCs that performs [`RouterCore::probe_cycle`]'s
    /// telemetry bit-identically *and* computes the busy-VC mask (bit
    /// `v` set ⇔ VC `v` is possibly non-idle: non-empty queue, non-Idle
    /// state, or mid-drop). Only valid when `vcs.len() <= 64`; callers
    /// fall back to the classic `step` otherwise.
    pub fn hot_open(&mut self, slab: &SlabView<'_>) -> u64 {
        debug_assert!(self.vcs.len() <= 64, "hot path requires <= 64 VCs");
        // `hot_mask` is a superset of the busy VCs (see its field doc),
        // so scanning only its bits is exact: a VC outside it is empty
        // and `Idle` and cannot be credit-starved (starvation requires
        // an `Active` state with a non-empty queue), so it contributes
        // nothing to any of the three outputs below.
        let all = if self.vcs.len() == 64 { u64::MAX } else { (1u64 << self.vcs.len()) - 1 };
        let mut bits = self.hot_mask & all;
        let mut busy = 0u64;
        let mut starved = false;
        while bits != 0 {
            let v = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let vc = &self.vcs[v];
            let qlen = slab.len(v);
            if qlen != 0 || vc.state != VcState::Idle || vc.dropping {
                busy |= 1u64 << v;
            }
            starved = starved || self.vc_credit_starved(vc, qlen != 0);
        }
        // VCs outside the hot mask are empty, so the incremental counter
        // equals the masked queue-length sum the scan used to compute.
        let buffered = self.buffered as u64;
        if buffered > self.counters.occupancy_high_water {
            self.counters.occupancy_high_water = buffered;
        }
        if starved {
            self.counters.credit_stall_cycles += 1;
        }
        // Narrow the persistent mask to the exact busy set: the step
        // about to run cannot make a quiet VC busy (the `va_stage_ids`
        // argument), and between steps `deliver_flit`/`try_inject`
        // re-widen it as flits arrive.
        self.hot_mask = busy;
        busy
    }

    /// Issues cache prefetches for the lines the next
    /// [`RouterCore::hot_open`] / `va_stage_ids` / SA sweep will touch:
    /// the possibly-busy `Vc` structs (via `hot_mask`), their queue
    /// head blocks, and the output-port credit arrays. Read-only; a
    /// no-op off x86_64. Called by the `Soa` kernel a few routers ahead
    /// of the serial step sweep so consecutive routers' cache misses
    /// overlap instead of serialising.
    pub fn warm_hot(&self, slab: &SlabView<'_>) {
        #[cfg(not(target_arch = "x86_64"))]
        let _ = slab;
        #[cfg(target_arch = "x86_64")]
        {
            use std::arch::x86_64::{_mm_prefetch, _MM_HINT_T0};
            let len = self.vcs.len();
            if len > 64 {
                return;
            }
            let all = if len == 64 { u64::MAX } else { (1u64 << len) - 1 };
            let vc_lines = std::mem::size_of::<Vc>().div_ceil(64);
            let mut bits = self.hot_mask & all;
            while bits != 0 {
                let v = bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let vc = &self.vcs[v];
                let p = (vc as *const Vc).cast::<i8>();
                for line in 0..vc_lines {
                    // SAFETY: prefetch has no memory effects; the
                    // address stays within (or one line past) the
                    // live `Vc` allocation.
                    unsafe { _mm_prefetch(p.add(line * 64), _MM_HINT_T0) };
                }
                // The ring's front slot address is valid even when the
                // ring is empty (the slot exists, just unoccupied).
                unsafe { _mm_prefetch(slab.front_ptr(v).cast::<i8>(), _MM_HINT_T0) };
            }
            for port in self.outputs.iter().flatten() {
                unsafe { _mm_prefetch(port.vcs.as_ptr().cast::<i8>(), _MM_HINT_T0) };
            }
            // Emission scratch the step writes into (`flush`,
            // `apply_grant`, `send_credit`).
            unsafe {
                _mm_prefetch(self.st_latch.as_ptr().cast::<i8>(), _MM_HINT_T0);
                _mm_prefetch(self.pending_credits.as_ptr().cast::<i8>(), _MM_HINT_T0);
            }
        }
    }

    /// Fused end-of-step scan over the `busy`-mask VCs only: returns
    /// `(occupancy, quiescent)` exactly as [`RouterCore::occupancy`] /
    /// [`RouterCore::is_quiescent`] would. Sound for the same reason as
    /// [`RouterCore::va_stage_ids`]: VCs outside the start-of-step mask
    /// are empty and `Idle` and cannot change during the step, so they
    /// contribute zero occupancy and never break quiescence.
    pub fn hot_close(&self, busy: u64) -> (usize, bool) {
        // Queue emptiness is covered by the incremental counter (VCs
        // outside the mask hold nothing); the scan only needs the
        // per-VC state machines, so the slab is not touched at all.
        let mut vcs_quiet = self.buffered == 0;
        let mut bits = busy;
        while vcs_quiet && bits != 0 {
            let v = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            let vc = &self.vcs[v];
            vcs_quiet = vc.state == VcState::Idle && !vc.dropping;
        }
        let occupancy = self.buffered as usize
            + self.st_latch.len()
            + self.pending_ejects.len()
            + self.pending_drops.len();
        let quiescent = vcs_quiet
            && self.st_latch.is_empty()
            && self.pending_ejects.is_empty()
            && self.pending_credits.is_empty()
            && self.pending_drops.is_empty()
            && !self.inj_dropping
            && self.inj_vc.is_none();
        (occupancy, quiescent)
    }

    /// Point-in-time snapshots of every input VC (see
    /// [`noc_core::RouterNode::vc_snapshots`]).
    pub fn vc_snapshots(&self, slab: &SlabView<'_>) -> Vec<VcSnapshot> {
        self.vcs
            .iter()
            .enumerate()
            .map(|(i, vc)| {
                let (phase, out, downstream_vc, blocked_since) = match vc.state {
                    VcState::Idle => {
                        let phase = if slab.is_empty(i) { VcPhase::Idle } else { VcPhase::Routing };
                        (phase, None, None, None)
                    }
                    VcState::RoutePending { .. } => (VcPhase::Routing, None, None, None),
                    VcState::WaitingVa { .. } => {
                        (VcPhase::WaitingVa, slab.front(i).map(|f| f.next_out), None, None)
                    }
                    VcState::Blocked { since } => (VcPhase::Blocked, None, None, Some(since)),
                    VcState::Active { out, dvc, .. } => {
                        (VcPhase::Active, Some(out), Some(dvc), None)
                    }
                };
                VcSnapshot {
                    input_side: vc.input_side,
                    link_index: vc.link_index,
                    buffered: slab.len(i),
                    head_packet: slab.front(i).map(|f| f.packet),
                    head_dst: slab.front(i).map(|f| f.dst),
                    phase,
                    out,
                    downstream_vc,
                    credit_starved: self.vc_credit_starved(vc, !slab.is_empty(i)),
                    blocked_since,
                    dropping: vc.dropping,
                    disabled: vc.disabled,
                }
            })
            .collect()
    }

    /// A complete audit snapshot of the shared engine's flow-control
    /// state (see [`noc_core::RouterNode::audit_probe`]).
    pub fn audit_probe(&self, slab: &SlabView<'_>) -> AuditProbe {
        let vcs = self
            .vcs
            .iter()
            .enumerate()
            .map(|(i, vc)| {
                let (phase, active_out, active_dvc) = match vc.state {
                    VcState::Idle => {
                        let phase = if slab.is_empty(i) { VcPhase::Idle } else { VcPhase::Routing };
                        (phase, None, None)
                    }
                    VcState::RoutePending { .. } => (VcPhase::Routing, None, None),
                    VcState::WaitingVa { .. } => (VcPhase::WaitingVa, None, None),
                    VcState::Blocked { .. } => (VcPhase::Blocked, None, None),
                    VcState::Active { out, dvc, .. } => (VcPhase::Active, Some(out), Some(dvc)),
                };
                VcAudit {
                    input_side: vc.input_side,
                    link_index: vc.link_index,
                    queue_len: slab.len(i),
                    poison_queued: slab.iter(i).filter(|f| f.poison).count(),
                    head_is_head_kind: slab.front(i).map(|f| f.kind.is_head()),
                    capacity: vc.desc.capacity,
                    nominal_capacity: vc.nominal_capacity,
                    disabled: vc.disabled,
                    dropping: vc.dropping,
                    phase,
                    active_out,
                    active_dvc,
                }
            })
            .collect();
        let outputs = std::array::from_fn(|d| {
            self.outputs[d]
                .as_ref()
                .map(|p| {
                    p.vcs
                        .iter()
                        .map(|v| CreditBook {
                            credits: v.credits,
                            capacity: v.desc.capacity,
                            free: v.free,
                        })
                        .collect()
                })
                .unwrap_or_default()
        });
        let latched = self
            .st_latch
            .iter()
            .map(|(out, dvc, f)| LatchedFlit {
                out: *out,
                dvc: *dvc,
                packet: f.packet.0,
                is_tail: f.kind.is_tail(),
                poison: f.poison,
            })
            .collect();
        let pending_credits = self.pending_credits.iter().map(|&(side, c)| (side, c.vc)).collect();
        let rings_coherent = (0..self.vcs.len())
            .all(|i| slab.head(i) < slab.ring_cap(i) && slab.len(i) <= slab.ring_cap(i) as usize);
        AuditProbe {
            vcs,
            outputs,
            latched,
            pending_credits,
            pending_ejects: self.pending_ejects.len(),
            pending_drops: self.pending_drops.len(),
            buffered_total: self.buffered as usize,
            rings_coherent,
        }
    }

    /// Remaining credits per downstream VC on each wired mesh output
    /// (see [`noc_core::RouterNode::credit_map`]).
    pub fn credit_map(&self) -> Vec<(Direction, Vec<u8>)> {
        Direction::MESH
            .iter()
            .filter_map(|&dir| {
                self.outputs[dir.index()]
                    .as_ref()
                    .map(|p| (dir, p.vcs.iter().map(|v| v.credits).collect()))
            })
            .collect()
    }

    /// Emits everything that leaves the router this cycle: last cycle's
    /// ST winners, early ejections, credits and drops.
    pub fn flush(&mut self, out: &mut RouterOutputs) {
        for (dir, dvc, flit) in self.st_latch.drain(..) {
            if dir == Direction::Local {
                out.ejected.push(flit);
            } else {
                self.counters.link_traversals += 1;
                out.flits.push((dir, dvc, flit));
            }
        }
        out.ejected.append(&mut self.pending_ejects);
        out.credits.append(&mut self.pending_credits);
        out.dropped.append(&mut self.pending_drops);
    }

    /// Sends the credit for a flit leaving `vc_id`'s buffer.
    fn send_credit(&mut self, vc_id: usize, is_tail: bool) {
        let vc = &self.vcs[vc_id];
        if vc.input_side != Direction::Local {
            self.pending_credits
                .push((vc.input_side, noc_core::Credit { vc: vc.link_index, vc_freed: is_tail }));
        }
    }

    /// Reaction to an unserviceable head: the RoCo router's fault
    /// handshake discards it gracefully (§4.1: fragmented packets are
    /// discarded); the baselines have no such mechanism, so the packet
    /// blocks forever and congests the region around the fault.
    fn drop_or_block(&mut self, slab: &mut SlabWindow<'_>, vc_id: usize) {
        if self.cfg.router == noc_core::RouterKind::RoCo {
            self.start_drop(slab, vc_id);
        } else {
            self.counters.blocked_packets += 1;
            self.vcs[vc_id].state = VcState::Blocked { since: self.last_cycle };
        }
    }

    /// Starts discarding the packet at the head of `vc_id` (fault drop).
    fn start_drop(&mut self, slab: &mut SlabWindow<'_>, vc_id: usize) {
        let head = self.qpop(slab, vc_id).expect("drop requires a head");
        let is_tail = head.kind.is_tail();
        self.send_credit(vc_id, is_tail);
        self.pending_drops.push(head);
        self.vcs[vc_id].state = VcState::Idle;
        if !is_tail {
            self.vcs[vc_id].dropping = true;
            self.drain_dropping(slab, vc_id);
        }
    }

    /// Discards already-buffered flits of a dropping packet.
    fn drain_dropping(&mut self, slab: &mut SlabWindow<'_>, vc_id: usize) {
        while self.vcs[vc_id].dropping {
            let Some(flit) = self.qpop(slab, vc_id) else { break };
            let is_tail = flit.kind.is_tail();
            self.send_credit(vc_id, is_tail);
            self.pending_drops.push(flit);
            if is_tail {
                self.vcs[vc_id].dropping = false;
            }
        }
    }

    /// The look-ahead routing + virtual-channel allocation stage.
    /// Returns per-axis VA activity (used by the SA-offload fault model).
    pub fn va_stage(&mut self, ctx: &mut StepContext<'_>, slab: &mut SlabWindow<'_>) -> [bool; 2] {
        self.va_stage_ids(ctx, slab, 0..self.vcs.len())
    }

    /// [`RouterCore::va_stage`] over an explicit VC id set. The classic
    /// step passes `0..vcs.len()`; the `Soa` hot path passes a
    /// [`BitIds`] over the [`RouterCore::hot_open`] busy mask. Sound
    /// because a VC outside the start-of-step mask is empty and `Idle`
    /// and stays so for the whole step (flits only enter VC queues via
    /// `deliver_flit`/`try_inject`, which run between steps), so every
    /// skipped id would fail each sub-pass's guards without any side
    /// effect — including RNG draws and counter bumps.
    pub fn va_stage_ids<I>(
        &mut self,
        ctx: &mut StepContext<'_>,
        slab: &mut SlabWindow<'_>,
        ids: I,
    ) -> [bool; 2]
    where
        I: Iterator<Item = usize> + Clone,
    {
        self.last_cycle = ctx.cycle;
        let mut va_activity = [false; 2];
        // Sub-pass 1: drain dropping packets, release RoutePending
        // holds whose extra cycle elapsed, and fire the watchdog on
        // fault-blocked packets that have wedged long enough.
        for vc_id in ids.clone() {
            if self.vcs[vc_id].dropping {
                self.drain_dropping(slab, vc_id);
            }
            if let VcState::RoutePending { next_route, ready_at } = self.vcs[vc_id].state {
                if ctx.cycle >= ready_at {
                    self.vcs[vc_id].state = VcState::WaitingVa { next_route };
                }
            }
            if let VcState::Blocked { since } = self.vcs[vc_id].state {
                if ctx.cycle.saturating_sub(since) >= self.cfg.block_timeout
                    && !slab.is_empty(vc_id)
                {
                    self.start_drop(slab, vc_id);
                }
            }
        }
        // Sub-pass 2: heads newly at the front compute their look-ahead
        // route (or get dropped if a fault makes them unserviceable).
        for vc_id in ids.clone() {
            if self.vcs[vc_id].state != VcState::Idle || self.vcs[vc_id].dropping {
                continue;
            }
            let Some(&head) = slab.front(vc_id) else { continue };
            if !head.kind.is_head() {
                // Stray body flit without a head: only possible for a
                // packet whose head was dropped — keep draining.
                self.vcs[vc_id].dropping = true;
                self.drain_dropping(slab, vc_id);
                continue;
            }
            self.route_head(slab, vc_id, head, ctx);
        }
        // Sub-pass 3: collect VA requests (reusing the scratch buffer —
        // the steady-state path allocates nothing).
        let mut requests = std::mem::take(&mut self.va_requests);
        requests.clear();
        for vc_id in ids {
            let VcState::WaitingVa { next_route } = self.vcs[vc_id].state else { continue };
            let Some(&head) = slab.front(vc_id) else { continue };
            let out = head.next_out;
            if out != Direction::Local {
                let bstat = ctx.neighbor_status(out).unwrap_or_default();
                // Under fault-aware routing the link mask also vetoes a
                // committed onward route whose downstream link went
                // unusable (e.g. the next-next node died) after the
                // look-ahead computed it.
                let masked_off = ctx.mask.is_some_and(|m| {
                    next_route != Direction::Local
                        && self
                            .computer
                            .neighbor(self.coord, out)
                            .is_some_and(|b| !m.usable(b, next_route))
                });
                if bstat.node_dead() || !bstat.can_serve_output(next_route) || masked_off {
                    // The committed next hop lost serviceability after
                    // this route was computed (mid-run fault): re-route
                    // from scratch or discard.
                    self.vcs[vc_id].state = VcState::Idle;
                    self.reroute_or_fail(slab, vc_id, head, ctx);
                    continue;
                }
            }
            if next_route == Direction::Local && !self.downstream_eject_needs_vc() {
                // Early Ejection downstream: no VC needed (§3.1).
                let sa_from = self.sa_from(ctx.cycle);
                self.vcs[vc_id].state = VcState::Active { out, dvc: EJECT_VC, next_route, sa_from };
                if let Some(a) = out.axis() {
                    va_activity[Self::module_of(a)] = true;
                }
                continue;
            }
            self.counters.va_local_arbs += 1;
            let b =
                self.computer.neighbor(self.coord, out).expect("minimal routes stay in the mesh");
            let req = VcRequest {
                in_dir: out.opposite(),
                out_dir: next_route,
                order: head.order,
                quadrant_mask: quadrant_mask(b, head.dst),
                dateline: self.computer.vc_dateline(head.src, head.dst, b, out.opposite()),
            };
            let port = self.outputs[out.index()].as_ref().expect("output wired");
            if let Some(dvc) =
                port.vcs.iter().position(|v| v.free && v.desc.capacity > 0 && v.desc.accepts(&req))
            {
                requests.push(VaRequest { vc_id, out, dvc: dvc as u8, next_route });
            } else {
                // No admissible downstream VC is free this cycle.
                self.counters.va_failures += 1;
                if matches!(
                    self.computer.routing(),
                    noc_core::RoutingKind::Adaptive | noc_core::RoutingKind::AdaptiveOddEven
                ) {
                    // Adaptive re-selection: no admissible VC is available
                    // for the committed candidate this cycle, so return to
                    // routing and let the next cycle's look-ahead pick the
                    // currently least-congested legal direction instead.
                    // (Deterministic algorithms have a single legal route;
                    // recomputing it would change nothing.)
                    self.vcs[vc_id].state = VcState::Idle;
                }
            }
        }
        // Sub-pass 4: arbitrate per contested downstream VC and grant.
        // Unstable sort: never allocates, and within-group order is
        // immaterial (the winner is picked by vc_id via the arbiter).
        requests.sort_unstable_by_key(|r| (r.out.index(), r.dvc));
        let mut lines = std::mem::take(&mut self.va_lines);
        let mut i = 0;
        while i < requests.len() {
            let j = (i..requests.len())
                .take_while(|&k| {
                    requests[k].out == requests[i].out && requests[k].dvc == requests[i].dvc
                })
                .last()
                .unwrap()
                + 1;
            let group = &requests[i..j];
            self.counters.va_global_arbs += 1;
            // Every requester but the winner fails this cycle.
            self.counters.va_failures += group.len() as u64 - 1;
            let winner = if group.len() == 1 {
                group[0]
            } else {
                lines.clear();
                lines.resize(self.vcs.len(), false);
                for r in group {
                    lines[r.vc_id] = true;
                }
                let arb = &mut self.va_arbs[group[0].out.index()][group[0].dvc as usize];
                let w = arb.arbitrate(&lines).expect("at least one requester");
                *group.iter().find(|r| r.vc_id == w).expect("winner requested")
            };
            let port = self.outputs[winner.out.index()].as_mut().expect("output wired");
            port.vcs[winner.dvc as usize].free = false;
            self.vcs[winner.vc_id].state = VcState::Active {
                out: winner.out,
                dvc: winner.dvc,
                next_route: winner.next_route,
                sa_from: self.sa_from(ctx.cycle),
            };
            if let Some(a) = winner.out.axis() {
                va_activity[Self::module_of(a)] = true;
            }
            i = j;
        }
        self.va_lines = lines;
        self.va_requests = requests;
        va_activity
    }

    /// Whether flits addressed to the downstream PE must still be
    /// allocated a VC there (true for the generic router, which lacks
    /// Early Ejection).
    fn downstream_eject_needs_vc(&self) -> bool {
        self.cfg.router == noc_core::RouterKind::Generic
    }

    /// Last-resort reaction when the head's committed output leads into
    /// a fault: try to re-route it out of a *different* output of this
    /// router, and otherwise drop (RoCo) or block (baselines).
    ///
    /// Re-routing in place is only physically possible when the flit
    /// sits in a direction-agnostic buffer — the generic router's
    /// `Any`-admission VCs or a Path-Sensitive path set (whose two
    /// outputs cover every minimal candidate) — and only adaptive
    /// routing offers an alternative minimal direction at all. The RoCo
    /// router's Guided Flit Queuing pins a flit to one module, so it
    /// relies on its §4.1 handshake to discard the packet gracefully
    /// upstream instead.
    /// Candidate outputs at `cur`, fault-aware when the step context
    /// carries a link mask (ISSUE 8): masked candidates exclude links
    /// the published statuses declare unusable and may substitute the
    /// west-first escape set. Without a mask this is byte-identical to
    /// the plain candidate computation.
    fn route_candidates(
        &self,
        src: Coord,
        cur: Coord,
        dst: Coord,
        order: noc_core::AxisOrder,
        arrival: Direction,
        mask: Option<&LinkMask>,
    ) -> DirSet {
        match mask {
            Some(m) => self.computer.masked_candidates(src, cur, dst, order, arrival, m),
            None => self.computer.candidates(src, cur, dst, order),
        }
    }

    fn reroute_or_fail(
        &mut self,
        slab: &mut SlabWindow<'_>,
        vc_id: usize,
        head: Flit,
        ctx: &mut StepContext<'_>,
    ) {
        let adaptive = matches!(
            self.computer.routing(),
            noc_core::RoutingKind::Adaptive | noc_core::RoutingKind::AdaptiveOddEven
        );
        if adaptive && self.cfg.router != noc_core::RouterKind::RoCo {
            let arrival = self.vcs[vc_id].input_side;
            let mut cands = self
                .route_candidates(head.src, self.coord, head.dst, head.order, arrival, ctx.mask);
            // A usable alternative output: not the committed one, its
            // next hop is alive, and the packet remains serviceable one
            // hop further (either it ends there or some minimal
            // candidate survives that node's module health).
            cands.retain(|d| {
                if d == head.next_out {
                    return false;
                }
                let Some(c) = self.computer.neighbor(self.coord, d) else {
                    return false;
                };
                let Some(cstat) = ctx.neighbor_status(d) else { return false };
                if cstat.node_dead() {
                    return false;
                }
                if c == head.dst {
                    return cstat.can_serve_output(Direction::Local);
                }
                let mut onward = self.route_candidates(
                    head.src,
                    c,
                    head.dst,
                    head.order,
                    d.opposite(),
                    ctx.mask,
                );
                onward.retain(|o| cstat.can_serve_output(o));
                !onward.is_empty()
            });
            let new_out = cands.iter().next();
            if let Some(new_out) = new_out {
                self.counters.rc_computations += 1;
                if let Some(front) = slab.front_mut(vc_id) {
                    front.next_out = new_out;
                }
                // Re-processed (with the new output) next cycle.
                return;
            }
        }
        self.drop_or_block(slab, vc_id);
    }

    /// Computes the look-ahead route for the head of `vc_id` (Fig 1b's
    /// Routing Logic), dropping the packet when faults make every
    /// candidate unserviceable.
    fn route_head(
        &mut self,
        slab: &mut SlabWindow<'_>,
        vc_id: usize,
        head: Flit,
        ctx: &mut StepContext<'_>,
    ) {
        let out = head.next_out;
        if out == Direction::Local {
            // Generic router: eject through the crossbar's PE column.
            let sa_from = self.sa_from(ctx.cycle);
            self.vcs[vc_id].state =
                VcState::Active { out, dvc: EJECT_VC, next_route: Direction::Local, sa_from };
            return;
        }
        if !self.status().can_serve_output(out) {
            // The committed output's own module died after this route
            // was stamped one hop upstream (mid-run fault): there is no
            // crossbar lane left to reach it.
            self.reroute_or_fail(slab, vc_id, head, ctx);
            return;
        }
        let Some(b) = self.computer.neighbor(self.coord, out) else {
            // A route can only point off-mesh after corruption; drop.
            self.start_drop(slab, vc_id);
            return;
        };
        let bstat = ctx.neighbor_status(out).unwrap_or_default();
        if bstat.node_dead() {
            self.reroute_or_fail(slab, vc_id, head, ctx);
            return;
        }
        self.counters.rc_computations += 1;
        let next_route = if b == head.dst {
            Direction::Local
        } else {
            let mut cands =
                self.route_candidates(head.src, b, head.dst, head.order, out.opposite(), ctx.mask);
            cands.retain(|d| bstat.can_serve_output(d));
            if cands.is_empty() {
                self.reroute_or_fail(slab, vc_id, head, ctx);
                return;
            }
            let port = self.outputs[out.index()].as_ref().expect("output wired");
            let in_dir = out.opposite();
            let quadrant_mask = quadrant_mask(b, head.dst);
            // Adaptive look-ahead selection: prefer the candidate whose
            // admissible downstream buffers hold the most credits (the
            // backpressure congestion signal); break ties randomly. A
            // minimal route has at most two candidates, so fixed arrays
            // suffice (no heap).
            let mut scored = [(0i64, Direction::Local); 2];
            let mut n = 0;
            let dateline = self.computer.vc_dateline(head.src, head.dst, b, in_dir);
            for d in cands.iter() {
                let req =
                    VcRequest { in_dir, out_dir: d, order: head.order, quadrant_mask, dateline };
                scored[n] = (port.credit_score(&req), d);
                n += 1;
            }
            let best = scored[..n].iter().map(|&(s, _)| s).max().expect("non-empty");
            let mut tied = [Direction::Local; 2];
            let mut t = 0;
            for &(s, d) in &scored[..n] {
                if s == best {
                    tied[t] = d;
                    t += 1;
                }
            }
            tied[rand::Rng::gen_range(&mut *ctx.rng, 0..t)]
        };
        self.vcs[vc_id].state = if self.rc_ok {
            VcState::WaitingVa { next_route }
        } else {
            // RC fault: Double Routing adds one cycle (§4.1, Fig 5).
            VcState::RoutePending { next_route, ready_at: ctx.cycle + 1 }
        };
    }

    /// First cycle a freshly-VA'd head may bid for the switch.
    fn sa_from(&self, cycle: Cycle) -> Cycle {
        if self.cfg.speculative_sa {
            cycle
        } else {
            cycle + 1
        }
    }

    /// Whether `vc_id` may bid for the crossbar this cycle, and the
    /// output it wants.
    pub fn sa_candidate(&self, slab: &SlabView<'_>, vc_id: usize) -> Option<Direction> {
        let vc = &self.vcs[vc_id];
        let VcState::Active { out, dvc, sa_from, .. } = vc.state else { return None };
        if slab.is_empty(vc_id) || vc.disabled || self.last_cycle < sa_from {
            return None;
        }
        if dvc != EJECT_VC {
            let port = self.outputs[out.index()].as_ref()?;
            if port.vcs[dvc as usize].credits == 0 {
                return None;
            }
        }
        Some(out)
    }

    /// Applies an SA grant to `vc_id`: reads the flit out of the buffer,
    /// pushes it through the crossbar into the ST latch, sends the
    /// credit upstream and updates the downstream VC state. Returns
    /// `true` when a tail departure made a downstream VC reallocatable
    /// (so the router can run a further VA iteration this cycle —
    /// "multiple iterative arbitrations", §3.1).
    pub fn apply_grant(&mut self, slab: &mut SlabWindow<'_>, vc_id: usize) -> bool {
        let VcState::Active { out, dvc, next_route, .. } = self.vcs[vc_id].state else {
            panic!("SA grant for a VC without an active packet");
        };
        let mut flit = self.qpop(slab, vc_id).expect("SA grant on empty VC");
        self.counters.buffer_reads += 1;
        self.counters.crossbar_traversals += 1;
        let is_tail = flit.kind.is_tail();
        self.send_credit(vc_id, is_tail);
        if dvc != EJECT_VC {
            let port = self.outputs[out.index()].as_mut().expect("output wired");
            let d = &mut port.vcs[dvc as usize];
            debug_assert!(d.credits > 0, "SA granted without credit");
            d.credits -= 1;
            if is_tail {
                // Canonical VC reuse: the downstream VC is reallocatable
                // as soon as the previous packet's tail has been sent
                // into it; successor flits queue behind it in FIFO order.
                d.free = true;
            }
        }
        flit.next_out = next_route;
        self.st_latch.push((out, dvc, flit));
        if is_tail {
            self.vcs[vc_id].state = VcState::Idle;
            return dvc != EJECT_VC;
        }
        false
    }

    /// Shared injection implementation (see [`noc_core::RouterNode::try_inject`]).
    ///
    /// Packets whose every first hop is unserviceable because of faults
    /// are accepted and immediately discarded (they count as injected
    /// but lost — §4.1's discard semantics), flagged via `inj_dropping`.
    pub fn try_inject(
        &mut self,
        slab: &mut SlabWindow<'_>,
        mut flit: Flit,
        ctx: &mut StepContext<'_>,
    ) -> bool {
        if self.node_dead() {
            return false;
        }
        if flit.kind.is_head() {
            if self.inj_vc.is_some() || self.inj_dropping {
                return false; // previous packet still streaming in
            }
            let own = self.status();
            let mut cands = self.route_candidates(
                flit.src,
                self.coord,
                flit.dst,
                flit.order,
                Direction::Local,
                ctx.mask,
            );
            cands.retain(|d| own.can_serve_output(d));
            if cands.is_empty() {
                // Every productive first hop needs a dead module: the
                // packet can never leave this node. RoCo's handshake
                // discards it; this only arises on a partially-dead
                // node, which only RoCo can be.
                flit.injected_at = ctx.cycle;
                self.pending_drops.push(flit);
                self.inj_dropping = !flit.kind.is_tail();
                return true;
            }
            // Among serviceable first hops, prefer one with a free
            // admissible injection VC; tie-break by downstream credit.
            let quadrant_mask = quadrant_mask(self.coord, flit.dst);
            let mut best: Option<(i64, Direction, usize)> = None;
            for d in cands.iter() {
                let req = VcRequest {
                    in_dir: Direction::Local,
                    out_dir: d,
                    order: flit.order,
                    quadrant_mask,
                    dateline: false,
                };
                let Some(vc_id) =
                    self.link_map[Direction::Local.index()].iter().copied().find(|&id| {
                        self.vcs[id].ready_for_new_packet(slab.is_empty(id))
                            && self.vcs[id].desc.accepts(&req)
                    })
                else {
                    continue;
                };
                let downstream_dateline = self.computer.neighbor(self.coord, d).is_some_and(|b| {
                    self.computer.vc_dateline(flit.src, flit.dst, b, d.opposite())
                });
                let score = self.outputs[d.index()].as_ref().map_or(0, |p| {
                    p.credit_score(&VcRequest {
                        in_dir: d.opposite(),
                        dateline: downstream_dateline,
                        ..req
                    })
                });
                if best.map_or(true, |(s, _, _)| score > s) {
                    best = Some((score, d, vc_id));
                }
            }
            let Some((_, out, vc_id)) = best else { return false };
            self.counters.rc_computations += 1;
            flit.next_out = out;
            flit.injected_at = ctx.cycle;
            self.counters.buffer_writes += 1;
            self.vcs[vc_id].writes += 1;
            self.qpush(slab, vc_id, flit);
            self.mark_hot(vc_id);
            self.inj_vc = Some(vc_id);
            if flit.kind.is_tail() {
                self.inj_vc = None;
            }
            true
        } else {
            if self.inj_dropping {
                self.pending_drops.push(flit);
                if flit.kind.is_tail() {
                    self.inj_dropping = false;
                }
                return true;
            }
            let Some(vc_id) = self.inj_vc else { return false };
            if slab.len(vc_id) >= self.vcs[vc_id].desc.capacity as usize {
                return false;
            }
            flit.injected_at = ctx.cycle;
            self.counters.buffer_writes += 1;
            self.vcs[vc_id].writes += 1;
            self.qpush(slab, vc_id, flit);
            self.mark_hot(vc_id);
            if flit.kind.is_tail() {
                self.inj_vc = None;
            }
            true
        }
    }

    /// Records an SA contention observation: a crossbar input with at
    /// least one eligible request for an output on `axis` either won
    /// (`granted`) or was blocked.
    pub fn record_contention(&mut self, axis: Axis, granted: bool) {
        match axis {
            Axis::X => {
                self.contention.x_requests += 1;
                if !granted {
                    self.contention.x_blocked += 1;
                }
            }
            Axis::Y => {
                self.contention.y_requests += 1;
                if !granted {
                    self.contention.y_blocked += 1;
                }
            }
        }
    }
}
