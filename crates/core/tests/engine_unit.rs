//! White-box tests of the shared `RouterCore` engine through its public
//! surface: VC bookkeeping, credit flow, injection admission and
//! switch-eligibility rules.

use noc_core::{
    AxisOrder, Coord, Credit, Direction, Flit, FlitSlab, MeshConfig, PacketId, RouterConfig,
    RouterKind, RoutingKind, StepContext, VcAdmission, VcDescriptor,
};
use noc_router::{RouterCore, Vc, VcState};
use noc_routing::RouteComputer;
use rand::rngs::SmallRng;
use rand::SeedableRng;

fn mesh() -> MeshConfig {
    MeshConfig::new(4, 4)
}

/// A tiny single-VC core at (1,1): one network VC on the West link and
/// one injection VC, with the East output wired to a 2-VC downstream.
fn tiny_core() -> RouterCore {
    let cfg = RouterConfig::paper(RouterKind::Generic, RoutingKind::Xy);
    let computer = RouteComputer::new(RoutingKind::Xy, mesh());
    let vcs = vec![
        Vc::new(
            VcDescriptor::new(VcAdmission::Any, 4).with_arrival(Direction::West),
            Direction::West,
            0,
            0,
        ),
        Vc::new(
            VcDescriptor::new(VcAdmission::Any, 4).with_arrival(Direction::Local),
            Direction::Local,
            0,
            0,
        ),
    ];
    let mut link_map: [Vec<usize>; 5] = Default::default();
    link_map[Direction::West.index()].push(0);
    link_map[Direction::Local.index()].push(1);
    let mut core = RouterCore::new(Coord::new(1, 1), cfg, computer, vcs, link_map);
    let downstream = vec![VcDescriptor::new(VcAdmission::Any, 4); 2];
    for d in Direction::MESH {
        core.connect_output(d, &downstream);
    }
    core
}

/// A one-router flit slab backing `tiny_core`'s VC rings.
fn tiny_slab(core: &RouterCore) -> FlitSlab {
    FlitSlab::new(1, &core.ring_capacities())
}

fn head_flit(dst: Coord, next_out: Direction) -> Flit {
    let mut f = Flit::packet_flits(PacketId(1), Coord::new(0, 1), dst, 0, 1, AxisOrder::Xy)[0];
    f.next_out = next_out;
    f
}

#[test]
fn credit_score_counts_admissible_free_slots() {
    let core = tiny_core();
    let port = core.outputs[Direction::East.index()].as_ref().unwrap();
    let req = noc_core::VcRequest {
        in_dir: Direction::West,
        out_dir: Direction::East,
        order: AxisOrder::Xy,
        quadrant_mask: 0b1111,
        dateline: false,
    };
    // Two free VCs x (4 credits + 1 free bonus) each.
    assert_eq!(port.credit_score(&req), 10);
}

#[test]
fn va_grants_and_consumes_downstream_vc() {
    let mut core = tiny_core();
    let mut slab = tiny_slab(&core);
    let mut rng = SmallRng::seed_from_u64(1);
    core.deliver_flit(
        &mut slab.window(0),
        Direction::West,
        0,
        head_flit(Coord::new(3, 1), Direction::East),
    );
    let mut ctx = StepContext::new(0, &mut rng);
    for d in Direction::MESH {
        ctx.neighbors[d.index()] = Some(noc_core::NodeStatus::healthy());
    }
    core.va_stage(&mut ctx, &mut slab.window(0));
    match core.vcs[0].state {
        VcState::Active { out, dvc, .. } => {
            assert_eq!(out, Direction::East);
            let port = core.outputs[Direction::East.index()].as_ref().unwrap();
            assert!(!port.vcs[dvc as usize].free, "granted VC is no longer free");
        }
        other => panic!("expected Active after VA, got {other:?}"),
    }
    // The VC is now switch-eligible.
    assert_eq!(core.sa_candidate(&slab.view(0), 0), Some(Direction::East));
}

#[test]
fn sa_requires_credits() {
    let mut core = tiny_core();
    let mut slab = tiny_slab(&core);
    let mut rng = SmallRng::seed_from_u64(2);
    core.deliver_flit(
        &mut slab.window(0),
        Direction::West,
        0,
        head_flit(Coord::new(3, 1), Direction::East),
    );
    let mut ctx = StepContext::new(0, &mut rng);
    for d in Direction::MESH {
        ctx.neighbors[d.index()] = Some(noc_core::NodeStatus::healthy());
    }
    core.va_stage(&mut ctx, &mut slab.window(0));
    let VcState::Active { dvc, .. } = core.vcs[0].state else { panic!("active") };
    // Exhaust the downstream credits.
    core.outputs[Direction::East.index()].as_mut().unwrap().vcs[dvc as usize].credits = 0;
    assert_eq!(core.sa_candidate(&slab.view(0), 0), None, "no credits, no switch request");
    // A credit restores eligibility.
    core.deliver_credit(Direction::East, Credit { vc: dvc, vc_freed: false });
    assert_eq!(core.sa_candidate(&slab.view(0), 0), Some(Direction::East));
}

#[test]
fn apply_grant_emits_credit_and_frees_on_tail() {
    let mut core = tiny_core();
    let mut slab = tiny_slab(&core);
    let mut rng = SmallRng::seed_from_u64(3);
    core.deliver_flit(
        &mut slab.window(0),
        Direction::West,
        0,
        head_flit(Coord::new(3, 1), Direction::East),
    );
    let mut ctx = StepContext::new(0, &mut rng);
    for d in Direction::MESH {
        ctx.neighbors[d.index()] = Some(noc_core::NodeStatus::healthy());
    }
    core.va_stage(&mut ctx, &mut slab.window(0));
    let VcState::Active { dvc, .. } = core.vcs[0].state else { panic!("active") };
    let freed = core.apply_grant(&mut slab.window(0), 0);
    assert!(freed, "a single-flit packet frees its downstream VC on transmission");
    assert_eq!(core.vcs[0].state, VcState::Idle);
    assert_eq!(core.pending_credits.len(), 1, "upstream credit queued");
    assert_eq!(core.pending_credits[0].0, Direction::West);
    let port = core.outputs[Direction::East.index()].as_ref().unwrap();
    assert_eq!(port.vcs[dvc as usize].credits, 3, "one downstream slot consumed");
    assert!(port.vcs[dvc as usize].free, "freed at tail transmission");
    assert_eq!(core.st_latch.len(), 1, "flit latched for switch traversal");
}

#[test]
fn injection_is_atomic_per_vc() {
    let mut core = tiny_core();
    let mut slab = tiny_slab(&core);
    let mut rng = SmallRng::seed_from_u64(4);
    let mut ctx = StepContext::new(0, &mut rng);
    let flits =
        Flit::packet_flits(PacketId(5), Coord::new(1, 1), Coord::new(3, 3), 0, 4, AxisOrder::Xy);
    assert!(
        core.try_inject(&mut slab.window(0), flits[0], &mut ctx),
        "head fits the idle injection VC"
    );
    // A second packet's head must wait: the single injection VC is bound.
    let other =
        Flit::packet_flits(PacketId(6), Coord::new(1, 1), Coord::new(2, 2), 0, 1, AxisOrder::Xy)[0];
    assert!(!core.try_inject(&mut slab.window(0), other, &mut ctx));
    // Body flits of the bound packet continue to flow in.
    assert!(core.try_inject(&mut slab.window(0), flits[1], &mut ctx));
    assert!(core.try_inject(&mut slab.window(0), flits[2], &mut ctx));
    assert!(core.try_inject(&mut slab.window(0), flits[3], &mut ctx), "tail fits (4-deep buffer)");
    assert_eq!(core.occupancy(), 4);
}

#[test]
fn injection_respects_buffer_depth() {
    let mut core = tiny_core();
    let mut slab = tiny_slab(&core);
    let mut rng = SmallRng::seed_from_u64(5);
    let mut ctx = StepContext::new(0, &mut rng);
    let flits = Flit::packet_flits(
        PacketId(7),
        Coord::new(1, 1),
        Coord::new(3, 3),
        0,
        6, // longer than the 4-deep buffer
        AxisOrder::Xy,
    );
    for f in &flits[..4] {
        assert!(core.try_inject(&mut slab.window(0), *f, &mut ctx));
    }
    assert!(
        !core.try_inject(&mut slab.window(0), flits[4], &mut ctx),
        "buffer full: fifth flit must wait"
    );
}

#[test]
fn ready_for_new_packet_rules() {
    let desc = VcDescriptor::new(VcAdmission::Any, 4);
    let mut vc = Vc::new(desc, Direction::West, 0, 0);
    // `ready_for_new_packet` takes the ring-emptiness bit the caller
    // reads from the slab (an empty, idle VC can accept a new head).
    assert!(vc.ready_for_new_packet(true));
    vc.disabled = true;
    assert!(!vc.ready_for_new_packet(true));
    vc.disabled = false;
    vc.state = VcState::WaitingVa { next_route: Direction::East };
    assert!(!vc.ready_for_new_packet(true));
}

#[test]
#[should_panic(expected = "link map references VC")]
fn core_rejects_bad_link_map() {
    let cfg = RouterConfig::paper(RouterKind::Generic, RoutingKind::Xy);
    let computer = RouteComputer::new(RoutingKind::Xy, mesh());
    let mut link_map: [Vec<usize>; 5] = Default::default();
    link_map[0].push(3); // out of range
    let _ = RouterCore::new(Coord::new(0, 0), cfg, computer, vec![], link_map);
}
