//! Behavioural tests driving single routers directly through the
//! `RouterNode` interface (no network), pinning down pipeline timing,
//! Early Ejection, credits, guided queuing and fault reactions.

use noc_core::{
    Axis, AxisOrder, ComponentFault, Coord, Direction, FaultComponent, Flit, FlitSlab, MeshConfig,
    ModuleHealth, PacketId, RouterConfig, RouterKind, RouterNode, RoutingKind, StepContext,
    VcAdmission, VcClass, EJECT_VC,
};
use noc_router::AnyRouter;
use rand::rngs::SmallRng;
use rand::SeedableRng;

const MESH: MeshConfig = MeshConfig::new(3, 3);

/// Builds a router at the mesh centre with all four outputs wired to
/// representative neighbour VC lists, plus a one-router flit slab
/// backing its VC rings.
fn wired(kind: RouterKind, routing: RoutingKind) -> (AnyRouter, FlitSlab) {
    let cfg = RouterConfig::paper(kind, routing);
    let mut r = AnyRouter::build(Coord::new(1, 1), cfg, MESH);
    for d in Direction::MESH {
        let neighbor = AnyRouter::build(Coord::new(1, 1).neighbor(d, 3, 3).unwrap(), cfg, MESH);
        let descs = neighbor.vcs_on_link(d.opposite()).to_vec();
        r.connect_output(d, &descs);
    }
    let slab = FlitSlab::new(1, &r.ring_capacities());
    (r, slab)
}

fn head(src: Coord, dst: Coord, next_out: Direction) -> Flit {
    let mut flits = Flit::packet_flits(PacketId(1), src, dst, 0, 1, AxisOrder::Xy);
    flits[0].next_out = next_out;
    flits[0]
}

fn step(
    r: &mut AnyRouter,
    slab: &mut FlitSlab,
    cycle: u64,
    rng: &mut SmallRng,
) -> noc_core::RouterOutputs {
    let mut ctx = StepContext::new(cycle, rng);
    for d in Direction::MESH {
        ctx.neighbors[d.index()] = Some(noc_core::NodeStatus::healthy());
    }
    let mut out = noc_core::RouterOutputs::new();
    r.step(&mut ctx, &mut slab.window(0), &mut out);
    out
}

#[test]
fn two_stage_pipeline_timing() {
    // A single-flit packet arriving at cycle 0 must win VA+SA in cycle
    // 0 (speculatively) and appear on the output link at cycle 1.
    for kind in [RouterKind::RoCo, RouterKind::Generic, RouterKind::PathSensitive] {
        let (mut r, mut slab) = wired(kind, RoutingKind::Xy);
        let mut rng = SmallRng::seed_from_u64(1);
        // Eastbound through-flit: from West, continuing East to (2,1).
        let f = head(Coord::new(0, 1), Coord::new(2, 1), Direction::East);
        r.deliver_flit(&mut slab.window(0), Direction::West, 0, f);
        let out0 = step(&mut r, &mut slab, 0, &mut rng);
        assert!(out0.flits.is_empty(), "{kind:?}: ST happens in stage 2");
        let out1 = step(&mut r, &mut slab, 1, &mut rng);
        assert_eq!(out1.flits.len(), 1, "{kind:?}: flit should depart in cycle 1");
        let (dir, dvc, flit) = out1.flits[0];
        assert_eq!(dir, Direction::East);
        assert_eq!(flit.next_out, Direction::Local, "look-ahead: next stop is the destination");
        // Non-generic routers skip downstream VC allocation for ejection.
        if kind == RouterKind::Generic {
            assert_ne!(dvc, EJECT_VC);
        } else {
            assert_eq!(dvc, EJECT_VC);
        }
    }
}

#[test]
fn credit_is_returned_upstream() {
    let (mut r, mut slab) = wired(RouterKind::RoCo, RoutingKind::Xy);
    let mut rng = SmallRng::seed_from_u64(2);
    let f = head(Coord::new(0, 1), Coord::new(2, 1), Direction::East);
    r.deliver_flit(&mut slab.window(0), Direction::West, 0, f);
    let out0 = step(&mut r, &mut slab, 0, &mut rng);
    let out1 = step(&mut r, &mut slab, 1, &mut rng);
    let credits: Vec<_> = out0.credits.iter().chain(&out1.credits).collect();
    assert_eq!(credits.len(), 1, "one flit read out, one credit back");
    let (side, credit) = credits[0];
    assert_eq!(*side, Direction::West);
    assert_eq!(credit.vc, 0);
    assert!(credit.vc_freed, "single-flit packet frees the VC");
}

#[test]
fn early_ejection_is_immediate_for_roco_and_ps() {
    for kind in [RouterKind::RoCo, RouterKind::PathSensitive] {
        let (mut r, mut slab) = wired(kind, RoutingKind::Xy);
        let mut rng = SmallRng::seed_from_u64(3);
        let f = head(Coord::new(0, 1), Coord::new(1, 1), Direction::Local);
        r.deliver_flit(&mut slab.window(0), Direction::West, EJECT_VC, f);
        let out0 = step(&mut r, &mut slab, 0, &mut rng);
        assert_eq!(out0.ejected.len(), 1, "{kind:?}: ejected in the arrival cycle");
        assert_eq!(r.counters().early_ejections, 1);
        assert_eq!(r.counters().crossbar_traversals, 0, "no switch traversal");
        assert_eq!(r.occupancy(), 0);
    }
}

#[test]
fn generic_ejection_goes_through_the_crossbar() {
    let (mut r, mut slab) = wired(RouterKind::Generic, RoutingKind::Xy);
    let mut rng = SmallRng::seed_from_u64(4);
    let f = head(Coord::new(0, 1), Coord::new(1, 1), Direction::Local);
    r.deliver_flit(&mut slab.window(0), Direction::West, 0, f);
    let out0 = step(&mut r, &mut slab, 0, &mut rng);
    assert!(out0.ejected.is_empty(), "generic ejection takes SA + ST");
    let out1 = step(&mut r, &mut slab, 1, &mut rng);
    assert_eq!(out1.ejected.len(), 1);
    assert_eq!(r.counters().crossbar_traversals, 1);
    assert_eq!(r.counters().early_ejections, 0);
}

#[test]
fn guided_queuing_publishes_table1_classes() {
    let (r, _slab) = wired(RouterKind::RoCo, RoutingKind::Xy);
    // West link under XY: two dx buffers (row module) + one txy
    // (column module).
    let west = r.vcs_on_link(Direction::West);
    assert_eq!(west.len(), 3);
    let classes: Vec<_> = west.iter().map(|d| d.admission).collect();
    assert_eq!(classes.iter().filter(|a| **a == VcAdmission::Class(VcClass::Dx)).count(), 2);
    assert_eq!(classes.iter().filter(|a| **a == VcAdmission::Class(VcClass::Txy)).count(), 1);
    // Injection side: 2 Injxy + 1 Injyx under XY.
    let local = r.vcs_on_link(Direction::Local);
    assert_eq!(local.len(), 3);
}

#[test]
fn wormhole_streams_flits_in_order() {
    let (mut r, mut slab) = wired(RouterKind::RoCo, RoutingKind::Xy);
    let mut rng = SmallRng::seed_from_u64(5);
    let mut flits =
        Flit::packet_flits(PacketId(9), Coord::new(0, 1), Coord::new(2, 1), 0, 4, AxisOrder::Xy);
    for f in &mut flits {
        f.next_out = Direction::East;
    }
    // Deliver one flit per cycle, like a real link.
    let mut received = Vec::new();
    for cycle in 0..8u64 {
        if let Some(f) = flits.get(cycle as usize) {
            r.deliver_flit(&mut slab.window(0), Direction::West, 0, *f);
        }
        let out = step(&mut r, &mut slab, cycle, &mut rng);
        received.extend(out.flits.into_iter().map(|(_, _, f)| f.seq));
    }
    assert_eq!(received, vec![0, 1, 2, 3], "flits must stream in order, one per cycle");
    assert_eq!(r.occupancy(), 0);
}

#[test]
fn module_fault_reports_degraded_status_and_zeroes_descriptors() {
    let (mut r, _slab) = wired(RouterKind::RoCo, RoutingKind::Xy);
    r.inject_fault(ComponentFault::new(FaultComponent::Crossbar, Axis::X));
    let status = r.status();
    assert_eq!(status.row, ModuleHealth::Dead);
    assert_eq!(status.col, ModuleHealth::Healthy);
    assert!(!status.node_dead());
    // The row-module buffers are advertised with zero capacity...
    let west = r.vcs_on_link(Direction::West);
    assert!(west
        .iter()
        .filter(|d| d.admission == VcAdmission::Class(VcClass::Dx))
        .all(|d| d.capacity == 0));
    // ...but the column-module txy buffer on the same link survives.
    assert!(west.iter().any(|d| d.capacity > 0));
}

#[test]
fn generic_fault_kills_the_whole_node() {
    let (mut r, mut slab) = wired(RouterKind::Generic, RoutingKind::Xy);
    r.inject_fault(ComponentFault::new(FaultComponent::SaArbiter, Axis::X));
    assert!(r.status().node_dead());
    for d in Direction::MESH {
        assert!(r.vcs_on_link(d).iter().all(|v| v.capacity == 0));
    }
    // Delivered flits are discarded, not buffered.
    let mut rng = SmallRng::seed_from_u64(6);
    r.deliver_flit(
        &mut slab.window(0),
        Direction::West,
        0,
        head(Coord::new(0, 1), Coord::new(2, 1), Direction::East),
    );
    let out = step(&mut r, &mut slab, 0, &mut rng);
    assert_eq!(out.dropped.len(), 1);
    assert_eq!(r.occupancy(), 0);
}

#[test]
fn sa_offload_fault_marks_module_degraded() {
    let (mut r, _slab) = wired(RouterKind::RoCo, RoutingKind::Xy);
    r.inject_fault(ComponentFault::new(FaultComponent::SaArbiter, Axis::Y));
    assert_eq!(r.status().col, ModuleHealth::Degraded);
    assert!(r.status().can_serve_output(Direction::North), "degraded ≠ dead");
}

#[test]
fn rc_fault_sets_handshake_bit() {
    let (mut r, _slab) = wired(RouterKind::RoCo, RoutingKind::Xy);
    assert!(r.status().rc_ok);
    r.inject_fault(ComponentFault::new(FaultComponent::RoutingComputation, Axis::X));
    assert!(!r.status().rc_ok);
    assert_eq!(r.status().row, ModuleHealth::Healthy, "RC fault blocks no module");
}

#[test]
fn injection_respects_class_buffers() {
    let (mut r, mut slab) = wired(RouterKind::RoCo, RoutingKind::Xy);
    let mut rng = SmallRng::seed_from_u64(7);
    // A packet going East first must land in an Injxy buffer.
    let f =
        Flit::packet_flits(PacketId(3), Coord::new(1, 1), Coord::new(2, 2), 0, 1, AxisOrder::Xy)[0];
    let mut ctx = StepContext::new(0, &mut rng);
    assert!(r.try_inject(&mut slab.window(0), f, &mut ctx));
    assert_eq!(r.occupancy(), 1);
    // The injected head must depart East (X first) within a few cycles.
    let mut departed = None;
    for cycle in 0..4 {
        let out = step(&mut r, &mut slab, cycle, &mut rng);
        if let Some(&(dir, _, _)) = out.flits.first() {
            departed = Some(dir);
            break;
        }
    }
    assert_eq!(departed, Some(Direction::East));
}

#[test]
fn mirror_allocator_serves_both_directions_in_one_cycle() {
    let (mut r, mut slab) = wired(RouterKind::RoCo, RoutingKind::Xy);
    let mut rng = SmallRng::seed_from_u64(8);
    // Eastbound flit from West and westbound flit from East: the row
    // module must grant both in the same cycle (maximal matching).
    let east = head(Coord::new(0, 1), Coord::new(2, 1), Direction::East);
    let west = head(Coord::new(2, 1), Coord::new(0, 1), Direction::West);
    r.deliver_flit(&mut slab.window(0), Direction::West, 0, east);
    r.deliver_flit(&mut slab.window(0), Direction::East, 0, west);
    let _ = step(&mut r, &mut slab, 0, &mut rng);
    let out1 = step(&mut r, &mut slab, 1, &mut rng);
    let dirs: Vec<_> = out1.flits.iter().map(|(d, _, _)| *d).collect();
    assert!(dirs.contains(&Direction::East) && dirs.contains(&Direction::West));
}

#[test]
fn injection_class_utilization_is_x_heavy_under_xy() {
    // §3.1: "the injection channel Injxy is much more frequently used
    // than Injyx as a result of the routing scheme" — under XY, every
    // packet with a nonzero X displacement injects X-first, so in a
    // full 3x3 network with one-hop ring traffic the X channels carry
    // more injections. (Verified network-wide in tests/paper_claims.rs;
    // here we check the per-class accounting plumbing on one router.)
    use noc_core::VcClass;
    let (mut r, mut slab) = wired(RouterKind::RoCo, RoutingKind::Xy);
    let mut rng = SmallRng::seed_from_u64(99);
    // Inject two X-bound single-flit packets and one Y-bound packet
    // (all to direct neighbours so the detached test harness can drain
    // them via Early Ejection without return credits).
    for (i, dst) in [Coord::new(2, 1), Coord::new(0, 1), Coord::new(1, 0)].iter().enumerate() {
        let f = Flit::packet_flits(
            PacketId(100 + i as u64),
            Coord::new(1, 1),
            *dst,
            i as u64,
            1,
            AxisOrder::Xy,
        )[0];
        let mut ctx = StepContext::new(i as u64, &mut rng);
        assert!(r.try_inject(&mut slab.window(0), f, &mut ctx));
        let _ = step(&mut r, &mut slab, i as u64, &mut rng);
    }
    let AnyRouter::RoCo(roco) = &r else { panic!("roco") };
    let util = roco.class_utilization();
    assert_eq!(util.get(&VcClass::InjXy), Some(&2));
    assert_eq!(util.get(&VcClass::InjYx), Some(&1));
}
