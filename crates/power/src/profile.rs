//! Per-component energy profiles for the three router architectures.
//!
//! The paper extracts dynamic and leakage power from Synopsys DC
//! synthesis of RTL in TSMC 90 nm (1 V, 500 MHz, 50 % switching) and
//! back-annotates the numbers into the simulator (§5.2). Without the
//! authors' standard-cell flow we instead *derive* each component's
//! per-operation energy from structural scaling laws — buffer energy ∝
//! flit width, crossbar energy ∝ port count × width (with a
//! connectivity factor for decomposed fabrics), arbiter energy ∝
//! (requester count)², link energy ∝ width — normalized so the generic
//! 5-port router lands at published 90 nm Orion-class magnitudes
//! (≈ 1 nJ per packet network-wide at 0.3 injection, matching Fig 13's
//! axis). Every §5 energy claim is relative, and the relative numbers
//! come from exactly these structural differences. See DESIGN.md §4.

use noc_core::{RouterConfig, RouterKind};
use serde::{Deserialize, Serialize};

/// Joules per bit written into a buffer (90 nm register-file write).
const E_BIT_WRITE: f64 = 62.5e-15;
/// Joules per bit read out of a buffer.
const E_BIT_READ: f64 = 47.0e-15;
/// Joules per bit per crossbar port at 90 nm.
const E_BIT_XBAR_PORT: f64 = 14.0e-15;
/// Joules per arbiter requester-pair (energy ∝ requesters²).
const E_ARB_UNIT: f64 = 14.0e-15;
/// Joules per bit for one inter-router link traversal (~1 mm at 90 nm).
const E_BIT_LINK: f64 = 100.0e-15;
/// Joules per route computation (small combinational block).
const E_RC: f64 = 0.5e-12;
/// Leakage joules per buffered bit per cycle.
const LEAK_PER_BIT_CYCLE: f64 = 1.3e-16;
/// Leakage joules per crossbar cross-point per cycle.
const LEAK_PER_XPOINT_CYCLE: f64 = 20.0e-15;

/// Per-operation dynamic energies and per-cycle leakage for one router.
///
/// All values are in joules.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RouterEnergyProfile {
    /// Energy per flit buffer write.
    pub buffer_write: f64,
    /// Energy per flit buffer read.
    pub buffer_read: f64,
    /// Energy per flit crossbar traversal.
    pub crossbar: f64,
    /// Energy per first-stage VA arbitration.
    pub va_local: f64,
    /// Energy per second-stage VA arbitration.
    pub va_global: f64,
    /// Energy per first-stage SA arbitration.
    pub sa_local: f64,
    /// Energy per second-stage SA arbitration.
    pub sa_global: f64,
    /// Energy per route computation.
    pub rc: f64,
    /// Energy per flit link traversal.
    pub link: f64,
    /// Leakage energy per clocked cycle for the whole router.
    pub leakage_per_cycle: f64,
}

/// Quadratic arbiter energy for an `r`-requester arbiter.
fn arb_energy(requesters: f64) -> f64 {
    E_ARB_UNIT * requesters * requesters
}

impl RouterEnergyProfile {
    /// Derives the profile for `cfg` from the structural scaling laws
    /// described in the module docs, mirroring the architectural
    /// differences of Fig 1, Fig 2 and Fig 4:
    ///
    /// * generic — monolithic 5×5 crossbar, `5v:1` VA arbiters, `5:1`
    ///   SA output arbiters;
    /// * Path-Sensitive — 4×4 decomposed crossbar with half the
    ///   connections, two path sets competing per output;
    /// * RoCo — two 2×2 crossbars, `2v:1` VA arbiters, a single `2:1`
    ///   mirror arbiter per module.
    pub fn synthesized(cfg: &RouterConfig) -> Self {
        let bits = cfg.flit_bits as f64;
        let v = cfg.vcs_per_port as f64;
        let (xbar_ports, xbar_connectivity, va_global_r, sa_global_r) = match cfg.router {
            // 5 ports, full crossbar; Fig 2 left: 5v:1 second-stage VA.
            RouterKind::Generic => (5.0, 1.0, 5.0 * v, 5.0),
            // 4×4 decomposed crossbar "with half the connections of a
            // full crossbar" (§2); two quadrant sets per output.
            RouterKind::PathSensitive => (4.0, 0.75, 2.0 * v + 2.0, 2.0),
            // Two 2×2 modules; Fig 2 right: 2v:1 VA; Fig 4: one 2:1
            // mirror arbiter per module.
            RouterKind::RoCo => (2.0, 1.0, 2.0 * v, 2.0),
        };
        let buffer_bits = cfg.total_buffer_flits() as f64 * bits;
        let xpoints = xbar_ports
            * xbar_ports
            * xbar_connectivity
            * if cfg.router == RouterKind::RoCo { 2.0 } else { 1.0 };
        RouterEnergyProfile {
            buffer_write: bits * E_BIT_WRITE,
            buffer_read: bits * E_BIT_READ,
            crossbar: bits * E_BIT_XBAR_PORT * xbar_ports * xbar_connectivity,
            va_local: arb_energy(v),
            va_global: arb_energy(va_global_r),
            sa_local: arb_energy(v),
            sa_global: arb_energy(sa_global_r),
            rc: E_RC,
            link: bits * E_BIT_LINK,
            leakage_per_cycle: buffer_bits * LEAK_PER_BIT_CYCLE + xpoints * LEAK_PER_XPOINT_CYCLE,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::RoutingKind;

    fn profile(kind: RouterKind) -> RouterEnergyProfile {
        RouterEnergyProfile::synthesized(&RouterConfig::paper(kind, RoutingKind::Xy))
    }

    #[test]
    fn crossbar_energy_ordering_matches_structure() {
        let g = profile(RouterKind::Generic);
        let p = profile(RouterKind::PathSensitive);
        let r = profile(RouterKind::RoCo);
        assert!(g.crossbar > p.crossbar, "5x5 beats decomposed 4x4");
        assert!(p.crossbar > r.crossbar, "decomposed 4x4 beats 2x2");
        // §3.1: RoCo's 2x2 traversal should be markedly cheaper.
        assert!(r.crossbar < 0.5 * g.crossbar);
    }

    #[test]
    fn va_arbiter_energy_ordering() {
        let g = profile(RouterKind::Generic);
        let r = profile(RouterKind::RoCo);
        // Fig 2: 5v:1 vs 2v:1 arbiters => quadratic energy gap.
        assert!(g.va_global > 4.0 * r.va_global);
    }

    #[test]
    fn buffer_energy_identical_across_architectures() {
        // All three designs hold 60 flits of 128-bit buffering (§5.4).
        let g = profile(RouterKind::Generic);
        let p = profile(RouterKind::PathSensitive);
        let r = profile(RouterKind::RoCo);
        assert_eq!(g.buffer_write, p.buffer_write);
        assert_eq!(g.buffer_write, r.buffer_write);
        assert_eq!(g.buffer_read, r.buffer_read);
    }

    #[test]
    fn leakage_ordering() {
        let g = profile(RouterKind::Generic);
        let p = profile(RouterKind::PathSensitive);
        let r = profile(RouterKind::RoCo);
        assert!(g.leakage_per_cycle > p.leakage_per_cycle);
        assert!(p.leakage_per_cycle > r.leakage_per_cycle);
    }

    #[test]
    fn magnitudes_are_plausible_90nm() {
        let g = profile(RouterKind::Generic);
        // Buffer write for a 128-bit flit: single-digit picojoules.
        assert!(g.buffer_write > 1e-12 && g.buffer_write < 20e-12);
        assert!(g.crossbar > 5e-12 && g.crossbar < 30e-12);
        assert!(g.link > 5e-12 && g.link < 30e-12);
        assert!(g.leakage_per_cycle > 0.1e-12 && g.leakage_per_cycle < 10e-12);
    }

    #[test]
    fn scaling_with_flit_width() {
        let mut cfg = RouterConfig::paper(RouterKind::Generic, RoutingKind::Xy);
        let narrow = RouterEnergyProfile::synthesized(&cfg);
        cfg.flit_bits = 256;
        let wide = RouterEnergyProfile::synthesized(&cfg);
        assert!((wide.buffer_write / narrow.buffer_write - 2.0).abs() < 1e-9);
        assert!((wide.link / narrow.link - 2.0).abs() < 1e-9);
    }
}
