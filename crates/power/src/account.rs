//! Energy accounting: activity counters × energy profile.

use crate::profile::RouterEnergyProfile;
use noc_core::ActivityCounters;
use serde::{Deserialize, Serialize};

/// Energy consumed by one router (or a whole network of identical
/// routers), broken down by component. All values in joules.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct EnergyBreakdown {
    /// Buffer read + write energy.
    pub buffers: f64,
    /// Crossbar traversal energy.
    pub crossbar: f64,
    /// VA + SA arbitration energy.
    pub arbitration: f64,
    /// Route-computation energy.
    pub routing: f64,
    /// Link traversal energy.
    pub links: f64,
    /// Leakage energy over the clocked cycles.
    pub leakage: f64,
}

impl EnergyBreakdown {
    /// Total dynamic energy (everything but leakage).
    pub fn dynamic(&self) -> f64 {
        self.buffers + self.crossbar + self.arbitration + self.routing + self.links
    }

    /// Total energy including leakage.
    pub fn total(&self) -> f64 {
        self.dynamic() + self.leakage
    }

    /// Adds `other` into `self`.
    pub fn merge(&mut self, other: &EnergyBreakdown) {
        self.buffers += other.buffers;
        self.crossbar += other.crossbar;
        self.arbitration += other.arbitration;
        self.routing += other.routing;
        self.links += other.links;
        self.leakage += other.leakage;
    }
}

/// Converts activity counters into energy using a router profile
/// (the paper's back-annotation step, §5.2).
pub fn energy_of(counters: &ActivityCounters, profile: &RouterEnergyProfile) -> EnergyBreakdown {
    EnergyBreakdown {
        buffers: counters.buffer_writes as f64 * profile.buffer_write
            + counters.buffer_reads as f64 * profile.buffer_read,
        crossbar: counters.crossbar_traversals as f64 * profile.crossbar,
        arbitration: counters.va_local_arbs as f64 * profile.va_local
            + counters.va_global_arbs as f64 * profile.va_global
            + counters.sa_local_arbs as f64 * profile.sa_local
            + counters.sa_global_arbs as f64 * profile.sa_global,
        routing: counters.rc_computations as f64 * profile.rc,
        links: counters.link_traversals as f64 * profile.link,
        leakage: counters.cycles as f64 * profile.leakage_per_cycle,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::{RouterConfig, RouterKind, RoutingKind};

    fn profile() -> RouterEnergyProfile {
        RouterEnergyProfile::synthesized(&RouterConfig::paper(RouterKind::RoCo, RoutingKind::Xy))
    }

    #[test]
    fn zero_activity_only_leaks() {
        let counters = ActivityCounters { cycles: 100, ..Default::default() };
        let e = energy_of(&counters, &profile());
        assert_eq!(e.dynamic(), 0.0);
        assert!(e.leakage > 0.0);
        assert_eq!(e.total(), e.leakage);
    }

    #[test]
    fn accounting_is_linear_in_activity() {
        let c1 = ActivityCounters {
            buffer_writes: 10,
            buffer_reads: 10,
            crossbar_traversals: 10,
            link_traversals: 10,
            va_local_arbs: 5,
            va_global_arbs: 5,
            sa_local_arbs: 5,
            sa_global_arbs: 5,
            rc_computations: 5,
            early_ejections: 2,
            cycles: 50,
            ..Default::default()
        };
        let mut c2 = c1;
        c2.merge(&c1);
        let p = profile();
        let e1 = energy_of(&c1, &p);
        let e2 = energy_of(&c2, &p);
        assert!((e2.total() - 2.0 * e1.total()).abs() < 1e-18);
    }

    #[test]
    fn merge_sums_components() {
        let a = EnergyBreakdown { buffers: 1.0, crossbar: 2.0, ..Default::default() };
        let mut b = EnergyBreakdown { links: 3.0, leakage: 4.0, ..Default::default() };
        b.merge(&a);
        assert_eq!(b.buffers, 1.0);
        assert_eq!(b.crossbar, 2.0);
        assert_eq!(b.links, 3.0);
        assert_eq!(b.leakage, 4.0);
        assert_eq!(b.dynamic(), 6.0);
        assert_eq!(b.total(), 10.0);
    }

    #[test]
    fn early_ejection_saves_energy() {
        // A flit handled by Early Ejection skips crossbar traversal; the
        // same traffic with crossbar passes must cost more.
        let p = profile();
        let early = ActivityCounters { buffer_writes: 1, early_ejections: 1, ..Default::default() };
        let through = ActivityCounters {
            buffer_writes: 1,
            buffer_reads: 1,
            crossbar_traversals: 1,
            ..Default::default()
        };
        assert!(energy_of(&early, &p).total() < energy_of(&through, &p).total());
    }
}
