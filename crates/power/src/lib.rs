//! # noc-power
//!
//! Energy modelling for the RoCo reproduction: per-component energy
//! profiles derived from structural scaling laws (the substitution for
//! the paper's 90 nm synthesis numbers — see DESIGN.md §4), activity-
//! counter-based accounting, and the Performance-Energy-Fault (PEF)
//! metric of §5.3.
//!
//! # Examples
//!
//! ```
//! use noc_core::{ActivityCounters, RouterConfig, RouterKind, RoutingKind};
//! use noc_power::{energy_of, RouterEnergyProfile};
//!
//! let cfg = RouterConfig::paper(RouterKind::RoCo, RoutingKind::Xy);
//! let profile = RouterEnergyProfile::synthesized(&cfg);
//! let counters = ActivityCounters { buffer_writes: 100, cycles: 1_000, ..Default::default() };
//! let energy = energy_of(&counters, &profile);
//! assert!(energy.total() > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod account;
mod pef;
mod profile;

pub use account::{energy_of, EnergyBreakdown};
pub use pef::PefInputs;
pub use profile::RouterEnergyProfile;
