//! The Performance-Energy-Fault-tolerance (PEF) metric (§5.3).
//!
//! `PEF = (average latency × energy per packet) / completion probability`
//! — the Energy-Delay Product divided by the packet completion
//! probability, so that in a fault-free network (completion = 1) PEF
//! reduces to EDP.

use serde::{Deserialize, Serialize};

/// The three measurements PEF combines.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PefInputs {
    /// Average end-to-end packet latency in cycles.
    pub avg_latency_cycles: f64,
    /// Total network energy divided by delivered packets, in joules.
    pub energy_per_packet: f64,
    /// Received messages / injected messages, in `[0, 1]`.
    pub completion_probability: f64,
}

impl PefInputs {
    /// Energy-Delay Product in joule-cycles.
    pub fn edp(&self) -> f64 {
        self.avg_latency_cycles * self.energy_per_packet
    }

    /// The PEF metric in joule-cycles per unit completion probability.
    ///
    /// # Panics
    ///
    /// Panics when `completion_probability` is not in `(0, 1]` — a
    /// network that delivered nothing has no meaningful PEF.
    pub fn pef(&self) -> f64 {
        assert!(
            self.completion_probability > 0.0 && self.completion_probability <= 1.0,
            "completion probability must be in (0, 1]"
        );
        self.edp() / self.completion_probability
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fault_free_pef_equals_edp() {
        let m = PefInputs {
            avg_latency_cycles: 25.0,
            energy_per_packet: 0.8e-9,
            completion_probability: 1.0,
        };
        assert!((m.pef() - m.edp()).abs() < 1e-24);
    }

    #[test]
    fn lower_completion_raises_pef() {
        let good = PefInputs {
            avg_latency_cycles: 25.0,
            energy_per_packet: 0.8e-9,
            completion_probability: 1.0,
        };
        let faulty = PefInputs { completion_probability: 0.5, ..good };
        assert!((faulty.pef() - 2.0 * good.pef()).abs() < 1e-24);
    }

    #[test]
    fn edp_value() {
        let m = PefInputs {
            avg_latency_cycles: 10.0,
            energy_per_packet: 2.0,
            completion_probability: 1.0,
        };
        assert_eq!(m.edp(), 20.0);
    }

    #[test]
    #[should_panic(expected = "completion probability")]
    fn zero_completion_panics() {
        let m = PefInputs {
            avg_latency_cycles: 10.0,
            energy_per_packet: 2.0,
            completion_probability: 0.0,
        };
        let _ = m.pef();
    }
}
