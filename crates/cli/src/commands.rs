//! The `noc` subcommands: `run`, `sweep`, `fault`, `info`.

use crate::{parse_mesh, parse_rates, parse_router, parse_routing, parse_traffic, ArgError, Args};
use noc_core::{RouterKind, RoutingKind};
use noc_fault::{FaultCategory, FaultPlan};
use noc_sim::{SimConfig, SimResults, Simulation};
use std::fmt::Write as _;

/// Top-level usage text.
pub const USAGE: &str = "\
noc — RoCo NoC simulator (ISCA 2006 reproduction)

USAGE:
  noc run   [--router R] [--routing A] [--traffic T] [--rate F] [--mesh WxH]
            [--packets N] [--warmup N] [--seed N] [--heatmaps true]
  noc sweep [--router R|all] [--routing A] [--traffic T] [--rates F,F,...]
            [--mesh WxH] [--packets N] [--seed N]
  noc fault [--router R|all] [--routing A] [--category critical|recyclable]
            [--faults N] [--rate F] [--packets N] [--seed N]
  noc thermal [--router R] [--routing A] [--traffic T] [--rate F] [--packets N]
  noc info

VALUES:
  R: generic | path-sensitive | roco (default roco)
  A: xy | xy-yx | adaptive | odd-even (default xy)
  T: uniform | transpose | self-similar | mpeg | hotspot | bit-complement
";

fn base_config(args: &Args) -> Result<SimConfig, ArgError> {
    // `--router all` is resolved by the sweep/fault loops; the base
    // config then acts as a template whose router field is overwritten.
    let router = match args.get("router") {
        Some("all") => RouterKind::RoCo,
        other => parse_router(other.unwrap_or("roco"))?,
    };
    let routing = parse_routing(args.get("routing").unwrap_or("xy"))?;
    let traffic = parse_traffic(args.get("traffic").unwrap_or("uniform"))?;
    let mut cfg = SimConfig::paper_scaled(router, routing, traffic);
    cfg.mesh = parse_mesh(args.get("mesh").unwrap_or("8x8"))?;
    cfg.injection_rate = args.get_or("rate", 0.25)?;
    if cfg.injection_rate <= 0.0 || cfg.injection_rate > 1.0 {
        return Err(ArgError("--rate must be in (0, 1]".into()));
    }
    cfg.measured_packets = args.get_or("packets", 10_000u64)?;
    cfg.warmup_packets = args.get_or("warmup", cfg.measured_packets / 10)?;
    cfg.seed = args.get_or("seed", 0xC0C0u64)?;
    Ok(cfg)
}

fn summarize(r: &SimResults) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "  cycles              {}", r.cycles);
    let _ = writeln!(
        s,
        "  packets             {} generated / {} injected / {} delivered / {} dropped",
        r.generated_packets, r.injected_packets, r.delivered_packets, r.dropped_packets
    );
    let _ = writeln!(
        s,
        "  latency             avg {:.2}  p50 {}  p95 {}  p99 {}  max {} cycles",
        r.avg_latency, r.latency_p50, r.latency_p95, r.latency_p99, r.max_latency
    );
    let _ = writeln!(s, "  throughput          {:.4} flits/node/cycle", r.throughput);
    let _ = writeln!(s, "  completion          {:.4}", r.completion_probability());
    let _ = writeln!(s, "  energy per packet   {:.4} nJ", r.energy_per_packet * 1e9);
    let _ = writeln!(
        s,
        "  contention          x {:.3} / y {:.3}",
        r.contention.x_contention_probability().unwrap_or(0.0),
        r.contention.y_contention_probability().unwrap_or(0.0)
    );
    let _ = writeln!(s, "  PEF                 {:.3} nJ·cycles", r.pef_inputs().pef() * 1e9);
    if r.stalled {
        let _ = writeln!(s, "  [run ended on the inactivity detector]");
    }
    s
}

/// `noc run`: one simulation, full summary, optional heatmaps.
pub fn cmd_run(args: &Args) -> Result<String, ArgError> {
    let unknown = args.unknown_flags(&[
        "router", "routing", "traffic", "rate", "mesh", "packets", "warmup", "seed", "heatmaps",
    ]);
    if !unknown.is_empty() {
        return Err(ArgError(format!("unknown flags: {}", unknown.join(", "))));
    }
    let cfg = base_config(args)?;
    let heatmaps: bool = args.get_or("heatmaps", false)?;
    let label = format!(
        "{} router, {} routing, {} traffic @ {} flits/node/cycle on {}x{}",
        cfg.router, cfg.routing, cfg.traffic, cfg.injection_rate, cfg.mesh.width, cfg.mesh.height
    );
    let mut sim = Simulation::new(cfg);
    while !sim.finished() {
        sim.step();
    }
    let results = sim.results();
    let mut out = format!("{label}\n{}", summarize(&results));
    if heatmaps {
        let report = sim.node_report();
        out.push('\n');
        out.push_str(&report.crossbar_heatmap());
        out.push('\n');
        out.push_str(&report.contention_heatmap());
    }
    Ok(out)
}

fn routers_of(args: &Args) -> Result<Vec<RouterKind>, ArgError> {
    match args.get("router") {
        Some("all") => Ok(RouterKind::ALL.to_vec()),
        Some(s) => Ok(vec![parse_router(s)?]),
        None => Ok(vec![RouterKind::RoCo]),
    }
}

/// `noc sweep`: latency/energy vs injection rate, CSV to stdout.
pub fn cmd_sweep(args: &Args) -> Result<String, ArgError> {
    let unknown = args.unknown_flags(&[
        "router", "routing", "traffic", "rates", "mesh", "packets", "warmup", "seed",
    ]);
    if !unknown.is_empty() {
        return Err(ArgError(format!("unknown flags: {}", unknown.join(", "))));
    }
    let routers = routers_of(args)?;
    let rates = parse_rates(args.get("rates").unwrap_or("0.05,0.1,0.15,0.2,0.25,0.3"))?;
    let mut out = String::from("router,rate,avg_latency,p95_latency,throughput,energy_nj,completion\n");
    for router in routers {
        for &rate in &rates {
            let mut cfg = base_config(args)?;
            cfg.router = router;
            cfg.injection_rate = rate;
            let r = noc_sim::run(cfg);
            let _ = writeln!(
                out,
                "{router},{rate},{:.3},{},{:.4},{:.4},{:.4}",
                r.avg_latency,
                r.latency_p95,
                r.throughput,
                r.energy_per_packet * 1e9,
                r.completion_probability()
            );
        }
    }
    Ok(out)
}

/// `noc fault`: §4 fault experiment at one operating point.
pub fn cmd_fault(args: &Args) -> Result<String, ArgError> {
    let unknown = args.unknown_flags(&[
        "router", "routing", "traffic", "rate", "mesh", "packets", "warmup", "seed", "category",
        "faults",
    ]);
    if !unknown.is_empty() {
        return Err(ArgError(format!("unknown flags: {}", unknown.join(", "))));
    }
    let category = match args.get("category").unwrap_or("critical") {
        "critical" | "router-centric" => FaultCategory::Isolating,
        "recyclable" | "message-centric" | "non-critical" => FaultCategory::Recyclable,
        other => {
            return Err(ArgError(format!(
                "unknown category '{other}' (expected critical | recyclable)"
            )))
        }
    };
    let count: usize = args.get_or("faults", 2usize)?;
    let routers = routers_of(args)?;
    let mut out = format!("{category} faults x{count}, 0.3 injection unless overridden\n");
    for router in routers {
        let mut cfg = base_config(args)?;
        cfg.router = router;
        if args.get("rate").is_none() {
            cfg.injection_rate = 0.3;
        }
        cfg.stall_window = 5_000;
        cfg.faults = FaultPlan::random(category, count, cfg.mesh, cfg.seed ^ 0xFA);
        let r = noc_sim::run(cfg);
        let _ = writeln!(
            out,
            "{router:>15}: completion {:.4}  latency {:>7.2}  blocked {:>5}  dropped {:>5}  PEF {:.2} nJ·cycles",
            r.completion_probability(),
            r.avg_latency,
            r.counters.blocked_packets,
            r.dropped_packets,
            r.pef_inputs().pef() * 1e9,
        );
    }
    Ok(out)
}

/// `noc thermal`: simulate, derive per-tile power, solve the
/// steady-state temperature field and print its heatmap.
pub fn cmd_thermal(args: &Args) -> Result<String, ArgError> {
    let unknown = args.unknown_flags(&[
        "router", "routing", "traffic", "rate", "mesh", "packets", "warmup", "seed",
    ]);
    if !unknown.is_empty() {
        return Err(ArgError(format!("unknown flags: {}", unknown.join(", "))));
    }
    let cfg = base_config(args)?;
    let rcfg = cfg.router_config();
    let mesh = cfg.mesh;
    let label = format!("{} router, {} routing, {} traffic", cfg.router, cfg.routing, cfg.traffic);
    let mut sim = Simulation::new(cfg);
    while !sim.finished() {
        sim.step();
    }
    let params = noc_thermal::ThermalParams::default();
    let power = noc_thermal::power_map(&sim.node_report(), &rcfg, &params);
    let temps = noc_thermal::steady_state(mesh, &power, &params);
    let s = noc_thermal::summarize(&temps);
    let mut out = format!("{label}\n");
    let _ = writeln!(
        out,
        "  total power {:.3} W   peak {:.2} C   avg {:.2} C   gradient {:.2} C\n",
        power.iter().sum::<f64>(),
        s.max_c,
        s.avg_c,
        s.gradient_c
    );
    out.push_str(&noc_sim::render_heatmap(mesh, "temperature per tile", &temps));
    Ok(out)
}

/// `noc info`: the analytic tables (Table 1/2, arbiter inventory).
pub fn cmd_info() -> String {
    use noc_analysis as an;
    let mut out = String::new();
    let _ = writeln!(out, "Non-blocking maximal-matching probabilities (Table 2):");
    let _ = writeln!(out, "  generic        {:.4}", an::generic_non_blocking_probability(5));
    let _ = writeln!(out, "  path-sensitive {:.4}", an::path_sensitive_non_blocking_probability());
    let _ = writeln!(out, "  roco           {:.4}", an::roco_non_blocking_probability());
    let _ = writeln!(out, "\nVA arbiters for v = 3 (Fig 2):");
    let g = an::generic_va(3);
    let r = an::roco_va(3);
    let _ = writeln!(
        out,
        "  generic: {} x {}:1 second-stage arbiters   roco: {} x {}:1",
        g.second_stage.count, g.second_stage.size, r.second_stage.count, r.second_stage.size
    );
    let _ = writeln!(out, "\nRoCo Table-1 VC configuration:");
    for routing in RoutingKind::ALL {
        let cfg = noc_core::RouterConfig::paper(RouterKind::RoCo, routing);
        let hist = noc_router::class_histogram(&noc_router::table1_vcs(&cfg));
        let desc: Vec<String> = hist.iter().map(|(k, v)| format!("{v}x{k}")).collect();
        let _ = writeln!(out, "  {routing:>9}: {}", desc.join(" "));
    }
    let _ = writeln!(out, "\nWorkloads: uniform, transpose, self-similar, mpeg, hotspot, bit-complement");
    let _ = writeln!(out, "Run `noc run --help` style usage:\n\n{USAGE}");
    out
}

/// Dispatches a parsed command line.
pub fn dispatch(args: &Args) -> Result<String, ArgError> {
    match args.command.as_deref() {
        Some("run") => cmd_run(args),
        Some("sweep") => cmd_sweep(args),
        Some("fault") => cmd_fault(args),
        Some("thermal") => cmd_thermal(args),
        Some("info") => Ok(cmd_info()),
        Some("help") | None => Ok(USAGE.to_string()),
        Some(other) => Err(ArgError(format!("unknown command '{other}'\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn run_produces_summary() {
        let out = dispatch(&parse("run --packets 300 --warmup 30 --rate 0.1")).unwrap();
        assert!(out.contains("roco router"));
        assert!(out.contains("completion          1.0000"));
        assert!(out.contains("PEF"));
    }

    #[test]
    fn run_with_heatmaps() {
        let out =
            dispatch(&parse("run --packets 200 --warmup 20 --rate 0.1 --heatmaps true")).unwrap();
        assert!(out.contains("crossbar traversals per router"));
        assert!(out.contains("SA contention probability"));
    }

    #[test]
    fn sweep_emits_csv() {
        let out = dispatch(&parse(
            "sweep --router all --rates 0.1 --packets 200 --warmup 20",
        ))
        .unwrap();
        assert!(out.starts_with("router,rate,"));
        assert_eq!(out.lines().count(), 4, "header + one row per router");
    }

    #[test]
    fn fault_reports_all_routers() {
        let out = dispatch(&parse(
            "fault --router all --faults 1 --packets 400 --warmup 40",
        ))
        .unwrap();
        assert!(out.contains("generic"));
        assert!(out.contains("roco"));
        assert!(out.contains("completion"));
    }

    #[test]
    fn thermal_prints_a_temperature_map() {
        let out = dispatch(&parse("thermal --packets 300 --warmup 30 --rate 0.15")).unwrap();
        assert!(out.contains("temperature per tile"));
        assert!(out.contains("peak"));
    }

    #[test]
    fn info_and_help() {
        let info = dispatch(&parse("info")).unwrap();
        assert!(info.contains("0.0430"));
        assert!(info.contains("Table-1"));
        let help = dispatch(&Args::default()).unwrap();
        assert!(help.contains("USAGE"));
    }

    #[test]
    fn unknown_command_and_flags_error() {
        assert!(dispatch(&parse("explode")).is_err());
        assert!(dispatch(&parse("run --bogus 1")).is_err());
        assert!(dispatch(&parse("run --rate 2.0")).is_err());
    }
}
