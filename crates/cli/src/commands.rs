//! The `noc` subcommands: `run`, `sweep`, `fault`, `campaign`,
//! `timeline`, `audit`, `golden`, `info`.

use crate::{parse_mesh, parse_rates, parse_router, parse_routing, parse_traffic, ArgError, Args};
use noc_bench::campaign::{run_campaign, CampaignConfig};
use noc_core::{RouterKind, RoutingKind};
use noc_fault::{FaultCategory, FaultPlan};
use noc_sim::export::{export_interval, export_profile, export_results};
use noc_sim::{
    check_slos, parse_slos, CsvTraceSink, IntervalSample, JsonlMetricsSink, JsonlTraceSink,
    MetricsSink, PerfettoTraceSink, RecoveryConfig, Registry, SimConfig, SimResults, Simulation,
    TraceSink,
};
use std::cell::RefCell;
use std::fmt::Write as _;
use std::io::BufWriter;
use std::rc::Rc;

/// Top-level usage text.
pub const USAGE: &str = "\
noc — RoCo NoC simulator (ISCA 2006 reproduction)

USAGE:
  noc run   [--router R] [--routing A] [--traffic T] [--rate F] [--mesh WxH]
            [--packets N] [--warmup N] [--seed N] [--heatmaps true]
            [--metrics-out F.jsonl] [--trace-out F.perfetto.json|F.jsonl|F.csv]
            [--sample-window N] [--postmortem-out F.json]
            [--kernel optimized|reference|parallel|soa] [--threads N]
            [--slo CLASS:METRIC<=N,...] [--profile true] [--prom-out F.prom]
            [--fault-routing true] [--topology SPEC]
  noc sweep [--router R|all] [--routing A] [--traffic T] [--rates F,F,...]
            [--mesh WxH] [--packets N] [--seed N] [--topology SPEC]
  noc fault [--router R|all] [--routing A] [--category critical|recyclable]
            [--faults N] [--rate F] [--packets N] [--seed N]
            [--fault-routing true] [--topology SPEC]
  noc campaign [--router R|all] [--routing A] [--traffic T] [--rate F]
            [--mesh WxH] [--packets N] [--warmup N] [--seed N]
            [--mtbfs C,C,...] [--repair N|0] [--seeds N] [--recovery true]
            [--category critical|recyclable] [--sample-window N]
            [--json-out F.json] [--prom-out F.prom] [--fault-routing true]
            [--topology SPEC]
  noc timeline [--router R] [--routing A] [--traffic T] [--rate F] [--mesh WxH]
            [--packets N] [--warmup N] [--seed N] [--sample-window N]
            [--json true] [--topology SPEC]
  noc thermal [--router R] [--routing A] [--traffic T] [--rate F] [--packets N]
  noc audit [--router R] [--routing A] [--traffic T] [--rate F] [--mesh WxH]
            [--packets N] [--warmup N] [--seed N]
            [--kernel optimized|reference|parallel|soa] [--threads N]
            [--interval N] [--faults N] [--category critical|recyclable]
            [--recovery true] [--fault-routing true] [--topology SPEC]
  noc golden [--update true]
  noc info

VALUES:
  R: generic | path-sensitive | roco (default roco)
  A: xy | xy-yx | adaptive | odd-even (default xy)
  T: uniform | transpose | self-similar | mpeg | hotspot | bit-complement
  CLASS:  all | local | near | mid | far (hop-distance flow classes)
  METRIC: p50 | p95 | p99 | p999 | mean | max (latency, cycles)
  SPEC:   mesh | torus | circulant:N,S1,S2 | chiplet:CXxCY,WxH,D
          (default mesh; DESIGN.md §17)

TOPOLOGY (DESIGN.md §17):
  --topology selects the network graph the same simulator runs on:
  'torus' adds wraparound rings (dateline VCs break the ring cycles),
  'circulant:13,1,5' is the ring circulant C(13;1,5), and
  'chiplet:2x2,4x4,3' stitches 2x2 chips of 4x4 nodes with 3-cycle
  die-to-die boundary links. Wraparound topologies require
  dimension-ordered XY on the generic router with >=2 VCs; the flag
  retargets the config (and remaps any fault sites) accordingly.
  --mesh sets the bounding grid for mesh/torus and is snapped to the
  topology's own grid for circulant/chiplet.

TELEMETRY:
  --metrics-out streams one JSON object per sample window (JSONL);
  --trace-out picks its format from the extension: .perfetto.json / .json
  (Chrome trace events, open in ui.perfetto.dev), .csv, else JSONL;
  --prom-out writes the run's metrics registry as Prometheus text
  exposition; --slo gates the exit code on latency service levels
  (e.g. 'near:p99<=40,all:p999<=200'); --profile true prints the
  simulator self-profile (never changes results: digests are identical
  with profiling on or off).

FAULT-AWARE ROUTING (DESIGN.md §16):
  --fault-routing true turns on the published-status link mask: route
  computation excludes links faulted in the network-wide health view,
  takes the deadlock-safe escape path around dead regions, and refuses
  packets whose destination is unreachable (the 'unroutable' outcome;
  with recovery on, delivered + abandoned + unroutable == generated).
  For `campaign` the flag runs a paired oblivious/aware leg per cell
  sharing the same fault schedule, so delivered-coverage retention is
  directly comparable.
";

fn base_config(args: &Args) -> Result<SimConfig, ArgError> {
    // `--router all` is resolved by the sweep/fault loops; the base
    // config then acts as a template whose router field is overwritten.
    let router = match args.get("router") {
        Some("all") => RouterKind::RoCo,
        other => parse_router(other.unwrap_or("roco"))?,
    };
    let routing = parse_routing(args.get("routing").unwrap_or("xy"))?;
    let traffic = parse_traffic(args.get("traffic").unwrap_or("uniform"))?;
    let mut cfg = SimConfig::paper_scaled(router, routing, traffic);
    cfg.mesh = parse_mesh(args.get("mesh").unwrap_or("8x8"))?;
    // ISSUE 9: topology selection. The retarget snaps the mesh to the
    // topology's bounding grid and, on wraparound topologies (torus,
    // circulant), forces the supported generic/XY/2-VC combination.
    if let Some(spec) = args.get("topology") {
        let topology = noc_core::TopologyConfig::parse_spec(spec)
            .map_err(|e| ArgError(format!("--topology: {e}")))?;
        noc_sim::retarget_topology(&mut cfg, topology);
    }
    cfg.injection_rate = args.get_or("rate", 0.25)?;
    if cfg.injection_rate <= 0.0 || cfg.injection_rate > 1.0 {
        return Err(ArgError("--rate must be in (0, 1]".into()));
    }
    cfg.measured_packets = args.get_or("packets", 10_000u64)?;
    cfg.warmup_packets = args.get_or("warmup", cfg.measured_packets / 10)?;
    cfg.seed = args.get_or("seed", 0xC0C0u64)?;
    // All kernels are bit-identical (DESIGN.md §10, §13, §15);
    // `reference` exists for benchmarking the wake-set and for
    // bisecting, `parallel` shards Phase 3 across worker threads, `soa`
    // is the single-thread data-oriented kernel.
    cfg.kernel = match args.get("kernel") {
        None | Some("optimized") => noc_sim::KernelMode::Optimized,
        Some("reference") => noc_sim::KernelMode::Reference,
        Some("parallel") => noc_sim::KernelMode::Parallel,
        Some("soa") => noc_sim::KernelMode::Soa,
        Some(other) => {
            return Err(ArgError(format!(
                "--kernel: 'optimized', 'reference', 'parallel' or 'soa', got '{other}'"
            )))
        }
    };
    // Worker count for the parallel kernel; `NOC_THREADS` and
    // `available_parallelism` fill in when the flag is absent
    // (noc_sim::worker_threads). Never affects results.
    if let Some(t) = args.get("threads") {
        let t: usize =
            t.parse().map_err(|_| ArgError(format!("--threads: expected a count, got '{t}'")))?;
        if t == 0 {
            return Err(ArgError("--threads must be at least 1".into()));
        }
        cfg.threads = Some(t);
    }
    // ISSUE 8: the network-wide fault-status mask for route
    // computation, plus reachability-aware fail-fast (DESIGN.md §16).
    cfg.fault_routing = args.get_or("fault-routing", false)?;
    Ok(cfg)
}

fn summarize(r: &SimResults) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "  cycles              {}", r.cycles);
    let _ = writeln!(
        s,
        "  packets             {} generated / {} injected / {} delivered / {} dropped",
        r.generated_packets, r.injected_packets, r.delivered_packets, r.dropped_packets
    );
    let _ = writeln!(
        s,
        "  latency             avg {:.2}  p50 {}  p95 {}  p99 {}  p999 {}  max {} cycles",
        r.avg_latency, r.latency_p50, r.latency_p95, r.latency_p99, r.latency_p999, r.max_latency
    );
    for c in r.classes.iter().filter(|c| c.count > 0) {
        let _ =
            writeln!(
            s,
            "  latency[{:<5}]      avg {:.2}  p50 {}  p95 {}  p99 {}  p999 {}  max {}  ({} pkts)",
            c.class.to_string(), c.mean, c.p50, c.p95, c.p99, c.p999, c.max, c.count
        );
    }
    let _ = writeln!(s, "  throughput          {:.4} flits/node/cycle", r.throughput);
    let _ = writeln!(s, "  completion          {:.4}", r.completion_probability());
    let _ = writeln!(s, "  energy per packet   {:.4} nJ", r.energy_per_packet * 1e9);
    let _ = writeln!(
        s,
        "  contention          x {:.3} / y {:.3}",
        r.contention.x_contention_probability().unwrap_or(0.0),
        r.contention.y_contention_probability().unwrap_or(0.0)
    );
    let _ = writeln!(s, "  PEF                 {:.3} nJ·cycles", r.pef_inputs().pef() * 1e9);
    if let Some(rec) = r.recovery.as_ref() {
        let _ = writeln!(
            s,
            "  recovery            retrans {}  recovered {}  abandoned {}  unroutable {}",
            rec.retransmissions,
            rec.recovered_packets,
            rec.abandoned_packets,
            rec.unroutable_packets
        );
    }
    if r.stalled {
        let _ = writeln!(s, "  [run ended on the inactivity detector]");
    }
    s
}

/// Opens `path` as a JSONL metrics sink.
fn open_metrics_sink(path: &str) -> Result<Box<dyn MetricsSink>, ArgError> {
    let file = std::fs::File::create(path)
        .map_err(|e| ArgError(format!("cannot create '{path}': {e}")))?;
    Ok(Box::new(JsonlMetricsSink::new(BufWriter::new(file))))
}

/// Opens `path` as a trace sink, picking the format from the extension:
/// `.perfetto.json` / `.json` → Chrome trace events, `.csv` → CSV,
/// anything else → JSONL.
fn open_trace_sink(path: &str) -> Result<Box<dyn TraceSink>, ArgError> {
    let file = std::fs::File::create(path)
        .map_err(|e| ArgError(format!("cannot create '{path}': {e}")))?;
    let writer = BufWriter::new(file);
    let io_err = |e: std::io::Error| ArgError(format!("cannot write '{path}': {e}"));
    if path.ends_with(".json") {
        Ok(Box::new(PerfettoTraceSink::new(writer).map_err(io_err)?))
    } else if path.ends_with(".csv") {
        Ok(Box::new(CsvTraceSink::new(writer).map_err(io_err)?))
    } else {
        Ok(Box::new(JsonlTraceSink::new(writer)))
    }
}

/// The identifying labels attached to every metric a command exports
/// (owned strings, because `SimConfig` moves into the simulation).
#[derive(Debug)]
struct RunLabels {
    router: String,
    routing: String,
    traffic: String,
    mesh: String,
}

impl RunLabels {
    fn of(cfg: &SimConfig) -> Self {
        RunLabels {
            router: cfg.router.to_string(),
            routing: cfg.routing.to_string(),
            traffic: cfg.traffic.to_string(),
            mesh: format!("{}x{}", cfg.mesh.width, cfg.mesh.height),
        }
    }

    fn as_pairs(&self) -> [(&str, &str); 4] {
        [
            ("router", &self.router),
            ("routing", &self.routing),
            ("traffic", &self.traffic),
            ("mesh", &self.mesh),
        ]
    }
}

/// `noc run`: one simulation, full summary, optional heatmaps and
/// telemetry exports.
pub fn cmd_run(args: &Args) -> Result<String, ArgError> {
    let unknown = args.unknown_flags(&[
        "router",
        "routing",
        "traffic",
        "rate",
        "mesh",
        "packets",
        "warmup",
        "seed",
        "heatmaps",
        "metrics-out",
        "trace-out",
        "sample-window",
        "postmortem-out",
        "kernel",
        "threads",
        "slo",
        "profile",
        "prom-out",
        "fault-routing",
        "topology",
    ]);
    if !unknown.is_empty() {
        return Err(ArgError(format!("unknown flags: {}", unknown.join(", "))));
    }
    // Parse the SLO gate up front so a malformed spec fails before the
    // simulation spends any cycles.
    let slos = match args.get("slo") {
        Some(text) => parse_slos(text).map_err(ArgError)?,
        None => Vec::new(),
    };
    let mut cfg = base_config(args)?;
    cfg.sample_window = args.get_or("sample-window", cfg.sample_window)?;
    cfg.profile = args.get_or("profile", false)?;
    let heatmaps: bool = args.get_or("heatmaps", false)?;
    let label = format!(
        "{} router, {} routing, {} traffic @ {} flits/node/cycle on {}x{}",
        cfg.router, cfg.routing, cfg.traffic, cfg.injection_rate, cfg.mesh.width, cfg.mesh.height
    );
    let run_labels = RunLabels::of(&cfg);
    let mut sim = Simulation::new(cfg);
    if let Some(path) = args.get("metrics-out") {
        sim.set_metrics_sink(open_metrics_sink(path)?);
    }
    if let Some(path) = args.get("trace-out") {
        sim.set_trace_sink(open_trace_sink(path)?);
    }
    while !sim.finished() {
        sim.step();
    }
    sim.finish_observability();
    let results = sim.results();
    let mut out = format!("{label}\n{}", summarize(&results));
    if heatmaps {
        let report = sim.node_report();
        out.push('\n');
        out.push_str(&report.crossbar_heatmap());
        out.push('\n');
        out.push_str(&report.contention_heatmap());
        out.push('\n');
        out.push_str(&report.latency_heatmap());
        out.push('\n');
        out.push_str(&report.occupancy_heatmap());
        out.push('\n');
        out.push_str(&report.credit_stall_heatmap());
    }
    if let Some(pm) = results.postmortem.as_ref() {
        out.push('\n');
        out.push_str(&pm.render());
        if let Some(path) = args.get("postmortem-out") {
            std::fs::write(path, pm.to_json())
                .map_err(|e| ArgError(format!("cannot write '{path}': {e}")))?;
        }
    }
    if let Some(profile) = results.profile.as_ref() {
        out.push('\n');
        out.push_str(&profile.render());
    }
    if let Some(path) = args.get("prom-out") {
        let mut reg = Registry::new();
        let pairs = run_labels.as_pairs();
        export_results(&mut reg, &results, &pairs);
        if let Some(profile) = results.profile.as_ref() {
            export_profile(&mut reg, profile, &pairs);
        }
        std::fs::write(path, reg.render_prometheus())
            .map_err(|e| ArgError(format!("cannot write '{path}': {e}")))?;
        let _ = writeln!(out, "[wrote {path}]");
    }
    // The SLO gate runs last so every requested artifact is on disk
    // before a violation turns the run into a nonzero exit.
    let violations = check_slos(&slos, &results);
    if !violations.is_empty() {
        let mut msg = String::from("SLO gate failed\n");
        for v in &violations {
            let _ = writeln!(msg, "  {v}");
        }
        return Err(ArgError(msg));
    }
    if !slos.is_empty() {
        let _ = writeln!(out, "  SLO                 {} clause(s) met", slos.len());
    }
    Ok(out)
}

/// A metrics sink sharing its sample buffer with the caller (the
/// `timeline` command reads it back after the run).
#[derive(Debug, Default)]
struct SharedMetrics(Rc<RefCell<Vec<IntervalSample>>>);

impl MetricsSink for SharedMetrics {
    fn record_sample(&mut self, sample: &IntervalSample) {
        self.0.borrow_mut().push(sample.clone());
    }
}

/// One character per window, scaled 0..max over an ASCII density ramp.
fn sparkline(values: &[f64]) -> String {
    const RAMP: &[u8] = b" .:-=+*#%@";
    let max = values.iter().copied().filter(|v| v.is_finite()).fold(0.0f64, f64::max);
    values
        .iter()
        .map(|&v| {
            if !v.is_finite() {
                '?'
            } else if max <= 0.0 {
                ' '
            } else {
                let idx = (v / max * (RAMP.len() - 1) as f64).round() as usize;
                RAMP[idx.min(RAMP.len() - 1)] as char
            }
        })
        .collect()
}

/// `noc timeline`: run with the interval sampler attached and print
/// ASCII sparklines of the per-window time-series.
pub fn cmd_timeline(args: &Args) -> Result<String, ArgError> {
    let unknown = args.unknown_flags(&[
        "router",
        "routing",
        "traffic",
        "rate",
        "mesh",
        "packets",
        "warmup",
        "seed",
        "sample-window",
        "json",
        "topology",
    ]);
    if !unknown.is_empty() {
        return Err(ArgError(format!("unknown flags: {}", unknown.join(", "))));
    }
    let json: bool = args.get_or("json", false)?;
    let mut cfg = base_config(args)?;
    cfg.sample_window = args.get_or("sample-window", cfg.sample_window)?;
    let window = cfg.sample_window;
    let label = format!(
        "{} router, {} routing, {} traffic @ {} flits/node/cycle on {}x{}",
        cfg.router, cfg.routing, cfg.traffic, cfg.injection_rate, cfg.mesh.width, cfg.mesh.height
    );
    let run_labels = RunLabels::of(&cfg);
    let samples = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Simulation::new(cfg);
    sim.set_metrics_sink(Box::new(SharedMetrics(Rc::clone(&samples))));
    while !sim.finished() {
        sim.step();
    }
    sim.finish_observability();
    let samples = samples.borrow();
    if json {
        // Machine-readable mode: every window goes through the
        // exporter registry and comes out as JSONL, the same samples
        // the sparklines are drawn from.
        let mut reg = Registry::new();
        let pairs = run_labels.as_pairs();
        for sample in samples.iter() {
            export_interval(&mut reg, sample, &pairs);
        }
        return Ok(reg.render_jsonl());
    }
    let mut out = format!("{label}\n{} windows of {window} cycles\n", samples.len());
    let rows: [(&str, Vec<f64>); 8] = [
        ("injected/window", samples.iter().map(|s| s.injected as f64).collect()),
        ("delivered/window", samples.iter().map(|s| s.delivered as f64).collect()),
        ("throughput", samples.iter().map(IntervalSample::throughput).collect()),
        ("mean latency", samples.iter().map(|s| s.latency_mean).collect()),
        ("p99 latency", samples.iter().map(|s| s.latency_p99 as f64).collect()),
        ("p999 latency", samples.iter().map(|s| s.latency_p999 as f64).collect()),
        (
            "buffered flits",
            samples
                .iter()
                .map(|s| s.routers.iter().map(|r| r.occupancy).sum::<u64>() as f64)
                .collect(),
        ),
        (
            "credit stalls",
            samples
                .iter()
                .map(|s| s.routers.iter().map(|r| r.credit_stall_cycles).sum::<u64>() as f64)
                .collect(),
        ),
    ];
    for (name, values) in rows {
        let max = values.iter().copied().filter(|v| v.is_finite()).fold(0.0f64, f64::max);
        let _ = writeln!(out, "  {name:>16} |{}| max {max:.2}", sparkline(&values));
    }
    Ok(out)
}

fn routers_of(args: &Args) -> Result<Vec<RouterKind>, ArgError> {
    match args.get("router") {
        Some("all") => Ok(RouterKind::ALL.to_vec()),
        Some(s) => Ok(vec![parse_router(s)?]),
        None => Ok(vec![RouterKind::RoCo]),
    }
}

/// `noc sweep`: latency/energy vs injection rate, CSV to stdout.
pub fn cmd_sweep(args: &Args) -> Result<String, ArgError> {
    let unknown = args.unknown_flags(&[
        "router", "routing", "traffic", "rates", "mesh", "packets", "warmup", "seed", "topology",
    ]);
    if !unknown.is_empty() {
        return Err(ArgError(format!("unknown flags: {}", unknown.join(", "))));
    }
    let routers = routers_of(args)?;
    let rates = parse_rates(args.get("rates").unwrap_or("0.05,0.1,0.15,0.2,0.25,0.3"))?;
    let mut out =
        String::from("router,rate,avg_latency,p95_latency,throughput,energy_nj,completion\n");
    for router in routers {
        for &rate in &rates {
            let mut cfg = base_config(args)?;
            cfg.router = router;
            cfg.injection_rate = rate;
            let r = noc_sim::run(cfg);
            let _ = writeln!(
                out,
                "{router},{rate},{:.3},{},{:.4},{:.4},{:.4}",
                r.avg_latency,
                r.latency_p95,
                r.throughput,
                r.energy_per_packet * 1e9,
                r.completion_probability()
            );
        }
    }
    Ok(out)
}

/// `noc fault`: §4 fault experiment at one operating point.
pub fn cmd_fault(args: &Args) -> Result<String, ArgError> {
    let unknown = args.unknown_flags(&[
        "router",
        "routing",
        "traffic",
        "rate",
        "mesh",
        "packets",
        "warmup",
        "seed",
        "category",
        "faults",
        "fault-routing",
        "topology",
    ]);
    if !unknown.is_empty() {
        return Err(ArgError(format!("unknown flags: {}", unknown.join(", "))));
    }
    let category = parse_category(args, "critical")?;
    let count: usize = args.get_or("faults", 2usize)?;
    let routers = routers_of(args)?;
    let mut out = format!("{category} faults x{count}, 0.3 injection unless overridden\n");
    for router in routers {
        let mut cfg = base_config(args)?;
        cfg.router = router;
        if args.get("rate").is_none() {
            cfg.injection_rate = 0.3;
        }
        cfg.stall_window = 5_000;
        cfg.faults = FaultPlan::random(category, count, cfg.mesh, cfg.seed ^ 0xFA);
        let r = noc_sim::run(cfg);
        let _ = writeln!(
            out,
            "{router:>15}: completion {:.4}  latency {:>7.2}  blocked {:>5}  dropped {:>5}  PEF {:.2} nJ·cycles",
            r.completion_probability(),
            r.avg_latency,
            r.counters.blocked_packets,
            r.dropped_packets,
            r.pef_inputs().pef() * 1e9,
        );
    }
    Ok(out)
}

/// Parses the fault-category flag (shared by `fault` and `campaign`).
fn parse_category(args: &Args, default: &str) -> Result<FaultCategory, ArgError> {
    match args.get("category").unwrap_or(default) {
        "critical" | "router-centric" => Ok(FaultCategory::Isolating),
        "recyclable" | "message-centric" | "non-critical" => Ok(FaultCategory::Recyclable),
        other => {
            Err(ArgError(format!("unknown category '{other}' (expected critical | recyclable)")))
        }
    }
}

/// `noc campaign`: the graceful-degradation campaign — Monte Carlo
/// mid-run fault arrivals swept over fault rate × router, with
/// per-window availability / throughput-retention / PEF timelines and
/// an optional deterministic JSON report.
pub fn cmd_campaign(args: &Args) -> Result<String, ArgError> {
    let unknown = args.unknown_flags(&[
        "router",
        "routing",
        "traffic",
        "rate",
        "mesh",
        "packets",
        "warmup",
        "seed",
        "mtbfs",
        "repair",
        "seeds",
        "recovery",
        "category",
        "sample-window",
        "json-out",
        "prom-out",
        "fault-routing",
        "topology",
    ]);
    if !unknown.is_empty() {
        return Err(ArgError(format!("unknown flags: {}", unknown.join(", "))));
    }
    let mtbfs: Vec<f64> = args
        .get("mtbfs")
        .unwrap_or("500,2000")
        .split(',')
        .map(|tok| {
            let v: f64 = tok.trim().parse().map_err(|_| ArgError(format!("bad mtbf '{tok}'")))?;
            if v <= 0.0 {
                return Err(ArgError(format!("mtbf {v} must be > 0 cycles")));
            }
            Ok(v)
        })
        .collect::<Result<_, _>>()?;
    let repair: u64 = args.get_or("repair", 400u64)?;
    let base = base_config(args)?;
    let campaign = CampaignConfig {
        mesh: base.mesh,
        topology: base.topology,
        routers: routers_of(args)?,
        routing: base.routing,
        traffic: base.traffic,
        injection_rate: base.injection_rate,
        mtbfs,
        category: parse_category(args, "recyclable")?,
        repair_after: if repair == 0 { None } else { Some(repair) },
        seeds: args.get_or("seeds", 2u64)?,
        base_seed: base.seed,
        warmup_packets: base.warmup_packets,
        measured_packets: base.measured_packets,
        sample_window: args.get_or("sample-window", base.sample_window)?,
        recovery: if args.get_or("recovery", true)? {
            Some(RecoveryConfig::default())
        } else {
            None
        },
        fault_routing: base.fault_routing,
    };
    let report = run_campaign(&campaign);
    let repair_desc = match campaign.repair_after {
        Some(d) => format!("transient, heal after {d}"),
        None => "permanent".to_string(),
    };
    let mut out = format!(
        "graceful-degradation campaign: {}x{} mesh, {} routing, {} faults ({repair_desc}), \
         recovery {}{}\n",
        campaign.mesh.width,
        campaign.mesh.height,
        campaign.routing,
        campaign.category,
        if campaign.recovery.is_some() { "on" } else { "off" },
        if campaign.fault_routing { ", paired oblivious/fault-aware legs" } else { "" },
    );
    for cell in &report.cells {
        let min_of = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
        let _ = writeln!(
            out,
            "{:>15}{} mtbf {:>7} seed {}: {} fault events, completion {:.4}, \
             delivered {}/{} (retention {:.3}), retrans {} (recovered {}, abandoned {}, \
             unroutable {}), PEF {:.2} nJ·cycles",
            cell.router.to_string(),
            if cell.fault_aware { " [aware]" } else { "" },
            cell.mtbf,
            cell.seed,
            cell.fault_events,
            cell.completion,
            cell.delivered,
            cell.generated,
            cell.coverage_retention,
            cell.retransmissions,
            cell.recovered,
            cell.abandoned,
            cell.unroutable,
            cell.pef * 1e9,
        );
        let _ = writeln!(
            out,
            "     availability |{}| min {:.3}",
            sparkline(&cell.availability),
            min_of(&cell.availability)
        );
        let _ = writeln!(
            out,
            "     retention    |{}| min {:.3}",
            sparkline(&cell.retention),
            min_of(&cell.retention)
        );
        let _ = writeln!(out, "     PEF/time     |{}|", sparkline(&cell.pef_over_time));
    }
    if let Some(path) = args.get("json-out") {
        std::fs::write(path, report.to_json())
            .map_err(|e| ArgError(format!("cannot write '{path}': {e}")))?;
        let _ = writeln!(out, "[wrote {path}]");
    }
    if let Some(path) = args.get("prom-out") {
        let mut reg = Registry::new();
        noc_bench::campaign::export_campaign(&mut reg, &report);
        std::fs::write(path, reg.render_prometheus())
            .map_err(|e| ArgError(format!("cannot write '{path}': {e}")))?;
        let _ = writeln!(out, "[wrote {path}]");
    }
    Ok(out)
}

/// `noc audit`: one simulation with the runtime invariant auditor
/// enabled every `--interval` cycles; prints the audit report and
/// exits non-zero when any invariant fired.
pub fn cmd_audit(args: &Args) -> Result<String, ArgError> {
    let unknown = args.unknown_flags(&[
        "router",
        "routing",
        "traffic",
        "rate",
        "mesh",
        "packets",
        "warmup",
        "seed",
        "kernel",
        "threads",
        "interval",
        "faults",
        "category",
        "recovery",
        "fault-routing",
        "topology",
    ]);
    if !unknown.is_empty() {
        return Err(ArgError(format!("unknown flags: {}", unknown.join(", "))));
    }
    let mut cfg = base_config(args)?;
    cfg.audit = Some(noc_sim::AuditConfig {
        interval: args.get_or("interval", 1u64)?.max(1),
        max_recorded: 16,
    });
    let count: usize = args.get_or("faults", 0usize)?;
    if count > 0 {
        cfg.faults = FaultPlan::random(
            parse_category(args, "recyclable")?,
            count,
            cfg.mesh,
            cfg.seed ^ 0xFA,
        );
        cfg.stall_window = 5_000;
    }
    if args.get_or("recovery", false)? {
        cfg.recovery = Some(RecoveryConfig::default());
    }
    let label = format!(
        "audit: {} router, {} routing, {} traffic @ {} flits/node/cycle on {}x{}",
        cfg.router, cfg.routing, cfg.traffic, cfg.injection_rate, cfg.mesh.width, cfg.mesh.height
    );
    let r = noc_sim::run(cfg);
    let report = r.audit.as_ref().expect("audit was enabled");
    if !report.clean() {
        return Err(ArgError(format!("invariant violations detected\n{}", report.render())));
    }
    Ok(format!("{label}\n{}{}", summarize(&r), report.render()))
}

/// `noc golden`: the golden regression corpus — re-runs every
/// committed scenario and diffs digests and headline statistics;
/// `--update true` regenerates the corpus after an intentional change.
pub fn cmd_golden(args: &Args) -> Result<String, ArgError> {
    let unknown = args.unknown_flags(&["update"]);
    if !unknown.is_empty() {
        return Err(ArgError(format!("unknown flags: {}", unknown.join(", "))));
    }
    let update: bool = args.get_or("update", false)?;
    let summary = noc_bench::golden::check_all(update);
    let rendered = summary.render();
    if summary.failed() {
        return Err(ArgError(format!("golden corpus drift\n{rendered}")));
    }
    Ok(rendered)
}

/// `noc thermal`: simulate, derive per-tile power, solve the
/// steady-state temperature field and print its heatmap.
pub fn cmd_thermal(args: &Args) -> Result<String, ArgError> {
    let unknown = args.unknown_flags(&[
        "router", "routing", "traffic", "rate", "mesh", "packets", "warmup", "seed", "topology",
    ]);
    if !unknown.is_empty() {
        return Err(ArgError(format!("unknown flags: {}", unknown.join(", "))));
    }
    let cfg = base_config(args)?;
    let rcfg = cfg.router_config();
    let mesh = cfg.mesh;
    let label = format!("{} router, {} routing, {} traffic", cfg.router, cfg.routing, cfg.traffic);
    let mut sim = Simulation::new(cfg);
    while !sim.finished() {
        sim.step();
    }
    let params = noc_thermal::ThermalParams::default();
    let power = noc_thermal::power_map(&sim.node_report(), &rcfg, &params);
    let temps = noc_thermal::steady_state(mesh, &power, &params);
    let s = noc_thermal::summarize(&temps);
    let mut out = format!("{label}\n");
    let _ = writeln!(
        out,
        "  total power {:.3} W   peak {:.2} C   avg {:.2} C   gradient {:.2} C\n",
        power.iter().sum::<f64>(),
        s.max_c,
        s.avg_c,
        s.gradient_c
    );
    out.push_str(&noc_sim::render_heatmap(mesh, "temperature per tile", &temps));
    Ok(out)
}

/// `noc info`: the analytic tables (Table 1/2, arbiter inventory).
pub fn cmd_info() -> String {
    use noc_analysis as an;
    let mut out = String::new();
    let _ = writeln!(out, "Non-blocking maximal-matching probabilities (Table 2):");
    let _ = writeln!(out, "  generic        {:.4}", an::generic_non_blocking_probability(5));
    let _ = writeln!(out, "  path-sensitive {:.4}", an::path_sensitive_non_blocking_probability());
    let _ = writeln!(out, "  roco           {:.4}", an::roco_non_blocking_probability());
    let _ = writeln!(out, "\nVA arbiters for v = 3 (Fig 2):");
    let g = an::generic_va(3);
    let r = an::roco_va(3);
    let _ = writeln!(
        out,
        "  generic: {} x {}:1 second-stage arbiters   roco: {} x {}:1",
        g.second_stage.count, g.second_stage.size, r.second_stage.count, r.second_stage.size
    );
    let _ = writeln!(out, "\nRoCo Table-1 VC configuration:");
    for routing in RoutingKind::ALL {
        let cfg = noc_core::RouterConfig::paper(RouterKind::RoCo, routing);
        let hist = noc_router::class_histogram(&noc_router::table1_vcs(&cfg));
        let desc: Vec<String> = hist.iter().map(|(k, v)| format!("{v}x{k}")).collect();
        let _ = writeln!(out, "  {routing:>9}: {}", desc.join(" "));
    }
    let _ = writeln!(
        out,
        "\nWorkloads: uniform, transpose, self-similar, mpeg, hotspot, bit-complement"
    );
    let _ = writeln!(out, "Run `noc run --help` style usage:\n\n{USAGE}");
    out
}

/// Dispatches a parsed command line.
pub fn dispatch(args: &Args) -> Result<String, ArgError> {
    match args.command.as_deref() {
        Some("run") => cmd_run(args),
        Some("sweep") => cmd_sweep(args),
        Some("fault") => cmd_fault(args),
        Some("campaign") => cmd_campaign(args),
        Some("timeline") => cmd_timeline(args),
        Some("audit") => cmd_audit(args),
        Some("golden") => cmd_golden(args),
        Some("thermal") => cmd_thermal(args),
        Some("info") => Ok(cmd_info()),
        Some("help") | None => Ok(USAGE.to_string()),
        Some(other) => Err(ArgError(format!("unknown command '{other}'\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Args {
        Args::parse(s.split_whitespace().map(String::from)).unwrap()
    }

    #[test]
    fn run_produces_summary() {
        let out = dispatch(&parse("run --packets 300 --warmup 30 --rate 0.1")).unwrap();
        assert!(out.contains("roco router"));
        assert!(out.contains("completion          1.0000"));
        assert!(out.contains("PEF"));
    }

    #[test]
    fn run_with_heatmaps() {
        let out =
            dispatch(&parse("run --packets 200 --warmup 20 --rate 0.1 --heatmaps true")).unwrap();
        assert!(out.contains("crossbar traversals per router"));
        assert!(out.contains("SA contention probability"));
    }

    #[test]
    fn sweep_emits_csv() {
        let out =
            dispatch(&parse("sweep --router all --rates 0.1 --packets 200 --warmup 20")).unwrap();
        assert!(out.starts_with("router,rate,"));
        assert_eq!(out.lines().count(), 4, "header + one row per router");
    }

    #[test]
    fn fault_reports_all_routers() {
        let out =
            dispatch(&parse("fault --router all --faults 1 --packets 400 --warmup 40")).unwrap();
        assert!(out.contains("generic"));
        assert!(out.contains("roco"));
        assert!(out.contains("completion"));
    }

    #[test]
    fn campaign_reports_and_writes_deterministic_json() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("noc-cli-test-{}-campaign.json", std::process::id()));
        let cmd = format!(
            "campaign --router roco --mesh 4x4 --rate 0.15 --packets 800 --warmup 80 \
             --mtbfs 400 --repair 300 --seeds 1 --sample-window 200 --json-out {}",
            path.display()
        );
        let out = dispatch(&parse(&cmd)).unwrap();
        assert!(out.contains("graceful-degradation campaign"));
        assert!(out.contains("availability"));
        assert!(out.contains("retention"));
        let first = std::fs::read_to_string(&path).unwrap();
        let v = noc_sim::json::Json::parse(&first).expect("report parses");
        assert_eq!(v.get("cells").unwrap().as_arr().unwrap().len(), 1);
        // Same seed, same flags → byte-identical report.
        dispatch(&parse(&cmd)).unwrap();
        let second = std::fs::read_to_string(&path).unwrap();
        assert_eq!(first, second, "campaign JSON must be deterministic per seed");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn campaign_fault_routing_runs_paired_legs() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("noc-cli-test-{}-aware.json", std::process::id()));
        let cmd = format!(
            "campaign --router roco --routing adaptive --mesh 4x4 --rate 0.15 --packets 800 \
             --warmup 80 --mtbfs 150 --repair 0 --seeds 1 --sample-window 200 \
             --category critical --fault-routing true --json-out {}",
            path.display()
        );
        let out = dispatch(&parse(&cmd)).unwrap();
        assert!(out.contains("paired oblivious/fault-aware legs"), "{out}");
        assert!(out.contains(" [aware]"), "{out}");
        assert!(out.contains("unroutable"), "{out}");
        let v = noc_sim::json::Json::parse(&std::fs::read_to_string(&path).unwrap()).unwrap();
        let cells = v.get("cells").unwrap().as_arr().unwrap();
        assert_eq!(cells.len(), 2, "one oblivious + one aware leg");
        assert_eq!(cells[0].get("fault_aware"), Some(&noc_sim::json::Json::Bool(false)));
        assert_eq!(cells[1].get("fault_aware"), Some(&noc_sim::json::Json::Bool(true)));
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn run_accepts_fault_routing_flag() {
        // With no faults the mask stays all-healthy, so the flag must
        // not perturb a clean run's statistics; the only new output is
        // the recovery accounting line carrying the zero `unroutable`
        // counter (fault-aware runs always track it).
        let base = "run --packets 300 --warmup 30 --rate 0.1 --mesh 4x4 --seed 9";
        let plain = dispatch(&parse(base)).unwrap();
        let aware = dispatch(&parse(&format!("{base} --fault-routing true"))).unwrap();
        let stats: String =
            aware.lines().filter(|l| !l.contains("recovery")).collect::<Vec<_>>().join("\n");
        assert_eq!(plain.trim_end(), stats, "an all-healthy mask must be behavior-neutral");
        assert!(aware.contains("unroutable 0"), "{aware}");
        // But sweep/timeline do not take the flag.
        assert!(dispatch(&parse("sweep --fault-routing true --rates 0.1")).is_err());
    }

    #[test]
    fn audit_passes_on_clean_and_faulted_runs() {
        let out =
            dispatch(&parse("audit --mesh 4x4 --packets 300 --warmup 30 --rate 0.15")).unwrap();
        assert!(out.contains("0 violation(s)"), "{out}");
        let out = dispatch(&parse(
            "audit --mesh 4x4 --packets 300 --warmup 30 --rate 0.15 --faults 2 \
             --category recyclable --recovery true --interval 2",
        ))
        .unwrap();
        assert!(out.contains("0 violation(s)"), "{out}");
    }

    #[test]
    fn thermal_prints_a_temperature_map() {
        let out = dispatch(&parse("thermal --packets 300 --warmup 30 --rate 0.15")).unwrap();
        assert!(out.contains("temperature per tile"));
        assert!(out.contains("peak"));
    }

    #[test]
    fn info_and_help() {
        let info = dispatch(&parse("info")).unwrap();
        assert!(info.contains("0.0430"));
        assert!(info.contains("Table-1"));
        let help = dispatch(&Args::default()).unwrap();
        assert!(help.contains("USAGE"));
    }

    #[test]
    fn unknown_command_and_flags_error() {
        assert!(dispatch(&parse("explode")).is_err());
        assert!(dispatch(&parse("run --bogus 1")).is_err());
        assert!(dispatch(&parse("run --rate 2.0")).is_err());
        assert!(dispatch(&parse("run --kernel warp")).is_err());
        assert!(dispatch(&parse("run --threads 0")).is_err());
        assert!(dispatch(&parse("run --threads lots")).is_err());
    }

    #[test]
    fn run_kernels_print_identical_summaries() {
        // Same seed, four kernels (parallel at two thread counts):
        // byte-identical summaries, the CLI face of DESIGN.md §13/§15.
        let base = "run --packets 300 --warmup 30 --rate 0.1 --seed 42";
        let optimized = dispatch(&parse(&format!("{base} --kernel optimized"))).unwrap();
        let reference = dispatch(&parse(&format!("{base} --kernel reference"))).unwrap();
        let par1 = dispatch(&parse(&format!("{base} --kernel parallel --threads 1"))).unwrap();
        let par4 = dispatch(&parse(&format!("{base} --kernel parallel --threads 4"))).unwrap();
        let soa = dispatch(&parse(&format!("{base} --kernel soa"))).unwrap();
        assert_eq!(optimized, reference);
        assert_eq!(optimized, par1);
        assert_eq!(optimized, par4);
        assert_eq!(optimized, soa);
        assert!(optimized.contains("completion"));
    }

    #[test]
    fn run_exports_metrics_and_perfetto_trace() {
        let dir = std::env::temp_dir();
        let pid = std::process::id();
        let metrics = dir.join(format!("noc-cli-test-{pid}-m.jsonl"));
        let trace = dir.join(format!("noc-cli-test-{pid}-t.perfetto.json"));
        let cmd = format!(
            "run --packets 300 --warmup 30 --rate 0.1 --sample-window 50 \
             --metrics-out {} --trace-out {}",
            metrics.display(),
            trace.display()
        );
        let out = dispatch(&parse(&cmd)).unwrap();
        assert!(out.contains("completion"));
        let mtext = std::fs::read_to_string(&metrics).unwrap();
        assert!(mtext.lines().count() > 1, "several 50-cycle windows elapsed");
        for line in mtext.lines() {
            let v = noc_sim::json::Json::parse(line).expect("each metrics line parses");
            assert!(v.get("latency_mean").is_some());
            assert!(v.get("throughput").is_some());
            let routers = v.get("routers").unwrap().as_arr().unwrap();
            assert_eq!(routers.len(), 64, "one entry per router of the 8x8 mesh");
            assert!(routers[0].get("occupancy").is_some());
        }
        let ttext = std::fs::read_to_string(&trace).unwrap();
        let v = noc_sim::json::Json::parse(&ttext).expect("the Perfetto document parses");
        let events = v.get("traceEvents").unwrap().as_arr().unwrap();
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.get("ph").is_some() && e.get("ts").is_some()));
        let _ = std::fs::remove_file(&metrics);
        let _ = std::fs::remove_file(&trace);
    }

    #[test]
    fn timeline_prints_sparklines() {
        let out =
            dispatch(&parse("timeline --packets 300 --warmup 30 --rate 0.1 --sample-window 50"))
                .unwrap();
        assert!(out.contains("windows of 50 cycles"));
        assert!(out.contains("delivered/window"));
        assert!(out.contains("p99 latency"));
        assert!(out.contains("p999 latency"));
        assert!(out.contains('|'));
    }

    #[test]
    fn timeline_json_mode_emits_registry_jsonl() {
        let out = dispatch(&parse(
            "timeline --packets 300 --warmup 30 --rate 0.1 --mesh 4x4 \
             --sample-window 50 --json true",
        ))
        .unwrap();
        assert!(out.lines().count() > 10, "several metrics per window");
        for line in out.lines() {
            let v = noc_sim::json::Json::parse(line).expect("each line parses");
            assert!(v.get("metric").is_some());
            assert!(v.get("labels").unwrap().get("window").is_some());
        }
        assert!(out.contains("\"metric\":\"noc_window_latency_cycles\""));
        assert!(out.contains("\"quantile\":\"p999\""));
        assert!(out.contains("\"router\":\"roco\""));
    }

    #[test]
    fn run_slo_gate_passes_and_fails() {
        let base = "run --packets 300 --warmup 30 --rate 0.1 --mesh 4x4";
        let ok =
            dispatch(&parse(&format!("{base} --slo all:p99<=100000,near:max<=100000"))).unwrap();
        assert!(ok.contains("2 clause(s) met"), "{ok}");
        let err = dispatch(&parse(&format!("{base} --slo all:p50<=0"))).unwrap_err();
        assert!(err.0.contains("SLO violated"), "{}", err.0);
        assert!(err.0.contains("all:p50"), "{}", err.0);
        // Malformed specs fail before the simulation runs.
        assert!(dispatch(&parse(&format!("{base} --slo bogus:p99<=10"))).is_err());
        assert!(dispatch(&parse(&format!("{base} --slo near:p99=10"))).is_err());
    }

    #[test]
    fn run_summary_includes_flow_classes() {
        let out = dispatch(&parse("run --packets 300 --warmup 30 --rate 0.1 --mesh 4x4")).unwrap();
        assert!(out.contains("p999"), "{out}");
        assert!(out.contains("latency[near ]"), "{out}");
        assert!(out.contains("latency[mid  ]"), "{out}");
    }

    #[test]
    fn run_profile_and_prom_export() {
        let dir = std::env::temp_dir();
        let prom = dir.join(format!("noc-cli-test-{}.prom", std::process::id()));
        let cmd = format!(
            "run --packets 300 --warmup 30 --rate 0.1 --mesh 4x4 --profile true --prom-out {}",
            prom.display()
        );
        let out = dispatch(&parse(&cmd)).unwrap();
        assert!(out.contains("self-profile"), "{out}");
        assert!(out.contains("wake set"), "{out}");
        let text = std::fs::read_to_string(&prom).unwrap();
        assert!(text.contains("# TYPE noc_delivered_packets counter"));
        assert!(text.contains("router=\"roco\""));
        assert!(text.contains("mesh=\"4x4\""));
        assert!(text.contains("class=\"near\""));
        assert!(text.contains("quantile=\"p999\""));
        assert!(text.contains("noc_profile_wall_seconds"));
        let _ = std::fs::remove_file(&prom);
    }

    #[test]
    fn sparkline_scales_zero_to_max() {
        assert_eq!(sparkline(&[0.0, 9.0]), " @");
        assert_eq!(sparkline(&[0.0, 0.0]), "  ", "an all-zero series stays blank");
        assert_eq!(sparkline(&[f64::NAN, 1.0]), "?@");
    }
}
