//! # noc-cli
//!
//! The `noc` command-line frontend to the RoCo reproduction: run single
//! simulations, sweep injection rates, inject faults, print heatmaps
//! and export telemetry — without writing any Rust.
//!
//! ```text
//! noc run      --router roco --routing xy --traffic uniform --rate 0.25
//! noc run      --rate 0.25 --metrics-out m.jsonl --trace-out t.perfetto.json
//! noc sweep    --router all --routing adaptive --rates 0.05,0.1,0.2,0.3
//! noc fault    --category critical --faults 4 --routing xy
//! noc timeline --rate 0.3 --sample-window 100
//! noc info
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod args;
pub mod commands;

pub use args::{ArgError, Args};

use noc_core::{MeshConfig, RouterKind, RoutingKind};
use noc_traffic::TrafficKind;

/// Parses a router name.
///
/// # Errors
///
/// Returns [`ArgError`] for an unknown name.
pub fn parse_router(s: &str) -> Result<RouterKind, ArgError> {
    match s {
        "generic" => Ok(RouterKind::Generic),
        "path-sensitive" | "ps" => Ok(RouterKind::PathSensitive),
        "roco" => Ok(RouterKind::RoCo),
        _ => Err(ArgError(format!(
            "unknown router '{s}' (expected generic | path-sensitive | roco)"
        ))),
    }
}

/// Parses a routing-algorithm name.
///
/// # Errors
///
/// Returns [`ArgError`] for an unknown name.
pub fn parse_routing(s: &str) -> Result<RoutingKind, ArgError> {
    match s {
        "xy" => Ok(RoutingKind::Xy),
        "xy-yx" | "xyyx" => Ok(RoutingKind::XyYx),
        "adaptive" => Ok(RoutingKind::Adaptive),
        "odd-even" | "adaptive-odd-even" => Ok(RoutingKind::AdaptiveOddEven),
        _ => Err(ArgError(format!(
            "unknown routing '{s}' (expected xy | xy-yx | adaptive | odd-even)"
        ))),
    }
}

/// Parses a traffic-pattern name.
///
/// # Errors
///
/// Returns [`ArgError`] for an unknown name.
pub fn parse_traffic(s: &str) -> Result<TrafficKind, ArgError> {
    match s {
        "uniform" => Ok(TrafficKind::Uniform),
        "transpose" => Ok(TrafficKind::Transpose),
        "self-similar" | "selfsimilar" => Ok(TrafficKind::SelfSimilar),
        "mpeg" => Ok(TrafficKind::Mpeg),
        "hotspot" => Ok(TrafficKind::Hotspot),
        "bit-complement" | "bitcomplement" => Ok(TrafficKind::BitComplement),
        _ => Err(ArgError(format!(
            "unknown traffic '{s}' (expected uniform | transpose | self-similar | mpeg | \
             hotspot | bit-complement)"
        ))),
    }
}

/// Parses `WxH` mesh dimensions.
///
/// # Errors
///
/// Returns [`ArgError`] for malformed or too-small dimensions.
pub fn parse_mesh(s: &str) -> Result<MeshConfig, ArgError> {
    let (w, h) = s
        .split_once(['x', 'X'])
        .ok_or_else(|| ArgError(format!("mesh '{s}' must look like 8x8")))?;
    let w: u16 = w.parse().map_err(|_| ArgError(format!("bad mesh width '{w}'")))?;
    let h: u16 = h.parse().map_err(|_| ArgError(format!("bad mesh height '{h}'")))?;
    let mesh = MeshConfig::new(w, h);
    mesh.validate().map_err(|e| ArgError(e.to_string()))?;
    Ok(mesh)
}

/// Parses a comma-separated list of rates.
///
/// # Errors
///
/// Returns [`ArgError`] for malformed or out-of-range entries.
pub fn parse_rates(s: &str) -> Result<Vec<f64>, ArgError> {
    s.split(',')
        .map(|tok| {
            let r: f64 = tok.trim().parse().map_err(|_| ArgError(format!("bad rate '{tok}'")))?;
            if r <= 0.0 || r > 1.0 {
                return Err(ArgError(format!("rate {r} outside (0, 1]")));
            }
            Ok(r)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn name_parsers() {
        assert_eq!(parse_router("roco").unwrap(), RouterKind::RoCo);
        assert_eq!(parse_router("ps").unwrap(), RouterKind::PathSensitive);
        assert!(parse_router("bogus").is_err());
        assert_eq!(parse_routing("xy-yx").unwrap(), RoutingKind::XyYx);
        assert_eq!(parse_routing("odd-even").unwrap(), RoutingKind::AdaptiveOddEven);
        assert!(parse_routing("zigzag").is_err());
        assert_eq!(parse_traffic("hotspot").unwrap(), TrafficKind::Hotspot);
        assert!(parse_traffic("noise").is_err());
    }

    #[test]
    fn mesh_parser() {
        let m = parse_mesh("8x8").unwrap();
        assert_eq!((m.width, m.height), (8, 8));
        assert_eq!(parse_mesh("4X12").unwrap().height, 12);
        assert!(parse_mesh("8").is_err());
        assert!(parse_mesh("1x8").is_err(), "too small");
        assert!(parse_mesh("axb").is_err());
    }

    #[test]
    fn rates_parser() {
        assert_eq!(parse_rates("0.1,0.2").unwrap(), vec![0.1, 0.2]);
        assert!(parse_rates("0.1,zero").is_err());
        assert!(parse_rates("1.5").is_err());
    }
}
