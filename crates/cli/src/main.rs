//! The `noc` binary: see `noc help`.

fn main() {
    let args = match noc_cli::Args::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(2);
        }
    };
    match noc_cli::commands::dispatch(&args) {
        Ok(out) => print!("{out}"),
        Err(e) => {
            eprintln!("error: {e}");
            std::process::exit(1);
        }
    }
}
