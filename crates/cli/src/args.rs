//! A small, dependency-free `--flag value` argument parser.

use std::collections::BTreeMap;
use std::fmt;

/// Argument parsing failure with a user-facing message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ArgError(pub String);

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ArgError {}

/// Parsed command line: one subcommand plus `--key value` flags.
#[derive(Debug, Clone, Default)]
pub struct Args {
    /// The first positional token, if any.
    pub command: Option<String>,
    flags: BTreeMap<String, String>,
}

impl Args {
    /// Parses raw tokens (without the program name).
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] for a flag with no value, an unexpected
    /// positional argument, or a repeated flag.
    pub fn parse<I: IntoIterator<Item = String>>(tokens: I) -> Result<Args, ArgError> {
        let mut args = Args::default();
        let mut it = tokens.into_iter();
        while let Some(tok) = it.next() {
            if let Some(name) = tok.strip_prefix("--") {
                let value =
                    it.next().ok_or_else(|| ArgError(format!("--{name} requires a value")))?;
                if args.flags.insert(name.to_string(), value).is_some() {
                    return Err(ArgError(format!("--{name} given twice")));
                }
            } else if args.command.is_none() {
                args.command = Some(tok);
            } else {
                return Err(ArgError(format!("unexpected argument: {tok}")));
            }
        }
        Ok(args)
    }

    /// A raw string flag.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags.get(name).map(|s| s.as_str())
    }

    /// A parsed flag with a default.
    ///
    /// # Errors
    ///
    /// Returns [`ArgError`] when the value does not parse as `T`.
    pub fn get_or<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, ArgError> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError(format!("--{name}: cannot parse '{v}'"))),
        }
    }

    /// Flags that were provided but not consumed by the command —
    /// callers use this to reject typos.
    pub fn unknown_flags(&self, known: &[&str]) -> Vec<String> {
        self.flags.keys().filter(|k| !known.contains(&k.as_str())).cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(String::from))
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse("run --rate 0.3 --router roco").unwrap();
        assert_eq!(a.command.as_deref(), Some("run"));
        assert_eq!(a.get("rate"), Some("0.3"));
        assert_eq!(a.get_or("rate", 0.1).unwrap(), 0.3);
        assert_eq!(a.get_or("missing", 7u64).unwrap(), 7);
    }

    #[test]
    fn rejects_dangling_flag() {
        assert!(parse("run --rate").is_err());
    }

    #[test]
    fn rejects_duplicate_flag() {
        assert!(parse("run --rate 0.1 --rate 0.2").is_err());
    }

    #[test]
    fn rejects_second_positional() {
        assert!(parse("run again").is_err());
    }

    #[test]
    fn rejects_unparseable_value() {
        let a = parse("run --rate banana").unwrap();
        assert!(a.get_or("rate", 0.1f64).is_err());
    }

    #[test]
    fn unknown_flags_are_reported() {
        let a = parse("run --rate 0.1 --typo x").unwrap();
        assert_eq!(a.unknown_flags(&["rate"]), vec!["typo".to_string()]);
    }
}
