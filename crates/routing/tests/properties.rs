//! Property-based tests for routing algorithms.

use noc_core::{AxisOrder, Coord, Direction, MeshConfig, RoutingKind};
use noc_routing::{
    odd_even_candidates, ordered_route, productive_directions, quadrant_of, RouteComputer,
};
use proptest::prelude::*;

fn coord() -> impl Strategy<Value = Coord> {
    (0u16..8, 0u16..8).prop_map(|(x, y)| Coord::new(x, y))
}

proptest! {
    /// Every dimension-order step reduces the Manhattan distance by one.
    #[test]
    fn ordered_routes_are_minimal(src in coord(), dst in coord(), yx in any::<bool>()) {
        let order = if yx { AxisOrder::Yx } else { AxisOrder::Xy };
        let mut cur = src;
        let mut hops = 0u32;
        while cur != dst {
            let dir = ordered_route(order, cur, dst);
            prop_assert_ne!(dir, Direction::Local);
            let next = cur.neighbor(dir, 8, 8).expect("in mesh");
            prop_assert_eq!(next.manhattan_distance(dst) + 1, cur.manhattan_distance(dst));
            cur = next;
            hops += 1;
            prop_assert!(hops <= 14);
        }
        prop_assert_eq!(hops, src.manhattan_distance(dst));
    }

    /// Odd-even candidates are always a subset of the productive set and
    /// non-empty away from the destination.
    #[test]
    fn odd_even_subset_of_productive(src in coord(), cur in coord(), dst in coord()) {
        let cands = odd_even_candidates(src, cur, dst);
        if cur == dst {
            prop_assert!(cands.is_empty());
        } else {
            prop_assert!(!cands.is_empty());
            let productive = productive_directions(cur, dst);
            for d in cands.iter() {
                prop_assert!(productive.contains(d));
            }
        }
    }

    /// The quadrant chosen for any non-local destination serves every
    /// productive direction.
    #[test]
    fn quadrant_covers_productive(cur in coord(), dst in coord()) {
        match quadrant_of(cur, dst) {
            None => prop_assert_eq!(cur, dst),
            Some(q) => {
                for d in productive_directions(cur, dst).iter() {
                    prop_assert!(q.serves(d));
                }
            }
        }
    }

    /// The route computer's look-ahead choice is always a legal
    /// candidate (or Local at the destination), for every algorithm.
    #[test]
    fn lookahead_choice_is_legal(
        src in coord(),
        next in coord(),
        dst in coord(),
        seed in any::<u64>(),
        alg in 0u8..3,
    ) {
        use rand::SeedableRng;
        let routing = [RoutingKind::Xy, RoutingKind::XyYx, RoutingKind::Adaptive][alg as usize];
        let rc = RouteComputer::new(routing, MeshConfig::new(8, 8));
        let mut rng = rand::rngs::SmallRng::seed_from_u64(seed);
        let order = rc.choose_order(src, dst, &mut rng);
        let picked = rc.lookahead_route(src, next, dst, order, &mut rng, |_| 0);
        if next == dst {
            prop_assert_eq!(picked, Direction::Local);
        } else {
            prop_assert!(rc.candidates(src, next, dst, order).contains(picked));
        }
    }

    /// Following adaptive candidates with a worst-case (adversarial
    /// always-first) selection still terminates minimally.
    #[test]
    fn adaptive_adversarial_walk_terminates(src in coord(), dst in coord()) {
        let mut cur = src;
        let mut hops = 0u32;
        while cur != dst {
            let cands = odd_even_candidates(src, cur, dst);
            let dir = cands.iter().next().expect("non-empty");
            cur = cur.neighbor(dir, 8, 8).expect("in mesh");
            hops += 1;
            prop_assert!(hops <= 14);
        }
        prop_assert_eq!(hops, src.manhattan_distance(dst));
    }
}
