//! The route computer shared by all router architectures.
//!
//! Routers perform *look-ahead* routing (§3.1): the output port a flit
//! takes at router `B` is computed one hop upstream at `A`, so the flit
//! can be steered into the correct path-set buffer by `B`'s input DEMUX
//! the moment it arrives (Guided Flit Queuing).

use crate::dor::{ordered_route, DirSet};
use crate::odd_even::odd_even_candidates;
use crate::west_first::west_first_candidates;
use noc_core::{
    AxisOrder, Coord, Direction, LinkMask, MeshConfig, RoutingKind, Topology, TopologyOps,
};
use rand::rngs::SmallRng;
use rand::Rng;

/// Stateless route computation for one topology under one routing
/// algorithm.
///
/// Mesh-family topologies (mesh, chiplet) are routed by the DOR/adaptive
/// functions exactly as before; wraparound topologies (torus, circulant)
/// follow their canonical minimal routes from
/// [`TopologyOps::wrap_step`], always a deterministic singleton.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteComputer {
    routing: RoutingKind,
    topo: Topology,
}

impl RouteComputer {
    /// Creates a computer for `routing` over a plain `mesh`.
    pub fn new(routing: RoutingKind, mesh: MeshConfig) -> Self {
        RouteComputer::on(routing, Topology::mesh(mesh))
    }

    /// Creates a computer for `routing` over an arbitrary topology.
    pub fn on(routing: RoutingKind, topo: Topology) -> Self {
        RouteComputer { routing, topo }
    }

    /// The routing algorithm in use.
    pub fn routing(&self) -> RoutingKind {
        self.routing
    }

    /// The bounding grid of the topology.
    pub fn mesh(&self) -> MeshConfig {
        self.topo.grid()
    }

    /// The topology routes are computed over.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The neighbour reached from `cur` through `dir` under the
    /// topology (wraparound links included), or `None` when the port is
    /// unconnected.
    pub fn neighbor(&self, cur: Coord, dir: Direction) -> Option<Coord> {
        self.topo.neighbor(cur, dir)
    }

    /// Dateline class of a packet `src → dst` buffered at `at` on input
    /// side `in_side` (see [`TopologyOps::dateline_class`]); always
    /// `false` on mesh-family topologies.
    pub fn vc_dateline(&self, src: Coord, dst: Coord, at: Coord, in_side: Direction) -> bool {
        self.topo.dateline_class(src, dst, at, in_side)
    }

    /// Picks the dimension order a freshly injected packet commits to.
    ///
    /// Under XY-YX routing, *northbound* packets flip a fair coin
    /// between XY and YX; southbound and Y-aligned packets always use
    /// XY. Forbidding southbound→X turns is what makes the oblivious
    /// mix provably deadlock-free on shared channels (a turn-model
    /// argument: any channel-dependency cycle must traverse a southbound
    /// segment and exit it through a southbound→X turn, which never
    /// occurs) — a documented deviation from an unrestricted 50/50 mix,
    /// see DESIGN.md.
    pub fn choose_order(&self, src: Coord, dst: Coord, rng: &mut SmallRng) -> AxisOrder {
        match self.routing {
            RoutingKind::XyYx if dst.y < src.y => {
                if rng.gen_bool(0.5) {
                    AxisOrder::Xy
                } else {
                    AxisOrder::Yx
                }
            }
            _ => AxisOrder::Xy,
        }
    }

    /// The deterministic (escape-compliant) route at `cur` towards
    /// `dst` for a packet committed to `order`. This is the only legal
    /// route under XY and XY-YX, and the escape route under adaptive
    /// routing. Returns [`Direction::Local`] at the destination.
    pub fn deterministic_route(&self, cur: Coord, dst: Coord, order: AxisOrder) -> Direction {
        if !self.topo.is_mesh_routed() {
            return self
                .topo
                .wrap_step(cur, cur, dst)
                .expect("wraparound topologies always produce a step");
        }
        match self.routing {
            RoutingKind::Xy | RoutingKind::Adaptive | RoutingKind::AdaptiveOddEven => {
                ordered_route(AxisOrder::Xy, cur, dst)
            }
            RoutingKind::XyYx => ordered_route(order, cur, dst),
        }
    }

    /// All legal output directions at `cur` for a packet from `src`
    /// towards `dst` committed to `order`. Deterministic algorithms
    /// return a singleton; adaptive routing returns the west-first
    /// (default) or odd-even (extension) candidate set. An empty set
    /// means "eject here".
    pub fn candidates(&self, src: Coord, cur: Coord, dst: Coord, order: AxisOrder) -> DirSet {
        if cur == dst {
            return DirSet::new();
        }
        if !self.topo.is_mesh_routed() {
            // Canonical minimal route for the wraparound topology:
            // always a deterministic singleton.
            return match self.topo.wrap_step(src, cur, dst) {
                Some(Direction::Local) | None => DirSet::new(),
                Some(dir) => DirSet::single(dir),
            };
        }
        match self.routing {
            RoutingKind::Xy => DirSet::single(ordered_route(AxisOrder::Xy, cur, dst)),
            RoutingKind::XyYx => DirSet::single(ordered_route(order, cur, dst)),
            RoutingKind::Adaptive => west_first_candidates(cur, dst),
            RoutingKind::AdaptiveOddEven => odd_even_candidates(src, cur, dst),
        }
    }

    /// Fault-aware candidate set (ISSUE 8): the legal candidates at
    /// `cur` with links masked off by `mask` removed, plus — for
    /// west-first routing only — a deadlock-safe non-minimal *escape*
    /// set when every minimal candidate is masked.
    ///
    /// `arrival` is the input side the flit occupies at `cur`
    /// ([`Direction::Local`] for freshly injected packets; at a
    /// look-ahead node reached through output `out` it is
    /// `out.opposite()`). Leaving through `arrival` (a u-turn back to
    /// the upstream node) is excluded from the *whole* set, not just
    /// the escape: minimal candidates are always productive so the
    /// exclusion is a no-op on a healthy mesh, but after a vertical
    /// escape it is exactly what forbids the overshoot-and-return
    /// pattern whose N↔S channel dependencies could close a cycle
    /// inside one column.
    ///
    /// Escape rules, per routing kind:
    ///
    /// * **XY / XY-YX** — deterministic; a masked route is simply
    ///   removed (empty set ⇒ unroutable from here). Any detour would
    ///   break the dimension-order deadlock argument.
    /// * **Odd-even** — the masked set is a subset of the odd-even
    ///   candidate graph, which is acyclic; no escape is added because
    ///   non-minimal odd-even detours are not covered by Chiu's proof.
    /// * **West-first** — only when `dst.x > cur.x` (an eastward
    ///   detour can eventually resume) the escape set is
    ///   `{North, South}` restricted to usable in-mesh links minus the
    ///   `arrival` u-turn. Escape never emits West and x never
    ///   decreases outside the initial west phase, so no turn into a
    ///   West channel is ever added; with u-turns excluded, any
    ///   remaining cycle would need East hops it cannot pay back —
    ///   see DESIGN.md §16 for the argument and the `noc-deadlock`
    ///   property test that checks it over random masks.
    ///
    /// The returned set still holds at most two directions, so the
    /// engines' fixed-size scoring arrays stay valid.
    pub fn masked_candidates(
        &self,
        src: Coord,
        cur: Coord,
        dst: Coord,
        order: AxisOrder,
        arrival: Direction,
        mask: &LinkMask,
    ) -> DirSet {
        let mut set = self.candidates(src, cur, dst, order);
        set.retain(|d| d != arrival && mask.usable(cur, d));
        if set.is_empty() && cur != dst && self.routing == RoutingKind::Adaptive && dst.x > cur.x {
            let mut escape = DirSet::new();
            for d in [Direction::North, Direction::South] {
                if d != arrival && self.topo.neighbor(cur, d).is_some() && mask.usable(cur, d) {
                    escape.push(d);
                }
            }
            return escape;
        }
        set
    }

    /// Look-ahead route selection: at the router upstream of `next`,
    /// choose the output port the packet will take *at* `next`. The
    /// `score` closure rates each candidate (higher = less congested,
    /// e.g. free downstream credits); ties and empty information fall
    /// back to a random choice among the best.
    ///
    /// Returns [`Direction::Local`] when `next == dst`.
    pub fn lookahead_route(
        &self,
        src: Coord,
        next: Coord,
        dst: Coord,
        order: AxisOrder,
        rng: &mut SmallRng,
        mut score: impl FnMut(Direction) -> i64,
    ) -> Direction {
        let cands = self.candidates(src, next, dst, order);
        match cands.len() {
            0 => Direction::Local,
            1 => cands.iter().next().expect("len checked"),
            _ => {
                let best = cands.iter().map(&mut score).max().expect("non-empty");
                let tied: Vec<Direction> = cands.iter().filter(|&d| score(d) == best).collect();
                tied[rng.gen_range(0..tied.len())]
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn computer(kind: RoutingKind) -> RouteComputer {
        RouteComputer::new(kind, MeshConfig::new(8, 8))
    }

    #[test]
    fn order_choice_per_algorithm() {
        let mut rng = SmallRng::seed_from_u64(1);
        let north = (Coord::new(3, 5), Coord::new(6, 1)); // dst north of src
        let south = (Coord::new(3, 1), Coord::new(6, 5));
        assert_eq!(
            computer(RoutingKind::Xy).choose_order(north.0, north.1, &mut rng),
            AxisOrder::Xy
        );
        assert_eq!(
            computer(RoutingKind::Adaptive).choose_order(north.0, north.1, &mut rng),
            AxisOrder::Xy
        );
        let c = computer(RoutingKind::XyYx);
        let picks: Vec<AxisOrder> =
            (0..100).map(|_| c.choose_order(north.0, north.1, &mut rng)).collect();
        assert!(picks.contains(&AxisOrder::Xy));
        assert!(picks.contains(&AxisOrder::Yx), "northbound packets mix in YX");
        // Southbound packets never pick YX (deadlock-freedom restriction).
        for _ in 0..100 {
            assert_eq!(c.choose_order(south.0, south.1, &mut rng), AxisOrder::Xy);
        }
    }

    #[test]
    fn deterministic_routes() {
        let cur = Coord::new(2, 2);
        let dst = Coord::new(5, 5);
        assert_eq!(
            computer(RoutingKind::Xy).deterministic_route(cur, dst, AxisOrder::Xy),
            Direction::East
        );
        assert_eq!(
            computer(RoutingKind::XyYx).deterministic_route(cur, dst, AxisOrder::Yx),
            Direction::South
        );
        // Adaptive escape ignores the packet order and uses XY.
        assert_eq!(
            computer(RoutingKind::Adaptive).deterministic_route(cur, dst, AxisOrder::Yx),
            Direction::East
        );
    }

    #[test]
    fn candidates_cardinality() {
        let src = Coord::new(0, 0);
        let dst = Coord::new(5, 5);
        assert_eq!(computer(RoutingKind::Xy).candidates(src, src, dst, AxisOrder::Xy).len(), 1);
        assert_eq!(computer(RoutingKind::XyYx).candidates(src, src, dst, AxisOrder::Yx).len(), 1);
        let a = computer(RoutingKind::Adaptive).candidates(src, src, dst, AxisOrder::Xy);
        assert!(!a.is_empty());
        assert!(computer(RoutingKind::Xy).candidates(src, dst, dst, AxisOrder::Xy).is_empty());
    }

    #[test]
    fn lookahead_prefers_high_score() {
        let mut rng = SmallRng::seed_from_u64(7);
        let c = computer(RoutingKind::Adaptive);
        // At (1,1) from (1,1) to (4,4): odd column -> both E and S legal.
        let src = Coord::new(1, 1);
        let dst = Coord::new(4, 4);
        let picked = c.lookahead_route(src, src, dst, AxisOrder::Xy, &mut rng, |d| {
            if d == Direction::South {
                10
            } else {
                0
            }
        });
        assert_eq!(picked, Direction::South);
    }

    #[test]
    fn lookahead_at_destination_is_local() {
        let mut rng = SmallRng::seed_from_u64(7);
        let c = computer(RoutingKind::Xy);
        let dst = Coord::new(3, 3);
        assert_eq!(
            c.lookahead_route(Coord::new(0, 0), dst, dst, AxisOrder::Xy, &mut rng, |_| 0),
            Direction::Local
        );
    }

    #[test]
    fn masked_candidates_subset_on_healthy_mesh() {
        // With every link up, the masked set equals the plain candidate
        // set for every kind (arrival = Local excludes nothing).
        let mask = noc_core::LinkMask::all_up(MeshConfig::new(8, 8));
        for kind in [
            RoutingKind::Xy,
            RoutingKind::XyYx,
            RoutingKind::Adaptive,
            RoutingKind::AdaptiveOddEven,
        ] {
            let c = computer(kind);
            for (cur, dst) in [
                (Coord::new(2, 2), Coord::new(5, 5)),
                (Coord::new(5, 5), Coord::new(2, 2)),
                (Coord::new(0, 7), Coord::new(7, 0)),
            ] {
                let plain = c.candidates(cur, cur, dst, AxisOrder::Xy);
                let masked =
                    c.masked_candidates(cur, cur, dst, AxisOrder::Xy, Direction::Local, &mask);
                assert_eq!(plain, masked, "{kind:?} {cur:?}->{dst:?}");
            }
        }
    }

    #[test]
    fn masked_candidates_drop_dead_links() {
        let cur = Coord::new(1, 1);
        let dst = Coord::new(4, 4);
        // Adaptive at (1,1)->(4,4): {East, South}. Mask East.
        let mask = noc_core::LinkMask::from_fn(MeshConfig::new(8, 8), |n, d| {
            !(n == cur && d == Direction::East)
        });
        let c = computer(RoutingKind::Adaptive);
        let set = c.masked_candidates(cur, cur, dst, AxisOrder::Xy, Direction::Local, &mask);
        assert_eq!(set.len(), 1);
        assert!(set.contains(Direction::South));
    }

    #[test]
    fn west_first_escape_fires_when_all_minimal_candidates_die() {
        let cur = Coord::new(3, 3);
        let dst = Coord::new(6, 3); // straight east: minimal = {East}
        let mask = noc_core::LinkMask::from_fn(MeshConfig::new(8, 8), |n, d| {
            !(n == cur && d == Direction::East)
        });
        let c = computer(RoutingKind::Adaptive);
        let set = c.masked_candidates(cur, cur, dst, AxisOrder::Xy, Direction::Local, &mask);
        assert_eq!(set.len(), 2, "escape offers both vertical detours");
        assert!(set.contains(Direction::North) && set.contains(Direction::South));
        // Arrived from the north neighbour (input side North): the
        // u-turn back north is excluded.
        let set = c.masked_candidates(cur, cur, dst, AxisOrder::Xy, Direction::North, &mask);
        assert_eq!(set.len(), 1);
        assert!(set.contains(Direction::South));
    }

    #[test]
    fn escape_never_goes_west_and_needs_an_east_component() {
        let c = computer(RoutingKind::Adaptive);
        let mesh = MeshConfig::new(8, 8);
        // Same-column destination with the only productive link masked:
        // no escape (a vertical detour could never legally return).
        let cur = Coord::new(3, 3);
        let south_dst = Coord::new(3, 6);
        let mask = noc_core::LinkMask::from_fn(mesh, |n, d| !(n == cur && d == Direction::South));
        let set = c.masked_candidates(cur, cur, south_dst, AxisOrder::Xy, Direction::Local, &mask);
        assert!(set.is_empty(), "same-column faults are unroutable under west-first");
        // Westbound destination with West masked: no escape either.
        let west_dst = Coord::new(0, 3);
        let mask = noc_core::LinkMask::from_fn(mesh, |n, d| !(n == cur && d == Direction::West));
        let set = c.masked_candidates(cur, cur, west_dst, AxisOrder::Xy, Direction::Local, &mask);
        assert!(set.is_empty(), "the west phase has no deadlock-safe detour");
    }

    #[test]
    fn deterministic_kinds_fail_rather_than_detour() {
        let cur = Coord::new(2, 2);
        let dst = Coord::new(5, 2);
        let mask = noc_core::LinkMask::from_fn(MeshConfig::new(8, 8), |n, d| {
            !(n == cur && d == Direction::East)
        });
        for kind in [RoutingKind::Xy, RoutingKind::XyYx, RoutingKind::AdaptiveOddEven] {
            let c = computer(kind);
            let set = c.masked_candidates(cur, cur, dst, AxisOrder::Xy, Direction::Local, &mask);
            assert!(set.is_empty(), "{kind:?} must not invent detours");
        }
    }

    #[test]
    fn wraparound_topologies_route_as_deterministic_singletons() {
        use noc_core::{CirculantTopology, TopologyConfig, TopologyOps};
        let torus = TopologyConfig::Torus.resolve(MeshConfig::new(5, 5)).unwrap();
        let c = RouteComputer::on(RoutingKind::Xy, torus.clone());
        // (0,0) -> (4,0): the wrap link West is 1 hop vs 4 going East.
        let set = c.candidates(Coord::new(0, 0), Coord::new(0, 0), Coord::new(4, 0), AxisOrder::Xy);
        assert_eq!(set.len(), 1);
        assert!(set.contains(Direction::West));
        assert_eq!(c.neighbor(Coord::new(0, 0), Direction::West), Some(Coord::new(4, 0)));
        assert!(c
            .candidates(Coord::new(1, 1), Coord::new(3, 3), Coord::new(3, 3), AxisOrder::Xy)
            .is_empty());
        // Dateline classification is exposed through the computer.
        assert!(c.vc_dateline(
            Coord::new(4, 0),
            Coord::new(1, 0),
            Coord::new(0, 0),
            Direction::West
        ));
        assert!(!torus.dateline_class(
            Coord::new(1, 0),
            Coord::new(3, 0),
            Coord::new(2, 0),
            Direction::West
        ));

        let circ = Topology::Circulant(CirculantTopology::new(13, 1, 5).unwrap());
        let c = RouteComputer::on(RoutingKind::Xy, circ);
        for d in 1..13u16 {
            let set =
                c.candidates(Coord::new(0, 0), Coord::new(0, 0), Coord::new(d, 0), AxisOrder::Xy);
            assert_eq!(set.len(), 1, "circulant routes are singletons");
        }
    }

    #[test]
    fn lookahead_ties_are_random_but_legal() {
        let mut rng = SmallRng::seed_from_u64(42);
        let c = computer(RoutingKind::Adaptive);
        let src = Coord::new(1, 1);
        let dst = Coord::new(6, 6);
        let mut seen = std::collections::HashSet::new();
        for _ in 0..50 {
            let d = c.lookahead_route(src, src, dst, AxisOrder::Xy, &mut rng, |_| 0);
            assert!(c.candidates(src, src, dst, AxisOrder::Xy).contains(d));
            seen.insert(d);
        }
        assert!(seen.len() > 1, "ties should explore multiple candidates");
    }
}
