//! Destination-quadrant classification for the Path-Sensitive router
//! (Kim et al., DAC 2005; §2 of the RoCo paper).
//!
//! The Path-Sensitive router buffers arriving flits in one of four
//! *path sets* according to the quadrant their destination lies in
//! relative to the current node (NE, NW, SE, SW). Each path set may
//! drive exactly the two output ports of its quadrant.

use noc_core::{Coord, Direction};
use serde::{Deserialize, Serialize};
use std::fmt;

/// The four destination quadrants / path sets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum Quadrant {
    /// Destination north-east of the current node.
    Ne = 0,
    /// Destination north-west.
    Nw = 1,
    /// Destination south-east.
    Se = 2,
    /// Destination south-west.
    Sw = 3,
}

impl Quadrant {
    /// All quadrants in index order.
    pub const ALL: [Quadrant; 4] = [Quadrant::Ne, Quadrant::Nw, Quadrant::Se, Quadrant::Sw];

    /// Stable array index (0..=3).
    pub fn index(self) -> usize {
        self as usize
    }

    /// The two output ports this path set can drive.
    pub fn directions(self) -> [Direction; 2] {
        match self {
            Quadrant::Ne => [Direction::North, Direction::East],
            Quadrant::Nw => [Direction::North, Direction::West],
            Quadrant::Se => [Direction::South, Direction::East],
            Quadrant::Sw => [Direction::South, Direction::West],
        }
    }

    /// Whether `dir` is one of this quadrant's outputs.
    pub fn serves(self, dir: Direction) -> bool {
        self.directions().contains(&dir)
    }
}

impl fmt::Display for Quadrant {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Quadrant::Ne => "NE",
            Quadrant::Nw => "NW",
            Quadrant::Se => "SE",
            Quadrant::Sw => "SW",
        };
        f.write_str(s)
    }
}

/// Bitmask of every quadrant whose closed half-planes contain `dst`
/// relative to `cur` (bit `q.index()` set). Strictly diagonal
/// destinations match one quadrant; axis-aligned destinations match the
/// two quadrants sharing that axis — either path set can legally hold
/// the flit, which is essential because each arrival link only exposes
/// two of the four sets. Returns 0 when `cur == dst`.
pub fn quadrant_mask(cur: Coord, dst: Coord) -> u8 {
    if cur == dst {
        return 0;
    }
    let mut mask = 0u8;
    let east_ok = dst.x >= cur.x;
    let west_ok = dst.x <= cur.x;
    let north_ok = dst.y <= cur.y;
    let south_ok = dst.y >= cur.y;
    if east_ok && north_ok {
        mask |= 1 << Quadrant::Ne.index();
    }
    if west_ok && north_ok {
        mask |= 1 << Quadrant::Nw.index();
    }
    if east_ok && south_ok {
        mask |= 1 << Quadrant::Se.index();
    }
    if west_ok && south_ok {
        mask |= 1 << Quadrant::Sw.index();
    }
    mask
}

/// The quadrant of `dst` relative to `cur`, or `None` when equal
/// (ejection).
///
/// Axis-aligned destinations are assigned by a fixed convention that
/// spreads load over all four sets: due East → NE, due West → SW,
/// due North → NW, due South → SE. Admission checks should prefer
/// [`quadrant_mask`], which keeps both legal sets for aligned
/// destinations.
pub fn quadrant_of(cur: Coord, dst: Coord) -> Option<Quadrant> {
    use std::cmp::Ordering::*;
    match (dst.x.cmp(&cur.x), dst.y.cmp(&cur.y)) {
        (Equal, Equal) => None,
        (Greater, Less) => Some(Quadrant::Ne),
        (Greater, Greater) => Some(Quadrant::Se),
        (Less, Less) => Some(Quadrant::Nw),
        (Less, Greater) => Some(Quadrant::Sw),
        // Axis-aligned tie conventions.
        (Greater, Equal) => Some(Quadrant::Ne),
        (Less, Equal) => Some(Quadrant::Sw),
        (Equal, Less) => Some(Quadrant::Nw),
        (Equal, Greater) => Some(Quadrant::Se),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn strict_quadrants() {
        let c = Coord::new(4, 4);
        assert_eq!(quadrant_of(c, Coord::new(6, 2)), Some(Quadrant::Ne));
        assert_eq!(quadrant_of(c, Coord::new(2, 2)), Some(Quadrant::Nw));
        assert_eq!(quadrant_of(c, Coord::new(6, 6)), Some(Quadrant::Se));
        assert_eq!(quadrant_of(c, Coord::new(2, 6)), Some(Quadrant::Sw));
        assert_eq!(quadrant_of(c, c), None);
    }

    #[test]
    fn aligned_conventions() {
        let c = Coord::new(4, 4);
        assert_eq!(quadrant_of(c, Coord::new(7, 4)), Some(Quadrant::Ne));
        assert_eq!(quadrant_of(c, Coord::new(0, 4)), Some(Quadrant::Sw));
        assert_eq!(quadrant_of(c, Coord::new(4, 0)), Some(Quadrant::Nw));
        assert_eq!(quadrant_of(c, Coord::new(4, 7)), Some(Quadrant::Se));
    }

    #[test]
    fn quadrant_serves_its_productive_directions() {
        // Every minimal productive direction towards dst is served by
        // the chosen quadrant's output ports.
        for cy in 0..5u16 {
            for cx in 0..5u16 {
                for dy in 0..5u16 {
                    for dx in 0..5u16 {
                        let cur = Coord::new(cx, cy);
                        let dst = Coord::new(dx, dy);
                        if cur == dst {
                            continue;
                        }
                        let q = quadrant_of(cur, dst).unwrap();
                        for d in crate::productive_directions(cur, dst).iter() {
                            assert!(q.serves(d), "{q} does not serve {d} for {cur}->{dst}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn output_sharing_pattern() {
        // Each output port is served by exactly two quadrants — the
        // source of the Path-Sensitive router's chained dependency
        // (Table 2: 2/24 non-blocking matches).
        for dir in Direction::MESH {
            let servers = Quadrant::ALL.iter().filter(|q| q.serves(dir)).count();
            assert_eq!(servers, 2, "{dir} must be shared by exactly 2 path sets");
        }
    }

    #[test]
    fn display_and_index() {
        assert_eq!(Quadrant::Ne.to_string(), "NE");
        for (i, q) in Quadrant::ALL.iter().enumerate() {
            assert_eq!(q.index(), i);
        }
    }
}
