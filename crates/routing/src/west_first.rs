//! Minimal adaptive routing under the west-first turn model
//! (Glass & Ni).
//!
//! A packet with remaining westward hops must take them first (its only
//! candidate is West); once no West hops remain, every productive
//! direction (a subset of {East, North, South}) is a candidate. The two
//! forbidden turns — North→West and South→West — make the channel
//! dependency graph acyclic, so the scheme is deadlock-free for
//! wormhole switching even when the look-ahead pipeline *commits* a
//! packet to one candidate a hop early (the turn-model argument is
//! independent of how candidates are chosen).
//!
//! This is the default `RoutingKind::Adaptive` policy; the odd-even
//! model is available as `RoutingKind::AdaptiveOddEven` for the
//! ablation study (odd-even concentrates vertical turns on even
//! columns, which starves the RoCo router's single-VC turn channels —
//! see DESIGN.md).

use crate::dor::{productive_directions, DirSet};
use noc_core::{Coord, Direction};

/// The west-first candidate set at `cur` towards `dst`; empty only when
/// `cur == dst`.
pub fn west_first_candidates(cur: Coord, dst: Coord) -> DirSet {
    if dst.x < cur.x {
        DirSet::single(Direction::West)
    } else {
        productive_directions(cur, dst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn westbound_goes_west_first() {
        let cands = west_first_candidates(Coord::new(5, 2), Coord::new(1, 6));
        assert_eq!(cands.len(), 1);
        assert!(cands.contains(Direction::West));
    }

    #[test]
    fn eastbound_is_fully_adaptive() {
        let cands = west_first_candidates(Coord::new(1, 1), Coord::new(5, 5));
        assert_eq!(cands.len(), 2);
        assert!(cands.contains(Direction::East));
        assert!(cands.contains(Direction::South));
    }

    #[test]
    fn aligned_cases() {
        assert!(
            west_first_candidates(Coord::new(2, 2), Coord::new(2, 5)).contains(Direction::South)
        );
        assert!(
            west_first_candidates(Coord::new(2, 2), Coord::new(2, 0)).contains(Direction::North)
        );
        assert!(west_first_candidates(Coord::new(2, 2), Coord::new(6, 2)).contains(Direction::East));
        assert!(west_first_candidates(Coord::new(2, 2), Coord::new(2, 2)).is_empty());
    }

    #[test]
    fn forbidden_turns_never_offered() {
        // A packet that has exhausted its West hops never needs West
        // again; a packet with West hops is never offered N/S. Hence
        // N->W and S->W turns cannot occur.
        for cy in 0..6u16 {
            for cx in 0..6u16 {
                for dy in 0..6u16 {
                    for dx in 0..6u16 {
                        let cur = Coord::new(cx, cy);
                        let dst = Coord::new(dx, dy);
                        let cands = west_first_candidates(cur, dst);
                        if dst.x < cur.x {
                            assert_eq!(cands.len(), if cur == dst { 0 } else { 1 });
                        } else {
                            assert!(!cands.contains(Direction::West));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn all_walks_are_minimal_and_terminate() {
        let n = 6u16;
        for si in 0..(n * n) {
            for di in 0..(n * n) {
                let src = Coord::new(si % n, si / n);
                let dst = Coord::new(di % n, di / n);
                let mut stack = vec![src];
                let mut seen = std::collections::HashSet::new();
                while let Some(cur) = stack.pop() {
                    if cur == dst || !seen.insert(cur) {
                        continue;
                    }
                    let cands = west_first_candidates(cur, dst);
                    assert!(!cands.is_empty());
                    for d in cands.iter() {
                        let next = cur.neighbor(d, n, n).expect("stays in mesh");
                        assert_eq!(next.manhattan_distance(dst) + 1, cur.manhattan_distance(dst));
                        stack.push(next);
                    }
                }
            }
        }
    }
}
