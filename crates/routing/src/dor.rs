//! Deterministic dimension-order routing (XY / YX) and minimal-route
//! helpers.

use noc_core::{AxisOrder, Coord, Direction};

/// A set of up to two candidate output directions (a minimal route in a
/// 2D mesh never has more than two productive directions).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DirSet {
    dirs: [Option<Direction>; 2],
}

impl DirSet {
    /// The empty set.
    pub fn new() -> Self {
        Self::default()
    }

    /// A singleton set.
    pub fn single(dir: Direction) -> Self {
        DirSet { dirs: [Some(dir), None] }
    }

    /// Adds a direction (ignored if already present).
    ///
    /// # Panics
    ///
    /// Panics when inserting a third distinct direction.
    pub fn push(&mut self, dir: Direction) {
        if self.contains(dir) {
            return;
        }
        if self.dirs[0].is_none() {
            self.dirs[0] = Some(dir);
        } else if self.dirs[1].is_none() {
            self.dirs[1] = Some(dir);
        } else {
            panic!("a minimal route has at most two productive directions");
        }
    }

    /// Whether `dir` is in the set.
    pub fn contains(&self, dir: Direction) -> bool {
        self.dirs.iter().flatten().any(|&d| d == dir)
    }

    /// Number of directions held (0–2).
    pub fn len(&self) -> usize {
        self.dirs.iter().flatten().count()
    }

    /// `true` when no direction is held.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over the held directions.
    pub fn iter(&self) -> impl Iterator<Item = Direction> + '_ {
        self.dirs.iter().flatten().copied()
    }

    /// Removes directions not satisfying `keep`. Runs entirely on the
    /// stack — this sits on the router hot path (route computation).
    pub fn retain(&mut self, mut keep: impl FnMut(Direction) -> bool) {
        let mut kept = [None, None];
        let mut n = 0;
        for d in self.dirs.iter().flatten().copied() {
            if keep(d) {
                kept[n] = Some(d);
                n += 1;
            }
        }
        self.dirs = kept;
    }
}

impl FromIterator<Direction> for DirSet {
    fn from_iter<T: IntoIterator<Item = Direction>>(iter: T) -> Self {
        let mut s = DirSet::new();
        for d in iter {
            s.push(d);
        }
        s
    }
}

/// Dimension-order XY route: exhaust X hops, then Y hops.
/// Returns [`Direction::Local`] when `cur == dst`.
pub fn xy_route(cur: Coord, dst: Coord) -> Direction {
    cur.direction_towards_x(dst)
        .or_else(|| cur.direction_towards_y(dst))
        .unwrap_or(Direction::Local)
}

/// YX route: exhaust Y hops, then X hops.
pub fn yx_route(cur: Coord, dst: Coord) -> Direction {
    cur.direction_towards_y(dst)
        .or_else(|| cur.direction_towards_x(dst))
        .unwrap_or(Direction::Local)
}

/// Route under the given dimension order.
pub fn ordered_route(order: AxisOrder, cur: Coord, dst: Coord) -> Direction {
    match order {
        AxisOrder::Xy => xy_route(cur, dst),
        AxisOrder::Yx => yx_route(cur, dst),
    }
}

/// All productive (distance-reducing) directions from `cur` towards
/// `dst`; empty when already there.
pub fn productive_directions(cur: Coord, dst: Coord) -> DirSet {
    let mut set = DirSet::new();
    if let Some(d) = cur.direction_towards_x(dst) {
        set.push(d);
    }
    if let Some(d) = cur.direction_towards_y(dst) {
        set.push(d);
    }
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xy_exhausts_x_first() {
        let cur = Coord::new(2, 2);
        assert_eq!(xy_route(cur, Coord::new(5, 0)), Direction::East);
        assert_eq!(xy_route(cur, Coord::new(0, 7)), Direction::West);
        assert_eq!(xy_route(cur, Coord::new(2, 0)), Direction::North);
        assert_eq!(xy_route(cur, Coord::new(2, 5)), Direction::South);
        assert_eq!(xy_route(cur, cur), Direction::Local);
    }

    #[test]
    fn yx_exhausts_y_first() {
        let cur = Coord::new(2, 2);
        assert_eq!(yx_route(cur, Coord::new(5, 0)), Direction::North);
        assert_eq!(yx_route(cur, Coord::new(5, 2)), Direction::East);
        assert_eq!(yx_route(cur, cur), Direction::Local);
    }

    #[test]
    fn ordered_route_dispatches() {
        let cur = Coord::new(1, 1);
        let dst = Coord::new(3, 3);
        assert_eq!(ordered_route(AxisOrder::Xy, cur, dst), Direction::East);
        assert_eq!(ordered_route(AxisOrder::Yx, cur, dst), Direction::South);
    }

    #[test]
    fn productive_directions_cases() {
        let cur = Coord::new(3, 3);
        let both = productive_directions(cur, Coord::new(5, 1));
        assert_eq!(both.len(), 2);
        assert!(both.contains(Direction::East));
        assert!(both.contains(Direction::North));

        let one = productive_directions(cur, Coord::new(3, 6));
        assert_eq!(one.len(), 1);
        assert!(one.contains(Direction::South));

        assert!(productive_directions(cur, cur).is_empty());
    }

    #[test]
    fn xy_routes_are_minimal_everywhere() {
        // Following xy_route step by step always reaches dst in exactly
        // the Manhattan distance.
        for sy in 0..5u16 {
            for sx in 0..5u16 {
                for dy in 0..5u16 {
                    for dx in 0..5u16 {
                        let dst = Coord::new(dx, dy);
                        let mut cur = Coord::new(sx, sy);
                        let mut hops = 0;
                        while cur != dst {
                            let dir = xy_route(cur, dst);
                            cur = cur.neighbor(dir, 5, 5).expect("route stays in mesh");
                            hops += 1;
                            assert!(hops <= 8, "route is not minimal");
                        }
                        assert_eq!(hops, Coord::new(sx, sy).manhattan_distance(dst));
                    }
                }
            }
        }
    }

    #[test]
    fn dirset_push_and_retain() {
        let mut s = DirSet::new();
        s.push(Direction::East);
        s.push(Direction::East);
        assert_eq!(s.len(), 1);
        s.push(Direction::North);
        assert_eq!(s.len(), 2);
        s.retain(|d| d == Direction::North);
        assert_eq!(s.len(), 1);
        assert!(s.contains(Direction::North));
    }

    #[test]
    #[should_panic(expected = "at most two")]
    fn dirset_rejects_third_direction() {
        let mut s = DirSet::new();
        s.push(Direction::East);
        s.push(Direction::North);
        s.push(Direction::West);
    }

    #[test]
    fn dirset_from_iterator() {
        let s: DirSet = [Direction::East, Direction::North, Direction::East].into_iter().collect();
        assert_eq!(s.len(), 2);
    }
}
