//! Minimal adaptive routing under the odd-even turn model.
//!
//! The paper evaluates "minimal adaptive routing" without pinning down
//! the turn-restriction scheme; its DyAD citation ([13]) uses Chiu's
//! odd-even turn model, which is deadlock-free for minimal routing
//! without dedicated escape resources, so we adopt it here (documented
//! substitution in DESIGN.md). The Table-1 escape channels are still
//! instantiated and used as the paper describes — they carry the
//! XY-compliant subset of traffic.
//!
//! Odd-even turn rules (columns indexed by `x`):
//! * **Rule 1**: no East→North turn at a node in an even column, and no
//!   North→West turn at a node in an odd column.
//! * **Rule 2**: no East→South turn at a node in an even column, and no
//!   South→West turn at a node in an odd column.

use crate::dor::DirSet;
use noc_core::{Coord, Direction};

/// Whether a column index is even.
fn even(x: u16) -> bool {
    x % 2 == 0
}

/// The set of minimal directions a packet from `src` may take at `cur`
/// towards `dst` under the odd-even turn model. Empty only when
/// `cur == dst`.
///
/// The construction follows the `ROUTE` function of Chiu's paper (and
/// its well-known Noxim implementation): westbound packets may only
/// leave the West column-path at even columns; eastbound packets may
/// only turn north/south at odd columns (or in the source column) and
/// must not take their last East hop into an even destination column
/// unless the vertical offset is already zero.
pub fn odd_even_candidates(src: Coord, cur: Coord, dst: Coord) -> DirSet {
    let mut set = DirSet::new();
    if cur == dst {
        return set;
    }
    let vertical = cur.direction_towards_y(dst);
    match cur.direction_towards_x(dst) {
        None => {
            // Same column: straight vertical run (never restricted).
            set.push(vertical.expect("cur != dst and aligned in X"));
        }
        Some(Direction::East) => {
            match vertical {
                None => set.push(Direction::East),
                Some(v) => {
                    // Turning E->N / E->S is forbidden at even columns
                    // (rules 1 & 2), except in the source column where
                    // the packet has not yet taken an East hop.
                    if !even(cur.x) || cur.x == src.x {
                        set.push(v);
                    }
                    // Continuing East is allowed unless the next column
                    // is the (even) destination column, where the still
                    // pending N->W/S->W-free completion would need a
                    // forbidden turn pattern.
                    if !even(dst.x) || dst.x.abs_diff(cur.x) != 1 {
                        set.push(Direction::East);
                    }
                }
            }
        }
        Some(Direction::West) => {
            set.push(Direction::West);
            // N->W / S->W turns happen at even columns only (rules 1&2
            // dual); equivalently, a westbound packet may move
            // vertically only when at an even column.
            if let Some(v) = vertical {
                if even(cur.x) {
                    set.push(v);
                }
            }
        }
        Some(_) => unreachable!("direction_towards_x returns E/W only"),
    }
    assert!(!set.is_empty(), "odd-even candidates must be non-empty for cur != dst");
    set
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Exhaustively walks every (src, dst) pair in a 6×6 mesh following
    /// every possible candidate choice, asserting minimality and
    /// termination (the candidate set is never a trap).
    #[test]
    fn all_paths_are_minimal_and_terminate() {
        let n = 6u16;
        for si in 0..(n * n) {
            for di in 0..(n * n) {
                let src = Coord::new(si % n, si / n);
                let dst = Coord::new(di % n, di / n);
                // DFS over all reachable (cur) states.
                let mut stack = vec![src];
                let mut seen = std::collections::HashSet::new();
                while let Some(cur) = stack.pop() {
                    if cur == dst || !seen.insert(cur) {
                        continue;
                    }
                    let cands = odd_even_candidates(src, cur, dst);
                    assert!(!cands.is_empty(), "trap at {cur} for {src}->{dst}");
                    for d in cands.iter() {
                        let next = cur.neighbor(d, n, n).expect("candidates stay in mesh");
                        assert_eq!(
                            next.manhattan_distance(dst) + 1,
                            cur.manhattan_distance(dst),
                            "non-minimal candidate {d} at {cur} for {src}->{dst}"
                        );
                        stack.push(next);
                    }
                }
            }
        }
    }

    #[test]
    fn rule1_no_en_turn_at_even_column() {
        // A packet that has already travelled East (src strictly west of
        // cur) and sits at an even column with remaining E and N hops
        // must not be offered the vertical turn.
        let src = Coord::new(0, 4);
        let cur = Coord::new(2, 4); // even column, not source column
        let dst = Coord::new(5, 1);
        let cands = odd_even_candidates(src, cur, dst);
        assert!(cands.contains(Direction::East));
        assert!(!cands.contains(Direction::North), "EN turn offered at even column");
    }

    #[test]
    fn turns_allowed_at_odd_columns_eastbound() {
        let src = Coord::new(0, 4);
        let cur = Coord::new(3, 4); // odd column
        let dst = Coord::new(5, 1);
        let cands = odd_even_candidates(src, cur, dst);
        assert!(cands.contains(Direction::North));
    }

    #[test]
    fn westbound_vertical_only_at_even_columns() {
        let src = Coord::new(5, 0);
        let dst = Coord::new(0, 3);
        let odd_col = Coord::new(3, 1);
        let cands = odd_even_candidates(src, odd_col, dst);
        assert!(cands.contains(Direction::West));
        assert!(!cands.contains(Direction::South));

        let even_col = Coord::new(2, 1);
        let cands = odd_even_candidates(src, even_col, dst);
        assert!(cands.contains(Direction::West));
        assert!(cands.contains(Direction::South));
    }

    #[test]
    fn source_column_turn_is_free() {
        // In the source column an eastbound packet may turn vertically
        // even at an even column (it has taken no East hop yet).
        let src = Coord::new(2, 4);
        let dst = Coord::new(5, 1);
        let cands = odd_even_candidates(src, src, dst);
        assert!(cands.contains(Direction::North));
    }

    #[test]
    fn aligned_routes_are_straight() {
        let src = Coord::new(1, 1);
        assert!(
            odd_even_candidates(src, Coord::new(1, 3), Coord::new(1, 7)).contains(Direction::South)
        );
        let c = odd_even_candidates(src, Coord::new(3, 1), Coord::new(6, 1));
        assert_eq!(c.len(), 1);
        assert!(c.contains(Direction::East));
    }

    #[test]
    fn destination_reached_is_empty() {
        let c = Coord::new(4, 4);
        assert!(odd_even_candidates(c, c, c).is_empty());
    }
}
