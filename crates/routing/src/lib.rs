//! # noc-routing
//!
//! Routing algorithms for the RoCo reproduction: deterministic XY,
//! oblivious XY-YX, minimal adaptive routing under the odd-even turn
//! model, look-ahead (one-hop-ahead) route computation, and the
//! destination-quadrant classification used by the Path-Sensitive
//! baseline router.
//!
//! # Examples
//!
//! ```
//! use noc_core::{AxisOrder, Coord, Direction, MeshConfig, RoutingKind};
//! use noc_routing::RouteComputer;
//!
//! let rc = RouteComputer::new(RoutingKind::Xy, MeshConfig::new(8, 8));
//! let dir = rc.deterministic_route(Coord::new(0, 0), Coord::new(3, 5), AxisOrder::Xy);
//! assert_eq!(dir, Direction::East); // X hops first under XY routing
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod computer;
mod dor;
mod odd_even;
mod quadrant;
mod west_first;

pub use computer::RouteComputer;
pub use dor::{ordered_route, productive_directions, xy_route, yx_route, DirSet};
pub use odd_even::odd_even_candidates;
pub use quadrant::{quadrant_mask, quadrant_of, Quadrant};
pub use west_first::west_first_candidates;
