//! # noc-thermal
//!
//! A steady-state on-chip thermal model for the RoCo reproduction —
//! the paper's stated future work ("we plan to investigate the
//! temperature effects when using the proposed router with XY-YX and
//! adaptive routing", §6).
//!
//! Each router tile dissipates the power implied by its simulated
//! activity counters; heat leaves vertically through the heat-sink
//! resistance and laterally to the four neighbouring tiles:
//!
//! ```text
//! Gv·(Tᵢ − Tₐ) + Σⱼ Gl·(Tᵢ − Tⱼ) = Pᵢ
//! ```
//!
//! solved by Jacobi iteration. The `ext_thermal` bench target uses it
//! to compare the thermal profiles of the three router architectures.
//!
//! # Examples
//!
//! ```
//! use noc_core::MeshConfig;
//! use noc_thermal::{steady_state, ThermalParams};
//!
//! let mesh = MeshConfig::new(4, 4);
//! let mut power = vec![0.05; 16]; // 50 mW per router
//! power[5] = 0.5; // a hotspot
//! let temps = steady_state(mesh, &power, &ThermalParams::default());
//! let hottest = temps.iter().cloned().fold(f64::MIN, f64::max);
//! assert_eq!(temps[5], hottest, "the hotspot tile is the hottest");
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

use noc_core::{Coord, MeshConfig, RouterConfig};
use noc_power::{energy_of, RouterEnergyProfile};
use noc_sim::NodeReport;
use serde::{Deserialize, Serialize};

/// Thermal constants of the package (defaults are typical 90 nm-era
/// flip-chip values at tile granularity).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalParams {
    /// Ambient (heat-sink) temperature in °C.
    pub ambient_c: f64,
    /// Vertical tile-to-ambient thermal resistance in °C/W.
    pub rth_vertical: f64,
    /// Lateral tile-to-tile thermal resistance in °C/W.
    pub rth_lateral: f64,
    /// Router clock in Hz (converts per-cycle energy into power).
    pub clock_hz: f64,
    /// Jacobi convergence threshold in °C.
    pub tolerance: f64,
}

impl Default for ThermalParams {
    fn default() -> Self {
        ThermalParams {
            ambient_c: 45.0,
            rth_vertical: 60.0,
            rth_lateral: 25.0,
            // §5.2: the synthesized routers run at 500 MHz.
            clock_hz: 500.0e6,
            tolerance: 1e-6,
        }
    }
}

/// Solves the steady-state temperature field for `power` watts per
/// tile (row-major). Returns one temperature (°C) per tile.
///
/// # Panics
///
/// Panics if `power.len()` differs from the mesh node count or any
/// parameter is non-positive.
pub fn steady_state(mesh: MeshConfig, power: &[f64], params: &ThermalParams) -> Vec<f64> {
    assert_eq!(power.len(), mesh.nodes(), "one power value per tile");
    assert!(
        params.rth_vertical > 0.0 && params.rth_lateral > 0.0 && params.tolerance > 0.0,
        "thermal parameters must be positive"
    );
    let gv = 1.0 / params.rth_vertical;
    let gl = 1.0 / params.rth_lateral;
    let mut temps = vec![params.ambient_c; power.len()];
    let mut next = temps.clone();
    // Jacobi iteration: strictly diagonally dominant system, always
    // converges; cap iterations defensively.
    for _ in 0..100_000 {
        let mut delta: f64 = 0.0;
        for i in 0..temps.len() {
            let coord = Coord::from_index(i, mesh.width);
            let mut neighbor_sum = 0.0;
            let mut degree = 0.0;
            for dir in noc_core::Direction::MESH {
                if let Some(n) = coord.neighbor(dir, mesh.width, mesh.height) {
                    neighbor_sum += temps[n.index(mesh.width)];
                    degree += 1.0;
                }
            }
            let t = (power[i] + gv * params.ambient_c + gl * neighbor_sum) / (gv + gl * degree);
            delta = delta.max((t - temps[i]).abs());
            next[i] = t;
        }
        std::mem::swap(&mut temps, &mut next);
        if delta < params.tolerance {
            break;
        }
    }
    temps
}

/// Per-tile power (watts) implied by a run's [`NodeReport`]: each
/// router's total energy divided by its wall-clock time at
/// `params.clock_hz`.
pub fn power_map(
    report: &NodeReport,
    router_cfg: &RouterConfig,
    params: &ThermalParams,
) -> Vec<f64> {
    let profile = RouterEnergyProfile::synthesized(router_cfg);
    report
        .activity
        .iter()
        .map(|counters| {
            let energy = energy_of(counters, &profile).total();
            let seconds = counters.cycles.max(1) as f64 / params.clock_hz;
            energy / seconds
        })
        .collect()
}

/// Summary statistics of a temperature field.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThermalSummary {
    /// Hottest tile (°C).
    pub max_c: f64,
    /// Mean tile temperature (°C).
    pub avg_c: f64,
    /// Max − min spatial gradient (°C) — thermal-hotspot severity.
    pub gradient_c: f64,
}

/// Summarizes a temperature field.
///
/// # Panics
///
/// Panics on an empty field.
pub fn summarize(temps: &[f64]) -> ThermalSummary {
    assert!(!temps.is_empty(), "temperature field must be non-empty");
    let max = temps.iter().cloned().fold(f64::MIN, f64::max);
    let min = temps.iter().cloned().fold(f64::MAX, f64::min);
    let avg = temps.iter().sum::<f64>() / temps.len() as f64;
    ThermalSummary { max_c: max, avg_c: avg, gradient_c: max - min }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> MeshConfig {
        MeshConfig::new(8, 8)
    }

    #[test]
    fn zero_power_sits_at_ambient() {
        let t = steady_state(mesh(), &vec![0.0; 64], &ThermalParams::default());
        for v in t {
            assert!((v - 45.0).abs() < 1e-6);
        }
    }

    #[test]
    fn uniform_power_gives_a_flat_field() {
        // Every tile has the same vertical path to ambient and no net
        // lateral flow exists between equal-temperature neighbours, so
        // uniform power must produce a uniform field at Ta + P·Rth_v.
        let t = steady_state(mesh(), &vec![0.1; 64], &ThermalParams::default());
        let first = t[0];
        for v in &t {
            assert!((v - first).abs() < 1e-5, "uniform power gives a uniform field");
        }
        // Each tile: T = Ta + P·Rth_v = 45 + 0.1·60 = 51.
        assert!((first - 51.0).abs() < 1e-3);
    }

    #[test]
    fn hotspot_decays_with_distance() {
        let mut power = vec![0.02; 64];
        let hotspot = Coord::new(4, 4).index(8);
        power[hotspot] = 1.0;
        let t = steady_state(mesh(), &power, &ThermalParams::default());
        let at = |x: u16, y: u16| t[Coord::new(x, y).index(8)];
        assert!(at(4, 4) > at(3, 4));
        assert!(at(3, 4) > at(2, 4));
        assert!(at(2, 4) > at(0, 4));
        assert!(at(4, 4) > 50.0, "hotspot is meaningfully hot: {}", at(4, 4));
    }

    #[test]
    fn superposition_holds() {
        // The system is linear: temperatures for P1+P2 equal the sum of
        // the fields minus one ambient offset.
        let p1: Vec<f64> = (0..64).map(|i| (i % 5) as f64 * 0.01).collect();
        let p2: Vec<f64> = (0..64).map(|i| (i % 3) as f64 * 0.02).collect();
        let sum: Vec<f64> = p1.iter().zip(&p2).map(|(a, b)| a + b).collect();
        let params = ThermalParams::default();
        let t1 = steady_state(mesh(), &p1, &params);
        let t2 = steady_state(mesh(), &p2, &params);
        let ts = steady_state(mesh(), &sum, &params);
        for i in 0..64 {
            let expect = t1[i] + t2[i] - params.ambient_c;
            assert!((ts[i] - expect).abs() < 1e-4, "tile {i}");
        }
    }

    #[test]
    fn summary_statistics() {
        let s = summarize(&[40.0, 50.0, 60.0]);
        assert_eq!(s.max_c, 60.0);
        assert_eq!(s.avg_c, 50.0);
        assert_eq!(s.gradient_c, 20.0);
    }

    #[test]
    #[should_panic(expected = "one power value per tile")]
    fn wrong_power_cardinality_panics() {
        let _ = steady_state(mesh(), &[1.0], &ThermalParams::default());
    }

    #[test]
    fn more_lateral_conduction_flattens_the_field() {
        let mut power = vec![0.02; 64];
        power[Coord::new(4, 4).index(8)] = 0.8;
        let stiff = ThermalParams { rth_lateral: 100.0, ..Default::default() };
        let fluid = ThermalParams { rth_lateral: 5.0, ..Default::default() };
        let g_stiff = summarize(&steady_state(mesh(), &power, &stiff)).gradient_c;
        let g_fluid = summarize(&steady_state(mesh(), &power, &fluid)).gradient_c;
        assert!(g_fluid < g_stiff, "better lateral spreading reduces the gradient");
    }
}
