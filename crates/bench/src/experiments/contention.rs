//! Fig 3: switch-allocation contention probabilities vs injection rate
//! (row input under XY, column input under XY, and overall under
//! adaptive routing), measured on the cycle-accurate simulator exactly
//! as §3.2 describes.

use crate::{f3, run_batch, Table};
use noc_core::{RouterKind, RoutingKind};
use noc_sim::SimConfig;
use noc_traffic::TrafficKind;

/// Fig 3's x-axis (flits/node/cycle). The figure extends past
/// saturation; contention runs are time-bounded rather than drained.
pub const RATES: [f64; 7] = [0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6];

fn contention_config(router: RouterKind, routing: RoutingKind, rate: f64) -> SimConfig {
    let mut cfg = SimConfig::paper_scaled(router, routing, TrafficKind::Uniform);
    cfg.injection_rate = rate;
    // Time-bounded: generate "forever", stop at a fixed horizon.
    cfg.warmup_packets = 0;
    cfg.measured_packets = u64::MAX / 2;
    cfg.max_cycles = 15_000;
    cfg.stall_window = u64::MAX / 2;
    cfg
}

/// Produces Fig 3's three panels: (a) contention at row inputs under
/// XY, (b) at column inputs under XY, (c) overall under adaptive.
pub fn fig3() -> Vec<Table> {
    let mut panels = Vec::new();
    for (panel, routing, axis_label) in [
        ("a — row input, XY routing", RoutingKind::Xy, "x"),
        ("b — column input, XY routing", RoutingKind::Xy, "y"),
        ("c — adaptive routing (all inputs)", RoutingKind::Adaptive, "both"),
    ] {
        let mut configs = Vec::new();
        for router in RouterKind::ALL {
            for &rate in &RATES {
                configs.push(contention_config(router, routing, rate));
            }
        }
        let results = run_batch(configs);
        let mut header: Vec<String> = vec!["Router".into()];
        header.extend(RATES.iter().map(|r| format!("{r:.2}")));
        let mut t = Table::new(
            format!("Fig 3{panel}: contention probability"),
            &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        );
        for (ri, router) in RouterKind::ALL.iter().enumerate() {
            let mut row = vec![router.to_string()];
            for (ci, _) in RATES.iter().enumerate() {
                let r = &results[ri * RATES.len() + ci];
                let p = match axis_label {
                    "x" => r.contention.x_contention_probability(),
                    "y" => r.contention.y_contention_probability(),
                    _ => r.contention.total_contention_probability(),
                }
                .unwrap_or(0.0);
                row.push(f3(p));
            }
            t.push_row(row);
        }
        panels.push(t);
    }
    panels
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contention_config_is_time_bounded() {
        let cfg = contention_config(RouterKind::RoCo, RoutingKind::Xy, 0.5);
        assert_eq!(cfg.max_cycles, 15_000);
        assert!(cfg.measured_packets > 1_000_000_000);
    }

    #[test]
    fn roco_contends_least_at_moderate_load() {
        // One point of Fig 3a, shrunk: at 0.3 flits/node/cycle the RoCo
        // row inputs must contend less than the generic router's.
        let mut generic = contention_config(RouterKind::Generic, RoutingKind::Xy, 0.3);
        let mut roco = contention_config(RouterKind::RoCo, RoutingKind::Xy, 0.3);
        generic.max_cycles = 3_000;
        roco.max_cycles = 3_000;
        let results = run_batch(vec![generic, roco]);
        let g = results[0].contention.x_contention_probability().unwrap();
        let r = results[1].contention.x_contention_probability().unwrap();
        assert!(r < g, "RoCo {r} should contend less than generic {g}");
    }
}
