//! Figures 8, 9, 10 (and the MPEG extension): average latency vs
//! injection rate for the three routers under the three routing
//! algorithms.

use crate::{f2, run_batch, Scale, Table};
use noc_core::{RouterKind, RoutingKind};
use noc_sim::SimConfig;
use noc_traffic::TrafficKind;

/// Injection rates swept by Figs 8–10 (flits/node/cycle).
pub const RATES: [f64; 8] = [0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40];

/// Runs one latency figure: `traffic` × 3 routings × 3 routers ×
/// [`RATES`]. Returns one table per routing algorithm, in
/// [`RoutingKind::ALL`] order, with a row per router and a column per
/// rate.
pub fn latency_figure(traffic: TrafficKind, scale: Scale) -> Vec<Table> {
    let mut tables = Vec::new();
    for routing in RoutingKind::ALL {
        let mut configs = Vec::new();
        for router in RouterKind::ALL {
            for &rate in &RATES {
                let cfg =
                    scale.apply(SimConfig::paper_scaled(router, routing, traffic)).with_rate(rate);
                configs.push(cfg);
            }
        }
        let results = run_batch(configs);
        let mut header: Vec<String> = vec!["Router".into()];
        header.extend(RATES.iter().map(|r| format!("{r:.2}")));
        let mut t = Table::new(
            format!("Average latency (cycles) — {traffic} traffic, {routing} routing"),
            &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        );
        for (ri, router) in RouterKind::ALL.iter().enumerate() {
            let mut row = vec![router.to_string()];
            for (ci, _) in RATES.iter().enumerate() {
                let r = &results[ri * RATES.len() + ci];
                let suffix = if r.stalled { "*" } else { "" };
                row.push(format!("{}{}", f2(r.avg_latency), suffix));
            }
            t.push_row(row);
        }
        tables.push(t);
    }
    tables
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_uniform_figure_has_expected_shape() {
        // A miniature version of Fig 8 to keep the test fast.
        let scale = Scale { warmup: 50, measured: 500, fault_seeds: 1 };
        let tables = latency_figure(TrafficKind::Uniform, scale);
        assert_eq!(tables.len(), 3);
        for t in &tables {
            assert_eq!(t.rows.len(), 3);
            assert_eq!(t.rows[0].len(), 1 + RATES.len());
            // Latency grows with injection rate for every router.
            for row in &t.rows {
                let lo: f64 = row[1].trim_end_matches('*').parse().unwrap();
                let hi: f64 = row[RATES.len()].trim_end_matches('*').parse().unwrap();
                assert!(hi >= lo, "latency should not shrink with load");
            }
        }
    }
}
