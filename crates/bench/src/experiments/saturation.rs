//! Saturation-point finder: binary-search the injection rate at which
//! a configuration's average latency exceeds a multiple of its
//! zero-load latency — the standard single-number summary of a
//! latency/throughput curve.

use crate::{f3, Scale, Table};
use noc_core::{RouterKind, RoutingKind};
use noc_sim::SimConfig;
use noc_traffic::TrafficKind;

/// Latency blow-up factor defining "saturated".
const SATURATION_FACTOR: f64 = 3.0;

/// Measured latency at `rate` (∞ when the run stalls).
fn latency_at(base: &SimConfig, rate: f64) -> f64 {
    let cfg = base.clone().with_rate(rate);
    let r = noc_sim::run(cfg);
    if r.stalled || r.measured_delivered == 0 {
        f64::INFINITY
    } else {
        r.avg_latency
    }
}

/// Binary-searches the saturation injection rate of one configuration
/// within `(lo, hi)` to a resolution of ~0.005 flits/node/cycle.
pub fn saturation_rate(base: &SimConfig) -> f64 {
    let zero_load = latency_at(base, 0.02);
    let threshold = zero_load * SATURATION_FACTOR;
    let (mut lo, mut hi) = (0.02f64, 1.0f64);
    // Expand: if even 1.0 does not saturate (tiny meshes), report 1.0.
    if latency_at(base, hi) < threshold {
        return hi;
    }
    for _ in 0..8 {
        let mid = 0.5 * (lo + hi);
        if latency_at(base, mid) < threshold {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    0.5 * (lo + hi)
}

/// The saturation-throughput comparison across routers × routings
/// (uniform traffic).
pub fn saturation_table(scale: Scale) -> Table {
    let mut t = Table::new(
        "Saturation injection rate (flits/node/cycle, uniform traffic, 3x zero-load latency)",
        &["Router", "xy", "xy-yx", "adaptive"],
    );
    for router in RouterKind::ALL {
        let mut row = vec![router.to_string()];
        for routing in RoutingKind::ALL {
            let mut base =
                scale.apply(SimConfig::paper_scaled(router, routing, TrafficKind::Uniform));
            // Saturated runs never drain; bound them.
            base.max_cycles = 60_000;
            base.stall_window = 8_000;
            row.push(f3(saturation_rate(&base)));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn saturation_rate_is_sensible_for_xy_generic() {
        let mut base =
            SimConfig::paper_scaled(RouterKind::Generic, RoutingKind::Xy, TrafficKind::Uniform);
        base.warmup_packets = 200;
        base.measured_packets = 3_000;
        base.max_cycles = 40_000;
        base.stall_window = 5_000;
        let sat = saturation_rate(&base);
        // An 8x8 mesh under XY with 3 VCs saturates well inside (0.2, 0.7).
        assert!(sat > 0.2 && sat < 0.7, "saturation at {sat}");
    }
}
