//! Extension experiment: mesh-size scaling. §5.1 stresses that the
//! simulator is "fully parameterizable, allowing the user to specify
//! parameters such as network size"; this sweep shows how the three
//! architectures scale from 4×4 to 16×16 at a fixed per-node load.

use crate::{f2, run_batch, Scale, Table};
use noc_core::{MeshConfig, RouterKind, RoutingKind};
use noc_sim::SimConfig;
use noc_traffic::TrafficKind;

/// Mesh edge lengths swept.
pub const SIZES: [u16; 4] = [4, 8, 12, 16];

/// Latency vs mesh size at 0.15 flits/node/cycle (kept below the 16×16
/// saturation point so every size stays in the linear regime).
pub fn scaling_table(scale: Scale) -> Table {
    let mut configs = Vec::new();
    for router in RouterKind::ALL {
        for &n in &SIZES {
            let mut cfg = scale
                .apply(SimConfig::paper_scaled(router, RoutingKind::Xy, TrafficKind::Uniform))
                .with_rate(0.15);
            cfg.mesh = MeshConfig::new(n, n);
            configs.push(cfg);
        }
    }
    let results = run_batch(configs);
    let mut header: Vec<String> = vec!["Router".into()];
    header.extend(SIZES.iter().map(|n| format!("{n}x{n}")));
    let mut t = Table::new(
        "Extension — latency vs mesh size (uniform, XY, 0.15 flits/node/cycle)",
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (ri, router) in RouterKind::ALL.iter().enumerate() {
        let mut row = vec![router.to_string()];
        for (ci, _) in SIZES.iter().enumerate() {
            row.push(f2(results[ri * SIZES.len() + ci].avg_latency));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_grows_with_mesh_size() {
        let scale = Scale { warmup: 50, measured: 800, fault_seeds: 1 };
        let t = scaling_table(scale);
        for row in &t.rows {
            let small: f64 = row[1].parse().unwrap();
            let large: f64 = row[SIZES.len()].parse().unwrap();
            assert!(large > small, "{}: {small} -> {large}", row[0]);
        }
    }
}
