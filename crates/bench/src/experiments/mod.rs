//! One module per paper table/figure (see DESIGN.md §5 for the index).

pub mod ablation;
pub mod contention;
pub mod energy;
pub mod faults;
pub mod latency;
pub mod pef;
pub mod saturation;
pub mod scaling;
pub mod tables;
pub mod thermal;
