//! Figures 11 and 12: packet completion probability under injected
//! hardware faults (router-centric/critical vs message-centric/
//! non-critical), at 30 % injection (§5.4), averaged over several
//! random fault patterns.

use crate::{f3, run_batch, Scale, Table};
use noc_core::{RouterKind, RoutingKind};
use noc_fault::{FaultCategory, FaultPlan};
use noc_sim::{SimConfig, SimResults};
use noc_traffic::TrafficKind;

/// Fault counts swept by Figs 11/12/14.
pub const FAULT_COUNTS: [usize; 3] = [1, 2, 4];

/// Injection rate of the faulty-network experiments (§5.4: 30 %).
pub const FAULTY_RATE: f64 = 0.3;

/// Builds the config set for one (router, routing, count) cell: one run
/// per fault seed.
fn cell_configs(
    router: RouterKind,
    routing: RoutingKind,
    category: FaultCategory,
    count: usize,
    scale: Scale,
) -> Vec<SimConfig> {
    (0..scale.fault_seeds)
        .map(|seed| {
            let mut cfg = scale
                .apply(SimConfig::paper_scaled(router, routing, TrafficKind::Uniform))
                .with_rate(FAULTY_RATE);
            cfg.faults = FaultPlan::random(category, count, cfg.mesh, 0xFA0 + seed);
            cfg.stall_window = 5_000;
            cfg
        })
        .collect()
}

/// Mean results over the fault seeds of one cell.
#[derive(Debug, Clone, Copy)]
pub struct CellSummary {
    /// Mean completion probability.
    pub completion: f64,
    /// Mean average latency (of delivered packets).
    pub latency: f64,
    /// Mean energy per delivered packet.
    pub energy_per_packet: f64,
}

/// Averages a cell's runs.
pub fn summarize(runs: &[SimResults]) -> CellSummary {
    let n = runs.len() as f64;
    CellSummary {
        completion: runs.iter().map(|r| r.completion_probability()).sum::<f64>() / n,
        latency: runs.iter().map(|r| r.avg_latency).sum::<f64>() / n,
        energy_per_packet: runs.iter().map(|r| r.energy_per_packet).sum::<f64>() / n,
    }
}

/// Runs one completion-probability figure (Fig 11 for
/// [`FaultCategory::Isolating`], Fig 12 for
/// [`FaultCategory::Recyclable`]): one table per routing algorithm,
/// rows = routers, columns = fault counts.
pub fn completion_figure(category: FaultCategory, scale: Scale) -> Vec<Table> {
    let mut tables = Vec::new();
    for routing in RoutingKind::ALL {
        let mut configs = Vec::new();
        for router in RouterKind::ALL {
            for &count in &FAULT_COUNTS {
                configs.extend(cell_configs(router, routing, category, count, scale));
            }
        }
        let results = run_batch(configs);
        let per_cell = scale.fault_seeds as usize;
        let mut header: Vec<String> = vec!["Router".into()];
        header.extend(FAULT_COUNTS.iter().map(|c| format!("{c} fault(s)")));
        let mut t = Table::new(
            format!("Packet completion probability — {category} faults, {routing} routing"),
            &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
        );
        let mut idx = 0;
        for router in RouterKind::ALL {
            let mut row = vec![router.to_string()];
            for _ in FAULT_COUNTS {
                let cell = summarize(&results[idx..idx + per_cell]);
                idx += per_cell;
                row.push(f3(cell.completion));
            }
            t.push_row(row);
        }
        tables.push(t);
    }
    tables
}

/// Runs the full per-cell summaries used by the PEF figure (Fig 14):
/// `(router, count) -> CellSummary` for one routing algorithm.
pub fn fault_summaries(
    category: FaultCategory,
    routing: RoutingKind,
    scale: Scale,
) -> Vec<(RouterKind, usize, CellSummary)> {
    let mut configs = Vec::new();
    for router in RouterKind::ALL {
        for &count in &FAULT_COUNTS {
            configs.extend(cell_configs(router, routing, category, count, scale));
        }
    }
    let results = run_batch(configs);
    let per_cell = scale.fault_seeds as usize;
    let mut out = Vec::new();
    let mut idx = 0;
    for router in RouterKind::ALL {
        for &count in &FAULT_COUNTS {
            out.push((router, count, summarize(&results[idx..idx + per_cell])));
            idx += per_cell;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Scale {
        Scale { warmup: 50, measured: 800, fault_seeds: 2 }
    }

    #[test]
    fn roco_survives_recyclable_faults_unscathed() {
        let summaries = fault_summaries(FaultCategory::Recyclable, RoutingKind::Xy, tiny());
        for (router, count, cell) in summaries {
            if router == RouterKind::RoCo {
                assert!(
                    cell.completion > 0.999,
                    "RoCo should recycle all {count} non-critical faults, got {}",
                    cell.completion
                );
            }
        }
    }

    #[test]
    fn completion_degrades_with_fault_count_for_baselines() {
        let summaries = fault_summaries(FaultCategory::Isolating, RoutingKind::Xy, tiny());
        let get = |router, count| {
            summaries
                .iter()
                .find(|(r, c, _)| *r == router && *c == count)
                .map(|(_, _, s)| s.completion)
                .unwrap()
        };
        assert!(get(RouterKind::Generic, 4) < get(RouterKind::Generic, 1));
        // RoCo always beats the generic router at the same fault count.
        for count in FAULT_COUNTS {
            assert!(get(RouterKind::RoCo, count) >= get(RouterKind::Generic, count));
        }
    }
}
