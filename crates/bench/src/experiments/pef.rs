//! Fig 14: the Performance-Energy-Fault (PEF) metric —
//! `EDP / completion probability` — vs fault count, for critical
//! (router-centric) and non-critical (message-centric) faults, together
//! with the average-latency curves the figure overlays.

use crate::experiments::faults::{fault_summaries, FAULT_COUNTS};
use crate::{f2, Scale, Table};
use noc_core::{RouterKind, RoutingKind};
use noc_fault::FaultCategory;
use noc_power::PefInputs;

/// Runs one Fig 14 panel. Columns per fault count: PEF (nJ·cycles /
/// completion) and average latency (cycles).
pub fn fig14_panel(category: FaultCategory, routing: RoutingKind, scale: Scale) -> Table {
    let summaries = fault_summaries(category, routing, scale);
    let mut header: Vec<String> = vec!["Router".into()];
    for c in FAULT_COUNTS {
        header.push(format!("PEF @{c}f"));
        header.push(format!("latency @{c}f"));
    }
    let mut t = Table::new(
        format!("Fig 14 — PEF under {category} faults ({routing} routing, 0.3 injection)"),
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for router in RouterKind::ALL {
        let mut row = vec![router.to_string()];
        for &count in &FAULT_COUNTS {
            let cell = summaries
                .iter()
                .find(|(r, c, _)| *r == router && *c == count)
                .map(|(_, _, s)| s)
                .expect("cell present");
            let pef = PefInputs {
                avg_latency_cycles: cell.latency,
                energy_per_packet: cell.energy_per_packet,
                completion_probability: cell.completion.max(1e-9),
            }
            .pef();
            row.push(f2(pef * 1e9)); // nJ·cycles per unit completion
            row.push(f2(cell.latency));
        }
        t.push_row(row);
    }
    t
}

/// Relative PEF improvement of RoCo over the other two routers,
/// averaged across fault counts (the paper's "50 % vs generic, 35 % vs
/// Path-Sensitive" headline).
pub fn pef_improvement(table: &Table) -> (f64, f64) {
    let pef_of = |row: usize| -> f64 {
        let mut total = 0.0;
        for (i, _) in FAULT_COUNTS.iter().enumerate() {
            total += table.rows[row][1 + 2 * i].parse::<f64>().unwrap();
        }
        total / FAULT_COUNTS.len() as f64
    };
    let generic = pef_of(0);
    let ps = pef_of(1);
    let roco = pef_of(2);
    (1.0 - roco / generic, 1.0 - roco / ps)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roco_wins_the_pef_comparison() {
        let scale = Scale { warmup: 50, measured: 1_000, fault_seeds: 2 };
        let t = fig14_panel(FaultCategory::Isolating, RoutingKind::Xy, scale);
        assert_eq!(t.rows.len(), 3);
        let (vs_generic, vs_ps) = pef_improvement(&t);
        assert!(vs_generic > 0.0, "RoCo must improve PEF vs generic, got {vs_generic}");
        assert!(vs_ps > 0.0, "RoCo must improve PEF vs path-sensitive, got {vs_ps}");
    }
}
