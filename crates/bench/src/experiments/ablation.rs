//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **Mirroring Effect** vs plain input-first separable allocation on
//!    the RoCo 2×2 modules (§3.3's contribution).
//! 2. **West-first** vs **odd-even** minimal adaptive routing (the
//!    adaptive-policy substitution documented in DESIGN.md).

use crate::{f2, f3, run_batch, Scale, Table};
use noc_core::{RouterKind, RoutingKind};
use noc_sim::SimConfig;
use noc_traffic::TrafficKind;

/// Rates swept by the ablations.
pub const RATES: [f64; 5] = [0.1, 0.2, 0.25, 0.3, 0.35];

/// Mirror allocator vs separable allocator on the RoCo router
/// (uniform traffic, XY routing).
pub fn mirror_ablation(scale: Scale) -> Table {
    let mut configs = Vec::new();
    for mirror in [true, false] {
        for &rate in &RATES {
            let mut cfg = scale
                .apply(SimConfig::paper_scaled(
                    RouterKind::RoCo,
                    RoutingKind::Xy,
                    TrafficKind::Uniform,
                ))
                .with_rate(rate);
            // SimConfig derives the router config; thread the flag via a
            // dedicated field.
            cfg.mirror_allocator = mirror;
            configs.push(cfg);
        }
    }
    let results = run_batch(configs);
    let mut header: Vec<String> = vec!["Allocator".into()];
    header.extend(RATES.iter().map(|r| format!("lat @{r:.2}")));
    header.push("contention @0.30".into());
    let mut t = Table::new(
        "Ablation — Mirroring Effect vs separable SA (RoCo, XY, uniform)",
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (gi, name) in [(0usize, "mirror"), (1usize, "separable")] {
        let mut row = vec![name.to_string()];
        for (ci, _) in RATES.iter().enumerate() {
            row.push(f2(results[gi * RATES.len() + ci].avg_latency));
        }
        let at_030 = &results[gi * RATES.len() + 3];
        row.push(f3(at_030.contention.total_contention_probability().unwrap_or(0.0)));
        t.push_row(row);
    }
    t
}

/// West-first vs odd-even adaptive routing across the three routers
/// (uniform traffic, 0.25 injection — below odd-even's saturation so
/// the comparison stays in the linear region).
pub fn adaptive_policy_ablation(scale: Scale) -> Table {
    let mut configs = Vec::new();
    for routing in [RoutingKind::Adaptive, RoutingKind::AdaptiveOddEven] {
        for router in RouterKind::ALL {
            configs.push(
                scale
                    .apply(SimConfig::paper_scaled(router, routing, TrafficKind::Uniform))
                    .with_rate(0.25),
            );
        }
    }
    let results = run_batch(configs);
    let mut t = Table::new(
        "Ablation — adaptive turn model (uniform, 0.25 flits/node/cycle)",
        &["Policy", "generic", "path-sensitive", "roco"],
    );
    for (gi, name) in [(0usize, "west-first"), (1usize, "odd-even")] {
        let mut row = vec![name.to_string()];
        for ri in 0..3 {
            row.push(f2(results[gi * 3 + ri].avg_latency));
        }
        t.push_row(row);
    }
    t
}

/// Speculative vs non-speculative switch allocation: the paper's
/// routers perform look-ahead routing, VA and *speculative* SA in one
/// stage (§3.1); turning speculation off models a classic 3-stage
/// pipeline and should cost about one cycle per hop at low load.
pub fn speculation_ablation(scale: Scale) -> Table {
    let mut configs = Vec::new();
    for speculative in [true, false] {
        for &rate in &RATES {
            let mut cfg = scale
                .apply(SimConfig::paper_scaled(
                    RouterKind::RoCo,
                    RoutingKind::Xy,
                    TrafficKind::Uniform,
                ))
                .with_rate(rate);
            cfg.speculative_sa = speculative;
            configs.push(cfg);
        }
    }
    let results = run_batch(configs);
    let mut header: Vec<String> = vec!["Pipeline".into()];
    header.extend(RATES.iter().map(|r| format!("lat @{r:.2}")));
    let mut t = Table::new(
        "Ablation — speculative SA vs 3-stage pipeline (RoCo, XY, uniform)",
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (gi, name) in [(0usize, "2-stage speculative"), (1usize, "3-stage")] {
        let mut row = vec![name.to_string()];
        for (ci, _) in RATES.iter().enumerate() {
            row.push(f2(results[gi * RATES.len() + ci].avg_latency));
        }
        t.push_row(row);
    }
    t
}

/// Buffer-organization sensitivity on the generic router: split the
/// same 60-flit budget into 2/3/4 VCs per port (depth 6/4/3) and sweep
/// load. More VCs reduce head-of-line blocking but shallower buffers
/// hurt credit round-trip absorption — context for the RoCo router's
/// fixed Table-1 partitioning.
pub fn vc_sensitivity(scale: Scale) -> Table {
    let variants: [(u8, u8); 3] = [(2, 6), (3, 4), (4, 3)];
    let mut header: Vec<String> = vec!["VCs x depth".into()];
    header.extend(RATES.iter().map(|r| format!("lat @{r:.2}")));
    let mut t = Table::new(
        "Ablation — generic router buffer partitioning (60 flits/router, XY, uniform)",
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (vcs, depth) in variants {
        let mut row = vec![format!("{vcs}x{depth}")];
        for &rate in &RATES {
            let mut cfg = scale
                .apply(SimConfig::paper_scaled(
                    RouterKind::Generic,
                    RoutingKind::Xy,
                    TrafficKind::Uniform,
                ))
                .with_rate(rate);
            cfg.vcs_per_port = Some(vcs);
            cfg.buffer_depth = Some(depth);
            let r = noc_sim::run(cfg);
            row.push(f2(r.avg_latency));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn vc_partitioning_variants_all_work() {
        let scale = Scale { warmup: 50, measured: 800, fault_seeds: 1 };
        let t = vc_sensitivity(scale);
        assert_eq!(t.rows.len(), 3);
        for row in &t.rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v > 5.0 && v < 2_000.0);
            }
        }
    }

    #[test]
    fn speculation_saves_latency_at_low_load() {
        let scale = Scale { warmup: 100, measured: 1_500, fault_seeds: 1 };
        let t = speculation_ablation(scale);
        let spec: f64 = t.rows[0][1].parse().unwrap();
        let nonspec: f64 = t.rows[1][1].parse().unwrap();
        // ~1 extra cycle per hop at 0.1 flits/node/cycle (avg ~5.3 hops).
        assert!(nonspec > spec + 2.0, "3-stage {nonspec} should clearly exceed speculative {spec}");
    }

    #[test]
    fn mirror_beats_separable_under_load() {
        let scale = Scale { warmup: 100, measured: 2_000, fault_seeds: 1 };
        let t = mirror_ablation(scale);
        let mirror_hi: f64 = t.rows[0][RATES.len()].parse().unwrap();
        let separable_hi: f64 = t.rows[1][RATES.len()].parse().unwrap();
        assert!(
            mirror_hi <= separable_hi * 1.05,
            "mirror {mirror_hi} should not lose to separable {separable_hi}"
        );
    }
}
