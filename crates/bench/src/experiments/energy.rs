//! Fig 13: energy per packet for uniform, self-similar and transpose
//! traffic at 30 % injection under XY routing.

use crate::{run_batch, Scale, Table};
use noc_core::{RouterKind, RoutingKind};
use noc_sim::SimConfig;
use noc_traffic::TrafficKind;

/// The three workloads of Fig 13.
pub const TRAFFICS: [TrafficKind; 3] =
    [TrafficKind::Uniform, TrafficKind::SelfSimilar, TrafficKind::Transpose];

/// Runs Fig 13: energy per packet (nJ), rows = routers, columns =
/// workloads, 0.3 flits/node/cycle, XY routing.
pub fn fig13(scale: Scale) -> Table {
    let mut configs = Vec::new();
    for router in RouterKind::ALL {
        for traffic in TRAFFICS {
            configs.push(
                scale
                    .apply(SimConfig::paper_scaled(router, RoutingKind::Xy, traffic))
                    .with_rate(0.3),
            );
        }
    }
    let results = run_batch(configs);
    let mut header: Vec<String> = vec!["Router".into()];
    header.extend(TRAFFICS.iter().map(|t| t.to_string()));
    let mut t = Table::new(
        "Fig 13 — Energy per packet (nJ) at 0.3 flits/node/cycle, XY routing",
        &header.iter().map(|s| s.as_str()).collect::<Vec<_>>(),
    );
    for (ri, router) in RouterKind::ALL.iter().enumerate() {
        let mut row = vec![router.to_string()];
        for (ci, _) in TRAFFICS.iter().enumerate() {
            let r = &results[ri * TRAFFICS.len() + ci];
            row.push(format!("{:.3}", r.energy_per_packet * 1e9));
        }
        t.push_row(row);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roco_uses_least_energy_per_packet() {
        let scale = Scale { warmup: 100, measured: 1_500, fault_seeds: 1 };
        let t = fig13(scale);
        assert_eq!(t.rows.len(), 3);
        for col in 1..=TRAFFICS.len() {
            let generic: f64 = t.rows[0][col].parse().unwrap();
            let ps: f64 = t.rows[1][col].parse().unwrap();
            let roco: f64 = t.rows[2][col].parse().unwrap();
            assert!(roco < generic, "column {col}: RoCo {roco} vs generic {generic}");
            assert!(roco < ps, "column {col}: RoCo {roco} vs PS {ps}");
            // §5.4: ~20 % below the generic router, ~6 % below PS.
            let vs_generic = 1.0 - roco / generic;
            assert!(
                vs_generic > 0.05 && vs_generic < 0.45,
                "column {col}: saving vs generic {vs_generic}"
            );
        }
    }
}
