//! Table 1, Table 2 and Fig 2 — the analytic/configuration artifacts.

use crate::Table;
use noc_analysis::{
    generic_non_blocking_probability, generic_sa, generic_va,
    path_sensitive_non_blocking_probability, roco_non_blocking_probability, roco_sa, roco_va,
};
use noc_core::{RouterConfig, RouterKind, RoutingKind, VcAdmission};
use noc_router::{table1_vcs, ModulePort};

/// Table 1: the RoCo VC buffer configuration per routing algorithm.
pub fn table1() -> Table {
    let mut t = Table::new(
        "Table 1 — RoCo VC buffer configuration per routing algorithm",
        &["Routing", "Row port 1", "Row port 2", "Col port 1", "Col port 2"],
    );
    for routing in RoutingKind::ALL {
        let cfg = RouterConfig::paper(RouterKind::RoCo, routing);
        let specs = table1_vcs(&cfg);
        let port_str = |p: ModulePort| {
            specs
                .iter()
                .filter(|s| s.port == p)
                .map(|s| match s.desc.admission {
                    VcAdmission::Class(c) => c.to_string(),
                    VcAdmission::Any => "any".to_string(),
                })
                .collect::<Vec<_>>()
                .join(" ")
        };
        t.push_row(vec![
            routing.to_string(),
            port_str(ModulePort::RowP1),
            port_str(ModulePort::RowP2),
            port_str(ModulePort::ColP1),
            port_str(ModulePort::ColP2),
        ]);
    }
    t
}

/// Table 2: non-blocking probabilities for the three architectures.
pub fn table2() -> Table {
    let mut t = Table::new(
        "Table 2 — Non-blocking maximal-matching probabilities (N = 5)",
        &["Router", "Non-blocking probability", "Paper value"],
    );
    t.push_row(vec![
        "generic".into(),
        format!("{:.4}", generic_non_blocking_probability(5)),
        "0.043".into(),
    ]);
    t.push_row(vec![
        "path-sensitive".into(),
        format!("{:.4}", path_sensitive_non_blocking_probability()),
        "0.125".into(),
    ]);
    t.push_row(vec![
        "roco".into(),
        format!("{:.4}", roco_non_blocking_probability()),
        "0.25".into(),
    ]);
    t
}

/// Fig 2: VA (and Fig 4: SA) arbiter inventories for v = 3.
pub fn fig2(v: u32) -> Table {
    let mut t = Table::new(
        format!("Fig 2 — VA/SA arbiter complexity (v = {v})"),
        &["Router", "Unit", "Stage", "Arbiters", "Size", "Cost (∝ size²)"],
    );
    let g = generic_va(v);
    let r = roco_va(v);
    for (router, va) in [("generic", g), ("roco", r)] {
        t.push_row(vec![
            router.into(),
            "VA".into(),
            "1st".into(),
            va.first_stage.count.to_string(),
            format!("{}:1", va.first_stage.size),
            va.first_stage.cost().to_string(),
        ]);
        t.push_row(vec![
            router.into(),
            "VA".into(),
            "2nd".into(),
            va.second_stage.count.to_string(),
            format!("{}:1", va.second_stage.size),
            va.second_stage.cost().to_string(),
        ]);
    }
    for (router, sa) in [("generic", generic_sa(v)), ("roco", roco_sa(v))] {
        t.push_row(vec![
            router.into(),
            "SA".into(),
            "local".into(),
            sa.local.count.to_string(),
            format!("{}:1", sa.local.size),
            sa.local.cost().to_string(),
        ]);
        t.push_row(vec![
            router.into(),
            "SA".into(),
            "global".into(),
            sa.global.count.to_string(),
            format!("{}:1", sa.global.size),
            sa.global.cost().to_string(),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper_layout() {
        let t = table1();
        assert_eq!(t.rows.len(), 3);
        // XY row: "dx dx Injxy | dx dx Injxy | dy txy Injyx | dy dy txy".
        assert_eq!(t.rows[0][1], "dx dx Injxy");
        assert_eq!(t.rows[0][2], "dx dx Injxy");
        assert_eq!(t.rows[0][3], "dy txy Injyx");
        assert_eq!(t.rows[0][4], "dy dy txy");
        // Adaptive row's column port 2: "dy txy txy".
        assert_eq!(t.rows[2][4], "dy txy txy");
    }

    #[test]
    fn table2_reproduces_paper_numbers() {
        let t = table2();
        assert_eq!(t.rows[0][1], "0.0430");
        assert_eq!(t.rows[1][1], "0.1250");
        assert_eq!(t.rows[2][1], "0.2500");
    }

    #[test]
    fn fig2_has_both_units() {
        let t = fig2(3);
        assert_eq!(t.rows.len(), 8);
        assert!(t.rows.iter().any(|r| r[0] == "roco" && r[4] == "6:1"));
        assert!(t.rows.iter().any(|r| r[0] == "generic" && r[4] == "15:1"));
    }
}
