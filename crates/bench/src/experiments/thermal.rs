//! Extension experiment: thermal profiles (the paper's §6 future work).
//!
//! Runs the three routers under the three routing algorithms, derives
//! each router tile's power from its activity counters, solves the
//! steady-state temperature field and compares peak temperature and
//! spatial gradient. The RoCo router's lower dynamic energy should
//! translate into a cooler, flatter die.

use crate::{f2, Scale, Table};
use noc_core::{RouterKind, RoutingKind};
use noc_sim::{SimConfig, Simulation};
use noc_thermal::{power_map, steady_state, summarize, ThermalParams};
use noc_traffic::TrafficKind;

/// Runs the thermal comparison at 0.3 injection, uniform traffic.
pub fn thermal_comparison(scale: Scale) -> Table {
    let params = ThermalParams::default();
    let mut t = Table::new(
        "Extension — steady-state thermal profile (uniform, 0.3 flits/node/cycle)",
        &["Router", "Routing", "peak °C", "avg °C", "gradient °C", "total W"],
    );
    for router in RouterKind::ALL {
        for routing in RoutingKind::ALL {
            let cfg = scale
                .apply(SimConfig::paper_scaled(router, routing, TrafficKind::Uniform))
                .with_rate(0.3);
            let rcfg = cfg.router_config();
            let mesh = cfg.mesh;
            let mut sim = Simulation::new(cfg);
            while !sim.finished() {
                sim.step();
            }
            let report = sim.node_report();
            let power = power_map(&report, &rcfg, &params);
            let temps = steady_state(mesh, &power, &params);
            let s = summarize(&temps);
            t.push_row(vec![
                router.to_string(),
                routing.to_string(),
                f2(s.max_c),
                f2(s.avg_c),
                f2(s.gradient_c),
                format!("{:.3}", power.iter().sum::<f64>()),
            ]);
        }
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roco_runs_cooler_than_generic() {
        let scale = Scale { warmup: 100, measured: 1_500, fault_seeds: 1 };
        let t = thermal_comparison(scale);
        assert_eq!(t.rows.len(), 9);
        // Compare XY rows (rows 0 and 6: generic-xy vs roco-xy).
        let peak = |row: usize| t.rows[row][2].parse::<f64>().unwrap();
        let generic_xy = peak(0);
        let roco_xy = peak(6);
        assert!(
            roco_xy < generic_xy,
            "RoCo peak {roco_xy} should be cooler than generic {generic_xy}"
        );
        // Everything stays in a plausible silicon band.
        for row in &t.rows {
            let p: f64 = row[2].parse().unwrap();
            assert!(p > 45.0 && p < 125.0, "peak {p} outside plausible band");
        }
    }
}
