//! Graceful-degradation campaign: §4 evaluated *dynamically*.
//!
//! The paper's fault experiments inject a fixed fault pattern before
//! cycle 0. This harness instead sweeps a Monte Carlo grid of
//! fault-arrival rates (mean time between faults) × router
//! architectures, with faults landing mid-run from a seeded
//! [`FaultSchedule`] and optionally healing after a fixed repair time.
//! Each cell runs against a fault-free baseline of the same seed and
//! reports per-window time-series — availability (delivered/generated),
//! throughput retention vs the baseline, and a PEF-over-time proxy —
//! plus end-to-end recovery totals. Everything is deterministic per
//! seed: reruns byte-match, which the CI smoke job asserts.

use noc_core::{MeshConfig, RouterKind, RoutingKind, TopologyConfig};
use noc_fault::{FaultCategory, FaultSchedule};
use noc_sim::json::{write_f64, write_key, write_str};
use noc_sim::{
    ClassLatency, IntervalSample, MetricsSink, RecoveryConfig, Registry, SimConfig, Simulation,
};
use noc_traffic::TrafficKind;
use std::cell::RefCell;
use std::fmt::Write as _;
use std::rc::Rc;

/// One campaign's sweep grid and per-run sizing.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Mesh dimensions (the topology's bounding grid when `topology`
    /// is not [`TopologyConfig::Mesh`]; snapped by the retarget).
    pub mesh: MeshConfig,
    /// Network topology (ISSUE 9). Every cell's config is retargeted
    /// through [`noc_sim::retarget_topology`], which snaps the grid
    /// and, on wraparound topologies, forces the supported
    /// router/routing/VC combination for every router column.
    pub topology: TopologyConfig,
    /// Architectures to compare.
    pub routers: Vec<RouterKind>,
    /// Routing algorithm.
    pub routing: RoutingKind,
    /// Workload family.
    pub traffic: TrafficKind,
    /// Offered load in flits/node/cycle.
    pub injection_rate: f64,
    /// Mean-time-between-faults sweep, in cycles (one campaign column
    /// per value; smaller = harsher).
    pub mtbfs: Vec<f64>,
    /// Component population faults are drawn from.
    pub category: FaultCategory,
    /// `Some(d)`: every fault is transient and heals `d` cycles after
    /// onset. `None`: every fault is permanent.
    pub repair_after: Option<u64>,
    /// Monte Carlo replications per (router, mtbf) cell.
    pub seeds: u64,
    /// Base RNG seed; replication `k` runs with `base_seed + k`.
    pub base_seed: u64,
    /// Unmeasured warm-up packets per run.
    pub warmup_packets: u64,
    /// Measured packets per run.
    pub measured_packets: u64,
    /// Interval-sampler window in cycles.
    pub sample_window: u64,
    /// End-to-end retransmission layer (`None` disables it).
    pub recovery: Option<RecoveryConfig>,
    /// Fault-aware routing comparison (ISSUE 8): when `true`, every
    /// (router × mtbf × seed) cell is run twice against the *same*
    /// fault schedule — once fault-oblivious, once with
    /// [`SimConfig::fault_routing`] — so the report carries paired
    /// delivered-coverage-retention numbers.
    pub fault_routing: bool,
}

impl CampaignConfig {
    /// A small deterministic campaign that finishes in seconds: 4×4
    /// mesh, all three routers, one harsh mtbf column, transient
    /// faults, recovery on. The CI smoke job runs exactly this.
    pub fn smoke() -> Self {
        CampaignConfig {
            mesh: MeshConfig::new(4, 4),
            topology: TopologyConfig::Mesh,
            routers: RouterKind::ALL.to_vec(),
            routing: RoutingKind::Xy,
            traffic: TrafficKind::Uniform,
            injection_rate: 0.15,
            mtbfs: vec![600.0],
            category: FaultCategory::Recyclable,
            repair_after: Some(400),
            seeds: 1,
            base_seed: 0xCA_4A,
            warmup_packets: 100,
            measured_packets: 2_000,
            sample_window: 250,
            recovery: Some(RecoveryConfig::default()),
            fault_routing: false,
        }
    }

    /// The fault-aware routing smoke (ISSUE 8, CI `fault-routing`
    /// job): adaptive routing, permanent isolating faults and a tight
    /// retry budget, with the paired fault-aware leg enabled — the
    /// configuration where reachability-aware recovery and the masked
    /// escape path visibly buy delivered coverage over the oblivious
    /// baseline.
    pub fn fault_aware_smoke() -> Self {
        CampaignConfig {
            mesh: MeshConfig::new(4, 4),
            topology: TopologyConfig::Mesh,
            routers: vec![RouterKind::RoCo],
            routing: RoutingKind::Adaptive,
            traffic: TrafficKind::Uniform,
            injection_rate: 0.15,
            mtbfs: vec![150.0],
            category: FaultCategory::Isolating,
            repair_after: None,
            seeds: 2,
            base_seed: 0xFA_8A,
            warmup_packets: 100,
            measured_packets: 2_000,
            sample_window: 250,
            recovery: Some(RecoveryConfig { timeout: 150, max_retries: 2, backoff_cap: 1_200 }),
            fault_routing: true,
        }
    }
}

/// One (router × mtbf × seed) campaign cell.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignCell {
    /// Architecture under test.
    pub router: RouterKind,
    /// Mean time between faults for this cell, in cycles.
    pub mtbf: f64,
    /// Replication seed.
    pub seed: u64,
    /// Whether this cell ran with fault-aware routing (ISSUE 8). Cells
    /// come in (oblivious, aware) pairs when the campaign's
    /// `fault_routing` switch is on, sharing the same fault schedule.
    pub fault_aware: bool,
    /// Fault + repair events the schedule actually fired.
    pub fault_events: u64,
    /// Cycles the faulted run took.
    pub cycles: u64,
    /// Packets generated / delivered / dropped (drop events count per
    /// attempt) in the faulted run.
    pub generated: u64,
    /// Delivered packets (first copies only).
    pub delivered: u64,
    /// Drop events (a retried packet may count several times).
    pub dropped: u64,
    /// Retransmissions the recovery layer issued (0 without recovery).
    pub retransmissions: u64,
    /// Packets whose retry eventually arrived.
    pub recovered: u64,
    /// Packets abandoned after the retry budget.
    pub abandoned: u64,
    /// Packets refused or short-circuited because their destination
    /// was unreachable over the usable-link graph (always 0 for
    /// fault-oblivious cells).
    pub unroutable: u64,
    /// Measured completion probability of the faulted run.
    pub completion: f64,
    /// Whole-run delivered coverage as a fraction of the same-seed
    /// fault-free baseline's delivered count — the headline
    /// graceful-degradation number the fault-aware leg must retain
    /// more of.
    pub coverage_retention: f64,
    /// Whole-run PEF of the faulted run, in J·cycles.
    pub pef: f64,
    /// Per-window availability: delivered/generated (1.0 when the
    /// window generated nothing).
    pub availability: Vec<f64>,
    /// Per-window delivered throughput as a fraction of the fault-free
    /// baseline's steady-state mean.
    pub retention: Vec<f64>,
    /// Per-window PEF proxy: window mean latency × run energy/packet ÷
    /// window availability (rises while faults bite, falls back after
    /// repairs).
    pub pef_over_time: Vec<f64>,
    /// Per-flow-class latency summaries of the faulted run, in
    /// [`noc_sim::FlowClass::ALL`] order — under faults, `far` traffic
    /// degrades first while `near` still looks healthy. Deterministic
    /// per seed, so it is part of the byte-stable report JSON.
    pub classes: Vec<ClassLatency>,
}

/// A full campaign: the grid plus every cell's series.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignReport {
    /// Mesh dimensions.
    pub mesh: MeshConfig,
    /// Routing algorithm.
    pub routing: RoutingKind,
    /// Offered load.
    pub injection_rate: f64,
    /// Sampler window in cycles.
    pub sample_window: u64,
    /// Transient heal time (`None` = permanent faults).
    pub repair_after: Option<u64>,
    /// Whether the retransmission layer was active.
    pub recovery: bool,
    /// Every (router × mtbf × seed) cell, in grid order.
    pub cells: Vec<CampaignCell>,
}

/// A metrics sink sharing its sample store with the harness.
#[derive(Debug, Default)]
struct SharedMetrics(Rc<RefCell<Vec<IntervalSample>>>);

impl MetricsSink for SharedMetrics {
    fn record_sample(&mut self, sample: &IntervalSample) {
        self.0.borrow_mut().push(sample.clone());
    }
}

/// Runs `cfg` to completion with an interval sampler attached.
fn run_sampled(cfg: SimConfig) -> (noc_sim::SimResults, Vec<IntervalSample>) {
    let store = Rc::new(RefCell::new(Vec::new()));
    let mut sim = Simulation::new(cfg);
    sim.set_metrics_sink(Box::new(SharedMetrics(store.clone())));
    while !sim.finished() {
        sim.step();
    }
    sim.finish_observability();
    let results = sim.results();
    drop(sim);
    (results, Rc::try_unwrap(store).expect("sole owner").into_inner())
}

fn base_config(c: &CampaignConfig, router: RouterKind, seed: u64) -> SimConfig {
    let mut cfg = SimConfig::paper_scaled(router, c.routing, c.traffic);
    cfg.mesh = c.mesh;
    noc_sim::retarget_topology(&mut cfg, c.topology);
    cfg.injection_rate = c.injection_rate;
    cfg.warmup_packets = c.warmup_packets;
    cfg.measured_packets = c.measured_packets;
    cfg.sample_window = c.sample_window;
    cfg.seed = seed;
    cfg.stall_window = 5_000;
    cfg
}

/// Mean delivered packets per complete window, skipping the cold-start
/// window (index 0) and any trailing partial window.
fn steady_mean_delivered(samples: &[IntervalSample], window: u64) -> f64 {
    let picked: Vec<u64> = samples
        .iter()
        .skip(1)
        .filter(|s| s.cycle_end - s.cycle_start == window)
        .map(|s| s.delivered)
        .collect();
    if picked.is_empty() {
        return 0.0;
    }
    picked.iter().sum::<u64>() as f64 / picked.len() as f64
}

/// Runs the whole campaign grid. The independent (router, seed) units
/// fan out across worker threads — the count comes from
/// [`noc_sim::worker_threads`], the same `NOC_THREADS` knob that paces
/// `run_batch` and the parallel cycle kernel. Each unit runs entirely
/// on one worker (its metrics plumbing is thread-local) and the units
/// are reassembled in grid order (router, then seed, then mtbf), so
/// the report is byte-identical at any thread count.
pub fn run_campaign(c: &CampaignConfig) -> CampaignReport {
    let units: Vec<(RouterKind, u64)> = c
        .routers
        .iter()
        .flat_map(|&router| (0..c.seeds).map(move |k| (router, c.base_seed.wrapping_add(k))))
        .collect();
    let threads = noc_sim::worker_threads(None).min(units.len()).max(1);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut slots: Vec<Option<Vec<CampaignCell>>> = Vec::new();
    slots.resize_with(units.len(), || None);
    let slots = std::sync::Mutex::new(slots);
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(&(router, seed)) = units.get(idx) else { break };
                let cells = run_unit(c, router, seed);
                slots.lock().unwrap()[idx] = Some(cells);
            });
        }
    });
    let cells =
        slots.into_inner().unwrap().into_iter().flat_map(|u| u.expect("unit ran")).collect();
    CampaignReport {
        mesh: c.mesh,
        routing: c.routing,
        injection_rate: c.injection_rate,
        sample_window: c.sample_window,
        repair_after: c.repair_after,
        recovery: c.recovery.is_some(),
        cells,
    }
}

/// One campaign unit: the fault-free baseline for `(router, seed)`
/// plus every mtbf cell drawn against it, in mtbf order. When the
/// campaign's `fault_routing` switch is on, every mtbf yields an
/// (oblivious, fault-aware) cell pair sharing one schedule.
fn run_unit(c: &CampaignConfig, router: RouterKind, seed: u64) -> Vec<CampaignCell> {
    let mut cells = Vec::new();
    // Fault-free baseline: provides the retention denominators
    // and the horizon faults are drawn over.
    let (baseline, base_samples) = run_sampled(base_config(c, router, seed));
    let base_mean = steady_mean_delivered(&base_samples, c.sample_window);
    let base_delivered = baseline.delivered_packets;
    for &mtbf in &c.mtbfs {
        let vcs = base_config(c, router, seed).router_config().vcs_per_port;
        let schedule = FaultSchedule::random_mtbf(
            c.category,
            c.mesh,
            mtbf,
            c.repair_after,
            baseline.cycles,
            vcs,
            seed ^ mtbf.to_bits(),
        );
        for fault_aware in [false, true] {
            if fault_aware && !c.fault_routing {
                continue;
            }
            let mut cfg = base_config(c, router, seed).with_schedule(schedule.clone());
            if let Some(rc) = c.recovery {
                cfg = cfg.with_recovery(rc);
            }
            if fault_aware {
                cfg = cfg.with_fault_routing();
            }
            let (results, samples) = run_sampled(cfg);
            let epp = results.energy_per_packet;
            let availability: Vec<f64> = samples
                .iter()
                .map(|s| {
                    if s.generated == 0 {
                        1.0
                    } else {
                        (s.delivered as f64 / s.generated as f64).min(1.0)
                    }
                })
                .collect();
            let retention: Vec<f64> = samples
                .iter()
                .map(|s| if base_mean > 0.0 { s.delivered as f64 / base_mean } else { 0.0 })
                .collect();
            let pef_over_time: Vec<f64> = samples
                .iter()
                .zip(&availability)
                .map(|(s, a)| s.latency_mean * epp / a.max(1e-3))
                .collect();
            let rec = results.recovery.unwrap_or_default();
            let coverage_retention = if base_delivered > 0 {
                results.delivered_packets as f64 / base_delivered as f64
            } else {
                0.0
            };
            cells.push(CampaignCell {
                router,
                mtbf,
                seed,
                fault_aware,
                fault_events: samples.iter().map(|s| s.fault_events).sum(),
                cycles: results.cycles,
                generated: results.generated_packets,
                delivered: results.delivered_packets,
                dropped: results.dropped_packets,
                retransmissions: rec.retransmissions,
                recovered: rec.recovered_packets,
                abandoned: rec.abandoned_packets,
                unroutable: rec.unroutable_packets,
                completion: results.completion_probability(),
                coverage_retention,
                pef: results.pef_inputs().pef(),
                availability,
                retention,
                pef_over_time,
                classes: results.classes.clone(),
            });
        }
    }
    cells
}

fn write_f64_arr(out: &mut String, values: &[f64]) {
    out.push('[');
    for (i, v) in values.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        write_f64(out, *v);
    }
    out.push(']');
}

impl CampaignReport {
    /// Serializes the whole report as one JSON document. Byte-stable
    /// for a given config: the CI smoke job diffs two same-seed runs.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(1024 + 512 * self.cells.len());
        out.push('{');
        let mut first = true;
        write_key(&mut out, &mut first, "mesh");
        let _ = write!(out, "[{},{}]", self.mesh.width, self.mesh.height);
        write_key(&mut out, &mut first, "routing");
        write_str(&mut out, &self.routing.to_string());
        write_key(&mut out, &mut first, "injection_rate");
        write_f64(&mut out, self.injection_rate);
        write_key(&mut out, &mut first, "sample_window");
        let _ = write!(out, "{}", self.sample_window);
        write_key(&mut out, &mut first, "repair_after");
        match self.repair_after {
            Some(d) => {
                let _ = write!(out, "{d}");
            }
            None => out.push_str("null"),
        }
        write_key(&mut out, &mut first, "recovery");
        let _ = write!(out, "{}", self.recovery);
        write_key(&mut out, &mut first, "cells");
        out.push('[');
        for (i, cell) in self.cells.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push('{');
            let mut cf = true;
            write_key(&mut out, &mut cf, "router");
            write_str(&mut out, &cell.router.to_string());
            write_key(&mut out, &mut cf, "mtbf");
            write_f64(&mut out, cell.mtbf);
            write_key(&mut out, &mut cf, "fault_aware");
            let _ = write!(out, "{}", cell.fault_aware);
            for (key, value) in [
                ("seed", cell.seed),
                ("fault_events", cell.fault_events),
                ("cycles", cell.cycles),
                ("generated", cell.generated),
                ("delivered", cell.delivered),
                ("dropped", cell.dropped),
                ("retransmissions", cell.retransmissions),
                ("recovered", cell.recovered),
                ("abandoned", cell.abandoned),
                ("unroutable", cell.unroutable),
            ] {
                write_key(&mut out, &mut cf, key);
                let _ = write!(out, "{value}");
            }
            write_key(&mut out, &mut cf, "completion");
            write_f64(&mut out, cell.completion);
            write_key(&mut out, &mut cf, "coverage_retention");
            write_f64(&mut out, cell.coverage_retention);
            write_key(&mut out, &mut cf, "pef");
            write_f64(&mut out, cell.pef);
            write_key(&mut out, &mut cf, "availability");
            write_f64_arr(&mut out, &cell.availability);
            write_key(&mut out, &mut cf, "retention");
            write_f64_arr(&mut out, &cell.retention);
            write_key(&mut out, &mut cf, "pef_over_time");
            write_f64_arr(&mut out, &cell.pef_over_time);
            write_key(&mut out, &mut cf, "classes");
            out.push('[');
            for (j, c) in cell.classes.iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push('{');
                let mut lf = true;
                write_key(&mut out, &mut lf, "class");
                write_str(&mut out, c.class.name());
                write_key(&mut out, &mut lf, "count");
                let _ = write!(out, "{}", c.count);
                write_key(&mut out, &mut lf, "mean");
                write_f64(&mut out, c.mean);
                for (key, value) in [
                    ("p50", c.p50),
                    ("p95", c.p95),
                    ("p99", c.p99),
                    ("p999", c.p999),
                    ("max", c.max),
                ] {
                    write_key(&mut out, &mut lf, key);
                    let _ = write!(out, "{value}");
                }
                out.push('}');
            }
            out.push(']');
            out.push('}');
        }
        out.push(']');
        out.push('}');
        out
    }
}

/// Registers every campaign cell's headline statistics into a metrics
/// [`Registry`] under `mesh`/`routing`/`router`/`mtbf`/`seed` labels —
/// the scrape surface the campaign server of ROADMAP item 3 serves,
/// rendered by the CLI's `campaign --prom-out`.
pub fn export_campaign(reg: &mut Registry, report: &CampaignReport) {
    let mesh = format!("{}x{}", report.mesh.width, report.mesh.height);
    let routing = report.routing.to_string();
    let min_of = |v: &[f64]| v.iter().copied().fold(f64::INFINITY, f64::min);
    for cell in &report.cells {
        let router = cell.router.to_string();
        let mtbf = cell.mtbf.to_string();
        let seed = cell.seed.to_string();
        let fault_aware = if cell.fault_aware { "true" } else { "false" };
        let labels: [(&str, &str); 6] = [
            ("mesh", &mesh),
            ("routing", &routing),
            ("router", &router),
            ("mtbf", &mtbf),
            ("seed", &seed),
            ("fault_aware", fault_aware),
        ];
        let c = |v: u64| v as f64;
        reg.counter(
            "noc_campaign_fault_events",
            "Fault/repair events the schedule fired.",
            &labels,
            c(cell.fault_events),
        );
        reg.counter("noc_campaign_cycles", "Cycles the faulted run took.", &labels, c(cell.cycles));
        reg.counter(
            "noc_campaign_generated_packets",
            "Packets generated in the faulted run.",
            &labels,
            c(cell.generated),
        );
        reg.counter(
            "noc_campaign_delivered_packets",
            "Packets delivered in the faulted run.",
            &labels,
            c(cell.delivered),
        );
        reg.counter(
            "noc_campaign_dropped_packets",
            "Drop events in the faulted run.",
            &labels,
            c(cell.dropped),
        );
        reg.counter(
            "noc_campaign_retransmissions",
            "Source retransmissions issued.",
            &labels,
            c(cell.retransmissions),
        );
        reg.counter(
            "noc_campaign_recovered_packets",
            "Packets delivered by a retry.",
            &labels,
            c(cell.recovered),
        );
        reg.counter(
            "noc_campaign_abandoned_packets",
            "Packets given up after the retry budget.",
            &labels,
            c(cell.abandoned),
        );
        reg.counter(
            "noc_campaign_unroutable_packets",
            "Packets refused or short-circuited toward unreachable destinations.",
            &labels,
            c(cell.unroutable),
        );
        reg.gauge(
            "noc_campaign_completion_probability",
            "Measured completion of the faulted run.",
            &labels,
            cell.completion,
        );
        reg.gauge(
            "noc_campaign_coverage_retention",
            "Whole-run delivered coverage vs the fault-free baseline.",
            &labels,
            cell.coverage_retention,
        );
        reg.gauge("noc_campaign_pef", "Whole-run PEF of the faulted run.", &labels, cell.pef);
        if !cell.availability.is_empty() {
            reg.gauge(
                "noc_campaign_availability_min",
                "Worst per-window availability.",
                &labels,
                min_of(&cell.availability),
            );
        }
        if !cell.retention.is_empty() {
            reg.gauge(
                "noc_campaign_retention_min",
                "Worst per-window throughput retention.",
                &labels,
                min_of(&cell.retention),
            );
        }
        for cl in &cell.classes {
            let mut with_class = labels.to_vec();
            with_class.push(("class", cl.class.name()));
            reg.counter(
                "noc_campaign_class_delivered_packets",
                "Measured deliveries per flow class.",
                &with_class,
                c(cl.count),
            );
            for (q, v) in [("p50", cl.p50), ("p99", cl.p99), ("p999", cl.p999)] {
                let mut with_q = with_class.clone();
                with_q.push(("quantile", q));
                reg.gauge(
                    "noc_campaign_class_latency_cycles",
                    "Faulted-run latency quantiles per flow class.",
                    &with_q,
                    c(v),
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_config_is_small() {
        let c = CampaignConfig::smoke();
        assert_eq!(c.mesh.nodes(), 16);
        assert_eq!(c.routers.len(), 3);
        assert!(c.recovery.is_some());
    }

    #[test]
    fn report_json_round_trips() {
        let report = CampaignReport {
            mesh: MeshConfig::new(4, 4),
            routing: RoutingKind::Xy,
            injection_rate: 0.15,
            sample_window: 250,
            repair_after: Some(400),
            recovery: true,
            cells: vec![CampaignCell {
                router: RouterKind::RoCo,
                mtbf: 600.0,
                seed: 7,
                fault_aware: true,
                fault_events: 4,
                cycles: 3_000,
                generated: 2_100,
                delivered: 2_050,
                dropped: 60,
                retransmissions: 55,
                recovered: 40,
                abandoned: 10,
                unroutable: 12,
                completion: 0.97,
                coverage_retention: 0.96,
                pef: 1.5e-7,
                availability: vec![1.0, 0.8, 0.95],
                retention: vec![1.02, 0.7, 0.98],
                pef_over_time: vec![1.1e-7, 2.0e-7, 1.2e-7],
                classes: vec![ClassLatency {
                    class: noc_sim::FlowClass::Far,
                    count: 300,
                    mean: 44.5,
                    p50: 40,
                    p95: 70,
                    p99: 90,
                    p999: 120,
                    max: 140,
                }],
            }],
        };
        let v = noc_sim::json::Json::parse(&report.to_json()).expect("valid JSON");
        assert_eq!(v.get("sample_window").unwrap().as_u64(), Some(250));
        assert_eq!(v.get("repair_after").unwrap().as_u64(), Some(400));
        let cells = v.get("cells").unwrap().as_arr().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].get("router").unwrap().as_str(), Some("roco"));
        assert_eq!(cells[0].get("fault_aware"), Some(&noc_sim::json::Json::Bool(true)));
        assert_eq!(cells[0].get("fault_events").unwrap().as_u64(), Some(4));
        assert_eq!(cells[0].get("unroutable").unwrap().as_u64(), Some(12));
        assert!(cells[0].get("coverage_retention").is_some());
        assert_eq!(cells[0].get("availability").unwrap().as_arr().unwrap().len(), 3);
        let classes = cells[0].get("classes").unwrap().as_arr().unwrap();
        assert_eq!(classes[0].get("class").unwrap().as_str(), Some("far"));
        assert_eq!(classes[0].get("p999").unwrap().as_u64(), Some(120));

        let mut reg = Registry::new();
        export_campaign(&mut reg, &report);
        let prom = reg.render_prometheus();
        assert!(prom.contains("noc_campaign_completion_probability{"));
        assert!(prom.contains("noc_campaign_unroutable_packets{"));
        assert!(prom.contains("noc_campaign_coverage_retention{"));
        assert!(prom.contains("fault_aware=\"true\""));
        assert!(prom.contains("mtbf=\"600\""));
        assert!(prom.contains("noc_campaign_class_latency_cycles{"));
        assert!(prom.contains("class=\"far\",quantile=\"p999\"} 120"));
    }
}
