//! # noc-bench
//!
//! The experiment harness that regenerates every table and figure of
//! the paper's evaluation (§5). Each `fig*`/`table*` binary runs the
//! corresponding experiment, prints the paper's rows/series as a
//! markdown table, and writes a CSV under `results/`; `run_all`
//! regenerates everything.
//!
//! Experiment sizes are controlled by the `NOC_SCALE` environment
//! variable: `quick` (default — every figure in seconds/minutes),
//! `full` (a deeper sweep), or `paper` (the paper's 20 000 warm-up +
//! 1 000 000 measured packets).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod campaign;
pub mod experiments;
pub mod fuzz;
pub mod golden;
pub mod plot;

use noc_sim::{SimConfig, SimResults};
use std::fmt::Write as _;
use std::path::PathBuf;

/// Experiment sizing.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Scale {
    /// Warm-up packets per run.
    pub warmup: u64,
    /// Measured packets per run.
    pub measured: u64,
    /// Random fault patterns averaged per faulty data point.
    pub fault_seeds: u64,
}

impl Scale {
    /// Quick scale: every figure regenerates in seconds to minutes.
    pub fn quick() -> Self {
        Scale { warmup: 1_000, measured: 15_000, fault_seeds: 5 }
    }

    /// Deeper sweep.
    pub fn full() -> Self {
        Scale { warmup: 5_000, measured: 100_000, fault_seeds: 10 }
    }

    /// The paper's §5.4 sizes (20 000 + 1 000 000 packets).
    pub fn paper() -> Self {
        Scale { warmup: 20_000, measured: 1_000_000, fault_seeds: 10 }
    }

    /// Reads `NOC_SCALE` (`quick` | `full` | `paper`), defaulting to
    /// quick.
    pub fn from_env() -> Self {
        match std::env::var("NOC_SCALE").as_deref() {
            Ok("paper") => Scale::paper(),
            Ok("full") => Scale::full(),
            _ => Scale::quick(),
        }
    }

    /// Applies this scale to a config.
    pub fn apply(&self, mut cfg: SimConfig) -> SimConfig {
        cfg.warmup_packets = self.warmup;
        cfg.measured_packets = self.measured;
        cfg
    }
}

/// Runs a batch of independent simulations across CPU cores, preserving
/// input order. Work is handed out through a lock-free shared index:
/// each worker claims the next unclaimed config with a `fetch_add`, so
/// there is no queue mutex to contend on between (long) simulations.
/// The worker count honors `NOC_THREADS` ([`noc_sim::worker_threads`]),
/// the same knob that paces the parallel cycle kernel.
pub fn run_batch(configs: Vec<SimConfig>) -> Vec<SimResults> {
    let threads = noc_sim::worker_threads(None);
    let next = std::sync::atomic::AtomicUsize::new(0);
    let mut results: Vec<Option<SimResults>> = Vec::new();
    results.resize_with(configs.len(), || None);
    let results = std::sync::Mutex::new(results);
    std::thread::scope(|scope| {
        for _ in 0..threads.min(configs.len()) {
            scope.spawn(|| loop {
                let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                let Some(cfg) = configs.get(idx) else { break };
                let r = noc_sim::run(cfg.clone());
                results.lock().unwrap()[idx] = Some(r);
            });
        }
    });
    results.into_inner().unwrap().into_iter().map(|r| r.expect("job ran")).collect()
}

/// A simple table: header plus rows of cells, rendered as markdown and
/// CSV.
#[derive(Debug, Clone, Default)]
pub struct Table {
    /// Table title.
    pub title: String,
    /// Column names.
    pub header: Vec<String>,
    /// Rows of formatted cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
    }

    /// Renders as GitHub-flavoured markdown.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "### {}\n", self.title);
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ =
            writeln!(out, "|{}|", self.header.iter().map(|_| "---").collect::<Vec<_>>().join("|"));
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }

    /// Renders as CSV.
    pub fn to_csv(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "{}", self.header.join(","));
        for row in &self.rows {
            let _ = writeln!(out, "{}", row.join(","));
        }
        out
    }

    /// Prints the markdown and writes `results/<name>.csv`.
    pub fn emit(&self, name: &str) {
        println!("{}", self.to_markdown());
        let dir = results_dir();
        if std::fs::create_dir_all(&dir).is_ok() {
            let path = dir.join(format!("{name}.csv"));
            if let Err(e) = std::fs::write(&path, self.to_csv()) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                eprintln!("[wrote {}]", path.display());
            }
        }
    }
}

/// Where experiment CSVs land (`results/` under the workspace root, or
/// the current directory as a fallback).
pub fn results_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    base.join("results")
}

/// Formats a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Formats a float with 3 decimals.
pub fn f3(x: f64) -> String {
    format!("{x:.3}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::{RouterKind, RoutingKind};
    use noc_traffic::TrafficKind;

    #[test]
    fn scale_selection() {
        assert_eq!(Scale::quick().warmup, 1_000);
        assert_eq!(Scale::paper().measured, 1_000_000);
        let cfg = Scale::quick().apply(SimConfig::paper_scaled(
            RouterKind::RoCo,
            RoutingKind::Xy,
            TrafficKind::Uniform,
        ));
        assert_eq!(cfg.warmup_packets, 1_000);
    }

    #[test]
    fn batch_preserves_order_and_determinism() {
        let mk = |rate: f64| {
            let mut c =
                SimConfig::paper_scaled(RouterKind::Generic, RoutingKind::Xy, TrafficKind::Uniform);
            c.warmup_packets = 50;
            c.measured_packets = 300;
            c.injection_rate = rate;
            c
        };
        let batch = run_batch(vec![mk(0.1), mk(0.2), mk(0.1)]);
        assert_eq!(batch.len(), 3);
        assert_eq!(batch[0].avg_latency, batch[2].avg_latency, "same config, same seed");
        assert!(batch[1].avg_latency > batch[0].avg_latency);
    }

    #[test]
    fn table_rendering() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into(), "2".into()]);
        let md = t.to_markdown();
        assert!(md.contains("### Demo"));
        assert!(md.contains("| 1 | 2 |"));
        let csv = t.to_csv();
        assert!(csv.starts_with("a,b\n"));
        assert!(csv.contains("1,2"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn table_rejects_bad_rows() {
        let mut t = Table::new("Demo", &["a", "b"]);
        t.push_row(vec!["1".into()]);
    }
}
