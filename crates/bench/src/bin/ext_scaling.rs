//! Extension: mesh-size scaling sweep.
use noc_bench::{experiments::scaling::scaling_table, Scale};
fn main() {
    scaling_table(Scale::from_env()).emit("ext_scaling");
}
