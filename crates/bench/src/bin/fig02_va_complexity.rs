//! Regenerates Fig 2 (VA/SA arbiter complexity comparison).
fn main() {
    noc_bench::experiments::tables::fig2(3).emit("fig02_va_complexity");
}
