//! Regenerates Fig 3 (contention probabilities vs injection rate).
fn main() {
    for (i, t) in noc_bench::experiments::contention::fig3().into_iter().enumerate() {
        t.emit_with_plot(
            &format!("fig03{}_contention", (b'a' + i as u8) as char),
            "contention probability",
        );
    }
}
