//! Regenerates Fig 11 (completion probability, router-centric/critical
//! faults).
use noc_bench::{experiments::faults::completion_figure, Scale};
use noc_fault::FaultCategory;
fn main() {
    let panels = completion_figure(FaultCategory::Isolating, Scale::from_env());
    for (i, t) in panels.into_iter().enumerate() {
        t.emit(&format!("fig11{}_router_centric", (b'a' + i as u8) as char));
    }
}
