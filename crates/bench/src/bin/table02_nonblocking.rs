//! Regenerates Table 2 (non-blocking probabilities).
fn main() {
    noc_bench::experiments::tables::table2().emit("table02_nonblocking");
}
