//! Saturation-throughput comparison across routers and routing
//! algorithms (single-number summary of the Fig 8 curves).
use noc_bench::{experiments::saturation::saturation_table, Scale};
fn main() {
    saturation_table(Scale::from_env()).emit("saturation");
}
