//! Ablations: Mirroring Effect vs separable SA; west-first vs odd-even
//! adaptive routing.
use noc_bench::{experiments::ablation, Scale};
fn main() {
    let scale = Scale::from_env();
    ablation::mirror_ablation(scale).emit("ablation_mirror");
    ablation::adaptive_policy_ablation(scale).emit("ablation_adaptive_policy");
    ablation::speculation_ablation(scale).emit("ablation_speculation");
}
