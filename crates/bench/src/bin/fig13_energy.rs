//! Regenerates Fig 13 (energy per packet at 0.3 injection).
use noc_bench::{experiments::energy::fig13, Scale};
fn main() {
    fig13(Scale::from_env()).emit("fig13_energy");
}
