//! Ablation: generic-router buffer partitioning (VC count vs depth at a
//! fixed 60-flit budget).
use noc_bench::{experiments::ablation::vc_sensitivity, Scale};
fn main() {
    vc_sensitivity(Scale::from_env()).emit("ablation_vc_partitioning");
}
