//! Regenerates Fig 9 (latency vs injection, self-similar traffic).
use noc_bench::{experiments::latency::latency_figure, Scale};
use noc_traffic::TrafficKind;
fn main() {
    let panels = latency_figure(TrafficKind::SelfSimilar, Scale::from_env());
    for (i, t) in panels.into_iter().enumerate() {
        t.emit_with_plot(
            &format!("fig09{}_selfsimilar", (b'a' + i as u8) as char),
            "average latency (cycles)",
        );
    }
}
