//! Regenerates Fig 12 (completion probability, message-centric/
//! non-critical faults, Hardware Recycling).
use noc_bench::{experiments::faults::completion_figure, Scale};
use noc_fault::FaultCategory;
fn main() {
    let panels = completion_figure(FaultCategory::Recyclable, Scale::from_env());
    for (i, t) in panels.into_iter().enumerate() {
        t.emit(&format!("fig12{}_message_centric", (b'a' + i as u8) as char));
    }
}
