//! Extension: thermal comparison of the three routers (the paper's §6
//! future work).
use noc_bench::{experiments::thermal::thermal_comparison, Scale};
fn main() {
    thermal_comparison(Scale::from_env()).emit("ext_thermal");
}
