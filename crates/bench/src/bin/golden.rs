//! Golden regression corpus runner (ISSUE 4).
//!
//! Re-runs every scenario in `crates/bench/src/golden.rs` and diffs
//! the results against the committed files under `goldens/`. Pending
//! files are recorded; populated files gate. `--update` (or
//! `NOC_GOLDEN_UPDATE=1`) regenerates the whole corpus for an
//! intentional behaviour change.

use noc_bench::golden::check_all;

fn main() {
    let update = std::env::args().any(|a| a == "--update")
        || std::env::var("NOC_GOLDEN_UPDATE").is_ok_and(|v| v == "1");
    if update {
        eprintln!("[golden] regenerating the corpus (--update)");
    }
    let summary = check_all(update);
    print!("{}", summary.render());
    if summary.failed() {
        std::process::exit(1);
    }
}
