//! Golden regression corpus runner (ISSUE 4).
//!
//! Re-runs every scenario in `crates/bench/src/golden.rs` and diffs
//! the results against the committed files under `goldens/`. Pending
//! files are recorded; populated files gate. `--update` (or
//! `NOC_GOLDEN_UPDATE=1`) regenerates the whole corpus for an
//! intentional behaviour change.
//!
//! `NOC_GOLDEN_STRICT=1` (set by CI, never alongside `--update`) ends
//! the record-on-pending grace period: any scenario that had to be
//! *recorded* instead of *compared* exits non-zero after the freshly
//! written files are on disk, so the artifact upload still has them
//! but the job fails loudly until they are committed.

use noc_bench::golden::check_all;

fn main() {
    let update = std::env::args().any(|a| a == "--update")
        || std::env::var("NOC_GOLDEN_UPDATE").is_ok_and(|v| v == "1");
    if update {
        eprintln!("[golden] regenerating the corpus (--update)");
    }
    let summary = check_all(update);
    print!("{}", summary.render());
    if summary.failed() {
        std::process::exit(1);
    }
    let strict = std::env::var("NOC_GOLDEN_STRICT").map(|v| v != "0").unwrap_or(false);
    if strict && !update && summary.recorded_count() > 0 {
        eprintln!(
            "NOC_GOLDEN_STRICT: {} golden file(s) were still pending and had to be recorded — \
             the regression gate did not engage for them. Download the freshly recorded goldens \
             from the CI artifacts and commit them.",
            summary.recorded_count()
        );
        std::process::exit(3);
    }
}
