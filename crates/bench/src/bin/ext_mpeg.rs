//! Extension experiment: MPEG-2 GoP video traffic (the paper omitted
//! these results for space).
use noc_bench::{experiments::latency::latency_figure, Scale};
use noc_traffic::TrafficKind;
fn main() {
    let panels = latency_figure(TrafficKind::Mpeg, Scale::from_env());
    for (i, t) in panels.into_iter().enumerate() {
        t.emit_with_plot(
            &format!("ext_mpeg_{}", (b'a' + i as u8) as char),
            "average latency (cycles)",
        );
    }
}
