//! Regenerates Fig 14 (PEF metric under critical and non-critical
//! faults) and prints the RoCo improvement headline.
use noc_bench::{
    experiments::pef::{fig14_panel, pef_improvement},
    Scale,
};
use noc_core::RoutingKind;
use noc_fault::FaultCategory;
fn main() {
    let scale = Scale::from_env();
    for (cat, tag) in
        [(FaultCategory::Isolating, "a_critical"), (FaultCategory::Recyclable, "b_noncritical")]
    {
        let t = fig14_panel(cat, RoutingKind::Adaptive, scale);
        let (vs_generic, vs_ps) = pef_improvement(&t);
        t.emit(&format!("fig14{tag}_pef"));
        println!(
            "RoCo PEF improvement ({cat}): {:.0}% vs generic, {:.0}% vs path-sensitive\n",
            vs_generic * 100.0,
            vs_ps * 100.0
        );
    }
}
