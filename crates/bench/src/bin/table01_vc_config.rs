//! Regenerates Table 1 (RoCo VC buffer configuration).
fn main() {
    noc_bench::experiments::tables::table1().emit("table01_vc_config");
}
