//! Regenerates Fig 10 (latency vs injection, transpose traffic).
use noc_bench::{experiments::latency::latency_figure, Scale};
use noc_traffic::TrafficKind;
fn main() {
    let panels = latency_figure(TrafficKind::Transpose, Scale::from_env());
    for (i, t) in panels.into_iter().enumerate() {
        t.emit_with_plot(
            &format!("fig10{}_transpose", (b'a' + i as u8) as char),
            "average latency (cycles)",
        );
    }
}
