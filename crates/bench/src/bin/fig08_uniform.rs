//! Regenerates Fig 8 (latency vs injection, uniform random traffic).
use noc_bench::{experiments::latency::latency_figure, Scale};
use noc_traffic::TrafficKind;
fn main() {
    let panels = latency_figure(TrafficKind::Uniform, Scale::from_env());
    for (i, t) in panels.into_iter().enumerate() {
        t.emit_with_plot(
            &format!("fig08{}_uniform", (b'a' + i as u8) as char),
            "average latency (cycles)",
        );
    }
}
