//! Differential fuzz harness (ISSUE 4): random small configs under
//! all three cycle kernels with the invariant auditor on.
//!
//! Environment:
//! - `NOC_FUZZ_ITERS` — number of cases (default 240).
//! - `NOC_FUZZ_SEED`  — base seed (default `0x5EED_CAFE`).
//!
//! On failure the shrunk, copy-pasteable reproduction snippet is
//! printed and written to `results/fuzz_repro_case<N>.txt`, and the
//! process exits non-zero (CI uploads the repro as an artifact).

use noc_bench::fuzz::{run_fuzz, DEFAULT_ITERS, DEFAULT_SEED};

fn env_u64(name: &str, default: u64) -> u64 {
    match std::env::var(name) {
        Ok(v) => v
            .trim()
            .parse()
            .or_else(|_| u64::from_str_radix(v.trim().trim_start_matches("0x"), 16))
            .unwrap_or_else(|_| panic!("{name} must be an integer, got {v:?}")),
        Err(_) => default,
    }
}

fn main() {
    let iters = env_u64("NOC_FUZZ_ITERS", DEFAULT_ITERS);
    let seed = env_u64("NOC_FUZZ_SEED", DEFAULT_SEED);
    eprintln!("[fuzz] {iters} cases under base seed {seed:#x}");

    let outcome = run_fuzz(iters, seed, |case| {
        if (case + 1) % 20 == 0 {
            eprintln!("[fuzz] {}/{iters} cases clean", case + 1);
        }
    });

    match outcome.failure {
        None => {
            println!(
                "fuzz: {} cases clean (audits passed, kernels digest-identical)",
                outcome.cases_run
            );
        }
        Some(failure) => {
            let repro = failure.render_repro();
            eprintln!("fuzz: case {} FAILED after shrinking:\n{repro}", failure.case);
            let path =
                noc_bench::results_dir().join(format!("fuzz_repro_case{}.txt", failure.case));
            if let Some(dir) = path.parent() {
                let _ = std::fs::create_dir_all(dir);
            }
            match std::fs::write(&path, &repro) {
                Ok(()) => eprintln!("[wrote {}]", path.display()),
                Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
            }
            std::process::exit(1);
        }
    }
}
