//! Simulator throughput benchmark (`BENCH_sim_throughput.json`).
//!
//! Sweeps {router architecture × injection rate × mesh size}, runs each
//! point under both cycle kernels ([`noc_sim::KernelMode::Reference`]
//! steps every router every cycle; `Optimized` is the wake-set kernel)
//! and reports simulated cycles/second and flit-hops/second for each,
//! plus the wall-clock speedup. Every point also asserts that the two
//! kernels produce bit-identical [`SimResults`] — the benchmark doubles
//! as an equivalence check, and exits non-zero on any divergence.
//!
//! Sizing follows `NOC_SCALE` (`quick` default); the report lands at
//! `BENCH_sim_throughput.json` in the workspace root.

use noc_bench::Scale;
use noc_core::{MeshConfig, RouterKind, RoutingKind};
use noc_sim::json::{write_f64, write_key, write_str};
use noc_sim::{KernelMode, SimConfig, SimResults};
use noc_traffic::TrafficKind;
use std::time::Instant;

/// One measured kernel run.
struct KernelRun {
    wall_s: f64,
    cycles_per_s: f64,
    hops_per_s: f64,
    digest: u64,
}

/// One sweep point (both kernels).
struct Point {
    router: RouterKind,
    mesh: MeshConfig,
    rate: f64,
    cycles: u64,
    flit_hops: u64,
    reference: KernelRun,
    optimized: KernelRun,
}

/// FNV-1a over every result field, floats by bit pattern. Equal digests
/// ⇔ (up to hash collision) bit-identical results; the benchmark also
/// compares a few headline fields directly for a readable failure.
fn digest(r: &SimResults) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let mut mix = |v: u64| {
        for b in v.to_le_bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
    };
    mix(r.cycles);
    mix(r.generated_packets);
    mix(r.injected_packets);
    mix(r.measured_injected);
    mix(r.delivered_packets);
    mix(r.measured_delivered);
    mix(r.dropped_packets);
    mix(r.avg_latency.to_bits());
    mix(r.max_latency);
    mix(r.latency_p50);
    mix(r.latency_p95);
    mix(r.latency_p99);
    mix(r.throughput.to_bits());
    mix(r.counters.cycles);
    mix(r.counters.rc_computations);
    mix(r.counters.va_local_arbs);
    mix(r.counters.va_global_arbs);
    mix(r.counters.va_failures);
    mix(r.counters.sa_local_arbs);
    mix(r.counters.sa_global_arbs);
    mix(r.counters.crossbar_traversals);
    mix(r.counters.link_traversals);
    mix(r.counters.buffer_writes);
    mix(r.counters.buffer_reads);
    mix(r.counters.credit_stall_cycles);
    mix(r.counters.early_ejections);
    mix(r.counters.blocked_packets);
    mix(r.counters.occupancy_high_water);
    mix(r.contention.x_requests);
    mix(r.contention.x_blocked);
    mix(r.contention.y_requests);
    mix(r.contention.y_blocked);
    mix(r.energy.total().to_bits());
    mix(r.energy_per_packet.to_bits());
    mix(r.stalled as u64);
    h
}

fn time_kernel(cfg: &SimConfig, kernel: KernelMode) -> (SimResults, KernelRun) {
    let mut cfg = cfg.clone();
    cfg.kernel = kernel;
    let start = Instant::now();
    let results = noc_sim::run(cfg);
    let wall_s = start.elapsed().as_secs_f64().max(1e-9);
    let run = KernelRun {
        wall_s,
        cycles_per_s: results.cycles as f64 / wall_s,
        hops_per_s: results.counters.link_traversals as f64 / wall_s,
        digest: digest(&results),
    };
    (results, run)
}

fn main() {
    let scale = Scale::from_env();
    let scale_name = match std::env::var("NOC_SCALE").as_deref() {
        Ok("paper") => "paper",
        Ok("full") => "full",
        _ => "quick",
    };
    let routers = [RouterKind::RoCo, RouterKind::Generic, RouterKind::PathSensitive];
    let rates = [0.05, 0.1, 0.2];
    let meshes = [MeshConfig::new(4, 4), MeshConfig::new(8, 8)];

    let mut points = Vec::new();
    let mut mismatches = 0u32;
    for router in routers {
        for mesh in meshes {
            for rate in rates {
                let mut cfg = scale.apply(SimConfig::paper_scaled(
                    router,
                    RoutingKind::Xy,
                    TrafficKind::Uniform,
                ));
                cfg.mesh = mesh;
                cfg.injection_rate = rate;
                let (rres, reference) = time_kernel(&cfg, KernelMode::Reference);
                let (ores, optimized) = time_kernel(&cfg, KernelMode::Optimized);
                if reference.digest != optimized.digest {
                    mismatches += 1;
                    eprintln!(
                        "DIGEST MISMATCH: {router:?} {}x{} rate {rate}: \
                         cycles {} vs {}, delivered {} vs {}, avg latency {} vs {}",
                        mesh.width,
                        mesh.height,
                        rres.cycles,
                        ores.cycles,
                        rres.delivered_packets,
                        ores.delivered_packets,
                        rres.avg_latency,
                        ores.avg_latency,
                    );
                }
                println!(
                    "{router:?} {}x{} rate {rate}: {} cycles, ref {:.2}s opt {:.2}s \
                     ({:.2}x, {:.0} cycles/s, {:.0} hops/s)",
                    mesh.width,
                    mesh.height,
                    ores.cycles,
                    reference.wall_s,
                    optimized.wall_s,
                    reference.wall_s / optimized.wall_s,
                    optimized.cycles_per_s,
                    optimized.hops_per_s,
                );
                points.push(Point {
                    router,
                    mesh,
                    rate,
                    cycles: ores.cycles,
                    flit_hops: ores.counters.link_traversals,
                    reference,
                    optimized,
                });
            }
        }
    }

    let geomean_speedup = {
        let log_sum: f64 = points
            .iter()
            .map(|p| (p.reference.wall_s / p.optimized.wall_s).ln())
            .sum();
        (log_sum / points.len() as f64).exp()
    };
    println!("geomean speedup: {geomean_speedup:.2}x");

    let json = render_json(scale_name, &points, geomean_speedup, mismatches);
    let path = noc_bench::results_dir()
        .parent()
        .map(|p| p.join("BENCH_sim_throughput.json"))
        .expect("results dir has a parent");
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("[wrote {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }

    if mismatches > 0 {
        eprintln!("{mismatches} sweep point(s) diverged between kernels");
        std::process::exit(1);
    }
}

fn render_json(scale: &str, points: &[Point], geomean: f64, mismatches: u32) -> String {
    let mut out = String::new();
    out.push('{');
    let mut first = true;
    write_key(&mut out, &mut first, "benchmark");
    write_str(&mut out, "sim_throughput");
    write_key(&mut out, &mut first, "status");
    write_str(&mut out, if mismatches == 0 { "ok" } else { "kernel-divergence" });
    write_key(&mut out, &mut first, "scale");
    write_str(&mut out, scale);
    write_key(&mut out, &mut first, "generated_by");
    write_str(&mut out, "cargo run --release -p noc-bench --bin perf");
    write_key(&mut out, &mut first, "geomean_speedup");
    write_f64(&mut out, geomean);
    write_key(&mut out, &mut first, "runs");
    out.push('[');
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        let mut f = true;
        write_key(&mut out, &mut f, "router");
        write_str(&mut out, &format!("{:?}", p.router));
        write_key(&mut out, &mut f, "mesh");
        write_str(&mut out, &format!("{}x{}", p.mesh.width, p.mesh.height));
        write_key(&mut out, &mut f, "injection_rate");
        write_f64(&mut out, p.rate);
        write_key(&mut out, &mut f, "cycles");
        write_f64(&mut out, p.cycles as f64);
        write_key(&mut out, &mut f, "flit_hops");
        write_f64(&mut out, p.flit_hops as f64);
        for (name, run) in [("reference", &p.reference), ("optimized", &p.optimized)] {
            write_key(&mut out, &mut f, name);
            out.push('{');
            let mut g = true;
            write_key(&mut out, &mut g, "wall_s");
            write_f64(&mut out, run.wall_s);
            write_key(&mut out, &mut g, "cycles_per_s");
            write_f64(&mut out, run.cycles_per_s);
            write_key(&mut out, &mut g, "flit_hops_per_s");
            write_f64(&mut out, run.hops_per_s);
            out.push('}');
        }
        write_key(&mut out, &mut f, "speedup");
        write_f64(&mut out, p.reference.wall_s / p.optimized.wall_s);
        write_key(&mut out, &mut f, "digest_match");
        out.push_str(if p.reference.digest == p.optimized.digest { "true" } else { "false" });
        out.push('}');
    }
    out.push(']');
    out.push('}');
    out.push('\n');
    out
}
