//! Simulator throughput benchmark (`BENCH_sim_throughput.json`).
//!
//! Sweeps {router architecture × injection rate × mesh size}, runs each
//! point under all four cycle kernels ([`noc_sim::KernelMode::Reference`]
//! steps every router every cycle; `Optimized` is the wake-set kernel;
//! `Parallel` shards the wake-set kernel across worker threads; `Soa`
//! is the single-thread data-oriented kernel of DESIGN.md §15) and
//! reports simulated cycles/second and flit-hops/second for each, plus
//! the wall-clock speedup. Every point also asserts that all four
//! kernels produce bit-identical [`SimResults`] — the benchmark doubles
//! as an equivalence check, and exits non-zero on any divergence.
//!
//! A second sweep measures **thread scaling**: the parallel kernel on
//! 16×16 and 32×32 meshes at worker counts 1, 2, 4, … up to the
//! machine's core count, each compared against the single-threaded
//! Optimized kernel on the same config (`speedup_vs_optimized`). The
//! results land in the report's `thread_scaling` section.
//!
//! A third sweep, `soa_scaling`, times the Soa kernel on the same
//! 16×16 and 32×32 meshes against the Optimized kernel
//! (`speedup_vs_optimized` again) — the single-thread data-orientation
//! payoff, targeted at ≥ 2× geomean.
//!
//! Sizing follows `NOC_SCALE` (`quick` default); the report lands at
//! `BENCH_sim_throughput.json` in the workspace root.
//!
//! The benchmark is also a **performance gate**: when the committed
//! report has `status: "ok"`, the fresh run's optimized-kernel
//! flit-hops/second are compared point-by-point against it and the
//! process exits non-zero when the geometric-mean ratio drops below
//! 0.90 (a >10% regression). `NOC_BENCH_GATE=0` disables the gate
//! (the comparison is still printed); a `pending` baseline skips it.

use noc_bench::Scale;
use noc_core::{MeshConfig, RouterKind, RoutingKind};
use noc_sim::json::{write_f64, write_key, write_str, Json};
use noc_sim::{KernelMode, ProfileReport, SimConfig, SimResults};
use noc_traffic::TrafficKind;
use std::path::Path;
use std::time::Instant;

/// One measured kernel run.
struct KernelRun {
    wall_s: f64,
    cycles_per_s: f64,
    hops_per_s: f64,
    digest: u64,
}

/// One sweep point (all four kernels).
struct Point {
    router: RouterKind,
    mesh: MeshConfig,
    rate: f64,
    cycles: u64,
    flit_hops: u64,
    reference: KernelRun,
    optimized: KernelRun,
    parallel: KernelRun,
    soa: KernelRun,
}

/// One Soa-kernel measurement in the data-orientation sweep.
struct SoaStep {
    router: RouterKind,
    mesh: MeshConfig,
    rate: f64,
    cycles: u64,
    optimized: KernelRun,
    soa: KernelRun,
    speedup_vs_optimized: f64,
    digest_match: bool,
}

/// Flit-slab geometry at one mesh size (ISSUE 10): the flat slab is
/// sized once at construction, so its footprint is a pure function of
/// the config and tracks bytes-per-flit-slot over time. The per-phase
/// wall attribution of the slab-backed kernels lands in the sibling
/// `profile` section.
struct SlabPoint {
    mesh: MeshConfig,
    footprint_bytes: usize,
    flit_slots: usize,
}

/// One parallel-kernel measurement in the thread-scaling sweep.
struct ScaleStep {
    threads: usize,
    run: KernelRun,
    speedup_vs_optimized: f64,
    digest_match: bool,
}

/// Thread-scaling results for one mesh.
struct ScalingSeries {
    router: RouterKind,
    mesh: MeshConfig,
    rate: f64,
    cycles: u64,
    optimized: KernelRun,
    steps: Vec<ScaleStep>,
}

fn time_kernel(cfg: &SimConfig, kernel: KernelMode) -> (SimResults, KernelRun) {
    let mut cfg = cfg.clone();
    cfg.kernel = kernel;
    let start = Instant::now();
    let results = noc_sim::run(cfg);
    let wall_s = start.elapsed().as_secs_f64().max(1e-9);
    let run = KernelRun {
        wall_s,
        cycles_per_s: results.cycles as f64 / wall_s,
        hops_per_s: results.counters.link_traversals as f64 / wall_s,
        // The canonical digest (DESIGN.md §10); equal digests ⇔ (up to
        // hash collision) bit-identical results.
        digest: results.digest(),
    };
    (results, run)
}

/// The stable identity of a sweep point, used to match fresh runs
/// against committed baseline runs.
fn point_key(router: &str, mesh: &str, rate: f64) -> String {
    format!("{router} {mesh} @{rate}")
}

/// Loads the committed report's optimized-kernel throughput per point.
/// Returns `None` (gate skipped) when the file is absent, unparsable,
/// or not a populated `status: "ok"` report.
fn load_baseline(path: &Path) -> Option<Vec<(String, f64)>> {
    let text = std::fs::read_to_string(path).ok()?;
    let v = Json::parse(&text).ok()?;
    if v.get("status")?.as_str()? != "ok" {
        return None;
    }
    let mut out = Vec::new();
    for run in v.get("runs")?.as_arr()? {
        let key = point_key(
            run.get("router")?.as_str()?,
            run.get("mesh")?.as_str()?,
            run.get("injection_rate")?.as_f64()?,
        );
        out.push((key, run.get("optimized")?.get("flit_hops_per_s")?.as_f64()?));
    }
    (!out.is_empty()).then_some(out)
}

/// Worker counts for the scaling sweep: powers of two up to the core
/// count, plus the core count itself when it is not a power of two.
fn sweep_threads(max: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut t = 1;
    while t <= max {
        out.push(t);
        t *= 2;
    }
    if *out.last().unwrap_or(&0) != max {
        out.push(max);
    }
    out
}

fn main() {
    let scale = Scale::from_env();
    let scale_name = match std::env::var("NOC_SCALE").as_deref() {
        Ok("paper") => "paper",
        Ok("full") => "full",
        _ => "quick",
    };
    let routers = [RouterKind::RoCo, RouterKind::Generic, RouterKind::PathSensitive];
    let rates = [0.05, 0.1, 0.2];
    let meshes = [MeshConfig::new(4, 4), MeshConfig::new(8, 8)];

    let mut points = Vec::new();
    let mut mismatches = 0u32;
    for router in routers {
        for mesh in meshes {
            for rate in rates {
                let mut cfg = scale.apply(SimConfig::paper_scaled(
                    router,
                    RoutingKind::Xy,
                    TrafficKind::Uniform,
                ));
                cfg.mesh = mesh;
                cfg.injection_rate = rate;
                let (rres, reference) = time_kernel(&cfg, KernelMode::Reference);
                let (ores, optimized) = time_kernel(&cfg, KernelMode::Optimized);
                let (pres, parallel) = time_kernel(&cfg, KernelMode::Parallel);
                let (sres, soa) = time_kernel(&cfg, KernelMode::Soa);
                for (name, res, run) in [
                    ("optimized", &ores, &optimized),
                    ("parallel", &pres, &parallel),
                    ("soa", &sres, &soa),
                ] {
                    if reference.digest != run.digest {
                        mismatches += 1;
                        eprintln!(
                            "DIGEST MISMATCH: {router:?} {}x{} rate {rate}: reference vs {name}: \
                             cycles {} vs {}, delivered {} vs {}, avg latency {} vs {}",
                            mesh.width,
                            mesh.height,
                            rres.cycles,
                            res.cycles,
                            rres.delivered_packets,
                            res.delivered_packets,
                            rres.avg_latency,
                            res.avg_latency,
                        );
                    }
                }
                println!(
                    "{router:?} {}x{} rate {rate}: {} cycles, ref {:.2}s opt {:.2}s par {:.2}s \
                     soa {:.2}s ({:.2}x, {:.0} cycles/s, {:.0} hops/s)",
                    mesh.width,
                    mesh.height,
                    ores.cycles,
                    reference.wall_s,
                    optimized.wall_s,
                    parallel.wall_s,
                    soa.wall_s,
                    reference.wall_s / optimized.wall_s,
                    optimized.cycles_per_s,
                    optimized.hops_per_s,
                );
                points.push(Point {
                    router,
                    mesh,
                    rate,
                    cycles: ores.cycles,
                    flit_hops: ores.counters.link_traversals,
                    reference,
                    optimized,
                    parallel,
                    soa,
                });
            }
        }
    }

    let geomean_speedup = {
        let log_sum: f64 =
            points.iter().map(|p| (p.reference.wall_s / p.optimized.wall_s).ln()).sum();
        (log_sum / points.len() as f64).exp()
    };
    println!("geomean speedup: {geomean_speedup:.2}x");

    // Thread-scaling sweep: the parallel kernel earns its keep on big
    // meshes, so measure 16×16 and 32×32 at every worker count against
    // the single-threaded Optimized kernel on the same config.
    let cores = std::thread::available_parallelism().map(std::num::NonZeroUsize::get).unwrap_or(1);
    let mut scaling = Vec::new();
    for mesh in [MeshConfig::new(16, 16), MeshConfig::new(32, 32)] {
        let rate = 0.1;
        let mut cfg = scale.apply(SimConfig::paper_scaled(
            RouterKind::RoCo,
            RoutingKind::Xy,
            TrafficKind::Uniform,
        ));
        cfg.mesh = mesh;
        cfg.injection_rate = rate;
        let (ores, optimized) = time_kernel(&cfg, KernelMode::Optimized);
        let mut steps = Vec::new();
        for threads in sweep_threads(cores) {
            let mut tcfg = cfg.clone();
            tcfg.threads = Some(threads);
            let (_, run) = time_kernel(&tcfg, KernelMode::Parallel);
            let digest_match = run.digest == optimized.digest;
            if !digest_match {
                mismatches += 1;
                eprintln!(
                    "DIGEST MISMATCH: thread scaling {}x{} at {threads} thread(s) diverged \
                     from the optimized kernel",
                    mesh.width, mesh.height
                );
            }
            let speedup_vs_optimized = optimized.wall_s / run.wall_s;
            println!(
                "scaling {}x{} threads {threads}: {:.2}s ({:.2}x vs optimized, {:.0} hops/s)",
                mesh.width, mesh.height, run.wall_s, speedup_vs_optimized, run.hops_per_s
            );
            steps.push(ScaleStep { threads, run, speedup_vs_optimized, digest_match });
        }
        scaling.push(ScalingSeries {
            router: RouterKind::RoCo,
            mesh,
            rate,
            cycles: ores.cycles,
            optimized,
            steps,
        });
    }

    // Data-orientation sweep: the Soa kernel on the same big meshes,
    // against the single-threaded Optimized kernel. This is the
    // single-thread payoff of the SoA hot path (DESIGN.md §15);
    // `speedup_vs_optimized` is the number the ≥2× target reads.
    let mut soa_scaling = Vec::new();
    for mesh in [MeshConfig::new(16, 16), MeshConfig::new(32, 32)] {
        let rate = 0.1;
        let mut cfg = scale.apply(SimConfig::paper_scaled(
            RouterKind::RoCo,
            RoutingKind::Xy,
            TrafficKind::Uniform,
        ));
        cfg.mesh = mesh;
        cfg.injection_rate = rate;
        let (ores, optimized) = time_kernel(&cfg, KernelMode::Optimized);
        let (_, soa) = time_kernel(&cfg, KernelMode::Soa);
        let digest_match = soa.digest == optimized.digest;
        if !digest_match {
            mismatches += 1;
            eprintln!(
                "DIGEST MISMATCH: soa scaling {}x{} diverged from the optimized kernel",
                mesh.width, mesh.height
            );
        }
        let speedup_vs_optimized = optimized.wall_s / soa.wall_s;
        println!(
            "soa {}x{}: opt {:.2}s soa {:.2}s ({:.2}x vs optimized, {:.0} hops/s)",
            mesh.width,
            mesh.height,
            optimized.wall_s,
            soa.wall_s,
            speedup_vs_optimized,
            soa.hops_per_s
        );
        soa_scaling.push(SoaStep {
            router: RouterKind::RoCo,
            mesh,
            rate,
            cycles: ores.cycles,
            optimized,
            soa,
            speedup_vs_optimized,
            digest_match,
        });
    }
    let soa_geomean = {
        let log_sum: f64 = soa_scaling.iter().map(|s| s.speedup_vs_optimized.ln()).sum();
        (log_sum / soa_scaling.len().max(1) as f64).exp()
    };
    println!("soa geomean speedup vs optimized: {soa_geomean:.2}x");

    // Self-profile section: one representative point per kernel with
    // the simulator profiler enabled. These runs are separate from the
    // timed sweep above, so the profiler's clock reads never perturb
    // the benchmark numbers (and profiling never changes results —
    // digests are identical either way, see DESIGN.md §14).
    let mut profiles: Vec<(&str, ProfileReport)> = Vec::new();
    {
        let mut cfg = scale.apply(SimConfig::paper_scaled(
            RouterKind::RoCo,
            RoutingKind::Xy,
            TrafficKind::Uniform,
        ));
        cfg.mesh = MeshConfig::new(8, 8);
        cfg.injection_rate = 0.1;
        cfg.profile = true;
        for (name, kernel) in [
            ("reference", KernelMode::Reference),
            ("optimized", KernelMode::Optimized),
            ("parallel", KernelMode::Parallel),
            ("soa", KernelMode::Soa),
        ] {
            let mut kcfg = cfg.clone();
            kcfg.kernel = kernel;
            let report = noc_sim::run(kcfg).profile.expect("profiling was enabled");
            println!(
                "profile {name}: wake {:.1}% of mesh, routers phase {:.3}s of {:.3}s wall",
                report.wake_fraction * 100.0,
                report.routers_s,
                report.wall_s
            );
            profiles.push((name, report));
        }
    }

    // Slab geometry: construction is cheap (no run), so measure every
    // sweep mesh plus the scaling meshes.
    let mut slab_points = Vec::new();
    for mesh in [
        MeshConfig::new(4, 4),
        MeshConfig::new(8, 8),
        MeshConfig::new(16, 16),
        MeshConfig::new(32, 32),
    ] {
        let mut cfg = scale.apply(SimConfig::paper_scaled(
            RouterKind::RoCo,
            RoutingKind::Xy,
            TrafficKind::Uniform,
        ));
        cfg.mesh = mesh;
        let sim = noc_sim::Simulation::new(cfg);
        let (bytes, slots) = (sim.slab().footprint_bytes(), sim.slab().slot_count());
        println!(
            "slab {}x{}: {} flit slots, {} bytes ({:.1} bytes/slot)",
            mesh.width,
            mesh.height,
            slots,
            bytes,
            bytes as f64 / slots.max(1) as f64
        );
        slab_points.push(SlabPoint { mesh, footprint_bytes: bytes, flit_slots: slots });
    }

    let path = noc_bench::results_dir()
        .parent()
        .map(|p| p.join("BENCH_sim_throughput.json"))
        .expect("results dir has a parent");

    // The committed baseline's status, read before the fresh report
    // overwrites the file: NOC_BENCH_STRICT turns a still-pending
    // baseline into a hard failure (the record-on-pending grace period
    // is over once the populate job has run — commit the artifact).
    let committed_status: Option<String> = std::fs::read_to_string(&path)
        .ok()
        .and_then(|text| Json::parse(&text).ok())
        .and_then(|v| v.get("status").and_then(|s| s.as_str().map(String::from)));

    // Performance gate against the committed baseline — evaluated
    // before the fresh report overwrites it.
    let gate_enabled = std::env::var("NOC_BENCH_GATE").map(|v| v != "0").unwrap_or(true);
    let mut regressed = false;
    match load_baseline(&path) {
        None => println!("perf gate: no populated baseline (status != \"ok\"); comparison skipped"),
        Some(baseline) => {
            let mut log_sum = 0.0f64;
            let mut matched = 0u32;
            for p in &points {
                let key = point_key(
                    &format!("{:?}", p.router),
                    &format!("{}x{}", p.mesh.width, p.mesh.height),
                    p.rate,
                );
                let Some((_, base_hops)) = baseline.iter().find(|(k, _)| *k == key) else {
                    continue;
                };
                if *base_hops > 0.0 && p.optimized.hops_per_s > 0.0 {
                    log_sum += (p.optimized.hops_per_s / base_hops).ln();
                    matched += 1;
                }
            }
            if matched == 0 {
                println!("perf gate: no sweep points matched the baseline; comparison skipped");
            } else {
                let ratio = (log_sum / matched as f64).exp();
                println!(
                    "perf gate: geomean {:.3}x of committed throughput over {matched} matched point(s)",
                    ratio
                );
                if ratio < 0.90 {
                    if gate_enabled {
                        regressed = true;
                        eprintln!(
                            "perf gate: >10% geomean throughput regression \
                             (set NOC_BENCH_GATE=0 to bypass, or regenerate the baseline \
                             and commit it if the slowdown is intentional)"
                        );
                    } else {
                        eprintln!("perf gate: regression detected but NOC_BENCH_GATE=0");
                    }
                }
            }
        }
    }

    let json = render_json(
        scale_name,
        &points,
        &scaling,
        &soa_scaling,
        soa_geomean,
        &profiles,
        &slab_points,
        geomean_speedup,
        mismatches,
    );
    match std::fs::write(&path, json) {
        Ok(()) => eprintln!("[wrote {}]", path.display()),
        Err(e) => eprintln!("warning: could not write {}: {e}", path.display()),
    }

    if mismatches > 0 {
        eprintln!("{mismatches} sweep point(s) diverged between kernels");
    }
    if mismatches > 0 || regressed {
        std::process::exit(1);
    }

    // Strict pending gate (CI sets NOC_BENCH_STRICT=1): the fresh
    // report above was written and uploaded regardless, but a baseline
    // that never graduated from `pending` means the gate has been
    // silently vacuous — fail loudly instead of skipping forever.
    let strict = std::env::var("NOC_BENCH_STRICT").map(|v| v != "0").unwrap_or(false);
    if strict && committed_status.as_deref() != Some("ok") {
        eprintln!(
            "NOC_BENCH_STRICT: committed BENCH_sim_throughput.json has status {:?}, not \"ok\" — \
             the perf gate never engaged. Download the freshly generated report from the CI \
             artifacts and commit it as the baseline.",
            committed_status.as_deref().unwrap_or("<absent>")
        );
        std::process::exit(3);
    }
}

fn write_kernel_run(out: &mut String, first: &mut bool, name: &str, run: &KernelRun) {
    write_key(out, first, name);
    out.push('{');
    let mut g = true;
    write_key(out, &mut g, "wall_s");
    write_f64(out, run.wall_s);
    write_key(out, &mut g, "cycles_per_s");
    write_f64(out, run.cycles_per_s);
    write_key(out, &mut g, "flit_hops_per_s");
    write_f64(out, run.hops_per_s);
    out.push('}');
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    scale: &str,
    points: &[Point],
    scaling: &[ScalingSeries],
    soa_scaling: &[SoaStep],
    soa_geomean: f64,
    profiles: &[(&str, ProfileReport)],
    slab_points: &[SlabPoint],
    geomean: f64,
    mismatches: u32,
) -> String {
    let mut out = String::new();
    out.push('{');
    let mut first = true;
    write_key(&mut out, &mut first, "benchmark");
    write_str(&mut out, "sim_throughput");
    write_key(&mut out, &mut first, "status");
    write_str(&mut out, if mismatches == 0 { "ok" } else { "kernel-divergence" });
    write_key(&mut out, &mut first, "scale");
    write_str(&mut out, scale);
    write_key(&mut out, &mut first, "generated_by");
    write_str(&mut out, "cargo run --release -p noc-bench --bin perf");
    write_key(&mut out, &mut first, "geomean_speedup");
    write_f64(&mut out, geomean);
    write_key(&mut out, &mut first, "runs");
    out.push('[');
    for (i, p) in points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        let mut f = true;
        write_key(&mut out, &mut f, "router");
        write_str(&mut out, &format!("{:?}", p.router));
        write_key(&mut out, &mut f, "mesh");
        write_str(&mut out, &format!("{}x{}", p.mesh.width, p.mesh.height));
        write_key(&mut out, &mut f, "injection_rate");
        write_f64(&mut out, p.rate);
        write_key(&mut out, &mut f, "cycles");
        write_f64(&mut out, p.cycles as f64);
        write_key(&mut out, &mut f, "flit_hops");
        write_f64(&mut out, p.flit_hops as f64);
        write_kernel_run(&mut out, &mut f, "reference", &p.reference);
        write_kernel_run(&mut out, &mut f, "optimized", &p.optimized);
        write_kernel_run(&mut out, &mut f, "parallel", &p.parallel);
        write_kernel_run(&mut out, &mut f, "soa", &p.soa);
        write_key(&mut out, &mut f, "speedup");
        write_f64(&mut out, p.reference.wall_s / p.optimized.wall_s);
        write_key(&mut out, &mut f, "digest_match");
        let ok = p.reference.digest == p.optimized.digest
            && p.reference.digest == p.parallel.digest
            && p.reference.digest == p.soa.digest;
        out.push_str(if ok { "true" } else { "false" });
        out.push('}');
    }
    out.push(']');
    write_key(&mut out, &mut first, "thread_scaling");
    out.push('[');
    for (i, s) in scaling.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        let mut f = true;
        write_key(&mut out, &mut f, "router");
        write_str(&mut out, &format!("{:?}", s.router));
        write_key(&mut out, &mut f, "mesh");
        write_str(&mut out, &format!("{}x{}", s.mesh.width, s.mesh.height));
        write_key(&mut out, &mut f, "injection_rate");
        write_f64(&mut out, s.rate);
        write_key(&mut out, &mut f, "cycles");
        write_f64(&mut out, s.cycles as f64);
        write_kernel_run(&mut out, &mut f, "optimized", &s.optimized);
        write_key(&mut out, &mut f, "threads");
        out.push('[');
        for (j, step) in s.steps.iter().enumerate() {
            if j > 0 {
                out.push(',');
            }
            out.push('{');
            let mut g = true;
            write_key(&mut out, &mut g, "threads");
            write_f64(&mut out, step.threads as f64);
            write_key(&mut out, &mut g, "wall_s");
            write_f64(&mut out, step.run.wall_s);
            write_key(&mut out, &mut g, "cycles_per_s");
            write_f64(&mut out, step.run.cycles_per_s);
            write_key(&mut out, &mut g, "flit_hops_per_s");
            write_f64(&mut out, step.run.hops_per_s);
            write_key(&mut out, &mut g, "speedup_vs_optimized");
            write_f64(&mut out, step.speedup_vs_optimized);
            write_key(&mut out, &mut g, "digest_match");
            out.push_str(if step.digest_match { "true" } else { "false" });
            out.push('}');
        }
        out.push(']');
        out.push('}');
    }
    out.push(']');
    write_key(&mut out, &mut first, "soa_geomean_speedup");
    write_f64(&mut out, soa_geomean);
    write_key(&mut out, &mut first, "soa_scaling");
    out.push('[');
    for (i, s) in soa_scaling.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        let mut f = true;
        write_key(&mut out, &mut f, "router");
        write_str(&mut out, &format!("{:?}", s.router));
        write_key(&mut out, &mut f, "mesh");
        write_str(&mut out, &format!("{}x{}", s.mesh.width, s.mesh.height));
        write_key(&mut out, &mut f, "injection_rate");
        write_f64(&mut out, s.rate);
        write_key(&mut out, &mut f, "cycles");
        write_f64(&mut out, s.cycles as f64);
        write_kernel_run(&mut out, &mut f, "optimized", &s.optimized);
        write_kernel_run(&mut out, &mut f, "soa", &s.soa);
        write_key(&mut out, &mut f, "speedup_vs_optimized");
        write_f64(&mut out, s.speedup_vs_optimized);
        write_key(&mut out, &mut f, "digest_match");
        out.push_str(if s.digest_match { "true" } else { "false" });
        out.push('}');
    }
    out.push(']');
    // Flat flit-slab geometry (ISSUE 10). Deterministic per config, so
    // drift here means the slab layout itself changed.
    write_key(&mut out, &mut first, "slab");
    out.push('{');
    let mut sf = true;
    write_key(&mut out, &mut sf, "flit_bytes");
    write_f64(&mut out, std::mem::size_of::<noc_core::Flit>() as f64);
    write_key(&mut out, &mut sf, "meshes");
    out.push('[');
    for (i, s) in slab_points.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push('{');
        let mut f = true;
        write_key(&mut out, &mut f, "mesh");
        write_str(&mut out, &format!("{}x{}", s.mesh.width, s.mesh.height));
        write_key(&mut out, &mut f, "flit_slots");
        write_f64(&mut out, s.flit_slots as f64);
        write_key(&mut out, &mut f, "footprint_bytes");
        write_f64(&mut out, s.footprint_bytes as f64);
        write_key(&mut out, &mut f, "bytes_per_slot");
        write_f64(&mut out, s.footprint_bytes as f64 / s.flit_slots.max(1) as f64);
        out.push('}');
    }
    out.push(']');
    out.push('}');
    // Wall-clock self-profiles of one representative point per kernel
    // (diagnostic only: values vary run to run and are never compared).
    write_key(&mut out, &mut first, "profile");
    out.push('{');
    let mut pf = true;
    for (name, report) in profiles {
        write_key(&mut out, &mut pf, name);
        out.push_str(&report.to_json());
    }
    out.push('}');
    out.push('}');
    out.push('\n');
    out
}
