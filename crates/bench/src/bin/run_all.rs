//! Regenerates every table and figure of the paper in one go (plus the
//! extensions), writing CSVs under `results/`. Controlled by
//! `NOC_SCALE` (quick | full | paper).
use noc_bench::{experiments, Scale};
use noc_core::RoutingKind;
use noc_fault::FaultCategory;
use noc_traffic::TrafficKind;

fn main() {
    let scale = Scale::from_env();
    let t0 = std::time::Instant::now();
    println!("# RoCo reproduction — full experiment suite\n");

    experiments::tables::table1().emit("table01_vc_config");
    experiments::tables::table2().emit("table02_nonblocking");
    experiments::tables::fig2(3).emit("fig02_va_complexity");

    for (i, t) in experiments::contention::fig3().into_iter().enumerate() {
        t.emit_with_plot(
            &format!("fig03{}_contention", (b'a' + i as u8) as char),
            "contention probability",
        );
    }
    for (fig, traffic) in [
        ("fig08", TrafficKind::Uniform),
        ("fig09", TrafficKind::SelfSimilar),
        ("fig10", TrafficKind::Transpose),
    ] {
        for (i, t) in experiments::latency::latency_figure(traffic, scale).into_iter().enumerate() {
            t.emit_with_plot(
                &format!("{fig}{}_{traffic}", (b'a' + i as u8) as char),
                "average latency (cycles)",
            );
        }
    }
    for (fig, cat) in [("fig11", FaultCategory::Isolating), ("fig12", FaultCategory::Recyclable)] {
        for (i, t) in experiments::faults::completion_figure(cat, scale).into_iter().enumerate() {
            t.emit(&format!("{fig}{}_completion", (b'a' + i as u8) as char));
        }
    }
    experiments::energy::fig13(scale).emit("fig13_energy");
    for (cat, tag) in
        [(FaultCategory::Isolating, "a_critical"), (FaultCategory::Recyclable, "b_noncritical")]
    {
        let t = experiments::pef::fig14_panel(cat, RoutingKind::Adaptive, scale);
        let (vs_g, vs_p) = experiments::pef::pef_improvement(&t);
        t.emit(&format!("fig14{tag}_pef"));
        println!(
            "RoCo PEF improvement ({cat}): {:.0}% vs generic, {:.0}% vs path-sensitive\n",
            vs_g * 100.0,
            vs_p * 100.0
        );
    }
    for (i, t) in
        experiments::latency::latency_figure(TrafficKind::Mpeg, scale).into_iter().enumerate()
    {
        t.emit_with_plot(
            &format!("ext_mpeg_{}", (b'a' + i as u8) as char),
            "average latency (cycles)",
        );
    }
    experiments::ablation::mirror_ablation(scale).emit("ablation_mirror");
    experiments::ablation::adaptive_policy_ablation(scale).emit("ablation_adaptive_policy");
    experiments::ablation::vc_sensitivity(scale).emit("ablation_vc_partitioning");
    experiments::ablation::speculation_ablation(scale).emit("ablation_speculation");
    experiments::thermal::thermal_comparison(scale).emit("ext_thermal");

    println!("\n[run_all completed in {:.1?}]", t0.elapsed());
}
