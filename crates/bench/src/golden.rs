//! Golden regression corpus (ISSUE 4).
//!
//! A fixed set of ~20 deterministic scenario configurations spanning
//! the three routers, the routing algorithms, the traffic families,
//! static and scheduled faults, and end-to-end recovery. Each scenario
//! has a committed golden file under `goldens/` holding the run's
//! [`SimResults::digest`] plus a handful of headline statistics; the
//! runner re-executes every scenario and diffs the live values against
//! the committed ones, key by key.
//!
//! Bootstrapping: a golden file whose `digest` is the literal string
//! `pending` is *recorded* — the runner fills in the observed values
//! and reports the scenario as freshly recorded rather than failing.
//! This lets the corpus be committed from an environment that cannot
//! run the simulator; the first CI run populates it.
//!
//! Intentional updates (a behaviour-changing commit) regenerate the
//! corpus with `cargo run --release -p noc-bench --bin golden --
//! --update` (or `noc golden --update`); the rewritten files are then
//! reviewed and committed alongside the change.

use noc_core::{Coord, MeshConfig, RouterKind, RoutingKind, TopologyConfig};
use noc_fault::{FaultCategory, FaultPlan, FaultSchedule};
use noc_sim::{retarget_topology, AuditConfig, KernelMode, RecoveryConfig, SimConfig, SimResults};
use noc_traffic::TrafficKind;
use std::path::{Path, PathBuf};

/// Where the committed golden files live (`goldens/` under the
/// workspace root, or the current directory as a fallback).
pub fn goldens_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    let base = std::env::var("CARGO_MANIFEST_DIR")
        .map(|m| PathBuf::from(m).join("../.."))
        .unwrap_or_else(|_| PathBuf::from("."));
    base.join("goldens")
}

/// One named scenario of the corpus.
#[derive(Debug, Clone)]
pub struct GoldenScenario {
    /// Stable scenario name; also the golden file's stem.
    pub name: &'static str,
    /// The full run configuration.
    pub config: SimConfig,
}

/// A small deterministic base config shared by most scenarios.
fn base(
    router: RouterKind,
    routing: RoutingKind,
    traffic: TrafficKind,
    mesh: (u16, u16),
    rate: f64,
    seed: u64,
) -> SimConfig {
    let mut cfg = SimConfig::paper_scaled(router, routing, traffic);
    cfg.mesh = MeshConfig::new(mesh.0, mesh.1);
    cfg.injection_rate = rate;
    cfg.warmup_packets = 50;
    cfg.measured_packets = 400;
    cfg.seed = seed;
    cfg.max_cycles = 150_000;
    cfg.stall_window = 5_000;
    cfg.audit = Some(AuditConfig { interval: 4, max_recorded: 8 });
    cfg
}

/// The corpus: ~20 deterministic scenarios covering routers, routing
/// algorithms, traffic families, fault modes, recovery and both
/// kernels. Order and names are stable — CI artifacts and golden file
/// stems key off them.
pub fn scenarios() -> Vec<GoldenScenario> {
    use RouterKind::{Generic, PathSensitive, RoCo};
    use RoutingKind::{Adaptive, Xy, XyYx};
    let mut v = Vec::new();
    let mut push = |name: &'static str, config: SimConfig| {
        v.push(GoldenScenario { name, config });
    };

    // Fault-free baselines: every router on uniform XY.
    push("roco-uniform-xy", base(RoCo, Xy, TrafficKind::Uniform, (4, 4), 0.20, 0xA001));
    push("generic-uniform-xy", base(Generic, Xy, TrafficKind::Uniform, (4, 4), 0.20, 0xA002));
    push(
        "pathsensitive-uniform-xy",
        base(PathSensitive, Xy, TrafficKind::Uniform, (4, 4), 0.20, 0xA003),
    );

    // Routing algorithms and traffic families.
    push("roco-transpose-xyyx", base(RoCo, XyYx, TrafficKind::Transpose, (5, 5), 0.18, 0xA004));
    push(
        "generic-hotspot-adaptive",
        base(Generic, Adaptive, TrafficKind::Hotspot, (4, 4), 0.15, 0xA005),
    );
    push(
        "roco-bitcomplement-adaptive",
        base(RoCo, Adaptive, TrafficKind::BitComplement, (4, 4), 0.18, 0xA006),
    );
    push("roco-selfsimilar-xy", base(RoCo, Xy, TrafficKind::SelfSimilar, (4, 4), 0.15, 0xA007));
    push("roco-mpeg-xy", base(RoCo, Xy, TrafficKind::Mpeg, (4, 4), 0.15, 0xA008));
    push(
        "pathsensitive-transpose-xyyx",
        base(PathSensitive, XyYx, TrafficKind::Transpose, (4, 4), 0.15, 0xA009),
    );

    // One medium mesh at higher load (saturation-adjacent).
    push("roco-uniform-8x8-load", base(RoCo, Xy, TrafficKind::Uniform, (8, 8), 0.30, 0xA00A));

    // Static fault plans (§5.4 random injection, both categories).
    {
        let mut cfg = base(RoCo, Xy, TrafficKind::Uniform, (4, 4), 0.18, 0xA00B);
        cfg.faults = FaultPlan::random(FaultCategory::Recyclable, 3, cfg.mesh, 0xFA01);
        push("roco-static-recyclable", cfg);
    }
    {
        let mut cfg = base(RoCo, Xy, TrafficKind::Uniform, (4, 4), 0.18, 0xA00C);
        cfg.faults = FaultPlan::random(FaultCategory::Isolating, 2, cfg.mesh, 0xFA02);
        push("roco-static-isolating", cfg);
    }
    {
        let mut cfg = base(Generic, Xy, TrafficKind::Uniform, (4, 4), 0.18, 0xA00D);
        cfg.faults = FaultPlan::random(FaultCategory::Recyclable, 2, cfg.mesh, 0xFA03);
        push("generic-static-faults", cfg);
    }
    {
        let mut cfg = base(PathSensitive, Xy, TrafficKind::Uniform, (4, 4), 0.18, 0xA00E);
        cfg.faults = FaultPlan::random(FaultCategory::Isolating, 1, cfg.mesh, 0xFA04);
        push("pathsensitive-static-fault", cfg);
    }

    // Mid-run fault schedules (transient and permanent).
    {
        let mut cfg = base(RoCo, Xy, TrafficKind::Uniform, (4, 4), 0.18, 0xA00F);
        cfg.schedule.push_transient(
            300,
            Coord::new(1, 1),
            noc_core::ComponentFault::new(noc_core::FaultComponent::Crossbar, noc_core::Axis::X),
            600,
        );
        push("roco-transient-crossbar", cfg);
    }
    {
        let mut cfg = base(Generic, Xy, TrafficKind::Uniform, (4, 4), 0.18, 0xA010);
        cfg.schedule.push_permanent(
            500,
            Coord::new(2, 2),
            noc_core::ComponentFault::new(noc_core::FaultComponent::SaArbiter, noc_core::Axis::Y),
        );
        push("generic-midrun-permanent", cfg);
    }
    {
        let mut cfg = base(RoCo, Xy, TrafficKind::Uniform, (5, 4), 0.15, 0xA011);
        cfg.schedule = FaultSchedule::random_mtbf(
            FaultCategory::Recyclable,
            cfg.mesh,
            2_500.0,
            Some(800),
            12_000,
            3,
            0xFA05,
        );
        push("roco-mtbf-campaign", cfg);
    }

    // End-to-end recovery.
    {
        let mut cfg = base(RoCo, Xy, TrafficKind::Uniform, (4, 4), 0.18, 0xA012);
        cfg.schedule.push_transient(
            300,
            Coord::new(1, 2),
            noc_core::ComponentFault::new(noc_core::FaultComponent::VaArbiter, noc_core::Axis::X),
            700,
        );
        cfg.recovery = Some(RecoveryConfig { timeout: 300, max_retries: 3, backoff_cap: 2_000 });
        push("roco-recovery-transient", cfg);
    }
    {
        let mut cfg = base(RoCo, Xy, TrafficKind::Uniform, (4, 4), 0.18, 0xA013);
        cfg.faults = FaultPlan::random(FaultCategory::Isolating, 2, cfg.mesh, 0xFA06);
        cfg.recovery = Some(RecoveryConfig { timeout: 150, max_retries: 1, backoff_cap: 600 });
        push("roco-recovery-abandonment", cfg);
    }

    // Kernel and handshake variants.
    {
        let mut cfg = base(RoCo, Xy, TrafficKind::Uniform, (4, 4), 0.20, 0xA001);
        cfg.kernel = KernelMode::Reference;
        push("roco-uniform-reference-kernel", cfg);
    }
    {
        let mut cfg = base(RoCo, Xy, TrafficKind::Uniform, (4, 4), 0.18, 0xA014);
        cfg.handshake_latency = 0;
        cfg.schedule.push_transient(
            400,
            Coord::new(0, 1),
            noc_core::ComponentFault::new(noc_core::FaultComponent::MuxDemux, noc_core::Axis::Y),
            500,
        );
        push("roco-instant-handshake", cfg);
    }

    // Topology matrix (ISSUE 9): each non-mesh topology fault-free and
    // under an MTBF fault campaign. Scenarios retarget *before*
    // drawing the schedule so fault sites land on the topology's own
    // node set (a remap would also be deterministic, but native sites
    // make the golden files readable).
    let wrapped = |topology: TopologyConfig, rate: f64, seed: u64| {
        let mut cfg = base(Generic, Xy, TrafficKind::Uniform, (4, 4), rate, seed);
        retarget_topology(&mut cfg, topology);
        cfg
    };
    let with_mtbf = |mut cfg: SimConfig, seed: u64| {
        cfg.schedule = FaultSchedule::random_mtbf(
            FaultCategory::Recyclable,
            cfg.mesh,
            2_500.0,
            Some(800),
            12_000,
            3,
            seed,
        );
        cfg
    };
    let circulant = TopologyConfig::Circulant { nodes: 13, s1: 1, s2: 5 };
    let chiplet = TopologyConfig::Chiplet {
        chips_x: 2,
        chips_y: 2,
        chip_width: 3,
        chip_height: 3,
        d2d_delay: 3,
    };
    push("torus-uniform-xy", wrapped(TopologyConfig::Torus, 0.18, 0xA015));
    push("torus-mtbf-campaign", with_mtbf(wrapped(TopologyConfig::Torus, 0.15, 0xA016), 0xFA07));
    push("circulant-uniform-xy", wrapped(circulant, 0.18, 0xA017));
    push("circulant-mtbf-campaign", with_mtbf(wrapped(circulant, 0.15, 0xA018), 0xFA08));
    push("chiplet-uniform-xy", wrapped(chiplet, 0.18, 0xA019));
    push("chiplet-mtbf-campaign", with_mtbf(wrapped(chiplet, 0.15, 0xA01A), 0xFA09));

    v
}

/// The stable key/value pairs recorded per scenario. `digest` is the
/// gate; the remaining keys exist so drift produces a human-readable
/// diff instead of a bare hash mismatch.
pub fn observed_values(res: &SimResults) -> Vec<(&'static str, String)> {
    let mut v = vec![
        ("digest", format!("{:#018x}", res.digest())),
        ("cycles", res.cycles.to_string()),
        ("generated", res.generated_packets.to_string()),
        ("injected", res.injected_packets.to_string()),
        ("delivered", res.delivered_packets.to_string()),
        ("dropped", res.dropped_packets.to_string()),
        ("stalled", res.stalled.to_string()),
        ("avg_latency", format!("{:.4}", res.avg_latency)),
        ("throughput", format!("{:.6}", res.throughput)),
    ];
    if let Some(a) = &res.audit {
        let audit = if a.clean() {
            "clean".to_string()
        } else {
            format!("{} violations", a.total_violations)
        };
        v.push(("audit", audit));
    }
    if let Some(r) = &res.recovery {
        v.push(("retransmissions", r.retransmissions.to_string()));
        v.push(("abandoned", r.abandoned_packets.to_string()));
    }
    v
}

/// Renders a golden file from recorded values.
pub fn render_golden(name: &str, values: &[(&'static str, String)]) -> String {
    let mut s = format!(
        "# Golden scenario: {name}\n\
         # Regenerate intentionally with: cargo run --release -p noc-bench --bin golden -- --update\n"
    );
    for (k, v) in values {
        s.push_str(&format!("{k} = {v}\n"));
    }
    s
}

/// Parses a golden file into ordered key/value pairs.
pub fn parse_golden(text: &str) -> Vec<(String, String)> {
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                return None;
            }
            let (k, v) = line.split_once('=')?;
            Some((k.trim().to_string(), v.trim().to_string()))
        })
        .collect()
}

/// Per-scenario outcome of a corpus run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScenarioOutcome {
    /// Live values matched the committed golden exactly.
    Match,
    /// The golden was pending (or `--update` was given) and has been
    /// (re)written from the live run.
    Recorded,
    /// The committed golden file is missing entirely.
    Missing,
    /// Live values diverged; one human-readable line per differing key.
    Mismatch(Vec<String>),
    /// The golden file could not be read or written.
    Error(String),
}

/// Outcome of one scenario.
#[derive(Debug, Clone)]
pub struct GoldenRun {
    /// Scenario name.
    pub name: String,
    /// What happened.
    pub outcome: ScenarioOutcome,
}

/// Outcome of a whole corpus run.
#[derive(Debug, Clone)]
pub struct GoldenSummary {
    /// Per-scenario outcomes, in corpus order.
    pub runs: Vec<GoldenRun>,
}

impl GoldenSummary {
    /// Scenarios that were recorded this run rather than compared —
    /// i.e. goldens that were still `pending` (or `--update` was
    /// given). CI's strict mode (`NOC_GOLDEN_STRICT=1`) turns a
    /// nonzero count into a hard failure: once the populate job has
    /// run, a still-pending golden means the regression gate is
    /// silently vacuous and the recorded files must be committed.
    pub fn recorded_count(&self) -> usize {
        self.runs.iter().filter(|r| r.outcome == ScenarioOutcome::Recorded).count()
    }

    /// `true` when any scenario is missing, mismatched, or errored.
    pub fn failed(&self) -> bool {
        self.runs.iter().any(|r| {
            matches!(
                r.outcome,
                ScenarioOutcome::Missing | ScenarioOutcome::Mismatch(_) | ScenarioOutcome::Error(_)
            )
        })
    }

    /// Human-readable report: one line per scenario, with per-key
    /// expected-vs-got lines for mismatches.
    pub fn render(&self) -> String {
        let mut s = String::new();
        for run in &self.runs {
            match &run.outcome {
                ScenarioOutcome::Match => s.push_str(&format!("ok       {}\n", run.name)),
                ScenarioOutcome::Recorded => s.push_str(&format!("recorded {}\n", run.name)),
                ScenarioOutcome::Missing => {
                    s.push_str(&format!(
                        "MISSING  {} (golden file absent; run with --update)\n",
                        run.name
                    ));
                }
                ScenarioOutcome::Error(e) => s.push_str(&format!("ERROR    {}: {e}\n", run.name)),
                ScenarioOutcome::Mismatch(diffs) => {
                    s.push_str(&format!("DIFF     {}\n", run.name));
                    for d in diffs {
                        s.push_str(&format!("           {d}\n"));
                    }
                }
            }
        }
        let recorded = self.runs.iter().filter(|r| r.outcome == ScenarioOutcome::Recorded).count();
        let matched = self.runs.iter().filter(|r| r.outcome == ScenarioOutcome::Match).count();
        let failed = self.runs.len() - recorded - matched;
        s.push_str(&format!(
            "golden corpus: {matched} matched, {recorded} recorded, {failed} failed of {}\n",
            self.runs.len()
        ));
        s
    }
}

/// Compares one scenario's live results against its golden file in
/// `dir`, recording it when pending (or `update` is set).
pub fn check_one(dir: &Path, name: &str, res: &SimResults, update: bool) -> GoldenRun {
    let path = dir.join(format!("{name}.txt"));
    let observed = observed_values(res);
    let rewrite = |outcome: ScenarioOutcome| -> GoldenRun {
        if let Err(e) = std::fs::create_dir_all(dir) {
            return GoldenRun {
                name: name.to_string(),
                outcome: ScenarioOutcome::Error(e.to_string()),
            };
        }
        match std::fs::write(&path, render_golden(name, &observed)) {
            Ok(()) => GoldenRun { name: name.to_string(), outcome },
            Err(e) => {
                GoldenRun { name: name.to_string(), outcome: ScenarioOutcome::Error(e.to_string()) }
            }
        }
    };
    if update {
        return rewrite(ScenarioOutcome::Recorded);
    }
    let text = match std::fs::read_to_string(&path) {
        Ok(t) => t,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            return GoldenRun { name: name.to_string(), outcome: ScenarioOutcome::Missing };
        }
        Err(e) => {
            return GoldenRun {
                name: name.to_string(),
                outcome: ScenarioOutcome::Error(e.to_string()),
            };
        }
    };
    let expected = parse_golden(&text);
    if expected.iter().any(|(k, v)| k.as_str() == "digest" && v.as_str() == "pending") {
        return rewrite(ScenarioOutcome::Recorded);
    }
    let mut diffs = Vec::new();
    for &(k, ref got) in &observed {
        match expected.iter().find(|(ek, _)| ek.as_str() == k) {
            Some((_, want)) if want == got => {}
            Some((_, want)) => diffs.push(format!("{k}: expected {want}, got {got}")),
            None => diffs.push(format!("{k}: not in golden file, got {got}")),
        }
    }
    for (k, want) in &expected {
        if !observed.iter().any(|(ok, _)| *ok == k.as_str()) {
            diffs.push(format!("{k}: in golden file ({want}) but absent from the run"));
        }
    }
    let outcome =
        if diffs.is_empty() { ScenarioOutcome::Match } else { ScenarioOutcome::Mismatch(diffs) };
    GoldenRun { name: name.to_string(), outcome }
}

/// Runs `scenarios` (in parallel across cores) and checks each against
/// its golden file in `dir`.
pub fn check_scenarios(dir: &Path, scenarios: &[GoldenScenario], update: bool) -> GoldenSummary {
    let configs: Vec<SimConfig> = scenarios.iter().map(|s| s.config.clone()).collect();
    let results = crate::run_batch(configs);
    let runs = scenarios
        .iter()
        .zip(results.iter())
        .map(|(s, res)| check_one(dir, s.name, res, update))
        .collect();
    GoldenSummary { runs }
}

/// Runs the whole committed corpus against `goldens/`.
pub fn check_all(update: bool) -> GoldenSummary {
    check_scenarios(&goldens_dir(), &scenarios(), update)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn corpus_is_well_formed() {
        let all = scenarios();
        assert!(all.len() >= 20, "corpus has {} scenarios", all.len());
        let mut names = std::collections::HashSet::new();
        for s in &all {
            assert!(names.insert(s.name), "duplicate scenario name {}", s.name);
            assert!(s.config.audit.is_some(), "{}: golden runs must be audited", s.name);
            assert!(s.config.max_cycles > 0);
            // Every scenario's topology must resolve on its own grid —
            // a retarget slip here would only surface on CI runners.
            let topo = s.config.topology.resolve(s.config.mesh).expect(s.name);
            assert_eq!(noc_core::TopologyOps::grid(&topo), s.config.mesh, "{}: grid", s.name);
        }
        // The ISSUE 9 topology corpus: every non-mesh topology, both
        // fault-free and under an MTBF campaign.
        for name in [
            "torus-uniform-xy",
            "torus-mtbf-campaign",
            "circulant-uniform-xy",
            "circulant-mtbf-campaign",
            "chiplet-uniform-xy",
            "chiplet-mtbf-campaign",
        ] {
            assert!(names.contains(name), "missing topology scenario {name}");
        }
    }

    #[test]
    fn topology_scenarios_draw_faults_on_their_own_grid() {
        for s in scenarios() {
            for &(site, _) in &s.config.faults.faults {
                assert!(
                    site.x < s.config.mesh.width && site.y < s.config.mesh.height,
                    "{}: static fault site {site} off-grid",
                    s.name
                );
            }
            for e in s.config.schedule.events() {
                assert!(
                    e.site.x < s.config.mesh.width && e.site.y < s.config.mesh.height,
                    "{}: scheduled fault site {} off-grid",
                    s.name,
                    e.site
                );
            }
        }
    }

    #[test]
    fn golden_round_trip_parses() {
        let values = vec![("digest", "0xdeadbeef".to_string()), ("cycles", "42".to_string())];
        let text = render_golden("demo", &values);
        let parsed = parse_golden(&text);
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed[0], ("digest".to_string(), "0xdeadbeef".to_string()));
        assert_eq!(parsed[1], ("cycles".to_string(), "42".to_string()));
    }
}
