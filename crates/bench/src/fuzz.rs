//! Differential fuzzing of the simulator (ISSUE 4).
//!
//! Each fuzz case draws a small random configuration — mesh size,
//! router architecture, routing algorithm, traffic pattern, static
//! and/or scheduled faults, optional end-to-end recovery — and runs it
//! under **all four** cycle kernels (Reference, Optimized, Parallel
//! with a fuzzed worker count, Soa) with the runtime invariant auditor
//! enabled. A case passes when
//!
//! 1. the [`noc_sim::Auditor`] reports zero violations under every
//!    kernel (flit conservation, credit books, VC legality, status
//!    coherence),
//! 2. the Reference, Optimized, Parallel and Soa kernels produce
//!    bit-identical [`SimResults::digest`]s, and
//! 3. recovery accounting closes: on a cleanly drained run with
//!    recovery enabled, every generated packet is either delivered or
//!    abandoned.
//!
//! Failures are *shrunk* — the harness greedily simplifies the config
//! (drop the fault schedule, drop static faults, drop recovery, shrink
//! the mesh, shorten the run) while the failure persists — and rendered
//! as a copy-pasteable Rust snippet so a failing case becomes a unit
//! test in seconds.
//!
//! Everything is deterministic: case `i` under base seed `s` is always
//! the same configuration, so a CI failure reproduces locally with
//! `NOC_FUZZ_SEED=<s> NOC_FUZZ_ITERS=<i+1> cargo run --release -p
//! noc-bench --bin fuzz`.

use noc_core::{
    ComponentFault, Coord, LinkMask, MeshConfig, NodeStatus, RouterKind, RouterNode, RoutingKind,
    TopologyConfig,
};
use noc_fault::{FaultAction, FaultCategory, FaultEvent, FaultPlan, FaultSchedule};
use noc_router::AnyRouter;
use noc_sim::{
    retarget_topology, AuditConfig, KernelMode, RecoveryConfig, SimConfig, SimResults, Simulation,
};
use noc_traffic::TrafficKind;

/// Default iteration count for a full fuzz run (ISSUE 4 acceptance:
/// ≥ 200 configs across all three routers).
pub const DEFAULT_ITERS: u64 = 240;

/// Default base seed; override with `NOC_FUZZ_SEED`.
pub const DEFAULT_SEED: u64 = 0x5EED_CAFE;

/// splitmix64 — a dependency-free, statistically solid generator for
/// drawing configuration parameters. (The simulation itself uses its
/// own seeded RNGs; this one only *builds* configs.)
#[derive(Debug, Clone)]
pub struct SplitMix64(u64);

impl SplitMix64 {
    /// A generator seeded with `seed`.
    pub fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    /// The next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// A uniform draw from `0..n` (`n > 0`).
    pub fn below(&mut self, n: u64) -> u64 {
        self.next_u64() % n
    }

    /// A uniform draw from `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// How a fuzz case perturbs the network, cycled deterministically so
/// every run covers all modes regardless of the random draws.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FaultMode {
    /// No faults at all (pure kernel-equivalence check).
    None,
    /// A static [`FaultPlan`] applied before cycle 0.
    Static,
    /// A mid-run [`FaultSchedule`] (MTBF-driven injections + repairs).
    Dynamic,
}

/// The deterministic configuration for fuzz case `case` under
/// `base_seed`.
///
/// Coverage is round-robin on the case index — router `case % 3`,
/// fault mode `(case / 3) % 3`, recovery `(case / 9) % 2`, fault-aware
/// routing `(case / 18) % 2`, topology `case % 4` (mesh, torus,
/// C(13;1,5) circulant, 2×2 chiplet mesh) — so the first 36 cases
/// already cross every router with every fault mode, recovery setting,
/// routing awareness and topology; the remaining knobs (mesh, routing,
/// traffic, load, seeds, fault details, die-to-die delay) are drawn
/// from [`SplitMix64`]. Wraparound draws are retargeted through
/// [`noc_sim::retarget_topology`], which forces the supported
/// router/routing/VC combination and remaps fault sites onto the new
/// node set.
pub fn case_config(case: u64, base_seed: u64) -> SimConfig {
    let mut rng = SplitMix64::new(base_seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    let router = RouterKind::ALL[(case % 3) as usize];
    let fault_mode = match (case / 3) % 3 {
        0 => FaultMode::None,
        1 => FaultMode::Static,
        _ => FaultMode::Dynamic,
    };
    let recovery_on = (case / 9) % 2 == 1;
    let fault_routing_on = (case / 18) % 2 == 1;

    let routing = RoutingKind::ALL[rng.below(3) as usize];
    let traffic = TrafficKind::ALL[rng.below(TrafficKind::ALL.len() as u64) as usize];
    let (w, h) = [(3, 3), (4, 3), (4, 4), (5, 4)][rng.below(4) as usize];

    let mut cfg = SimConfig::paper_scaled(router, routing, traffic);
    cfg.mesh = MeshConfig::new(w, h);
    cfg.injection_rate = 0.05 + rng.unit_f64() * 0.30;
    cfg.warmup_packets = 10 + rng.below(40);
    cfg.measured_packets = 60 + rng.below(240);
    cfg.seed = rng.next_u64();
    cfg.max_cycles = 40_000;
    cfg.stall_window = 2_000;
    cfg.handshake_latency = rng.below(8);
    cfg.fault_routing = fault_routing_on;
    cfg.audit = Some(AuditConfig { interval: 1, max_recorded: 8 });
    // Per-VC buffer depth: half the cases keep the paper's depth, the
    // rest draw 2..=7 so the flit-slab ring sizing (nominal capacity
    // plus the poison slop) is fuzzed across capacities (ISSUE 10).
    if rng.below(2) == 1 {
        cfg.buffer_depth = Some(2 + rng.below(6) as u8);
    }

    let category =
        if rng.below(2) == 0 { FaultCategory::Isolating } else { FaultCategory::Recyclable };
    match fault_mode {
        FaultMode::None => {}
        FaultMode::Static => {
            let count = 1 + rng.below(3) as usize;
            cfg.faults = FaultPlan::random(category, count, cfg.mesh, rng.next_u64());
        }
        FaultMode::Dynamic => {
            let repair = if rng.below(2) == 0 { Some(400 + rng.below(1_600)) } else { None };
            let mtbf = 1_500.0 + rng.unit_f64() * 3_000.0;
            cfg.schedule = FaultSchedule::random_mtbf(
                category,
                cfg.mesh,
                mtbf,
                repair,
                10_000,
                3,
                rng.next_u64(),
            );
        }
    }
    if recovery_on {
        cfg.recovery = Some(RecoveryConfig {
            timeout: 200 + rng.below(400),
            max_retries: 1 + rng.below(3) as u32,
            backoff_cap: 2_000,
        });
    }
    // Topology draw (after faults so retargeting can remap their
    // sites onto the new node set). The traffic patterns clamp
    // destinations to the bounding grid, so every pattern is safe on
    // the circulant's N×1 strip.
    let topology = match case % 4 {
        0 => TopologyConfig::Mesh,
        1 => TopologyConfig::Torus,
        2 => TopologyConfig::Circulant { nodes: 13, s1: 1, s2: 5 },
        _ => TopologyConfig::Chiplet {
            chips_x: 2,
            chips_y: 2,
            chip_width: 2,
            chip_height: 2,
            d2d_delay: 2 + rng.below(3) as u8,
        },
    };
    if topology != TopologyConfig::Mesh {
        retarget_topology(&mut cfg, topology);
    }
    // Worker count for the parallel leg of the differential oracle
    // (drawn last so it perturbs no other knob). Any value must yield
    // the same digest; varying it fuzzes the shard-merge path across
    // shard layouts, including single-shard and more-shards-than-work.
    cfg.threads = Some(1 + rng.below(4) as usize);
    cfg
}

/// Runs `cfg` under all four kernels and applies the fuzz oracles.
///
/// Returns `Err(description)` on the first violated oracle; the
/// description embeds the audit report / digests involved.
pub fn check_config(cfg: &SimConfig) -> Result<(), String> {
    if let Some(problem) = masked_cdg_mismatch(cfg) {
        return Err(problem);
    }
    let mut reference = cfg.clone();
    reference.kernel = KernelMode::Reference;
    let mut optimized = cfg.clone();
    optimized.kernel = KernelMode::Optimized;
    let mut parallel = cfg.clone();
    parallel.kernel = KernelMode::Parallel;
    let mut soa = cfg.clone();
    soa.kernel = KernelMode::Soa;
    let r = Simulation::new(reference).run();
    let o = Simulation::new(optimized).run();
    let p = Simulation::new(parallel).run();
    let s = Simulation::new(soa).run();

    for (kernel, res) in [("reference", &r), ("optimized", &o), ("parallel", &p), ("soa", &s)] {
        if let Some(report) = &res.audit {
            if !report.clean() {
                return Err(format!("{kernel} kernel audit violations:\n{}", report.render()));
            }
        } else {
            return Err(format!("{kernel} kernel produced no audit report"));
        }
        if let Some(problem) = recovery_mismatch(cfg, res) {
            return Err(format!("{kernel} kernel {problem}"));
        }
    }
    for (kernel, res) in [("optimized", &o), ("parallel", &p), ("soa", &s)] {
        if r.digest() != res.digest() {
            return Err(format!(
                "kernel divergence: reference digest {:#018x} != {kernel} digest {:#018x} \
                 (ref: {} delivered / {} dropped in {} cycles; {kernel}: {} delivered / {} \
                 dropped in {} cycles; threads {:?})",
                r.digest(),
                res.digest(),
                r.delivered_packets,
                r.dropped_packets,
                r.cycles,
                res.delivered_packets,
                res.dropped_packets,
                res.cycles,
                cfg.threads,
            ));
        }
    }
    Ok(())
}

/// The recovery-accounting oracle: on a cleanly drained run with
/// recovery enabled, `delivered + abandoned + unroutable == generated`
/// (ISSUE 8: reachability-refused packets resolve as `unroutable`).
fn recovery_mismatch(cfg: &SimConfig, res: &SimResults) -> Option<String> {
    let rec = res.recovery.as_ref()?;
    cfg.recovery?;
    let drained = !res.stalled && res.cycles < cfg.max_cycles;
    if !drained {
        return None;
    }
    let closed = res.delivered_packets + rec.abandoned_packets + rec.unroutable_packets;
    if closed != res.generated_packets {
        return Some(format!(
            "recovery accounting open: delivered {} + abandoned {} + unroutable {} = {} != \
             generated {}",
            res.delivered_packets,
            rec.abandoned_packets,
            rec.unroutable_packets,
            closed,
            res.generated_packets,
        ));
    }
    None
}

/// The CDG-acyclicity oracle for fault-aware configs (ISSUE 8): every
/// link-mask state the run's fault timeline can publish — the static
/// plan's mask plus the mask after each scheduled inject/repair — must
/// leave the masked routing function provably deadlock-free.
fn masked_cdg_mismatch(cfg: &SimConfig) -> Option<String> {
    if !cfg.fault_routing {
        return None;
    }
    let mesh = cfg.mesh;
    let topo = cfg.topology.resolve(mesh).expect("fuzz configs carry a valid topology");
    let rcfg = cfg.router_config();
    let mut active: Vec<Vec<ComponentFault>> = vec![Vec::new(); mesh.nodes()];
    for (site, fault) in &cfg.faults.faults {
        active[site.index(mesh.width)].push(*fault);
    }
    let check_state = |active: &[Vec<ComponentFault>], when: &str| -> Option<String> {
        let statuses: Vec<NodeStatus> = (0..mesh.nodes())
            .map(|i| {
                let mut r = AnyRouter::build_on(Coord::from_index(i, mesh.width), rcfg, &topo);
                for f in &active[i] {
                    r.inject_fault(*f);
                }
                r.status()
            })
            .collect();
        let mask = LinkMask::from_statuses(&topo, &statuses);
        let analysis = noc_deadlock::verify_masked(cfg.router, cfg.routing, mask);
        (!analysis.deadlock_free()).then(|| {
            format!("masked routing function has a CDG cycle {when}: {:?}", analysis.cycle)
        })
    };
    if let Some(problem) = check_state(&active, "under the static fault plan") {
        return Some(problem);
    }
    for (n, e) in cfg.schedule.events().iter().enumerate() {
        let site = e.site.index(mesh.width);
        match e.action {
            FaultAction::Inject(f) => active[site].push(f),
            FaultAction::Repair(f) => {
                if let Some(pos) = active[site].iter().position(|x| *x == f) {
                    active[site].remove(pos);
                }
            }
        }
        if let Some(problem) = check_state(&active, &format!("after schedule event {n}")) {
            return Some(problem);
        }
    }
    None
}

/// A failing fuzz case, already shrunk.
#[derive(Debug, Clone)]
pub struct FuzzFailure {
    /// Index of the failing case under the run's base seed.
    pub case: u64,
    /// Base seed of the run.
    pub base_seed: u64,
    /// The shrunk configuration that still fails.
    pub config: SimConfig,
    /// The oracle's description of the (post-shrink) failure.
    pub reason: String,
}

impl FuzzFailure {
    /// The copy-pasteable Rust reproduction snippet for this failure.
    pub fn render_repro(&self) -> String {
        render_repro(self.case, self.base_seed, &self.config, &self.reason)
    }
}

/// Outcome of a fuzz run: how many cases ran, and the first shrunk
/// failure (if any).
#[derive(Debug, Clone)]
pub struct FuzzOutcome {
    /// Cases executed (stops at the first failure).
    pub cases_run: u64,
    /// The first failure, shrunk; `None` when every case passed.
    pub failure: Option<FuzzFailure>,
}

impl FuzzOutcome {
    /// `true` when every case passed.
    pub fn clean(&self) -> bool {
        self.failure.is_none()
    }
}

/// Runs `iters` fuzz cases under `base_seed`, stopping (and shrinking)
/// at the first failure. `progress` is called after each passing case
/// with the case index.
pub fn run_fuzz(iters: u64, base_seed: u64, mut progress: impl FnMut(u64)) -> FuzzOutcome {
    for case in 0..iters {
        let cfg = case_config(case, base_seed);
        if let Err(reason) = check_config(&cfg) {
            let (config, reason) = shrink(&cfg, reason);
            return FuzzOutcome {
                cases_run: case + 1,
                failure: Some(FuzzFailure { case, base_seed, config, reason }),
            };
        }
        progress(case);
    }
    FuzzOutcome { cases_run: iters, failure: None }
}

/// Drops fault sites (static and scheduled) that fell off the grid
/// after a shrink transform changed the mesh shape.
fn drop_offgrid_faults(d: &mut SimConfig) {
    let (w, h) = (d.mesh.width, d.mesh.height);
    d.faults.faults.retain(|(site, _)| site.x < w && site.y < h);
    let kept: Vec<FaultEvent> =
        d.schedule.events().iter().copied().filter(|e| e.site.x < w && e.site.y < h).collect();
    d.schedule = FaultSchedule::none();
    for e in kept {
        d.schedule.push(e);
    }
}

/// Greedily shrinks a failing configuration.
///
/// Transforms are tried in order — drop the fault schedule, drop static
/// faults, drop recovery, disable fault-aware routing, drop a
/// non-mesh topology back to the plain mesh, shrink the mesh
/// to 3×3, shorten the run, simplify traffic/routing, zero the
/// handshake latency, drop the buffer-depth override — and each is
/// kept only when the shrunk config *still fails*. The loop restarts
/// after every accepted shrink and stops at a fixpoint or after a
/// bounded number of re-runs.
pub fn shrink(cfg: &SimConfig, reason: String) -> (SimConfig, String) {
    let transforms: &[fn(&SimConfig) -> Option<SimConfig>] = &[
        |c| {
            (!c.schedule.is_empty()).then(|| {
                let mut d = c.clone();
                d.schedule = FaultSchedule::none();
                d
            })
        },
        |c| {
            (!c.faults.is_empty()).then(|| {
                let mut d = c.clone();
                d.faults = FaultPlan::none();
                d
            })
        },
        |c| {
            c.recovery.is_some().then(|| {
                let mut d = c.clone();
                d.recovery = None;
                d
            })
        },
        |c| {
            c.fault_routing.then(|| {
                let mut d = c.clone();
                d.fault_routing = false;
                d
            })
        },
        |c| {
            (c.topology != TopologyConfig::Mesh).then(|| {
                let mut d = c.clone();
                d.topology = TopologyConfig::Mesh;
                if d.mesh.validate().is_err() {
                    // A circulant's N×1 strip is not a legal mesh grid.
                    d.mesh = MeshConfig::new(3, 3);
                }
                drop_offgrid_faults(&mut d);
                d
            })
        },
        |c| {
            // Only the grid topologies survive an arbitrary 3×3 grid; a
            // circulant or chiplet's grid is fixed by its own shape (the
            // topology-drop transform above handles those first).
            (c.mesh.nodes() > 9
                && matches!(c.topology, TopologyConfig::Mesh | TopologyConfig::Torus))
            .then(|| {
                let mut d = c.clone();
                d.mesh = MeshConfig::new(3, 3);
                drop_offgrid_faults(&mut d);
                d
            })
        },
        |c| {
            (c.measured_packets > 40).then(|| {
                let mut d = c.clone();
                d.measured_packets = (d.measured_packets / 2).max(40);
                d.warmup_packets = 0;
                d
            })
        },
        |c| {
            (c.traffic != TrafficKind::Uniform).then(|| {
                let mut d = c.clone();
                d.traffic = TrafficKind::Uniform;
                d
            })
        },
        |c| {
            (c.routing != RoutingKind::Xy).then(|| {
                let mut d = c.clone();
                d.routing = RoutingKind::Xy;
                d
            })
        },
        |c| {
            (c.handshake_latency != 0).then(|| {
                let mut d = c.clone();
                d.handshake_latency = 0;
                d
            })
        },
        |c| {
            c.buffer_depth.is_some().then(|| {
                let mut d = c.clone();
                d.buffer_depth = None;
                d
            })
        },
    ];

    let mut best = cfg.clone();
    let mut best_reason = reason;
    let mut budget: u32 = 32;
    'outer: loop {
        for t in transforms {
            if budget == 0 {
                break 'outer;
            }
            let Some(candidate) = t(&best) else { continue };
            budget -= 1;
            if let Err(new_reason) = check_config(&candidate) {
                best = candidate;
                best_reason = new_reason;
                continue 'outer;
            }
        }
        break;
    }
    (best, best_reason)
}

/// Renders a failing config as a copy-pasteable Rust snippet.
pub fn render_repro(case: u64, base_seed: u64, cfg: &SimConfig, reason: &str) -> String {
    let mut s = String::new();
    s.push_str(&format!(
        "// Fuzz failure: case {case} under base seed {base_seed:#x}.\n\
         // Re-run with: NOC_FUZZ_SEED={base_seed} NOC_FUZZ_ITERS={} \\\n\
         //     cargo run --release -p noc-bench --bin fuzz\n//\n",
        case + 1
    ));
    for line in reason.lines() {
        s.push_str(&format!("// {line}\n"));
    }
    s.push_str(&format!(
        "let mut cfg = SimConfig::paper_scaled(\n    RouterKind::{:?},\n    RoutingKind::{:?},\n    TrafficKind::{:?},\n);\n",
        cfg.router, cfg.routing, cfg.traffic
    ));
    s.push_str(&format!("cfg.mesh = MeshConfig::new({}, {});\n", cfg.mesh.width, cfg.mesh.height));
    if cfg.topology != TopologyConfig::Mesh {
        // retarget_topology replays the same forcing the fuzzer
        // applied (grid snap, router/routing/VC support, site remap —
        // a no-op here since the rendered knobs are post-retarget).
        s.push_str(&format!(
            "noc_sim::retarget_topology(&mut cfg, TopologyConfig::parse_spec({:?}).unwrap());\n",
            cfg.topology.to_string()
        ));
    }
    s.push_str(&format!("cfg.injection_rate = {:?};\n", cfg.injection_rate));
    s.push_str(&format!("cfg.warmup_packets = {};\n", cfg.warmup_packets));
    s.push_str(&format!("cfg.measured_packets = {};\n", cfg.measured_packets));
    s.push_str(&format!("cfg.seed = {:#018x};\n", cfg.seed));
    s.push_str(&format!("cfg.max_cycles = {};\n", cfg.max_cycles));
    s.push_str(&format!("cfg.stall_window = {};\n", cfg.stall_window));
    s.push_str(&format!("cfg.handshake_latency = {};\n", cfg.handshake_latency));
    if let Some(depth) = cfg.buffer_depth {
        // The buffer depth fixes the slab's ring capacities, so a repro
        // without it would rebuild a differently-shaped slab.
        s.push_str(&format!("cfg.buffer_depth = Some({depth});\n"));
    }
    if cfg.fault_routing {
        s.push_str("cfg.fault_routing = true;\n");
    }
    s.push_str("cfg.audit = Some(AuditConfig { interval: 1, max_recorded: 8 });\n");
    for (site, fault) in &cfg.faults.faults {
        s.push_str(&format!(
            "cfg.faults.faults.push((Coord::new({}, {}), {}));\n",
            site.x,
            site.y,
            fault_expr(fault)
        ));
    }
    for e in cfg.schedule.events() {
        let action = match e.action {
            FaultAction::Inject(f) => format!("FaultAction::Inject({})", fault_expr(&f)),
            FaultAction::Repair(f) => format!("FaultAction::Repair({})", fault_expr(&f)),
        };
        s.push_str(&format!(
            "cfg.schedule.push(FaultEvent {{ cycle: {}, site: Coord::new({}, {}), action: {} }});\n",
            e.cycle, e.site.x, e.site.y, action
        ));
    }
    if let Some(rec) = cfg.recovery {
        s.push_str(&format!(
            "cfg.recovery = Some(RecoveryConfig {{ timeout: {}, max_retries: {}, backoff_cap: {} }});\n",
            rec.timeout, rec.max_retries, rec.backoff_cap
        ));
    }
    if let Some(t) = cfg.threads {
        s.push_str(&format!("cfg.threads = Some({t});\n"));
    }
    s.push_str(
        "// Run under all four kernels (Reference, Optimized, Parallel, Soa);\n\
         // compare digests and inspect results.audit.\n",
    );
    s
}

/// Renders a [`noc_core::ComponentFault`] as a Rust expression.
fn fault_expr(f: &noc_core::ComponentFault) -> String {
    format!(
        "ComponentFault {{ component: FaultComponent::{:?}, axis: Axis::{:?}, vc: {} }}",
        f.component, f.axis, f.vc
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use noc_core::TopologyOps;

    #[test]
    fn case_generation_is_deterministic() {
        for case in [0, 7, 23] {
            assert_eq!(case_config(case, DEFAULT_SEED), case_config(case, DEFAULT_SEED));
        }
        assert_ne!(case_config(0, DEFAULT_SEED).seed, case_config(1, DEFAULT_SEED).seed);
    }

    #[test]
    fn round_robin_covers_every_router_and_fault_mode() {
        let mut saw_faults = false;
        let mut saw_schedule = false;
        let mut saw_recovery = false;
        let mut saw_fault_routing = [false; 2];
        let mut routers = std::collections::HashSet::new();
        let mut topologies = std::collections::HashSet::new();
        for case in 0..36 {
            let cfg = case_config(case, DEFAULT_SEED);
            routers.insert(cfg.router);
            // By variant: chiplet draws vary the d2d delay, so the
            // spec string alone would over-count.
            topologies.insert(std::mem::discriminant(&cfg.topology));
            saw_faults |= !cfg.faults.is_empty();
            saw_schedule |= !cfg.schedule.is_empty();
            saw_recovery |= cfg.recovery.is_some();
            saw_fault_routing[cfg.fault_routing as usize] = true;
            let threads = cfg.threads.expect("fuzz cases pin a worker count");
            assert!((1..=4).contains(&threads));
            // Every drawn config must actually build: the resolved
            // topology accepts the (possibly retargeted) router,
            // routing function and VC count.
            let topo = cfg.topology.resolve(cfg.mesh).expect("drawn topology resolves");
            topo.check_support(cfg.router, cfg.routing, cfg.router_config().vcs_per_port as usize)
                .expect("retargeted config is supported");
        }
        assert_eq!(routers.len(), 3, "mesh/chiplet cases still cover all routers");
        assert_eq!(topologies.len(), 4, "all four topologies are drawn");
        assert!(saw_faults && saw_schedule && saw_recovery);
        assert!(saw_fault_routing == [true, true], "both routing-awareness legs are drawn");
    }

    #[test]
    fn repro_snippet_mentions_every_knob() {
        let cfg = case_config(14, DEFAULT_SEED);
        let text = render_repro(14, DEFAULT_SEED, &cfg, "synthetic reason");
        assert!(text.contains("SimConfig::paper_scaled"));
        assert!(text.contains("cfg.seed ="));
        assert!(text.contains("cfg.threads = Some("));
        assert!(text.contains("synthetic reason"));
        if !cfg.schedule.is_empty() {
            assert!(text.contains("cfg.schedule.push"));
        }
        // Fault-aware cases render the knob so the repro replays the
        // masked routing function too.
        let aware = case_config(20, DEFAULT_SEED);
        assert!(aware.fault_routing, "cases 18..36 draw the fault-aware leg");
        let text = render_repro(20, DEFAULT_SEED, &aware, "synthetic reason");
        assert!(text.contains("cfg.fault_routing = true;"));
        // Non-mesh cases render the topology retarget line (case 14 is
        // a circulant draw: 14 % 4 == 2).
        let wrap = case_config(14, DEFAULT_SEED);
        assert_eq!(wrap.topology, TopologyConfig::Circulant { nodes: 13, s1: 1, s2: 5 });
        let text = render_repro(14, DEFAULT_SEED, &wrap, "synthetic reason");
        assert!(text.contains("retarget_topology"));
        assert!(text.contains("circulant:13,1,5"), "spec string round-trips:\n{text}");
        // Mesh cases stay clean: no topology line at all.
        let mesh_case = case_config(20, DEFAULT_SEED);
        assert_eq!(mesh_case.topology, TopologyConfig::Mesh);
        let text = render_repro(20, DEFAULT_SEED, &mesh_case, "synthetic reason");
        assert!(!text.contains("retarget_topology"));
        // A buffer-depth override must survive into the snippet: it
        // fixes the flit slab's ring capacities (ISSUE 10).
        let mut deep = case_config(20, DEFAULT_SEED);
        deep.buffer_depth = Some(6);
        let text = render_repro(20, DEFAULT_SEED, &deep, "synthetic reason");
        assert!(text.contains("cfg.buffer_depth = Some(6);"));
        let mut shallow = deep.clone();
        shallow.buffer_depth = None;
        let text = render_repro(20, DEFAULT_SEED, &shallow, "synthetic reason");
        assert!(!text.contains("cfg.buffer_depth"));
    }

    #[test]
    fn masked_cdg_oracle_accepts_fault_aware_cases() {
        // A fault-aware case with a dynamic schedule: the oracle must
        // walk every mask state without reporting a cycle (the masked
        // west-first argument is machine-checked per state).
        for case in [23, 25, 29, 33] {
            let cfg = case_config(case, DEFAULT_SEED);
            assert!(cfg.fault_routing);
            assert_eq!(masked_cdg_mismatch(&cfg), None, "case {case}");
        }
        let oblivious = case_config(5, DEFAULT_SEED);
        assert!(!oblivious.fault_routing);
        assert_eq!(masked_cdg_mismatch(&oblivious), None, "oracle is a no-op when off");
    }
}
