//! Golden corpus integration tests: the committed corpus stays in
//! sync with the scenario list, runs are deterministic, and the
//! pending-bootstrap / match / mismatch flows all work against a
//! scratch directory (the committed `goldens/` files are never
//! touched here — CI's `golden-corpus` job runs the real gate).

use noc_bench::golden::{
    check_one, check_scenarios, goldens_dir, observed_values, render_golden, scenarios,
    ScenarioOutcome,
};

/// A scratch directory unique to this test process.
fn scratch_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("noc-goldens-{}-{tag}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create scratch dir");
    dir
}

#[test]
fn every_scenario_has_a_committed_golden_file() {
    let dir = goldens_dir();
    for s in scenarios() {
        let path = dir.join(format!("{}.txt", s.name));
        assert!(path.is_file(), "missing committed golden file {}", path.display());
    }
}

#[test]
fn pending_golden_is_recorded_then_matches_then_diffs() {
    let dir = scratch_dir("flow");
    let scenario = &scenarios()[0];
    let res = noc_sim::run(scenario.config.clone());

    // Bootstrap: a pending file is recorded, not failed.
    std::fs::write(dir.join(format!("{}.txt", scenario.name)), "# scratch\ndigest = pending\n")
        .unwrap();
    let run = check_one(&dir, scenario.name, &res, false);
    assert_eq!(run.outcome, ScenarioOutcome::Recorded, "{:?}", run.outcome);

    // Second pass over the recorded file matches exactly.
    let run = check_one(&dir, scenario.name, &res, false);
    assert_eq!(run.outcome, ScenarioOutcome::Match, "{:?}", run.outcome);

    // A doctored digest produces a per-key human-readable diff.
    let mut values = observed_values(&res);
    for v in &mut values {
        if v.0 == "digest" {
            v.1 = "0x0000000000000bad".to_string();
        }
    }
    std::fs::write(
        dir.join(format!("{}.txt", scenario.name)),
        render_golden(scenario.name, &values),
    )
    .unwrap();
    let run = check_one(&dir, scenario.name, &res, false);
    match run.outcome {
        ScenarioOutcome::Mismatch(diffs) => {
            assert!(
                diffs.iter().any(|d| d.starts_with("digest: expected 0x0000000000000bad")),
                "{diffs:?}"
            );
        }
        other => panic!("expected a mismatch, got {other:?}"),
    }

    // A missing file is an explicit failure, not a silent pass.
    let run = check_one(&dir, "no-such-scenario", &res, false);
    assert_eq!(run.outcome, ScenarioOutcome::Missing);

    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn scenario_runs_are_deterministic() {
    let scenario = scenarios()
        .into_iter()
        .find(|s| s.name == "roco-uniform-xy")
        .expect("baseline scenario exists");
    let a = noc_sim::run(scenario.config.clone());
    let b = noc_sim::run(scenario.config.clone());
    assert_eq!(a.digest(), b.digest());
    assert!(a.audit.as_ref().is_some_and(|r| r.clean()), "golden run must audit clean");
}

#[test]
fn check_scenarios_summarises_against_scratch_goldens() {
    let dir = scratch_dir("summary");
    let subset: Vec<_> = scenarios().into_iter().take(2).collect();
    for s in &subset {
        std::fs::write(dir.join(format!("{}.txt", s.name)), "digest = pending\n").unwrap();
    }
    let summary = check_scenarios(&dir, &subset, false);
    assert!(!summary.failed(), "{}", summary.render());
    assert!(summary.runs.iter().all(|r| r.outcome == ScenarioOutcome::Recorded));
    let rendered = summary.render();
    assert!(rendered.contains("recorded"), "{rendered}");

    // And the recorded files now gate: an unchanged re-run matches.
    let summary = check_scenarios(&dir, &subset, false);
    assert!(!summary.failed(), "{}", summary.render());
    assert!(summary.runs.iter().all(|r| r.outcome == ScenarioOutcome::Match));
    let _ = std::fs::remove_dir_all(&dir);
}
