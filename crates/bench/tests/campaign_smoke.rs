//! The CI `fault-campaign` smoke job: a tiny 4×4 graceful-degradation
//! campaign over all three routers must finish quickly, emit a
//! schema-complete JSON report, exercise at least a couple of fault
//! events, and be byte-identical across same-seed reruns.

use noc_bench::campaign::{run_campaign, CampaignConfig};
use noc_sim::json::Json;

#[test]
fn smoke_campaign_covers_the_grid_and_is_deterministic() {
    let cfg = CampaignConfig::smoke();
    let report = run_campaign(&cfg);
    assert_eq!(report.cells.len(), 3, "3 routers x 1 mtbf x 1 seed");

    let json = report.to_json();
    let v = Json::parse(&json).expect("report is valid JSON");
    assert_eq!(v.get("mesh").unwrap().as_arr().unwrap().len(), 2);
    assert_eq!(v.get("recovery"), Some(&Json::Bool(true)));
    let cells = v.get("cells").unwrap().as_arr().unwrap();
    assert_eq!(cells.len(), 3);
    let mut routers_seen = Vec::new();
    for cell in cells {
        routers_seen.push(cell.get("router").unwrap().as_str().unwrap().to_string());
        for key in [
            "mtbf",
            "seed",
            "fault_events",
            "cycles",
            "generated",
            "delivered",
            "dropped",
            "retransmissions",
            "recovered",
            "abandoned",
            "completion",
            "pef",
        ] {
            assert!(cell.get(key).is_some(), "cell is missing '{key}'");
        }
        let windows = cell.get("availability").unwrap().as_arr().unwrap().len();
        assert!(windows > 2, "several sample windows per run, got {windows}");
        assert_eq!(cell.get("retention").unwrap().as_arr().unwrap().len(), windows);
        assert_eq!(cell.get("pef_over_time").unwrap().as_arr().unwrap().len(), windows);
        assert!(cell.get("generated").unwrap().as_u64().unwrap() > 0);
    }
    routers_seen.sort();
    assert_eq!(routers_seen, ["generic", "path-sensitive", "roco"]);

    // The harsh mtbf column must actually land faults mid-run (inject +
    // repair events both count).
    let total_events: u64 =
        cells.iter().map(|c| c.get("fault_events").unwrap().as_u64().unwrap()).sum();
    assert!(total_events >= 2, "expected at least 2 fault events, got {total_events}");

    // Same seed, same grid → byte-identical report.
    let rerun = run_campaign(&cfg);
    assert_eq!(rerun.to_json(), json, "campaign must be deterministic per seed");
}
