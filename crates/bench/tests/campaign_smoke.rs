//! The CI `fault-campaign` smoke job: a tiny 4×4 graceful-degradation
//! campaign over all three routers must finish quickly, emit a
//! schema-complete JSON report, exercise at least a couple of fault
//! events, and be byte-identical across same-seed reruns.

use noc_bench::campaign::{run_campaign, CampaignConfig};
use noc_sim::json::Json;

#[test]
fn smoke_campaign_covers_the_grid_and_is_deterministic() {
    let cfg = CampaignConfig::smoke();
    let report = run_campaign(&cfg);
    assert_eq!(report.cells.len(), 3, "3 routers x 1 mtbf x 1 seed");

    let json = report.to_json();
    let v = Json::parse(&json).expect("report is valid JSON");
    assert_eq!(v.get("mesh").unwrap().as_arr().unwrap().len(), 2);
    assert_eq!(v.get("recovery"), Some(&Json::Bool(true)));
    let cells = v.get("cells").unwrap().as_arr().unwrap();
    assert_eq!(cells.len(), 3);
    let mut routers_seen = Vec::new();
    for cell in cells {
        routers_seen.push(cell.get("router").unwrap().as_str().unwrap().to_string());
        for key in [
            "mtbf",
            "seed",
            "fault_events",
            "cycles",
            "generated",
            "delivered",
            "dropped",
            "retransmissions",
            "recovered",
            "abandoned",
            "completion",
            "pef",
        ] {
            assert!(cell.get(key).is_some(), "cell is missing '{key}'");
        }
        let windows = cell.get("availability").unwrap().as_arr().unwrap().len();
        assert!(windows > 2, "several sample windows per run, got {windows}");
        assert_eq!(cell.get("retention").unwrap().as_arr().unwrap().len(), windows);
        assert_eq!(cell.get("pef_over_time").unwrap().as_arr().unwrap().len(), windows);
        assert!(cell.get("generated").unwrap().as_u64().unwrap() > 0);
    }
    routers_seen.sort();
    assert_eq!(routers_seen, ["generic", "path-sensitive", "roco"]);

    // The harsh mtbf column must actually land faults mid-run (inject +
    // repair events both count).
    let total_events: u64 =
        cells.iter().map(|c| c.get("fault_events").unwrap().as_u64().unwrap()).sum();
    assert!(total_events >= 2, "expected at least 2 fault events, got {total_events}");

    // Same seed, same grid → byte-identical report.
    let rerun = run_campaign(&cfg);
    assert_eq!(rerun.to_json(), json, "campaign must be deterministic per seed");
}

#[test]
fn fault_aware_campaign_retains_more_delivered_coverage() {
    // ISSUE 8 acceptance: under the same MTBF fault schedules, the
    // fault-aware leg must retain strictly more delivered coverage
    // than the fault-oblivious baseline, refuse unreachable traffic
    // as `unroutable`, and waste fewer retransmissions doing it.
    let cfg = CampaignConfig::fault_aware_smoke();
    let report = run_campaign(&cfg);
    assert_eq!(report.cells.len(), 4, "1 router x 1 mtbf x 2 seeds x 2 legs");

    let mut aware_delivered = 0u64;
    let mut oblivious_delivered = 0u64;
    for pair in report.cells.chunks(2) {
        let [oblivious, aware] = pair else { panic!("cells must pair up") };
        assert!(!oblivious.fault_aware && aware.fault_aware, "oblivious leg precedes aware leg");
        assert_eq!(oblivious.seed, aware.seed, "paired legs share the seed");
        assert_eq!(oblivious.mtbf, aware.mtbf, "paired legs share the mtbf");
        assert_eq!(oblivious.unroutable, 0, "oblivious runs never refuse packets");
        assert!(
            aware.retransmissions <= oblivious.retransmissions,
            "short-circuiting must not add retransmissions: aware {} vs oblivious {}",
            aware.retransmissions,
            oblivious.retransmissions
        );
        aware_delivered += aware.delivered;
        oblivious_delivered += oblivious.delivered;
    }
    assert!(
        aware_delivered > oblivious_delivered,
        "fault-aware legs must retain more delivered coverage: aware {aware_delivered} vs \
         oblivious {oblivious_delivered}"
    );
    assert!(
        report.cells.iter().any(|c| c.fault_aware && c.unroutable > 0),
        "at least one aware cell must classify unroutable packets"
    );

    // The comparison must survive the JSON surface for downstream
    // plotting: paired cells are distinguished by `fault_aware` and
    // carry `coverage_retention` + `unroutable`.
    let v = Json::parse(&report.to_json()).expect("report is valid JSON");
    let cells = v.get("cells").unwrap().as_arr().unwrap();
    assert_eq!(cells.len(), 4);
    assert_eq!(cells[0].get("fault_aware"), Some(&Json::Bool(false)));
    assert_eq!(cells[1].get("fault_aware"), Some(&Json::Bool(true)));
    assert!(cells[1].get("coverage_retention").is_some());
    assert!(cells[1].get("unroutable").is_some());
}
