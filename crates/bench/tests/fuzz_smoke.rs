//! Smoke test for the differential fuzz harness: a handful of cases
//! spanning all three routers must pass the audit + kernel-equivalence
//! oracles. The full run lives in CI (`NOC_FUZZ_ITERS=240`).

use noc_bench::fuzz::{run_fuzz, DEFAULT_SEED};

#[test]
fn first_fuzz_cases_are_clean() {
    // Cases 0..6 cover every router under the none/static fault modes.
    let outcome = run_fuzz(6, DEFAULT_SEED, |_| {});
    if let Some(failure) = &outcome.failure {
        panic!("fuzz case {} failed:\n{}", failure.case, failure.render_repro());
    }
    assert_eq!(outcome.cases_run, 6);
}
