//! Smoke test for the differential fuzz harness: a handful of cases
//! spanning all three routers must pass the audit + kernel-equivalence
//! oracles. The full run lives in CI (`NOC_FUZZ_ITERS=240`).

use noc_bench::fuzz::{case_config, check_config, run_fuzz, DEFAULT_SEED};

#[test]
fn first_fuzz_cases_are_clean() {
    // Cases 0..6 cover every router under the none/static fault modes.
    let outcome = run_fuzz(6, DEFAULT_SEED, |_| {});
    if let Some(failure) = &outcome.failure {
        panic!("fuzz case {} failed:\n{}", failure.case, failure.render_repro());
    }
    assert_eq!(outcome.cases_run, 6);
}

#[test]
fn fault_aware_fuzz_cases_are_clean() {
    // Cases 18.. draw `fault_routing: true` (ISSUE 8): the CDG-acyclic
    // oracle walks every mask state of the fault timeline, and the four
    // kernels must still agree bit-for-bit on the masked routing
    // function.
    for case in 18..22 {
        let cfg = case_config(case, DEFAULT_SEED);
        assert!(cfg.fault_routing, "cases 18..36 run the fault-aware leg");
        if let Err(reason) = check_config(&cfg) {
            panic!("fault-aware fuzz case {case} failed:\n{reason}");
        }
    }
}
