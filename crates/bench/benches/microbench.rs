//! Microbenchmarks for the router building blocks: arbiters, the
//! Mirror allocator, separable allocation and route computation.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use noc_arbiter::{
    MatrixArbiter, MirrorAllocator, RoundRobinArbiter, SeparableAllocator, SwitchRequest,
};
use noc_core::{AxisOrder, Coord, MeshConfig, RoutingKind};
use noc_routing::RouteComputer;
use rand::{rngs::SmallRng, Rng, SeedableRng};

fn bench_arbiters(c: &mut Criterion) {
    let mut group = c.benchmark_group("arbiters");
    let mut rr = RoundRobinArbiter::new(15);
    let mut matrix = MatrixArbiter::new(15);
    let mut rng = SmallRng::seed_from_u64(1);
    let patterns: Vec<Vec<bool>> =
        (0..64).map(|_| (0..15).map(|_| rng.gen_bool(0.4)).collect()).collect();
    let mut i = 0;
    group.bench_function("round_robin_15", |b| {
        b.iter(|| {
            i = (i + 1) % patterns.len();
            black_box(rr.arbitrate(&patterns[i]))
        })
    });
    group.bench_function("matrix_15", |b| {
        b.iter(|| {
            i = (i + 1) % patterns.len();
            black_box(matrix.arbitrate(&patterns[i]))
        })
    });
    let mut mirror = MirrorAllocator::new();
    group.bench_function("mirror_allocate", |b| {
        let mut bits = 0u8;
        b.iter(|| {
            bits = bits.wrapping_add(7);
            let req = [[bits & 1 != 0, bits & 2 != 0], [bits & 4 != 0, bits & 8 != 0]];
            black_box(mirror.allocate(req))
        })
    });
    let mut sep = SeparableAllocator::new(5, 5, 3);
    let requests: Vec<SwitchRequest> =
        (0..8).map(|k| SwitchRequest { input: k % 5, output: (k * 3) % 5, vc: k % 3 }).collect();
    group.bench_function("separable_5x5", |b| b.iter(|| black_box(sep.allocate(&requests))));
    group.finish();
}

fn bench_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing");
    let mesh = MeshConfig::new(8, 8);
    let mut rng = SmallRng::seed_from_u64(2);
    for routing in [RoutingKind::Xy, RoutingKind::Adaptive, RoutingKind::AdaptiveOddEven] {
        let rc = RouteComputer::new(routing, mesh);
        group.bench_function(format!("candidates_{routing}"), |b| {
            b.iter(|| {
                let src = Coord::new(rng.gen_range(0..8), rng.gen_range(0..8));
                let dst = Coord::new(rng.gen_range(0..8), rng.gen_range(0..8));
                black_box(rc.candidates(src, src, dst, AxisOrder::Xy))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_arbiters, bench_routing);
criterion_main!(benches);
