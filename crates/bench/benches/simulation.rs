//! Whole-network simulation benchmarks: cycles/second of the
//! cycle-accurate simulator for each router architecture, plus one
//! scaled-down representative of each figure family (latency, fault,
//! energy) so regressions in any experiment path are caught.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use noc_core::{RouterKind, RoutingKind};
use noc_fault::{FaultCategory, FaultPlan};
use noc_sim::{run, SimConfig, Simulation};
use noc_traffic::TrafficKind;

fn small(router: RouterKind, routing: RoutingKind, traffic: TrafficKind) -> SimConfig {
    let mut cfg = SimConfig::paper_scaled(router, routing, traffic);
    cfg.warmup_packets = 100;
    cfg.measured_packets = 1_500;
    cfg.injection_rate = 0.25;
    cfg
}

fn bench_router_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("router_step");
    group.sample_size(20);
    for router in RouterKind::ALL {
        group.bench_with_input(BenchmarkId::from_parameter(router), &router, |b, &router| {
            b.iter_batched(
                || {
                    let mut sim =
                        Simulation::new(small(router, RoutingKind::Xy, TrafficKind::Uniform));
                    // Warm the network up so steps do real work.
                    for _ in 0..200 {
                        sim.step();
                    }
                    sim
                },
                |mut sim| {
                    for _ in 0..100 {
                        sim.step();
                    }
                    black_box(sim.cycle())
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

fn bench_figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("figures");
    group.sample_size(10);
    // Fig 8-family: fault-free latency run.
    group.bench_function("fig08_point_roco_xy_uniform", |b| {
        b.iter(|| black_box(run(small(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform))))
    });
    // Fig 9-family: self-similar traffic.
    group.bench_function("fig09_point_roco_xy_selfsimilar", |b| {
        b.iter(|| {
            black_box(run(small(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::SelfSimilar)))
        })
    });
    // Fig 10-family: transpose under adaptive routing.
    group.bench_function("fig10_point_roco_adaptive_transpose", |b| {
        b.iter(|| {
            black_box(run(small(RouterKind::RoCo, RoutingKind::Adaptive, TrafficKind::Transpose)))
        })
    });
    // Fig 11/12/14-family: faulty run.
    group.bench_function("fig11_point_roco_xy_2faults", |b| {
        b.iter(|| {
            let mut cfg = small(RouterKind::RoCo, RoutingKind::Xy, TrafficKind::Uniform);
            cfg.faults = FaultPlan::random(FaultCategory::Isolating, 2, cfg.mesh, 7);
            cfg.stall_window = 2_000;
            black_box(run(cfg))
        })
    });
    // Fig 13-family: energy accounting path (results() aggregation).
    group.bench_function("fig13_point_generic_energy", |b| {
        b.iter(|| {
            let r = run(small(RouterKind::Generic, RoutingKind::Xy, TrafficKind::Uniform));
            black_box(r.energy_per_packet)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_router_step, bench_figures);
criterion_main!(benches);
