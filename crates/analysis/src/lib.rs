//! # noc-analysis
//!
//! Analytic models from the paper: the `F(N)` non-blocking matching
//! recurrence and Table-2 probabilities (§3.2), and the Fig-2 VA / Fig-4
//! SA arbiter-complexity comparison.
//!
//! # Examples
//!
//! ```
//! use noc_analysis::{generic_non_blocking_probability, roco_non_blocking_probability};
//!
//! let generic = generic_non_blocking_probability(5);
//! let roco = roco_non_blocking_probability();
//! // "The RoCo router is almost six times more likely to achieve
//! // maximal matching than a generic router (25% to 4.3%)."
//! assert!(roco / generic > 5.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod complexity;
mod matching;

pub use complexity::{
    generic_sa, generic_va, roco_sa, roco_va, ArbiterStage, SaComplexity, VaComplexity,
};
pub use matching::{
    generic_non_blocking_probability, non_blocking_matchings, non_blocking_matchings_bruteforce,
    path_sensitive_non_blocking_probability, roco_non_blocking_probability,
};
