//! Non-blocking maximal-matching probabilities (Eq. 1 and Table 2).
//!
//! The paper models each crossbar input as requesting one of the
//! `N − 1` other output ports uniformly at random and counts the
//! request patterns in which **every** output port receives exactly one
//! request (non-blocking maximal matching):
//!
//! ```text
//! F(N) = N! − Σ_{j=1..N} C(N, j) · F(N − j),   F(1) = 0, F(2) = 1
//! ```
//!
//! giving non-blocking probabilities of `F(5)/4^5 ≈ 0.043` for the
//! generic 5-port router, `2/2⁴ = 0.125` for the Path-Sensitive router
//! (2 of the 2⁴ chained request patterns are non-blocking) and
//! `(1 − 0.5)² = 0.25` for RoCo (2 of the 2² patterns per module, two
//! independent 2×2 modules).

/// Binomial coefficient.
fn binomial(n: u64, k: u64) -> u64 {
    if k > n {
        return 0;
    }
    let k = k.min(n - k);
    let mut result = 1u64;
    for i in 0..k {
        result = result * (n - i) / (i + 1);
    }
    result
}

/// Factorial.
fn factorial(n: u64) -> u64 {
    (1..=n).product::<u64>().max(1)
}

/// The paper's `F(N)` recurrence (Eq. 1): the number of ways `N` inputs
/// can each pick a distinct output other than their own, covering all
/// `N` outputs — i.e. the number of derangement-like full matchings.
///
/// # Panics
///
/// Panics if `n == 0` or `n > 20` (u64 overflow).
pub fn non_blocking_matchings(n: u64) -> u64 {
    assert!((1..=20).contains(&n), "F(N) supported for 1 <= N <= 20");
    match n {
        1 => 0,
        2 => 1,
        _ => {
            // With F(0) = 1 (the empty matching) this is the classic
            // derangement recurrence N! = Σ_j C(N,j)·F(N−j).
            let mut f = vec![0u64; (n + 1) as usize];
            f[0] = 1;
            f[1] = 0;
            f[2] = 1;
            for m in 3..=n {
                let mut sum = 0u64;
                for j in 1..=m {
                    sum += binomial(m, j) * f[(m - j) as usize];
                }
                f[m as usize] = factorial(m) - sum;
            }
            f[n as usize]
        }
    }
}

/// The generic router's non-blocking probability: `F(N) / (N−1)^N`
/// (each of `N` inputs picks one of `N−1` outputs).
pub fn generic_non_blocking_probability(n: u64) -> f64 {
    non_blocking_matchings(n) as f64 / ((n - 1) as f64).powi(n as i32)
}

/// The Path-Sensitive router's non-blocking probability: 2 of the 2⁴
/// chained request patterns are non-blocking (§3.2), i.e. 0.125.
pub fn path_sensitive_non_blocking_probability() -> f64 {
    2.0 / 2f64.powi(4)
}

/// The RoCo router's non-blocking probability per the paper's §3.2:
/// `(1 − 0.5)² = 0.25` — two inputs each picking one of two outputs,
/// independently per module.
pub fn roco_non_blocking_probability() -> f64 {
    (1.0 - 0.5) * (1.0 - 0.5)
}

/// Brute-force check of `F(N)`: enumerate every assignment of outputs
/// to inputs (input `i` may not pick output `i`) and count those that
/// cover all outputs. Exponential; for tests only.
pub fn non_blocking_matchings_bruteforce(n: usize) -> u64 {
    assert!((1..=8).contains(&n), "brute force limited to N <= 8");
    let mut count = 0u64;
    let choices = n - 1;
    let total = (choices as u64).pow(n as u32);
    for code in 0..total {
        let mut c = code;
        let mut used = vec![false; n];
        let mut ok = true;
        for i in 0..n {
            let mut pick = (c % choices as u64) as usize;
            c /= choices as u64;
            if pick >= i {
                pick += 1; // skip own port
            }
            if used[pick] {
                ok = false;
                break;
            }
            used[pick] = true;
        }
        if ok && used.iter().all(|&u| u) {
            count += 1;
        }
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_cases() {
        assert_eq!(non_blocking_matchings(1), 0);
        assert_eq!(non_blocking_matchings(2), 1);
    }

    #[test]
    fn matches_bruteforce() {
        for n in 2..=7 {
            assert_eq!(
                non_blocking_matchings(n as u64),
                non_blocking_matchings_bruteforce(n),
                "F({n})"
            );
        }
    }

    #[test]
    fn table2_values() {
        // Generic 5-port: 0.043 (paper Table 2).
        let g = generic_non_blocking_probability(5);
        assert!((g - 0.043).abs() < 0.001, "generic {g}");
        // Path-Sensitive: 2/2^4 = 0.125 (the paper's "2 out of 24" is
        // a typeset superscript).
        assert!((path_sensitive_non_blocking_probability() - 0.125).abs() < 1e-12);
        // RoCo: 0.25 per module.
        assert!((roco_non_blocking_probability() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn roco_is_most_non_blocking() {
        let g = generic_non_blocking_probability(5);
        let p = path_sensitive_non_blocking_probability();
        let r = roco_non_blocking_probability();
        assert!(r > p && p > g, "paper §3.2 ordering");
        // "almost six times more likely than a generic router".
        assert!(r / g > 5.0 && r / g < 7.0);
    }

    #[test]
    fn f_n_known_values() {
        // F(3): 3 inputs, each picks one of the 2 other outputs, all
        // outputs covered: the two 3-cycles.
        assert_eq!(non_blocking_matchings(3), 2);
        assert_eq!(non_blocking_matchings(4), 9);
        assert_eq!(non_blocking_matchings(5), 44);
    }

    #[test]
    fn derangement_identity() {
        // F(N) equals the number of derangements of N elements
        // (permutations with no fixed point), a known identity.
        let derangements = [0u64, 0, 1, 2, 9, 44, 265, 1854];
        for (n, &expect) in derangements.iter().enumerate().skip(1) {
            assert_eq!(non_blocking_matchings(n as u64), expect, "n={n}");
        }
    }

    #[test]
    #[should_panic(expected = "supported")]
    fn zero_rejected() {
        let _ = non_blocking_matchings(0);
    }
}
