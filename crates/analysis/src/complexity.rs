//! Virtual-channel-allocator complexity comparison (Fig 2).
//!
//! The generic 5-port router needs `5v` second-stage arbiters of size
//! `5v:1` (when the routing function returns the VCs of one physical
//! channel, every input VC of every port may request every output VC).
//! The RoCo router decouples the ports into two 2-port modules and
//! drops the PE path set thanks to Early Ejection, leaving `4v`
//! arbiters of size `2v:1` — "SMALLER (2v:1 vs. 5v:1) and FEWER (4v vs.
//! 5v) arbiters than the generic case".

use serde::{Deserialize, Serialize};

/// Arbiter inventory of one allocation stage.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ArbiterStage {
    /// How many arbiters the stage instantiates.
    pub count: u32,
    /// Requester lines per arbiter (`r:1`).
    pub size: u32,
}

impl ArbiterStage {
    /// A rough gate-cost proxy: programmable-priority arbiters grow
    /// quadratically with their requester count.
    pub fn cost(&self) -> u64 {
        self.count as u64 * (self.size as u64 * self.size as u64)
    }
}

/// VA arbiter inventory of one router architecture (Fig 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct VaComplexity {
    /// First-stage (per input VC) arbiters.
    pub first_stage: ArbiterStage,
    /// Second-stage (per output VC) arbiters.
    pub second_stage: ArbiterStage,
}

impl VaComplexity {
    /// Total gate-cost proxy.
    pub fn cost(&self) -> u64 {
        self.first_stage.cost() + self.second_stage.cost()
    }
}

/// The generic 5-port router's VA for `v` VCs per port, in the Fig 2
/// case where the routing function returns the VCs of a single physical
/// channel (`R => P`): `5v` first-stage `v:1` arbiters and `5v`
/// second-stage `5v:1` arbiters.
pub fn generic_va(v: u32) -> VaComplexity {
    VaComplexity {
        first_stage: ArbiterStage { count: 5 * v, size: v },
        second_stage: ArbiterStage { count: 5 * v, size: 5 * v },
    }
}

/// The RoCo router's VA (Fig 2 right): Early Ejection removes the PE
/// path set, and decoupling splits the remaining four ports into two
/// independent pairs — `4v` first-stage `v:1` arbiters and `4v`
/// second-stage `2v:1` arbiters.
pub fn roco_va(v: u32) -> VaComplexity {
    VaComplexity {
        first_stage: ArbiterStage { count: 4 * v, size: v },
        second_stage: ArbiterStage { count: 4 * v, size: 2 * v },
    }
}

/// The switch-allocator inventory (Fig 4): per input port the generic
/// router uses one `v:1` arbiter plus one `P:1` arbiter per output; the
/// RoCo router uses two `v:1` arbiters per port but only one global
/// `2:1` mirror arbiter per module.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SaComplexity {
    /// Local (input-side) arbiters.
    pub local: ArbiterStage,
    /// Global (output-side) arbiters.
    pub global: ArbiterStage,
}

/// Generic SA: 5 local `v:1` + 5 global `5:1`.
pub fn generic_sa(v: u32) -> SaComplexity {
    SaComplexity {
        local: ArbiterStage { count: 5, size: v },
        global: ArbiterStage { count: 5, size: 5 },
    }
}

/// RoCo SA: two `v:1` local arbiters per port (4 ports) but a single
/// `2:1` global mirror arbiter per module (§3.3).
pub fn roco_sa(v: u32) -> SaComplexity {
    SaComplexity {
        local: ArbiterStage { count: 8, size: v },
        global: ArbiterStage { count: 2, size: 2 },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_counts_for_three_vcs() {
        let g = generic_va(3);
        let r = roco_va(3);
        // "FEWER (4v vs. 5v)".
        assert_eq!(g.second_stage.count, 15);
        assert_eq!(r.second_stage.count, 12);
        // "SMALLER (2v:1 vs. 5v:1)".
        assert_eq!(g.second_stage.size, 15);
        assert_eq!(r.second_stage.size, 6);
    }

    #[test]
    fn roco_va_is_substantially_cheaper() {
        for v in 1..=8 {
            let g = generic_va(v);
            let r = roco_va(v);
            assert!(r.cost() < g.cost() / 2, "v={v}");
        }
    }

    #[test]
    fn mirror_allocator_needs_one_global_arbiter_per_module() {
        let r = roco_sa(3);
        assert_eq!(r.global.count, 2);
        assert_eq!(r.global.size, 2);
        // Two local arbiters per port is the documented overhead
        // "compensated by the fact that only one arbiter is required
        // per module ... in the second (global) arbitration stage".
        assert_eq!(r.local.count, 8);
        let g = generic_sa(3);
        assert!(r.global.cost() < g.global.cost());
    }

    #[test]
    fn cost_is_quadratic_in_size() {
        let small = ArbiterStage { count: 1, size: 3 };
        let big = ArbiterStage { count: 1, size: 6 };
        assert_eq!(big.cost(), 4 * small.cost());
    }
}
