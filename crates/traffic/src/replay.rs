//! Trace-replay traffic: feed a recorded packet schedule back into the
//! simulator, so different router architectures can be compared on the
//! *identical* packet sequence instead of statistically-equal ones.

use crate::Traffic;
use noc_core::{Coord, Cycle, MeshConfig};
use rand::rngs::SmallRng;
use std::collections::VecDeque;

/// One scheduled packet: creation cycle, source and destination.
pub type ReplayEntry = (Cycle, Coord, Coord);

/// Replays a fixed packet schedule. Each node releases its packets in
/// recorded order, as soon as the simulation clock reaches each
/// packet's recorded cycle (at most one per poll; bursts spill into
/// subsequent cycles, mirroring the injection bandwidth limit).
#[derive(Debug, Clone)]
pub struct ReplayTraffic {
    /// Per-node queues of (cycle, dst), sorted by cycle.
    queues: Vec<VecDeque<(Cycle, Coord)>>,
    mesh: MeshConfig,
    offered: f64,
}

impl ReplayTraffic {
    /// Builds a replayer for `mesh` from a recorded schedule. The
    /// offered-load annotation is estimated from the schedule's span.
    ///
    /// # Panics
    ///
    /// Panics if an entry references a node outside the mesh or a
    /// self-addressed packet.
    pub fn new(mesh: MeshConfig, mut entries: Vec<ReplayEntry>, flits_per_packet: u16) -> Self {
        entries.sort_by_key(|&(cycle, src, _)| (src.index(mesh.width), cycle));
        let mut queues = vec![VecDeque::new(); mesh.nodes()];
        let mut max_cycle = 0;
        for (cycle, src, dst) in &entries {
            assert!(src.x < mesh.width && src.y < mesh.height, "source {src} outside mesh");
            assert!(dst.x < mesh.width && dst.y < mesh.height, "destination {dst} outside mesh");
            assert_ne!(src, dst, "self-addressed packet in replay schedule");
            queues[src.index(mesh.width)].push_back((*cycle, *dst));
            max_cycle = max_cycle.max(*cycle);
        }
        let offered = if max_cycle == 0 {
            0.0
        } else {
            entries.len() as f64 * flits_per_packet as f64
                / (max_cycle as f64 * mesh.nodes() as f64)
        };
        ReplayTraffic { queues, mesh, offered }
    }

    /// Packets not yet released.
    pub fn remaining(&self) -> usize {
        self.queues.iter().map(|q| q.len()).sum()
    }
}

impl Traffic for ReplayTraffic {
    fn generate(&mut self, node: Coord, cycle: Cycle, _rng: &mut SmallRng) -> Option<Coord> {
        let q = &mut self.queues[node.index(self.mesh.width)];
        match q.front() {
            Some(&(due, dst)) if due <= cycle => {
                q.pop_front();
                Some(dst)
            }
            _ => None,
        }
    }

    fn offered_load(&self) -> f64 {
        self.offered
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn mesh() -> MeshConfig {
        MeshConfig::new(4, 4)
    }

    #[test]
    fn releases_on_schedule() {
        let entries = vec![
            (5, Coord::new(0, 0), Coord::new(3, 3)),
            (9, Coord::new(0, 0), Coord::new(1, 2)),
            (5, Coord::new(2, 2), Coord::new(0, 1)),
        ];
        let mut t = ReplayTraffic::new(mesh(), entries, 4);
        let mut rng = SmallRng::seed_from_u64(0);
        assert_eq!(t.remaining(), 3);
        assert_eq!(t.generate(Coord::new(0, 0), 4, &mut rng), None, "not due yet");
        assert_eq!(t.generate(Coord::new(0, 0), 5, &mut rng), Some(Coord::new(3, 3)));
        assert_eq!(t.generate(Coord::new(0, 0), 6, &mut rng), None, "second not due");
        assert_eq!(
            t.generate(Coord::new(2, 2), 7, &mut rng),
            Some(Coord::new(0, 1)),
            "late release"
        );
        assert_eq!(t.generate(Coord::new(0, 0), 9, &mut rng), Some(Coord::new(1, 2)));
        assert_eq!(t.remaining(), 0);
    }

    #[test]
    fn bursts_spill_one_per_cycle() {
        let src = Coord::new(1, 1);
        let entries: Vec<ReplayEntry> = (0..3).map(|i| (10, src, Coord::new(3, i))).collect();
        let mut t = ReplayTraffic::new(mesh(), entries, 4);
        let mut rng = SmallRng::seed_from_u64(0);
        assert!(t.generate(src, 10, &mut rng).is_some());
        assert!(t.generate(src, 11, &mut rng).is_some());
        assert!(t.generate(src, 12, &mut rng).is_some());
        assert!(t.generate(src, 13, &mut rng).is_none());
    }

    #[test]
    fn offered_load_estimate() {
        // 8 packets of 4 flits over 100 cycles on 16 nodes = 0.02.
        let entries: Vec<ReplayEntry> =
            (0..8).map(|i| (100, Coord::new(i % 4, 0), Coord::new(i % 4, 3))).collect();
        let t = ReplayTraffic::new(mesh(), entries, 4);
        assert!((t.offered_load() - 8.0 * 4.0 / (100.0 * 16.0)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "self-addressed")]
    fn rejects_self_traffic() {
        let _ = ReplayTraffic::new(mesh(), vec![(0, Coord::new(1, 1), Coord::new(1, 1))], 4);
    }

    #[test]
    #[should_panic(expected = "outside mesh")]
    fn rejects_out_of_mesh() {
        let _ = ReplayTraffic::new(mesh(), vec![(0, Coord::new(9, 9), Coord::new(0, 0))], 4);
    }
}
